"""The atomic hot-swap point between training and serving.

A :class:`ModelSlot` is the single mutable cell a serving replica reads
its model from. It is *double buffered*: the slot always holds an
``active`` snapshot and (after the first swap) the previously active one
in the ``standby`` buffer, so a swap is one pointer flip — the
copy-on-swap discipline. Nothing about a swap can perturb requests that
are already in flight:

* a dispatched batch resolves its model by **dispatch time** through
  :meth:`snapshot_at`, so a swap landing mid-service leaves the batch
  answered by the snapshot it was dispatched against;
* published snapshots are immutable :class:`~repro.serving.ServableModel`
  artifacts (``freeze`` marks every weight array read-only), so the
  trainer mutating its own weights after a freeze cannot bleed into a
  response;
* versions are strictly monotone and publish times non-decreasing —
  :meth:`publish` rejects anything that would make a reader observe time
  or versions running backwards.

Every publish emits a ``serving.swap`` span and bumps the
``serving.swaps`` counter / ``serving.model_version`` gauge, which is
how the co-simulation's staleness accounting and the trace viewer see
the swap timeline.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional

from ..obs.metrics import MetricRegistry
from ..obs.tracer import as_tracer
from ..serving.export import ServableModel

__all__ = ["Snapshot", "ModelSlot"]


@dataclass(frozen=True)
class Snapshot:
    """One published model version: the artifact plus its provenance.

    ``step`` is the number of training steps the model had completed
    when it was frozen; ``publish_s`` is the virtual time the snapshot
    became the active one. Staleness of a response answered by this
    snapshot at time ``t`` is ``t - publish_s`` seconds, or
    ``steps_trained_by(t) - step`` steps.
    """

    version: int
    model: ServableModel
    step: int
    publish_s: float


class ModelSlot:
    """Double-buffered, versioned holder of the currently served model."""

    def __init__(self, initial: ServableModel, step: int = 0,
                 publish_s: float = 0.0, tracer=None,
                 metrics: Optional[MetricRegistry] = None) -> None:
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._scope = self.metrics.scope("serving")
        self.history: List[Snapshot] = []
        self._publish_times: List[float] = []
        # the two buffers of the double buffer; [active_index] is live
        self._buffers: List[Optional[Snapshot]] = [None, None]
        self._active_index = 0
        self._install(Snapshot(version=0, model=initial, step=step,
                               publish_s=publish_s))

    # ------------------------------------------------------------------
    @property
    def active(self) -> Snapshot:
        """The snapshot a request dispatched *now* would be answered by."""
        return self._buffers[self._active_index]

    @property
    def standby(self) -> Optional[Snapshot]:
        """The previously active snapshot (None before the first swap).

        Kept referenced so batches dispatched against it before the swap
        stay valid for as long as they are in flight.
        """
        return self._buffers[1 - self._active_index]

    @property
    def version(self) -> int:
        return self.active.version

    @property
    def num_swaps(self) -> int:
        """Completed hot-swaps (publishes after the initial install)."""
        return len(self.history) - 1

    # ------------------------------------------------------------------
    def _install(self, snap: Snapshot) -> None:
        # write the standby buffer first, then flip the index: the flip
        # is the single atomic action of the swap
        standby_index = 1 - self._active_index if self.history else 0
        self._buffers[standby_index] = snap
        self._active_index = standby_index
        self.history.append(snap)
        self._publish_times.append(snap.publish_s)
        self._scope.gauge("model_version").set(snap.version)

    def publish(self, model: ServableModel, step: int,
                publish_s: float) -> Snapshot:
        """Atomically swap ``model`` in as the active snapshot.

        The new snapshot must be freshly frozen (read-only weights), of
        the same architecture and storage precision as the initial one
        (the schedule is priced once against the model *shape*, so a
        swap must never re-price an in-flight request), trained at least
        as far, and published no earlier than the current snapshot.
        """
        current = self.active
        if model.config != current.model.config:
            raise ValueError(
                "published model architecture differs from the slot's; "
                "hot-swap requires config-identical snapshots")
        if model.precision != current.model.precision:
            raise ValueError(
                f"published precision {model.precision!r} != slot "
                f"precision {current.model.precision!r}")
        if step < current.step:
            raise ValueError(
                f"snapshot step must not decrease: {step} < {current.step}")
        if publish_s < current.publish_s:
            raise ValueError(
                f"publish time must not decrease: {publish_s} < "
                f"{current.publish_s}")
        snap = Snapshot(version=current.version + 1, model=model, step=step,
                        publish_s=publish_s)
        with self.tracer.span("serving.swap", cat="serving",
                              version=snap.version, step=snap.step,
                              publish_s=snap.publish_s):
            self._install(snap)
        self._scope.counter("swaps").inc(1)
        return snap

    # ------------------------------------------------------------------
    def snapshot_at(self, t: float) -> Snapshot:
        """The snapshot active at virtual time ``t`` — what a batch
        dispatched at ``t`` is answered by, regardless of later swaps."""
        first = self.history[0]
        if t < first.publish_s:
            raise ValueError(
                f"no snapshot active at t={t} (first publish at "
                f"{first.publish_s})")
        i = bisect_right(self._publish_times, t)
        return self.history[i - 1]

    def snapshot(self, version: int) -> Snapshot:
        """Look up a published snapshot by version number."""
        if not 0 <= version < len(self.history):
            raise KeyError(f"no snapshot with version {version}")
        return self.history[version]

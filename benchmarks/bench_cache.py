"""Frequency-aware cache sweep: hit rate and effective bandwidth vs Zipf
alpha, against the set-associative and UVM baselines (Section 4.1.3 plus
the CacheEmbedding-style frequency-aware upgrade).

Every cache kind replays the same hashed-permutation Zipf traces at
identical fast-tier capacity through the unified ``RowCache`` API. All
kinds first observe the same warm stream — the reactive caches warm by
missing on it, the frequency-aware cache is pre-packed from its id
histogram (the ingestion tier measures these for free) — then stats and
byte counters reset and the measured trace runs. The ``freq+prefetch``
variant additionally stages batch k+1's rows through a
``PrefetchPipeline`` while batch k's lookups run; ``cache.prefetch``
spans measure how much of the staging wall time hides under the lookup
window, and the bandwidth model prices only the *exposed* prefetch bytes
at the slow tier.

Modeled effective bandwidth for a trace that requests B bytes:

    time = hit_bytes / HBM_BW + demand_miss_bytes / PCIE_BW
         + exposed_prefetch_bytes / PCIE_BW
    effective_bw = B / time

Every variant's reads are asserted bitwise-equal to the uncached backing
rows on every step (the caches are exact placement models).

Run standalone to write ``BENCH_cache.json``::

    PYTHONPATH=src python benchmarks/bench_cache.py \
        [--quick] [--out PATH] [--min-hit-rate X]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.cache import (ArrayBackingStore, PrefetchPipeline, make_cache)
from repro.data import zipf_indices
from repro.obs import Tracer

FULL_CONFIG = dict(
    mode="full", rows=100_000, dim=32, capacity=4096, steps=30,
    ids_per_step=2048, warm_steps=24, alphas=(1.01, 1.05, 1.1, 1.2),
    uvm_rows_per_page=512, chunk_rows=64, seed=0)
QUICK_CONFIG = dict(
    FULL_CONFIG, mode="quick", rows=20_000, dim=16, capacity=1024,
    steps=12, ids_per_step=512, warm_steps=20, alphas=(1.05, 1.1))

PCIE_BW = 12e9   # PCIe gen3 x16 sustained
HBM_BW = 850e9   # per-GPU HBM stream

VARIANTS = ("set_associative", "uvm", "freq_aware", "freq+prefetch")


def make_traces(config, alpha):
    """Hashed Zipf traces: production categorical ids are hashes, so hot
    rows scatter across the table instead of clustering at low ids."""
    rows = config["rows"]
    permutation = np.random.default_rng(42).permutation(rows)
    rng = np.random.default_rng(config["seed"])
    warm = [permutation[zipf_indices(rows, config["ids_per_step"], rng,
                                     alpha=alpha)]
            for _ in range(config["warm_steps"])]
    measure = [permutation[zipf_indices(rows, config["ids_per_step"], rng,
                                        alpha=alpha)]
               for _ in range(config["steps"])]
    return warm, measure


def build_variant(name, config):
    d, capacity = config["dim"], config["capacity"]
    if name == "uvm":
        return make_cache("uvm", row_dim=d, capacity_rows=capacity,
                          rows_per_page=config["uvm_rows_per_page"])
    if name == "set_associative":
        return make_cache("set_associative", row_dim=d,
                          capacity_rows=capacity, ways=32, policy="lru")
    return make_cache("freq_aware", row_dim=d, capacity_rows=capacity,
                      chunk_rows=config["chunk_rows"])


def run_variant(name, config, warm, measure):
    """Warm, then replay the measured trace; returns the stats dict."""
    weights = np.random.default_rng(1).normal(
        size=(config["rows"], config["dim"])).astype(np.float32)
    backing = ArrayBackingStore(weights)
    cache = build_variant(name, config)

    if name.startswith("freq"):
        hist = np.bincount(np.concatenate(warm),
                           minlength=config["rows"])
        cache.warm(hist, backing)
    else:
        for ids in warm:  # reactive caches warm by missing
            cache.read(ids, backing)
    cache.reset_stats()
    backing.reset_counters()

    tracer = Tracer()
    pipe = PrefetchPipeline(cache, backing, tracer=tracer) \
        if name == "freq+prefetch" else None
    exact = True
    for k, ids in enumerate(measure):
        t0 = time.perf_counter()
        out = cache.read(ids, backing)
        compute_s = time.perf_counter() - t0
        exact = exact and bool(np.array_equal(out, weights[ids]))
        if pipe is not None and k + 1 < len(measure):
            # stage batch k+1 under batch k's lookup window
            pipe.stage(measure[k + 1], compute_s=compute_s)

    stats = cache.stats
    row_bytes = config["dim"] * 4
    requested = sum(len(ids) for ids in measure) * row_bytes
    overlap = pipe.overlap_report() if pipe is not None else None
    staged_bytes = overlap["bytes_staged"] if overlap else 0
    demand_bytes = backing.bytes_read - staged_bytes
    exposed_frac = (1.0 - overlap["hidden_frac"]) if overlap else 0.0
    slow_time = demand_bytes / PCIE_BW \
        + staged_bytes * exposed_frac / PCIE_BW
    fast_time = stats.hits * row_bytes / HBM_BW
    effective_bw = requested / (fast_time + slow_time)
    result = {
        "variant": name,
        "hit_rate": stats.hit_rate,
        "accesses": stats.accesses,
        "demand_miss_bytes": demand_bytes,
        "prefetch_bytes": staged_bytes,
        "requested_bytes": requested,
        "effective_bandwidth_gbs": effective_bw / 1e9,
        "bitwise_exact": exact,
    }
    if overlap is not None:
        result["prefetch_overlap"] = overlap
        result["prefetch_spans"] = len(tracer.trace.find("cache.prefetch"))
    return result


def measure_alpha(config, alpha):
    warm, trace = make_traces(config, alpha)
    return {name: run_variant(name, config, warm, trace)
            for name in VARIANTS}


def measure(config):
    return {alpha: measure_alpha(config, alpha)
            for alpha in config["alphas"]}


def as_json(config, results):
    sweep = []
    for alpha, by_variant in results.items():
        sweep.append({"alpha": alpha, "variants": by_variant})
    gated = [a for a in config["alphas"] if a >= 1.05]
    return {
        "benchmark": "cache",
        "config": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in config.items()},
        "bandwidths": {"pcie_bw": PCIE_BW, "hbm_bw": HBM_BW},
        "sweep": sweep,
        "bitwise_exact": all(v["bitwise_exact"]
                             for by in results.values()
                             for v in by.values()),
        "freq_aware_beats_set_associative": all(
            results[a]["freq_aware"]["hit_rate"]
            > results[a]["set_associative"]["hit_rate"]
            and results[a]["freq_aware"]["effective_bandwidth_gbs"]
            > results[a]["set_associative"]["effective_bandwidth_gbs"]
            for a in gated),
        "prefetch_overlap_measured": all(
            results[a]["freq+prefetch"]["prefetch_spans"] > 0
            and results[a]["freq+prefetch"]["prefetch_overlap"][
                "hidden_s"] > 0
            for a in config["alphas"]),
    }


HEADER = ["alpha", "variant", "hit rate", "miss traffic", "eff. BW",
          "hidden prefetch"]


def table_rows(results):
    rows = []
    for alpha, by_variant in results.items():
        for name, r in by_variant.items():
            overlap = r.get("prefetch_overlap")
            hidden = f"{overlap['hidden_frac']:.0%}" if overlap else "-"
            rows.append([f"{alpha:.2f}", name, f"{r['hit_rate']:.1%}",
                         f"{r['demand_miss_bytes'] / 1e6:.1f} MB",
                         f"{r['effective_bandwidth_gbs']:.1f} GB/s",
                         hidden])
    return rows


def _print_table(header, rows):
    widths = [max(len(str(h)), *(len(str(r[c])) for r in rows))
              for c, h in enumerate(header)]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_cache.json",
                        help="output JSON path")
    parser.add_argument("--min-hit-rate", type=float, default=0.5,
                        metavar="X",
                        help="fail unless the frequency-aware hit rate at "
                             "the largest alpha is >= X")
    args = parser.parse_args(argv)
    config = dict(QUICK_CONFIG if args.quick else FULL_CONFIG)
    results = measure(config)
    doc = as_json(config, results)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    print("cache sweep vs Zipf alpha "
          f"({config['rows']:,} rows, capacity {config['capacity']:,}, "
          f"dim {config['dim']}):")
    _print_table(HEADER, table_rows(results))
    print(f"\nall reads bitwise-exact: {doc['bitwise_exact']}")
    print("freq-aware beats set-associative at alpha >= 1.05: "
          f"{doc['freq_aware_beats_set_associative']}")
    print(f"prefetch overlap measured via spans: "
          f"{doc['prefetch_overlap_measured']}")
    print(f"wrote {args.out}")

    failures = []
    top_alpha = config["alphas"][-1]
    top_hit = results[top_alpha]["freq_aware"]["hit_rate"]
    if top_hit < args.min_hit_rate:
        failures.append(f"freq-aware hit rate {top_hit:.3f} at alpha "
                        f"{top_alpha} below the {args.min_hit_rate} floor")
    if not doc["bitwise_exact"]:
        failures.append("a cached read diverged from the backing store")
    if not doc["freq_aware_beats_set_associative"]:
        failures.append("freq-aware lost to set-associative at some "
                        "alpha >= 1.05")
    if not doc["prefetch_overlap_measured"]:
        failures.append("no hidden prefetch time was measured")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def test_freq_aware_beats_baselines(benchmark, report):
    """The headline gate: hit rate and effective bandwidth above the
    set-associative baseline at every Zipf alpha >= 1.05."""
    config = dict(QUICK_CONFIG)
    results = benchmark.pedantic(lambda: measure(config),
                                 rounds=1, iterations=1)
    report("cache: hit rate / effective bandwidth vs Zipf alpha",
           HEADER, table_rows(results))
    for alpha, by_variant in results.items():
        assert all(v["bitwise_exact"] for v in by_variant.values())
        if alpha >= 1.05:
            fa, sa = by_variant["freq_aware"], by_variant["set_associative"]
            assert fa["hit_rate"] > sa["hit_rate"]
            assert fa["effective_bandwidth_gbs"] \
                > sa["effective_bandwidth_gbs"]
            assert fa["hit_rate"] > by_variant["uvm"]["hit_rate"]


def test_prefetch_overlap_and_spans(benchmark, report):
    """Pipelined prefetch hides staging under the lookup window and the
    spans record it; prefetched variant never does worse."""
    config = dict(QUICK_CONFIG)
    alpha = config["alphas"][-1]
    results = benchmark.pedantic(lambda: measure_alpha(config, alpha),
                                 rounds=1, iterations=1)
    report(f"cache: prefetch at alpha={alpha}", HEADER,
           table_rows({alpha: results}))
    pf, fa = results["freq+prefetch"], results["freq_aware"]
    overlap = pf["prefetch_overlap"]
    assert pf["prefetch_spans"] == config["steps"] - 1
    assert overlap["hidden_s"] > 0
    assert 0.0 < overlap["hidden_frac"] <= 1.0
    assert pf["hit_rate"] >= fa["hit_rate"]
    assert pf["effective_bandwidth_gbs"] >= fa["effective_bandwidth_gbs"]


if __name__ == "__main__":
    sys.exit(main())

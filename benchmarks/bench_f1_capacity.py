"""Section 5.3.3: the model F1 (12T-parameter) capacity-limit study.

Reproduces the paper's arithmetic and recipe end to end:

1. naive FP32 + element-wise AdaGrad needs ~96 TB — 3.4x the cluster;
2. row-wise sparse AdaGrad halves it (~48 TB) — still does not fit;
3. FP16 tables land at ~24 TB — just inside 4 TB HBM + 24 TB DRAM;
4. the massive ~10B-row tables then shard row-wise across nodes, and the
   same recipe runs *functionally* on a scaled-down F1 through the real
   trainer (row-wise sharding + row-wise AdaGrad + fp16 wire).
"""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology, QuantizedCommsConfig
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import RowWiseAdaGrad
from repro.models import full_spec, mini_config
from repro.perf import (PROTOTYPE_CLUSTER_MEMORY, capacity_ladder)
from repro.sharding import ShardingPlan, ShardingScheme, shard_table


def ladder_rows():
    ladder = capacity_ladder(full_spec("F1"))
    mem = PROTOTYPE_CLUSTER_MEMORY
    return [(fp.label, f"{fp.total_bytes / 1e12:.1f} TB",
             "yes" if mem.fits(fp) else "no")
            for fp in ladder]


def test_f1_capacity_ladder(benchmark, report):
    rows = benchmark(ladder_rows)
    report("Section 5.3.3: F1 memory footprint ladder "
           "(cluster = 4 TB HBM + 24 TB DRAM)",
           ["recipe", "footprint", "fits?"], rows)
    assert rows[0][1] == "96.0 TB" and rows[0][2] == "no"
    assert rows[2][2] == "yes"
    ladder = capacity_ladder(full_spec("F1"))
    assert ladder[0].total_bytes == pytest.approx(96e12, rel=0.02)
    assert ladder[2].total_bytes == pytest.approx(24e12, rel=0.05)


def test_f1_recipe_trains_functionally(benchmark, report):
    """Scaled-down F1 through the real trainer with the paper's recipe:
    row-wise sharded massive tables + row-wise AdaGrad + fp16 comms."""
    config = mini_config("F1", scale=2048, num_tables=4, embedding_dim=16)
    world = 8
    plan = ShardingPlan(world_size=world)
    for t in config.tables:
        plan.tables[t.name] = shard_table(t, ShardingScheme.ROW_WISE,
                                          list(range(world)))
    ds = SyntheticCTRDataset(config.tables, dense_dim=config.dense_dim,
                             noise=0.25, seed=3)

    def run():
        trainer = NeoTrainer(
            config, plan,
            ClusterTopology(num_nodes=2, gpus_per_node=4),
            dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
            sparse_optimizer=RowWiseAdaGrad(lr=0.1),
            comms_config=QuantizedCommsConfig.paper_recipe(), seed=0)
        losses = [trainer.train_step(ds.batch(64, i).split(world))
                  for i in range(40)]
        return losses, trainer

    losses, trainer = benchmark.pedantic(run, rounds=1, iterations=1)
    report("F1 recipe functional run (scaled down)",
           ["metric", "value"],
           [("first-5 mean loss", f"{np.mean(losses[:5]):.4f}"),
            ("last-5 mean loss", f"{np.mean(losses[-5:]):.4f}"),
            ("row-wise shards per table", world),
            ("reduce_scatter calls",
             trainer.pg.log.calls.get("reduce_scatter", 0))])
    assert np.mean(losses[-5:]) < np.mean(losses[:5])
    # the RW dataflow of Fig. 8 actually ran
    assert trainer.pg.log.calls["reduce_scatter"] > 0
    assert trainer.pg.log.calls["all_gather"] > 0

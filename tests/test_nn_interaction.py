"""Tests for DLRM interaction layers (dot-product and concat)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import CatInteraction, DotInteraction

from .helpers import numerical_gradient


def scalar_loss(y):
    return float(np.sum(y.astype(np.float64) ** 2) / 2.0)


class TestDotInteraction:
    def test_output_dim_formula(self):
        layer = DotInteraction()
        assert layer.output_dim(num_features=4, dim=16) == 16 + 6
        assert layer.output_dim(num_features=2, dim=8) == 8 + 1

    def test_output_shape(self):
        layer = DotInteraction()
        rng = np.random.default_rng(0)
        feats = [rng.normal(size=(5, 8)).astype(np.float32) for _ in range(3)]
        out = layer.forward_list(feats)
        assert out.shape == (5, layer.output_dim(3, 8))

    def test_dense_passthrough(self):
        """First `dim` columns of the output are the dense feature itself."""
        layer = DotInteraction()
        rng = np.random.default_rng(1)
        feats = [rng.normal(size=(4, 6)).astype(np.float32) for _ in range(3)]
        out = layer.forward_list(feats)
        np.testing.assert_array_equal(out[:, :6], feats[0])

    def test_pairwise_dot_values(self):
        layer = DotInteraction()
        a = np.array([[1.0, 0.0]], dtype=np.float32)
        b = np.array([[0.0, 2.0]], dtype=np.float32)
        c = np.array([[3.0, 4.0]], dtype=np.float32)
        out = layer.forward_list([a, b, c])
        # tril(k=-1) ordering over features (a,b,c): (b,a), (c,a), (c,b)
        np.testing.assert_allclose(out[0, 2:], [0.0, 3.0, 8.0])

    def test_mismatched_shapes_raise(self):
        layer = DotInteraction()
        with pytest.raises(ValueError):
            layer.forward_list([np.zeros((2, 3), dtype=np.float32),
                                np.zeros((2, 4), dtype=np.float32)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DotInteraction().forward_list([])

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        layer = DotInteraction()
        feats = [rng.normal(size=(2, 4)).astype(np.float32) for _ in range(3)]
        out = layer.forward_list(feats)
        grads = layer.backward_list(out.astype(np.float32))

        for i in range(3):
            def f(v, i=i):
                trial = list(feats)
                trial[i] = v.astype(np.float32)
                return scalar_loss(DotInteraction().forward_list(trial))

            np.testing.assert_allclose(grads[i], numerical_gradient(f, feats[i]),
                                       rtol=3e-2, atol=1e-3)

    def test_self_interaction_gradient_check(self):
        rng = np.random.default_rng(3)
        layer = DotInteraction(self_interaction=True)
        feats = [rng.normal(size=(2, 3)).astype(np.float32) for _ in range(2)]
        out = layer.forward_list(feats)
        grads = layer.backward_list(out.astype(np.float32))

        for i in range(2):
            def f(v, i=i):
                trial = list(feats)
                trial[i] = v.astype(np.float32)
                return scalar_loss(
                    DotInteraction(self_interaction=True).forward_list(trial))

            np.testing.assert_allclose(grads[i], numerical_gradient(f, feats[i]),
                                       rtol=3e-2, atol=1e-3)

    def test_module_interface_matches_list_interface(self):
        rng = np.random.default_rng(4)
        stacked = rng.normal(size=(3, 4, 5)).astype(np.float32)
        out_mod = DotInteraction().forward(stacked)
        out_list = DotInteraction().forward_list(
            [stacked[:, i, :] for i in range(4)])
        np.testing.assert_array_equal(out_mod, out_list)

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_output_dim_matches_actual(self, f, d):
        layer = DotInteraction()
        feats = [np.ones((2, d), dtype=np.float32) for _ in range(f)]
        assert layer.forward_list(feats).shape[1] == layer.output_dim(f, d)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            DotInteraction().backward_list(np.zeros((1, 1), dtype=np.float32))


class TestCatInteraction:
    def test_round_trip(self):
        layer = CatInteraction()
        rng = np.random.default_rng(5)
        feats = [rng.normal(size=(3, 4)).astype(np.float32) for _ in range(3)]
        out = layer.forward_list(feats)
        assert out.shape == (3, 12)
        grads = layer.backward_list(out)
        for g, f in zip(grads, feats):
            np.testing.assert_array_equal(g, f)

    def test_output_dim(self):
        assert CatInteraction().output_dim(5, 8) == 40

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CatInteraction().backward_list(np.zeros((1, 1), dtype=np.float32))

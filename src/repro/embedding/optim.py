"""Exact, deterministic sparse optimizers (paper Section 4.1.2).

Large-batch synchronous training means the same embedding row can receive
gradient contributions from many samples in one mini-batch. Applying those
contributions independently (Hogwild-style) is both racy on real hardware
and *mathematically wrong* for non-linear optimizers such as AdaGrad, Adam
and LAMB, where ``update(g1) + update(g2) != update(g1 + g2)``.

The exact scheme is the paper's: *sort* the row indices of the sparse
gradient, *merge* duplicate rows by summing their gradients, then apply a
single optimizer step per unique row. This makes updates deterministic —
independent of batch order and of how the batch was split across workers —
which is the basis of the bitwise-reproducibility property tested in
``tests/test_integration_determinism.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .kernels import merge_sorted_coo
from .table import EmbeddingTable, SparseGradient

__all__ = [
    "merge_duplicate_rows",
    "SparseOptimizer",
    "SparseSGD",
    "SparseAdaGrad",
    "RowWiseAdaGrad",
    "SparseAdam",
    "SparseLAMB",
    "optimizer_state_bytes",
]


def merge_duplicate_rows(rows: np.ndarray,
                         values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sort rows and sum gradients of duplicates into one entry per row.

    This is the "transpose the sparse update matrix" step of Section 4.1.2:
    e.g. rows ``[1, 2, 2, 3]`` with gradients ``[g0, g1, g2, g3]`` become
    rows ``[1, 2, 3]`` with gradients ``[g0, g1+g2, g3]``. The heavy
    lifting (canonical lexsort + reduceat merge) lives in
    :func:`repro.embedding.kernels.merge_sorted_coo`, shared with the
    fused arena backward.
    """
    return merge_sorted_coo(rows, values)


class SparseOptimizer:
    """Base class: owns per-table state and the merge-then-apply protocol."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._state: Dict[int, Dict[str, np.ndarray]] = {}

    def state_for(self, table: EmbeddingTable) -> Dict[str, np.ndarray]:
        return self._state.setdefault(id(table), {})

    def step(self, table: EmbeddingTable, grad: SparseGradient) -> None:
        """Merge duplicate rows, then apply one exact update per row."""
        rows, merged = merge_duplicate_rows(grad.rows, grad.values)
        self.apply_merged(table, rows, merged)

    def apply_merged(self, table: EmbeddingTable, rows: np.ndarray,
                     grads: np.ndarray) -> None:
        """Apply one exact update per *pre-merged* unique row.

        The fused arena backward merges a whole dimension group's COO
        gradient in one lexsort/reduceat and hands each table its slice;
        re-merging here would only re-sort already-unique rows.
        """
        if len(rows) == 0:
            return
        self._apply(table, rows, grads)

    def _apply(self, table: EmbeddingTable, rows: np.ndarray,
               grads: np.ndarray) -> None:
        raise NotImplementedError

    def state_bytes(self, num_embeddings: int, embedding_dim: int) -> int:
        """Optimizer state bytes for an (H, D) table — capacity planning."""
        raise NotImplementedError


class SparseSGD(SparseOptimizer):
    """Plain SGD on the touched rows (linear, so merging is optional —
    but we merge anyway for determinism of float summation order)."""

    def _apply(self, table, rows, grads):
        table.weight[rows] -= (self.lr * grads).astype(np.float32)

    def state_bytes(self, num_embeddings: int, embedding_dim: int) -> int:
        return 0


class SparseAdaGrad(SparseOptimizer):
    """Element-wise AdaGrad with an (H, D) accumulator."""

    def __init__(self, lr: float = 0.01, eps: float = 1e-8) -> None:
        super().__init__(lr)
        self.eps = eps

    def _apply(self, table, rows, grads):
        state = self.state_for(table)
        if "sum_sq" not in state:
            state["sum_sq"] = np.zeros_like(table.weight)
        acc = state["sum_sq"]
        acc[rows] += grads * grads
        table.weight[rows] -= (
            self.lr * grads / (np.sqrt(acc[rows]) + self.eps)
        ).astype(np.float32)

    def state_bytes(self, num_embeddings: int, embedding_dim: int) -> int:
        return num_embeddings * embedding_dim * 4


class RowWiseAdaGrad(SparseOptimizer):
    """Row-wise sparse AdaGrad (Section 4.1.4).

    One scalar moment per *row*: ``m_i' = m_i + mean_j(g_ij^2)``. The state
    is a 1-D tensor of H elements instead of H x D, cutting optimizer memory
    by a factor of D — the first of the two tricks that shrink model F1 from
    96 TB to 24 TB in Section 5.3.3.
    """

    def __init__(self, lr: float = 0.01, eps: float = 1e-8) -> None:
        super().__init__(lr)
        self.eps = eps

    def _apply(self, table, rows, grads):
        state = self.state_for(table)
        if "moment" not in state:
            state["moment"] = np.zeros(table.weight.shape[0], dtype=np.float32)
        moment = state["moment"]
        moment[rows] += np.mean(grads * grads, axis=1)
        scale = self.lr / (np.sqrt(moment[rows]) + self.eps)
        table.weight[rows] -= (scale[:, None] * grads).astype(np.float32)

    def state_bytes(self, num_embeddings: int, embedding_dim: int) -> int:
        return num_embeddings * 4


class SparseAdam(SparseOptimizer):
    """Adam on touched rows with per-row step counts for bias correction.

    Dense Adam advances every parameter's moments each step; for embeddings
    only touched rows advance, so each row keeps its own timestep (the
    standard "sparse Adam" semantics).
    """

    def __init__(self, lr: float = 1e-3, betas: tuple = (0.9, 0.999),
                 eps: float = 1e-8) -> None:
        super().__init__(lr)
        self.beta1, self.beta2 = betas
        self.eps = eps

    def _apply(self, table, rows, grads):
        state = self.state_for(table)
        if "m" not in state:
            state["m"] = np.zeros_like(table.weight)
            state["v"] = np.zeros_like(table.weight)
            state["t"] = np.zeros(table.weight.shape[0], dtype=np.int64)
        m, v, t = state["m"], state["v"], state["t"]
        t[rows] += 1
        m[rows] = self.beta1 * m[rows] + (1 - self.beta1) * grads
        v[rows] = self.beta2 * v[rows] + (1 - self.beta2) * grads * grads
        t_rows = t[rows].astype(np.float64)
        m_hat = m[rows] / (1 - self.beta1 ** t_rows)[:, None]
        v_hat = v[rows] / (1 - self.beta2 ** t_rows)[:, None]
        table.weight[rows] -= (
            self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        ).astype(np.float32)

    def state_bytes(self, num_embeddings: int, embedding_dim: int) -> int:
        return num_embeddings * (2 * embedding_dim * 4 + 8)


class SparseLAMB(SparseOptimizer):
    """LAMB on touched rows, with a per-row trust ratio.

    For embeddings the natural "layer" granularity is the row, so the trust
    ratio compares each row's norm with its update's norm.
    """

    def __init__(self, lr: float = 1e-3, betas: tuple = (0.9, 0.999),
                 eps: float = 1e-6, weight_decay: float = 0.0) -> None:
        super().__init__(lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _apply(self, table, rows, grads):
        state = self.state_for(table)
        if "m" not in state:
            state["m"] = np.zeros_like(table.weight)
            state["v"] = np.zeros_like(table.weight)
            state["t"] = np.zeros(table.weight.shape[0], dtype=np.int64)
        m, v, t = state["m"], state["v"], state["t"]
        t[rows] += 1
        m[rows] = self.beta1 * m[rows] + (1 - self.beta1) * grads
        v[rows] = self.beta2 * v[rows] + (1 - self.beta2) * grads * grads
        t_rows = t[rows].astype(np.float64)
        m_hat = m[rows] / (1 - self.beta1 ** t_rows)[:, None]
        v_hat = v[rows] / (1 - self.beta2 ** t_rows)[:, None]
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay:
            update = update + self.weight_decay * table.weight[rows]
        w_norm = np.linalg.norm(table.weight[rows], axis=1)
        u_norm = np.linalg.norm(update, axis=1)
        trust = np.where((w_norm > 0) & (u_norm > 0), w_norm / np.maximum(u_norm, 1e-30), 1.0)
        table.weight[rows] -= (
            self.lr * trust[:, None] * update
        ).astype(np.float32)

    def state_bytes(self, num_embeddings: int, embedding_dim: int) -> int:
        return num_embeddings * (2 * embedding_dim * 4 + 8)


def optimizer_state_bytes(optimizer: str, num_embeddings: int,
                          embedding_dim: int) -> int:
    """State bytes by optimizer name — used by the F1 capacity study."""
    classes = {
        "sgd": SparseSGD(lr=1.0),
        "adagrad": SparseAdaGrad(),
        "rowwise_adagrad": RowWiseAdaGrad(),
        "adam": SparseAdam(),
        "lamb": SparseLAMB(),
    }
    try:
        instance = classes[optimizer]
    except KeyError:
        raise ValueError(f"unknown optimizer {optimizer!r}; "
                         f"expected one of {sorted(classes)}") from None
    return instance.state_bytes(num_embeddings, embedding_dim)

"""Load-generator and SLO-report tests: seeded determinism and accounting.

An open-loop Poisson trace must be exactly reproducible from its seed,
statistically honest about its offered rate, and the report derived
from a serve run must account for every offered request.
"""

import numpy as np
import pytest

from repro.serving import (BatchingPolicy, InferenceServer, LoadReport,
                           PoissonLoadGen, ServingPerfModel, run_load_test)
from repro.serving.loadgen import summarize

from .helpers import tiny_system


class TestPoissonLoadGen:
    def test_same_seed_same_trace(self):
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        np.testing.assert_array_equal(a.arrival_times(), b.arrival_times())

    def test_different_seed_different_trace(self):
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=8)
        assert not np.array_equal(a.arrival_times(), b.arrival_times())

    def test_mean_rate_approximates_qps(self):
        gen = PoissonLoadGen(qps=500, num_requests=4000, seed=0)
        arrivals = gen.arrival_times()
        measured = len(arrivals) / arrivals[-1]
        assert measured == pytest.approx(500, rel=0.1)

    def test_arrivals_increase_from_start(self):
        gen = PoissonLoadGen(qps=100, num_requests=20, seed=1, start_s=5.0)
        arrivals = gen.arrival_times()
        assert arrivals[0] > 5.0
        assert np.all(np.diff(arrivals) > 0)

    def test_requests_slice_the_bulk_batch(self):
        ds = tiny_system().dataset
        gen = PoissonLoadGen(qps=100, num_requests=10, seed=2)
        requests = gen.requests(ds)
        bulk = ds.batch(10, batch_index=2)
        assert [r.request_id for r in requests] == list(range(10))
        for i, r in enumerate(requests):
            assert r.num_samples == 1
            np.testing.assert_array_equal(r.batch.dense, bulk.dense[i:i + 1])

    def test_for_duration_sizes_to_expected_arrivals(self):
        gen = PoissonLoadGen.for_duration(qps=250, duration_s=2.0, seed=5)
        assert gen.num_requests == 500
        assert gen.qps == 250
        assert gen.seed == 5
        # degenerate horizon still produces at least one request
        assert PoissonLoadGen.for_duration(qps=1, duration_s=1e-6) \
            .num_requests == 1
        with pytest.raises(ValueError):
            PoissonLoadGen.for_duration(qps=100, duration_s=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonLoadGen(qps=0, num_requests=10)
        with pytest.raises(ValueError):
            PoissonLoadGen(qps=10, num_requests=0)


class TestLoadReport:
    def test_accounting_conserves_requests(self):
        sys = tiny_system()
        # tiny queue + slow server forces sheds
        server = InferenceServer(
            sys.servable, BatchingPolicy(max_batch_size=4, max_wait_s=1e-4,
                                         max_queue_depth=4),
            ServingPerfModel(overhead_s=5e-3))
        report = run_load_test(server, sys.dataset, qps=5000,
                               num_requests=200, slo_s=5e-3, seed=0)
        assert report.num_offered == 200
        assert report.num_completed + report.num_shed == 200
        assert report.num_shed > 0
        assert 0 < report.shed_fraction < 1

    def test_seeded_report_is_exactly_reproducible(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        a = run_load_test(server, sys.dataset, qps=2000, num_requests=150,
                          slo_s=5e-3, seed=4)
        b = run_load_test(server, sys.dataset, qps=2000, num_requests=150,
                          slo_s=5e-3, seed=4)
        assert a == b

    def test_percentiles_ordered(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=150, slo_s=5e-3, seed=0)
        assert 0 < report.p50_s <= report.p95_s <= report.p99_s \
            <= report.max_s
        assert report.makespan_s > 0

    def test_goodput_counts_only_within_slo(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        out = []
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=100, slo_s=5e-3, seed=0,
                               result_out=out)
        result = out[0]
        within = int(np.sum(result.latencies_s() <= report.slo_s))
        assert report.goodput_qps == pytest.approx(
            within / result.makespan_s())
        assert report.slo_attainment == pytest.approx(within / 100)
        # under light load everything meets a 5 ms SLO
        assert report.slo_attainment == 1.0
        assert report.goodput_qps == pytest.approx(report.completed_qps)

    def test_impossible_slo_zeroes_goodput(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=100, slo_s=1e-9, seed=0)
        assert report.goodput_qps == 0.0
        assert report.slo_attainment == 0.0
        assert report.completed_qps > 0  # work still happened

    def test_row_matches_header(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=50, slo_s=5e-3, seed=0)
        assert len(report.row()) == len(LoadReport.ROW_HEADER)

    def test_summarize_empty_result(self):
        from repro.serving import ServeResult
        report = summarize(ServeResult(), offered_qps=100, num_offered=0,
                           slo_s=1e-3)
        assert report.num_completed == 0
        assert report.goodput_qps == 0.0
        assert report.shed_fraction == 0.0

    def test_rejects_bad_slo(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        with pytest.raises(ValueError):
            run_load_test(server, sys.dataset, qps=100, num_requests=10,
                          slo_s=0.0)


class TestStreamsAndSamples:
    """Fleet-facing extensions: named rng sub-streams and raw samples."""

    def test_default_stream_preserves_the_historical_trace(self):
        from repro.serving.loadgen import ARRIVAL_STREAM
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=7,
                           stream=ARRIVAL_STREAM)
        np.testing.assert_array_equal(a.arrival_times(), b.arrival_times())

    def test_streams_decorrelate_under_one_seed(self):
        from repro.serving.loadgen import (ARRIVAL_STREAM, ROUTER_STREAM,
                                           USER_STREAM)
        assert len({ARRIVAL_STREAM, USER_STREAM, ROUTER_STREAM}) == 3
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7,
                           stream=ARRIVAL_STREAM)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=7,
                           stream=USER_STREAM)
        assert not np.array_equal(a.arrival_times(), b.arrival_times())

    def test_keep_samples_carries_the_latencies(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        out = []
        report = run_load_test(server, sys.dataset, qps=500,
                               num_requests=60, slo_s=5e-3, seed=1,
                               result_out=out, keep_samples=True)
        np.testing.assert_array_equal(np.array(report.samples_s),
                                      out[0].latencies_s())
        assert report.without_samples() == run_load_test(
            InferenceServer(sys.servable), sys.dataset, qps=500,
            num_requests=60, slo_s=5e-3, seed=1)

    def test_report_bounds_match_the_outcomes(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        out = []
        report = run_load_test(server, sys.dataset, qps=500,
                               num_requests=40, slo_s=5e-3, seed=0,
                               result_out=out)
        result = out[0]
        assert report.first_arrival_s == min(o.arrival_s
                                             for o in result.outcomes)
        assert report.last_completion_s == max(o.completion_s
                                               for o in result.outcomes)
        assert report.makespan_s == pytest.approx(
            report.last_completion_s - report.first_arrival_s)

    def test_requests_from_arrivals_user_rows(self):
        from repro.serving.loadgen import requests_from_arrivals
        ds = tiny_system().dataset
        arrivals = np.array([0.0, 0.1, 0.2, 0.3])
        rows = np.array([1, 0, 1, 1])
        requests = requests_from_arrivals(ds, arrivals, batch_index=0,
                                          user_rows=rows)
        assert [r.user_id for r in requests] == [1, 0, 1, 1]
        # shared rows mean byte-identical recurring samples
        np.testing.assert_array_equal(requests[0].batch.dense,
                                      requests[2].batch.dense)
        bulk = ds.batch(2, batch_index=0)
        np.testing.assert_array_equal(requests[1].batch.dense,
                                      bulk.dense[0:1])
        with pytest.raises(ValueError):
            requests_from_arrivals(ds, arrivals, batch_index=0,
                                   user_rows=np.array([0, 1]))

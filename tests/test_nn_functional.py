"""Tests for repro.nn.functional: numerical stability and exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestSigmoid:
    def test_midpoint(self):
        assert F.sigmoid(np.array([0.0], dtype=np.float32))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-10, 10, 41).astype(np.float32)
        np.testing.assert_allclose(F.sigmoid(x) + F.sigmoid(-x),
                                   np.ones_like(x), rtol=1e-6)

    def test_extreme_values_do_not_overflow(self):
        x = np.array([-1e4, 1e4], dtype=np.float32)
        out = F.sigmoid(x)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))

    def test_monotonic(self):
        x = np.linspace(-50, 50, 1001).astype(np.float32)
        y = F.sigmoid(x)
        assert np.all(np.diff(y) >= 0)

    @given(st.floats(min_value=-30, max_value=30))
    @settings(max_examples=50)
    def test_matches_naive_formula_in_safe_range(self, v):
        x = np.array([v], dtype=np.float32)
        naive = 1.0 / (1.0 + np.exp(-v))
        assert F.sigmoid(x)[0] == pytest.approx(naive, rel=1e-5)


class TestLogSigmoid:
    def test_matches_log_of_sigmoid(self):
        x = np.linspace(-20, 20, 81).astype(np.float32)
        np.testing.assert_allclose(F.log_sigmoid(x), np.log(F.sigmoid(x)),
                                   rtol=1e-4, atol=1e-6)

    def test_no_overflow_at_extremes(self):
        x = np.array([-1e4, 1e4], dtype=np.float32)
        out = F.log_sigmoid(x)
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(-1e4)
        assert out[1] == pytest.approx(0.0)


class TestRelu:
    def test_values(self):
        x = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        np.testing.assert_array_equal(F.relu(x), [0.0, 0.0, 3.0])

    def test_grad_masks_negative(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        dy = np.ones_like(x)
        np.testing.assert_array_equal(F.relu_grad(x, dy), [0.0, 0.0, 1.0])

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20)
    def test_idempotent(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n).astype(np.float32)
        np.testing.assert_array_equal(F.relu(F.relu(x)), F.relu(x))


class TestSoftmax:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 7)).astype(np.float32)
        np.testing.assert_allclose(F.softmax(x).sum(axis=-1), np.ones(4),
                                   rtol=1e-6)

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), rtol=1e-5)

    def test_large_inputs_stable(self):
        x = np.array([[1e4, 1e4 - 1.0]], dtype=np.float32)
        out = F.softmax(x)
        assert np.all(np.isfinite(out))


class TestBCEWithLogits:
    def test_matches_naive(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=32).astype(np.float32)
        labels = (rng.random(32) > 0.5).astype(np.float32)
        p = F.sigmoid(logits)
        naive = -np.mean(labels * np.log(p) + (1 - labels) * np.log(1 - p))
        assert F.bce_with_logits(logits, labels) == pytest.approx(naive, rel=1e-4)

    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([100.0, -100.0], dtype=np.float32)
        labels = np.array([1.0, 0.0], dtype=np.float32)
        assert F.bce_with_logits(logits, labels) == pytest.approx(0.0, abs=1e-6)

    def test_wrong_prediction_large_loss(self):
        logits = np.array([100.0], dtype=np.float32)
        labels = np.array([0.0], dtype=np.float32)
        assert F.bce_with_logits(logits, labels) == pytest.approx(100.0, rel=1e-3)

    def test_extreme_logits_finite(self):
        logits = np.array([1e6, -1e6], dtype=np.float32)
        labels = np.array([0.0, 1.0], dtype=np.float32)
        assert np.isfinite(F.bce_with_logits(logits, labels))

    def test_grad_matches_numerical(self):
        from .helpers import numerical_gradient
        rng = np.random.default_rng(2)
        logits = rng.normal(size=8).astype(np.float32)
        labels = (rng.random(8) > 0.5).astype(np.float32)
        analytic = F.bce_with_logits_grad(logits, labels)
        numeric = numerical_gradient(lambda x: F.bce_with_logits(x, labels), logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-5)

    def test_grad_zero_at_match(self):
        logits = np.array([50.0], dtype=np.float32)
        labels = np.array([1.0], dtype=np.float32)
        assert F.bce_with_logits_grad(logits, labels)[0] == pytest.approx(0.0, abs=1e-6)

"""repro: a from-scratch reproduction of Neo/ZionEX — high-performance
distributed training of large-scale deep learning recommendation models
(Mudigere et al., ISCA 2022).

Layering (bottom-up):

* :mod:`repro.nn` — dense layers/optimizers (the PyTorch stand-in)
* :mod:`repro.embedding` — embedding operators + exact sparse optimizers
* :mod:`repro.cache` — software cache / memory hierarchy
* :mod:`repro.sharding` — hybrid sharding schemes, cost model, planner
* :mod:`repro.comms` — simulated collectives + latency model
* :mod:`repro.data` — synthetic CTR data + ingestion pipeline
* :mod:`repro.models` — DLRM assembly + the A1/A2/A3/F1 model zoo
* :mod:`repro.core` — the Neo trainer and the Eq. 1 pipeline model
* :mod:`repro.resilience` — fault injection, retries, crash recovery
* :mod:`repro.perf` — device rooflines and end-to-end throughput model
* :mod:`repro.baselines` — async parameter-server and Zion comparisons
* :mod:`repro.serving` — frozen-model export, micro-batching, SLO serving
* :mod:`repro.planner` — per-table representation planning under budgets
* :mod:`repro.fleet` — multi-replica serving: routing, autoscaling,
  traffic, multi-tenant hosting
* :mod:`repro.metrics` — normalized entropy et al.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "embedding",
    "cache",
    "sharding",
    "comms",
    "data",
    "models",
    "core",
    "resilience",
    "perf",
    "baselines",
    "serving",
    "planner",
    "fleet",
    "metrics",
    "lowp",
]

"""Fig. 11: weak-scaling of training throughput for models A1/A2/A3,
1 to 16 nodes, fixed per-GPU batch, normalized to 8 GPUs (1 node).

Paper result: ~50% scaling efficiency at 128 GPUs for A2, ~40% for A1
(load imbalance: few tables) and A3 (wider dims, heavier AlltoAll).
"""

import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.models import full_spec
from repro.perf import TrainingSetup, plan_imbalance, weak_scaling_curve
from repro.sharding import (CostModelParams, EmbeddingShardingPlanner,
                            PlannerConfig, plan_cost_per_rank)

NODE_COUNTS = [1, 2, 4, 8, 16]
PAPER_EFFICIENCY_128 = {"A1": 0.40, "A2": 0.50, "A3": 0.40}
PER_GPU_BATCH = 512


def imbalance_for(spec, world):
    params = CostModelParams(global_batch=PER_GPU_BATCH * world,
                             world_size=world)
    planner = EmbeddingShardingPlanner(
        PlannerConfig(world_size=world, ranks_per_node=8,
                      partitioner="ldm"), cost_params=params)
    plan = planner.plan(list(spec.tables))
    return plan_imbalance(plan_cost_per_rank(plan, params))


def scaling_table():
    out = {}
    for name in ("A1", "A2", "A3"):
        spec = full_spec(name)
        setup = TrainingSetup(
            spec=spec, topology=PROTOTYPE_TOPOLOGY(1),
            global_batch=PER_GPU_BATCH * 8,
            load_imbalance=imbalance_for(spec, 128))
        out[name] = weak_scaling_curve(setup, NODE_COUNTS)
    return out


def test_fig11_scaling(benchmark, report):
    curves = benchmark.pedantic(scaling_table, rounds=1, iterations=1)
    rows = []
    for name, curve in curves.items():
        base = curve[1]
        for n in NODE_COUNTS:
            eff = curve[n] / (n * base)
            rows.append((name, n * 8, f"{curve[n] / base:.2f}x",
                         f"{eff:.0%}"))
    report("Fig 11: weak-scaling relative throughput (vs 8 GPUs)",
           ["model", "gpus", "rel throughput", "efficiency"], rows)
    for name, curve in curves.items():
        values = [curve[n] for n in NODE_COUNTS]
        # throughput grows monotonically with nodes
        assert all(a < b for a, b in zip(values, values[1:])), name
        # but sublinearly: efficiency at 16 nodes in the paper's band
        eff = curve[16] / (16 * curve[1])
        assert 0.25 < eff < 0.85, (name, eff)
    # A2 scales at least as well as A3 (wider dims hurt A3)
    eff = {name: curve[16] / (16 * curve[1])
           for name, curve in curves.items()}
    assert eff["A2"] >= eff["A3"] * 0.95

"""Fleet-level reports: day records, capacity and overload curves.

Two curves summarize a serving fleet the way Fig. 11 summarizes the
training cluster:

* **capacity vs replicas** (:func:`capacity_sweep`) — goodput at N
  replicas under proportionally scaled overload, normalized by N x the
  single-replica goodput. Routing quality is exactly what this measures:
  a perfect router scales linearly (efficiency 1.0), an oblivious one
  loses goodput to imbalance-induced tail latency;
* **goodput under overload** (:func:`overload_sweep`) — offered load
  swept past fleet capacity at fixed N. With admission shedding the
  goodput curve should *plateau* at capacity rather than collapse into
  queueing — the classic load-shedding signature.

:class:`FleetDayReport` is the autoscaler run record: per-window
observations, scale events, the exactly-merged day-level
:class:`~repro.serving.loadgen.LoadReport` and the replica-hours bill
the static-vs-elastic comparison is decided on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..online.report import render_table
from ..serving.loadgen import LoadReport

__all__ = ["WindowRecord", "ScaleEvent", "FleetDayReport", "CapacityPoint",
           "capacity_sweep", "overload_sweep", "render_table"]


@dataclass(frozen=True)
class WindowRecord:
    """One control window's observation: load, tail, fleet size."""

    index: int
    start_s: float
    num_offered: int
    num_completed: int
    num_shed: int
    p99_s: float
    shed_fraction: float
    active_replicas: int     # serving traffic this window
    billed_replicas: int     # provisioned (serving or warming)


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action and why it fired."""

    t_s: float
    delta: int
    replicas_after: int
    reason: str


@dataclass
class FleetDayReport:
    """The full record of one windowed (autoscaled or static) day."""

    windows: List[WindowRecord]
    events: List[ScaleEvent]
    merged: LoadReport
    replica_seconds: float
    slo_s: float
    warmup_s: float

    @property
    def replica_hours(self) -> float:
        return self.replica_seconds / 3600.0

    @property
    def peak_replicas(self) -> int:
        return max(w.billed_replicas for w in self.windows)

    @property
    def trough_replicas(self) -> int:
        return min(w.billed_replicas for w in self.windows)

    @property
    def slo_held(self) -> bool:
        """Day-level p99 within the SLO."""
        return self.merged.p99_s <= self.slo_s

    def num_scale_ups(self) -> int:
        return sum(1 for e in self.events if e.delta > 0)

    def num_scale_downs(self) -> int:
        return sum(1 for e in self.events if e.delta < 0)

    ROW_HEADER = ["window", "t (s)", "offered", "shed", "p99 ms",
                  "active", "billed"]

    def rows(self) -> List[List[str]]:
        return [[str(w.index), f"{w.start_s:.2f}", str(w.num_offered),
                 str(w.num_shed), f"{w.p99_s * 1e3:.2f}",
                 str(w.active_replicas), str(w.billed_replicas)]
                for w in self.windows]

    def render(self) -> str:
        return render_table(self.ROW_HEADER, self.rows())


@dataclass(frozen=True)
class CapacityPoint:
    """One point of the capacity-vs-replicas curve."""

    replicas: int
    offered_qps: float
    report: LoadReport
    efficiency: float   # goodput / (N * single-replica goodput)

    def row(self) -> List[str]:
        return [str(self.replicas), f"{self.offered_qps:.0f}",
                f"{self.report.goodput_qps:.0f}",
                f"{self.report.p99_s * 1e3:.2f}",
                f"{self.report.shed_fraction * 100:.1f}%",
                f"{self.efficiency:.3f}"]

    ROW_HEADER = ["replicas", "offered qps", "goodput qps", "p99 ms",
                  "shed", "efficiency"]


def capacity_sweep(serve_at: Callable[[int], LoadReport],
                   replica_counts: Sequence[int],
                   per_replica_qps: float) -> List[CapacityPoint]:
    """Goodput at each replica count under proportional offered load.

    ``serve_at(n)`` serves a trace offered at ``n * per_replica_qps``
    through an ``n``-replica fleet and returns its merged report; the
    sweep normalizes every point by N x the N=1 goodput. The N=1 point
    is always measured (prepended if absent) since it anchors the
    efficiency definition.
    """
    counts = sorted(set(replica_counts))
    if counts[0] != 1:
        counts = [1] + counts
    reports = {n: serve_at(n) for n in counts}
    base = reports[1].goodput_qps
    return [CapacityPoint(
        replicas=n, offered_qps=n * per_replica_qps, report=reports[n],
        efficiency=reports[n].goodput_qps / (n * base) if base > 0 else 0.0)
        for n in counts]


def overload_sweep(serve_scaled: Callable[[float], LoadReport],
                   scales: Sequence[float]) -> List[LoadReport]:
    """Reports across offered-load multiples of fleet capacity
    (``serve_scaled(s)`` serves at ``s`` x capacity); the goodput
    plateau past 1.0 is the shedding-vs-collapse story."""
    return [serve_scaled(float(s)) for s in scales]

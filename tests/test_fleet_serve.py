"""ServingFleet tests: parity with the single server, conservation,
heterogeneous placement and per-replica observability.

The anchor invariant is bitwise parity: an N=1 round-robin fleet is the
single-server load test — same trace, same schedule, same report, bit
for bit. Everything the fleet adds (routing, merging, per-replica
naming) must vanish exactly at N=1.
"""

import numpy as np
import pytest

from repro.fleet import FleetTraffic, RouterPolicy, ServingFleet
from repro.obs.metrics import MetricRegistry
from repro.serving import (BatchingPolicy, InferenceServer, ServingPerfModel,
                           run_load_test)

from .helpers import tiny_system


def make_fleet(sys, num_replicas, kind="round_robin", policy=None,
               perfs=None, metrics=None, overhead_s=1e-3):
    if perfs is None:
        perfs = [ServingPerfModel(overhead_s=overhead_s)
                 for _ in range(num_replicas)]
    return ServingFleet(sys.servable, policy=policy or BatchingPolicy(),
                        perfs=perfs, router=RouterPolicy(kind=kind),
                        metrics=metrics)


class TestSingleReplicaParity:
    def test_n1_round_robin_reproduces_the_load_test_bitwise(self):
        sys = tiny_system()
        qps, n, slo = 600.0, 150, 5e-3
        single = run_load_test(
            InferenceServer(sys.servable, BatchingPolicy(),
                            ServingPerfModel(overhead_s=1e-3)),
            sys.dataset, qps=qps, num_requests=n, slo_s=slo, seed=2)
        traffic = FleetTraffic(mean_qps=qps, duration_s=n / qps, seed=2)
        assert traffic.num_requests == n
        fleet = make_fleet(sys, 1)
        result = fleet.serve(traffic.requests(sys.dataset), slo_s=slo,
                             offered_qps=qps)
        assert result.merged.without_samples() == single
        assert result.num_replicas == 1
        assert result.routing.counts == [n]

    def test_every_policy_collapses_at_n1(self):
        sys = tiny_system()
        traffic = FleetTraffic(mean_qps=500.0, duration_s=0.1, seed=0)
        requests = traffic.requests(sys.dataset)
        reports = [
            make_fleet(sys, 1, kind=kind)
            .serve(requests, slo_s=5e-3, offered_qps=500.0).merged
            for kind in ("round_robin", "least_loaded", "power_of_two")]
        assert reports[0] == reports[1] == reports[2]


class TestFleetServe:
    def test_conservation_across_replicas(self):
        sys = tiny_system()
        fleet = make_fleet(
            sys, 3, kind="power_of_two",
            policy=BatchingPolicy(max_batch_size=4, max_queue_depth=8),
            overhead_s=5e-3)
        requests = FleetTraffic(mean_qps=2000.0, duration_s=0.1,
                                seed=1).requests(sys.dataset)
        result = fleet.serve(requests, slo_s=5e-3, offered_qps=2000.0)
        merged = result.merged
        assert merged.num_offered == len(requests)
        assert merged.num_completed + merged.num_shed == len(requests)
        assert sum(r.num_offered for r in result.per_replica) \
            == len(requests)
        # replica shares of the offered rate sum back to the fleet rate
        assert sum(r.offered_qps for r in result.per_replica) \
            == pytest.approx(2000.0)
        assert len(merged.samples_s) == merged.num_completed

    def test_fleet_is_deterministic(self):
        sys = tiny_system()
        requests = FleetTraffic(mean_qps=1000.0, duration_s=0.1,
                                seed=3).requests(sys.dataset)
        a = make_fleet(sys, 4, kind="power_of_two") \
            .serve(requests, slo_s=5e-3, offered_qps=1000.0)
        b = make_fleet(sys, 4, kind="power_of_two") \
            .serve(requests, slo_s=5e-3, offered_qps=1000.0)
        assert a.merged == b.merged
        assert a.routing.replica_of == b.routing.replica_of

    def test_active_subset_leaves_inactive_replicas_idle(self):
        sys = tiny_system()
        fleet = make_fleet(sys, 4)
        requests = FleetTraffic(mean_qps=400.0, duration_s=0.1,
                                seed=0).requests(sys.dataset)
        result = fleet.serve(requests, slo_s=5e-3, offered_qps=400.0,
                             active=[0, 2])
        assert result.per_replica[1].num_offered == 0
        assert result.per_replica[3].num_offered == 0
        assert result.routing.counts[1] == result.routing.counts[3] == 0
        assert result.merged.num_offered == len(requests)

    def test_keep_samples_false_strips_samples(self):
        sys = tiny_system()
        fleet = make_fleet(sys, 2)
        requests = FleetTraffic(mean_qps=300.0, duration_s=0.05,
                                seed=0).requests(sys.dataset)
        result = fleet.serve(requests, slo_s=5e-3, offered_qps=300.0,
                             keep_samples=False)
        assert result.merged.samples_s is None
        assert all(r.samples_s is None for r in result.per_replica)

    def test_responses_match_the_single_server(self):
        # routing moves requests between replicas of the *same* frozen
        # model: every response must be identical to serving alone
        sys = tiny_system()
        requests = FleetTraffic(mean_qps=300.0, duration_s=0.05,
                                seed=5).requests(sys.dataset)
        fleet = make_fleet(sys, 3, kind="power_of_two")
        result = fleet.serve(requests, slo_s=5e-3, offered_qps=300.0)
        solo = InferenceServer(sys.servable, BatchingPolicy(),
                               ServingPerfModel(overhead_s=1e-3)) \
            .serve(requests)
        fleet_responses = {}
        for res in result.results:
            fleet_responses.update(res.responses)
        assert set(fleet_responses) == set(solo.responses)
        for rid, resp in solo.responses.items():
            np.testing.assert_allclose(fleet_responses[rid], resp,
                                       rtol=1e-6, atol=1e-7)


class TestHeterogeneousFleet:
    def test_least_loaded_favors_the_faster_platform(self):
        sys = tiny_system()
        perfs = [ServingPerfModel(overhead_s=1e-3),
                 ServingPerfModel(overhead_s=8e-3)]
        fleet = make_fleet(sys, 2, kind="least_loaded", perfs=perfs)
        requests = FleetTraffic(mean_qps=3000.0, duration_s=0.2,
                                seed=0).requests(sys.dataset)
        result = fleet.serve(requests, slo_s=0.05, offered_qps=3000.0)
        counts = result.routing.counts
        assert counts[0] > 2 * counts[1] > 0

    def test_capacity_sums_active_replicas(self):
        sys = tiny_system()
        perfs = [ServingPerfModel(overhead_s=1e-3),
                 ServingPerfModel(overhead_s=1e-3)]
        fleet = make_fleet(sys, 2, perfs=perfs)
        both = fleet.capacity_qps(batch_size=16, nnz_per_sample=9.0)
        one = fleet.capacity_qps(batch_size=16, nnz_per_sample=9.0,
                                 active=[0])
        assert both == pytest.approx(2 * one)


class TestObservability:
    def test_replicas_scope_their_metrics(self):
        sys = tiny_system()
        registry = MetricRegistry()
        fleet = make_fleet(sys, 2, metrics=registry)
        requests = FleetTraffic(mean_qps=500.0, duration_s=0.1,
                                seed=0).requests(sys.dataset)
        fleet.serve(requests, slo_s=5e-3, offered_qps=500.0)
        names = {m.name for m in registry.metrics()}
        assert "replica0.serving.requests" in names
        assert "replica1.serving.requests" in names
        # an anonymous (unnamed) server still uses the bare prefix
        assert not any(n.startswith("serving.") for n in names)


class TestFleetValidation:
    def test_replica_count_conflicts(self):
        sys = tiny_system()
        with pytest.raises(ValueError):
            ServingFleet(sys.servable, num_replicas=3,
                         perfs=[ServingPerfModel(), ServingPerfModel()])
        with pytest.raises(ValueError):
            ServingFleet(sys.servable, num_replicas=0)

    def test_serve_rejects_bad_slo(self):
        sys = tiny_system()
        fleet = make_fleet(sys, 1)
        with pytest.raises(ValueError):
            fleet.serve([], slo_s=0.0, offered_qps=1.0)

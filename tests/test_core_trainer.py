"""Integration tests for the Neo trainer: every sharding scheme must match
the single-process reference DLRM, and distributed invariants must hold."""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology, QuantizedCommsConfig
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import (EmbeddingTableConfig, RowWiseAdaGrad,
                             SparseAdaGrad, SparseSGD)
from repro.models import DLRM, DLRMConfig
from repro.sharding import (EmbeddingShardingPlanner, PlannerConfig,
                            ShardingPlan, ShardingScheme, shard_table)


def make_config(num_tables=3, h=64, d=8):
    tables = tuple(EmbeddingTableConfig(f"t{i}", h, d, avg_pooling=3.0)
                   for i in range(num_tables))
    return DLRMConfig(dense_dim=4, bottom_mlp=(16, d), tables=tables,
                      top_mlp=(16,))


def make_plan(config, world, scheme):
    plan = ShardingPlan(world_size=world)
    for i, t in enumerate(config.tables):
        if scheme == ShardingScheme.TABLE_WISE:
            ranks = [i % world]
        else:
            ranks = list(range(world))
        plan.tables[t.name] = shard_table(t, scheme, ranks)
    plan.validate()
    return plan


def make_trainer(config, plan, world, sparse_opt=None, comms=None, seed=0,
                 lr=0.1):
    topo = ClusterTopology(num_nodes=1, gpus_per_node=world)
    return NeoTrainer(
        config, plan, topo,
        dense_optimizer=lambda params: nn.SGD(params, lr=lr),
        sparse_optimizer=sparse_opt or SparseSGD(lr=lr),
        comms_config=comms, seed=seed)


def train_reference(config, batches, steps, seed=0, lr=0.1,
                    sparse_opt=None):
    model = DLRM(config, seed=seed)
    dense_opt = nn.SGD(model.dense_parameters(), lr=lr)
    sparse = sparse_opt or SparseSGD(lr=lr)
    losses = []
    for b in batches[:steps]:
        losses.append(model.train_step(b, dense_opt, sparse))
    return model, losses


def dataset_for(config, seed=0):
    return SyntheticCTRDataset(config.tables, dense_dim=config.dense_dim,
                               seed=seed)


SCHEMES = [ShardingScheme.TABLE_WISE, ShardingScheme.ROW_WISE,
           ShardingScheme.COLUMN_WISE, ShardingScheme.DATA_PARALLEL]


@pytest.mark.parametrize("scheme", SCHEMES)
class TestSchemeEquivalence:
    """Each scheme's distributed step == the single-process step."""

    def test_matches_reference_after_training(self, scheme):
        config = make_config()
        world = 4
        ds = dataset_for(config)
        batches = ds.batches(16, 4)
        reference, ref_losses = train_reference(config, batches, steps=4)

        plan = make_plan(config, world, scheme)
        trainer = make_trainer(config, plan, world)
        dist_losses = [trainer.train_step(b.split(world)) for b in batches]

        np.testing.assert_allclose(dist_losses, ref_losses, rtol=1e-4,
                                   atol=1e-6)
        exported = trainer.to_local_model()
        for t in config.tables:
            np.testing.assert_allclose(
                exported.embeddings.table(t.name).weight,
                reference.embeddings.table(t.name).weight,
                rtol=1e-4, atol=1e-6)
        for got, want in zip(exported.dense_parameters(),
                             reference.dense_parameters()):
            np.testing.assert_allclose(got.data, want.data, rtol=1e-4,
                                       atol=1e-5)

    def test_replicas_stay_in_sync(self, scheme):
        config = make_config()
        world = 4
        plan = make_plan(config, world, scheme)
        trainer = make_trainer(config, plan, world)
        ds = dataset_for(config)
        for b in ds.batches(16, 3):
            trainer.train_step(b.split(world))
        assert trainer.replicas_in_sync()


class TestAdaGradEquivalence:
    """The exact sparse optimizer claim (4.1.2): non-linear optimizers stay
    equivalent under distribution because duplicates merge before update."""

    @pytest.mark.parametrize("scheme", [ShardingScheme.TABLE_WISE,
                                        ShardingScheme.ROW_WISE])
    def test_adagrad(self, scheme):
        config = make_config(num_tables=2)
        world = 2
        ds = dataset_for(config)
        batches = ds.batches(8, 3)
        reference, _ = train_reference(config, batches, steps=3,
                                       sparse_opt=SparseAdaGrad(lr=0.1))
        plan = make_plan(config, world, scheme)
        trainer = make_trainer(config, plan, world,
                               sparse_opt=SparseAdaGrad(lr=0.1))
        for b in batches:
            trainer.train_step(b.split(world))
        for t in config.tables:
            np.testing.assert_allclose(
                trainer.gather_table(t.name),
                reference.embeddings.table(t.name).weight,
                rtol=1e-4, atol=1e-6)

    def test_rowwise_adagrad_with_rowwise_sharding(self):
        """The F1 recipe: row-wise sharded table + row-wise AdaGrad."""
        config = make_config(num_tables=1, h=32)
        world = 4
        ds = dataset_for(config)
        batches = ds.batches(8, 3)
        reference, _ = train_reference(config, batches, steps=3,
                                       sparse_opt=RowWiseAdaGrad(lr=0.1))
        plan = make_plan(config, world, ShardingScheme.ROW_WISE)
        trainer = make_trainer(config, plan, world,
                               sparse_opt=RowWiseAdaGrad(lr=0.1))
        for b in batches:
            trainer.train_step(b.split(world))
        np.testing.assert_allclose(
            trainer.gather_table(config.tables[0].name),
            reference.embeddings.table(config.tables[0].name).weight,
            rtol=1e-4, atol=1e-6)


class TestWorkerCountInvariance:
    """Section 4.1.2: results do not depend on the number of workers."""

    @pytest.mark.parametrize("scheme", [ShardingScheme.TABLE_WISE,
                                        ShardingScheme.ROW_WISE])
    def test_2_vs_4_workers(self, scheme):
        config = make_config()
        ds = dataset_for(config)
        batches = ds.batches(16, 3)
        tables = {}
        for world in (2, 4):
            plan = make_plan(config, world, scheme)
            trainer = make_trainer(config, plan, world,
                                   sparse_opt=SparseAdaGrad(lr=0.1))
            for b in batches:
                trainer.train_step(b.split(world))
            tables[world] = {t.name: trainer.gather_table(t.name)
                             for t in config.tables}
        for name in tables[2]:
            np.testing.assert_allclose(tables[2][name], tables[4][name],
                                       rtol=1e-4, atol=1e-6)

    def test_run_to_run_bitwise(self):
        """Same config, same seed, two runs: bitwise identical."""
        config = make_config()
        ds = dataset_for(config)
        batches = ds.batches(16, 2)
        results = []
        for _ in range(2):
            plan = make_plan(config, 2, ShardingScheme.TABLE_WISE)
            trainer = make_trainer(config, plan, 2,
                                   sparse_opt=SparseAdaGrad(lr=0.1))
            for b in batches:
                trainer.train_step(b.split(2))
            results.append({t.name: trainer.gather_table(t.name)
                            for t in config.tables})
        for name in results[0]:
            assert np.array_equal(results[0][name], results[1][name])


class TestMixedPlan:
    def test_planner_produced_plan_trains(self):
        """End-to-end: planner chooses mixed schemes, training still
        matches the reference."""
        tables = tuple([
            EmbeddingTableConfig("small", 8, 8, avg_pooling=2.0),   # DP
            EmbeddingTableConfig("big", 128, 8, avg_pooling=3.0),   # RW
            EmbeddingTableConfig("mid", 64, 8, avg_pooling=3.0),    # TW
        ])
        config = DLRMConfig(dense_dim=4, bottom_mlp=(16, 8), tables=tables,
                            top_mlp=(16,))
        world = 4
        planner = EmbeddingShardingPlanner(PlannerConfig(
            world_size=world, ranks_per_node=world, dp_threshold_rows=10,
            device_memory_bytes=128 * 8 * 4 * 0.6))  # force 'big' row-wise
        plan = planner.plan(list(tables))
        assert plan.scheme_of("small") == ShardingScheme.DATA_PARALLEL
        assert plan.scheme_of("big") == ShardingScheme.ROW_WISE

        ds = dataset_for(config)
        batches = ds.batches(16, 3)
        reference, ref_losses = train_reference(config, batches, steps=3)
        trainer = make_trainer(config, plan, world)
        losses = [trainer.train_step(b.split(world)) for b in batches]
        np.testing.assert_allclose(losses, ref_losses, rtol=1e-4, atol=1e-6)

    def test_quantized_comms_still_converges(self):
        """FP16/BF16 wire precision must not break learning (5.3.2)."""
        config = make_config()
        world = 2
        plan = make_plan(config, world, ShardingScheme.TABLE_WISE)
        trainer = make_trainer(config, plan, world,
                               comms=QuantizedCommsConfig.paper_recipe())
        ds = dataset_for(config)
        losses = [trainer.train_step(ds.batch(32, i).split(world))
                  for i in range(30)]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_quantized_comms_close_to_fp32(self):
        config = make_config()
        world = 2
        ds = dataset_for(config)
        batches = ds.batches(16, 3)
        results = {}
        for name, comms in (("fp32", None),
                            ("quant", QuantizedCommsConfig.paper_recipe())):
            plan = make_plan(config, world, ShardingScheme.TABLE_WISE)
            trainer = make_trainer(config, plan, world, comms=comms)
            losses = [trainer.train_step(b.split(world)) for b in batches]
            results[name] = losses
        np.testing.assert_allclose(results["quant"], results["fp32"],
                                   rtol=5e-3)


class TestValidation:
    def test_world_size_mismatch(self):
        config = make_config()
        plan = make_plan(config, 4, ShardingScheme.TABLE_WISE)
        topo = ClusterTopology(num_nodes=1, gpus_per_node=2)
        with pytest.raises(ValueError):
            NeoTrainer(config, plan, topo,
                       dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
                       sparse_optimizer=SparseSGD(lr=0.1))

    def test_missing_table_in_plan(self):
        config = make_config(num_tables=2)
        plan = ShardingPlan(world_size=2)
        plan.tables["t0"] = shard_table(config.tables[0],
                                        ShardingScheme.TABLE_WISE, [0])
        topo = ClusterTopology(num_nodes=1, gpus_per_node=2)
        with pytest.raises(ValueError, match="missing"):
            NeoTrainer(config, plan, topo,
                       dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
                       sparse_optimizer=SparseSGD(lr=0.1))

    def test_rw_mean_pooling_rejected(self):
        tables = (EmbeddingTableConfig("t0", 64, 8, pooling_mode="mean"),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(16, 8), tables=tables,
                            top_mlp=(16,))
        plan = ShardingPlan(world_size=2)
        plan.tables["t0"] = shard_table(tables[0], ShardingScheme.ROW_WISE,
                                        [0, 1])
        topo = ClusterTopology(num_nodes=1, gpus_per_node=2)
        with pytest.raises(ValueError, match="sum pooling"):
            NeoTrainer(config, plan, topo,
                       dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
                       sparse_optimizer=SparseSGD(lr=0.1))

    def test_wrong_batch_count(self):
        config = make_config()
        plan = make_plan(config, 2, ShardingScheme.TABLE_WISE)
        trainer = make_trainer(config, plan, 2)
        ds = dataset_for(config)
        with pytest.raises(ValueError):
            trainer.train_step([ds.batch(4)])

    def test_comms_traffic_logged(self):
        config = make_config()
        plan = make_plan(config, 2, ShardingScheme.TABLE_WISE)
        trainer = make_trainer(config, plan, 2)
        ds = dataset_for(config)
        trainer.train_step(ds.batch(8).split(2))
        log = trainer.pg.log
        assert log.calls.get("all_reduce", 0) > 0
        assert any("all_to_all" in k for k in log.calls)
        assert log.total_seconds > 0


class TestTracingParity:
    """Instrumentation must be read-only: a traced run and an untraced run
    produce bit-identical parameters and losses."""

    def _train(self, trace):
        from repro.obs import MetricRegistry
        config = make_config()
        world = 4
        plan = make_plan(config, world, ShardingScheme.TABLE_WISE)
        topo = ClusterTopology(num_nodes=1, gpus_per_node=world)
        trainer = NeoTrainer(
            config, plan, topo,
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1), seed=0,
            trace=trace, metrics=MetricRegistry())
        ds = dataset_for(config)
        losses = [trainer.train_step(b.split(world))
                  for b in ds.batches(16, 3)]
        return trainer, losses

    def test_traced_run_is_bit_identical(self):
        from repro.obs import Tracer
        plain, plain_losses = self._train(trace=None)
        traced, traced_losses = self._train(trace=Tracer(clock="logical"))

        assert plain_losses == traced_losses  # exact, not approx
        for t in plain.config.tables:
            np.testing.assert_array_equal(plain.gather_table(t.name),
                                          traced.gather_table(t.name))
        for got, want in zip(traced.to_local_model().dense_parameters(),
                             plain.to_local_model().dense_parameters()):
            np.testing.assert_array_equal(got.data, want.data)
        # and the traced run actually recorded the phase taxonomy
        agg = traced.tracer.trace.aggregate()
        assert "trainer.iteration" in agg
        assert agg["trainer.iteration"].count == 3

"""Stateless numerical primitives shared by layers and losses.

Everything operates on ``float32`` arrays and is written to be numerically
stable (log-sum-exp style sigmoid/BCE) so that normalized-entropy curves in
the Fig. 10 reproduction are not polluted by overflow artifacts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "relu_grad",
    "sigmoid",
    "log_sigmoid",
    "softmax",
    "bce_with_logits",
    "bce_with_logits_grad",
    "bce_with_logits_stacked",
    "bce_with_logits_grad_stacked",
]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Gradient of ReLU w.r.t. its input, given upstream gradient ``dy``."""
    return np.where(x > 0.0, dy, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float32)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """log(sigmoid(x)) computed without overflow for large |x|."""
    return np.where(x >= 0, -np.log1p(np.exp(-np.abs(x))),
                    x - np.log1p(np.exp(-np.abs(x))))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def bce_with_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy from raw logits (stable formulation).

    Matches ``torch.nn.BCEWithLogitsLoss`` semantics, which is the loss the
    DLRM reference implementation trains CTR models with.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    # max(x, 0) - x*y + log(1 + exp(-|x|))
    loss = np.maximum(logits, 0.0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
    return float(np.mean(loss))


def bce_with_logits_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(mean BCE)/d(logits) = (sigmoid(x) - y) / N."""
    n = logits.size
    return ((sigmoid(logits) - labels) / n).astype(np.float32)


def bce_with_logits_stacked(logits: np.ndarray,
                            labels: np.ndarray) -> np.ndarray:
    """Per-row mean BCE over the last axis for rank-stacked ``(R, B)``
    logits; row ``r`` is bitwise :func:`bce_with_logits` of slice ``r``."""
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    loss = np.maximum(logits, 0.0) - logits * labels \
        + np.log1p(np.exp(-np.abs(logits)))
    return np.mean(loss, axis=-1)


def bce_with_logits_grad_stacked(logits: np.ndarray,
                                 labels: np.ndarray) -> np.ndarray:
    """Per-row gradient for ``(R, B)`` logits: each row divides by its
    own batch size, matching the unstacked per-rank gradient bitwise."""
    n = logits.shape[-1]
    return ((sigmoid(logits) - labels) / n).astype(np.float32)

"""Software-managed memory hierarchy: the unified :class:`RowCache`
protocol, set-associative row cache, UVM page cache baseline,
frequency-aware chunked hot store with pipelined prefetch, and
HBM/DDR/SSD tier modelling (paper Section 4.1.3)."""

from .api import CACHE_KINDS, CacheStats, RowCache, RowCacheBase, make_cache
from .backing import ArrayBackingStore
from .freq_aware import FreqAwareCache, PrefetchPipeline
from .hierarchy import (ZIONEX_NODE_HIERARCHY, CachedEmbeddingTable,
                        MemoryHierarchy, MemoryTier)
from .mixed_precision import (LowPrecisionBackingStore,
                              MixedPrecisionEmbeddingTable)
from .set_associative import SetAssociativeCache
from .uvm import UVMPageCache

__all__ = [
    "ArrayBackingStore",
    "RowCache",
    "RowCacheBase",
    "CacheStats",
    "CACHE_KINDS",
    "make_cache",
    "SetAssociativeCache",
    "UVMPageCache",
    "FreqAwareCache",
    "PrefetchPipeline",
    "MemoryTier",
    "MemoryHierarchy",
    "CachedEmbeddingTable",
    "ZIONEX_NODE_HIERARCHY",
    "LowPrecisionBackingStore",
    "MixedPrecisionEmbeddingTable",
]

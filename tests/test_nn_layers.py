"""Tests for dense layers: gradient checks, shapes, parameter plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F

from .helpers import numerical_gradient


def scalar_loss(y):
    """Simple deterministic scalar reduction for gradient checking."""
    return float(np.sum(y.astype(np.float64) ** 2) / 2.0)


def scalar_loss_grad(y):
    return y.astype(np.float32)


class TestParameter:
    def test_accumulates(self):
        p = nn.Parameter(np.zeros(3))
        p.accumulate_grad(np.ones(3, dtype=np.float32))
        p.accumulate_grad(np.ones(3, dtype=np.float32))
        np.testing.assert_array_equal(p.grad, [2.0, 2.0, 2.0])

    def test_shape_mismatch_raises(self):
        p = nn.Parameter(np.zeros(3))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.ones(4, dtype=np.float32))

    def test_zero_grad(self):
        p = nn.Parameter(np.zeros(2))
        p.accumulate_grad(np.ones(2, dtype=np.float32))
        p.zero_grad()
        assert p.grad is None

    def test_copy_is_deep(self):
        p = nn.Parameter(np.ones(2))
        q = p.copy()
        q.data += 1.0
        np.testing.assert_array_equal(p.data, [1.0, 1.0])

    def test_casts_to_float32(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float64))
        assert p.data.dtype == np.float32


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        y = layer.forward(np.zeros((7, 5), dtype=np.float32))
        assert y.shape == (7, 3)

    def test_forward_matches_matmul(self):
        rng = np.random.default_rng(1)
        layer = nn.Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4)).astype(np.float32)
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer.forward(x), expected, rtol=1e-6)

    def test_input_gradient_check(self):
        rng = np.random.default_rng(2)
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4)).astype(np.float32)

        def f(xv):
            return scalar_loss(layer.forward(xv))

        y = layer.forward(x)
        dx = layer.backward(scalar_loss_grad(y))
        np.testing.assert_allclose(dx, numerical_gradient(f, x), rtol=2e-2,
                                   atol=1e-3)

    def test_weight_gradient_check(self):
        rng = np.random.default_rng(3)
        layer = nn.Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)

        def f(w):
            saved = layer.weight.data
            layer.weight.data = w.astype(np.float32)
            out = scalar_loss(layer.forward(x))
            layer.weight.data = saved
            return out

        y = layer.forward(x)
        layer.zero_grad()
        layer.backward(scalar_loss_grad(y))
        np.testing.assert_allclose(layer.weight.grad,
                                   numerical_gradient(f, layer.weight.data),
                                   rtol=2e-2, atol=1e-3)

    def test_bias_gradient_is_column_sum(self):
        rng = np.random.default_rng(4)
        layer = nn.Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3)).astype(np.float32)
        layer.forward(x)
        dy = rng.normal(size=(5, 2)).astype(np.float32)
        layer.backward(dy)
        np.testing.assert_allclose(layer.bias.grad, dy.sum(axis=0), rtol=1e-5)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_backward_before_forward_raises(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2), dtype=np.float32))

    def test_flops_per_sample(self):
        layer = nn.Linear(10, 20, rng=np.random.default_rng(0))
        assert layer.flops_per_sample() == 2 * 10 * 20


class TestActivations:
    def test_relu_gradient_check(self):
        rng = np.random.default_rng(5)
        layer = nn.ReLU()
        # keep inputs away from the kink at 0
        x = rng.normal(size=(3, 4)).astype(np.float32)
        x[np.abs(x) < 0.1] = 0.5
        y = layer.forward(x)
        dx = layer.backward(scalar_loss_grad(y))
        np.testing.assert_allclose(
            dx, numerical_gradient(lambda v: scalar_loss(F.relu(v)), x),
            rtol=2e-2, atol=1e-3)

    def test_sigmoid_gradient_check(self):
        rng = np.random.default_rng(6)
        layer = nn.Sigmoid()
        x = rng.normal(size=(3, 4)).astype(np.float32)
        y = layer.forward(x)
        dx = layer.backward(scalar_loss_grad(y))
        np.testing.assert_allclose(
            dx, numerical_gradient(lambda v: scalar_loss(F.sigmoid(v)), x),
            rtol=2e-2, atol=1e-3)

    def test_identity_passthrough(self):
        layer = nn.Identity()
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)


class TestMLP:
    def test_structure(self):
        mlp = nn.MLP([8, 16, 4, 1], rng=np.random.default_rng(0))
        linears = [l for l in mlp.layers if isinstance(l, nn.Linear)]
        assert [l.in_features for l in linears] == [8, 16, 4]
        assert [l.out_features for l in linears] == [16, 4, 1]

    def test_no_final_activation_by_default(self):
        mlp = nn.MLP([4, 4], rng=np.random.default_rng(0))
        assert isinstance(mlp.layers[-1], nn.Linear)

    def test_final_activation_options(self):
        mlp = nn.MLP([4, 4], final_activation="sigmoid",
                      rng=np.random.default_rng(0))
        assert isinstance(mlp.layers[-1], nn.Sigmoid)
        mlp = nn.MLP([4, 4], final_activation="relu",
                      rng=np.random.default_rng(0))
        assert isinstance(mlp.layers[-1], nn.ReLU)

    def test_invalid_final_activation(self):
        with pytest.raises(ValueError):
            nn.MLP([4, 4], final_activation="tanh")

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            nn.MLP([4])

    def test_end_to_end_gradient_check(self):
        rng = np.random.default_rng(7)
        mlp = nn.MLP([5, 8, 1], rng=rng)
        x = rng.normal(size=(3, 5)).astype(np.float32)

        def f(xv):
            return scalar_loss(mlp.forward(xv))

        y = mlp.forward(x)
        dx = mlp.backward(scalar_loss_grad(y))
        np.testing.assert_allclose(dx, numerical_gradient(f, x), rtol=3e-2,
                                   atol=1e-3)

    def test_num_parameters(self):
        mlp = nn.MLP([4, 8, 2], rng=np.random.default_rng(0))
        expected = 4 * 8 + 8 + 8 * 2 + 2
        assert mlp.num_parameters() == expected

    def test_flops_per_sample(self):
        mlp = nn.MLP([4, 8, 2], rng=np.random.default_rng(0))
        assert mlp.flops_per_sample() == 2 * (4 * 8 + 8 * 2)

    @given(st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_output_shape_property(self, batch, width):
        mlp = nn.MLP([width, width * 2, 1], rng=np.random.default_rng(0))
        x = np.zeros((batch, width), dtype=np.float32)
        assert mlp.forward(x).shape == (batch, 1)

    def test_deterministic_init(self):
        a = nn.MLP([4, 4], rng=np.random.default_rng(42))
        b = nn.MLP([4, 4], rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.layers[0].weight.data,
                                      b.layers[0].weight.data)


class TestLoss:
    def test_bce_loss_backward_matches_functional(self):
        rng = np.random.default_rng(8)
        loss = nn.BCEWithLogitsLoss()
        logits = rng.normal(size=6).astype(np.float32)
        labels = (rng.random(6) > 0.5).astype(np.float32)
        loss.forward(logits, labels)
        np.testing.assert_allclose(loss.backward(),
                                   F.bce_with_logits_grad(logits, labels))

    def test_shape_mismatch_raises(self):
        loss = nn.BCEWithLogitsLoss()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3, dtype=np.float32),
                         np.zeros(4, dtype=np.float32))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            nn.BCEWithLogitsLoss().backward()

"""Platform-demand derivation (paper Table 1).

Table 1 states what a DLRM training platform must provision; this module
*derives* those rows from a model spec and a target throughput, closing
the loop: the paper's headline requirements follow from the model zoo's
characteristics at around a million queries per second.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.zoo import ModelSpec

__all__ = ["PlatformDemand", "derive_demand", "TABLE1_REFERENCE"]

# Table 1 verbatim (lower bounds)
TABLE1_REFERENCE = {
    "total_compute_flops": 1e15,            # 1+ PF/s
    "total_memory_bytes": 1e12,             # 1+ TB
    "total_memory_bw": 100e12,              # 100+ TB/s
    "injection_bw_per_worker": 100e9,       # 100+ GB/s
    "bisection_bw": 1e12,                   # 1+ TB/s
}


@dataclass(frozen=True)
class PlatformDemand:
    """Derived demand for training ``spec`` at ``target_qps``."""

    total_compute_flops: float
    total_memory_bytes: float
    total_memory_bw: float
    injection_bw_per_worker: float
    bisection_bw: float


def derive_demand(spec: ModelSpec, target_qps: float = 1e6,
                  num_workers: int = 128) -> PlatformDemand:
    """Work backwards from throughput to platform requirements.

    * compute: MLP FLOPs/sample (fwd+bwd) x QPS;
    * memory capacity: FP32 embedding weights;
    * memory bandwidth: embedding rows touched/s x 3 (read, read-modify-
      write on update);
    * injection: each worker's share of the pooled-embedding AlltoAll both
      directions plus gradient AllReduce;
    * bisection: half the workers' injection crossing the cut.
    """
    if target_qps <= 0 or num_workers <= 0:
        raise ValueError("target_qps and num_workers must be positive")
    compute = spec.mlp_flops_per_sample() * target_qps
    memory = float(spec.embedding_bytes())
    total_l = sum(t.avg_pooling for t in spec.tables)
    avg_d = spec.avg_embedding_dim
    memory_bw = target_qps * total_l * avg_d * 4 * 3
    sum_d = sum(t.embedding_dim for t in spec.tables)
    # pooled fwd + bwd alltoall per sample, plus amortized allreduce
    alltoall_rate = 2 * target_qps * sum_d * 4 / num_workers
    iterations_per_s = target_qps / 65536.0
    allreduce_rate = 2 * spec.num_mlp_parameters * 4 * iterations_per_s
    injection = alltoall_rate + allreduce_rate
    bisection = injection * num_workers / 2
    return PlatformDemand(
        total_compute_flops=compute,
        total_memory_bytes=memory,
        total_memory_bw=memory_bw,
        injection_bw_per_worker=injection,
        bisection_bw=bisection,
    )

"""Dynamic micro-batching for the inference request path.

Single-user recommendation requests are tiny — one sample, a handful of
ids per feature — while every kernel in this repo (arena gather, GEMM)
only approaches its bandwidth/compute ceiling at batch width. The
batcher closes that gap: requests queue briefly and are coalesced into
one forward pass, trading a bounded amount of waiting for a large
throughput win (the classic dynamic-batching policy of inference
servers; cf. MP-Rec's observation that recommendation inference is
dominated by batching policy and lookup bandwidth).

The policy has three knobs:

* ``max_batch_size`` — dispatch immediately once this many requests
  wait (the arena-kernel-sized batch);
* ``max_wait_s`` — never hold the *oldest* waiting request longer than
  this while the server is free (tail-latency bound);
* ``max_queue_depth`` — admission control: arrivals beyond this many
  waiting requests are shed at the door instead of building an
  unbounded queue (load shedding under overload). Shed requests are
  first-class citizens of the stats, never silently dropped.

Everything runs in *virtual time*: requests carry arrival timestamps,
service times come from a caller-supplied model (the perf-model-backed
:class:`repro.serving.server.ServingPerfModel` in production), and the
planner is a deterministic discrete-event loop — the same arrival trace
always yields the same schedule, which is what makes the SLO benchmarks
reproducible and the hypothesis fuzz meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..data.datagen import MiniBatch

__all__ = ["ADMISSION_KINDS", "BatchingPolicy", "InferenceRequest",
           "ScheduledBatch", "BatchPlan", "MicroBatcher",
           "MultiTenantBatcher"]


ADMISSION_KINDS = ("depth", "predicted")


@dataclass(frozen=True)
class BatchingPolicy:
    """Dispatch and admission knobs of the micro-batcher.

    ``admission`` picks the shedding rule: ``"depth"`` (the default)
    sheds arrivals once ``max_queue_depth`` requests wait; ``"predicted"``
    additionally sheds an arrival when its perf-model-predicted
    completion — existing queue served FIFO at full batch width starting
    from ``max(server_free, arrival)`` — would land past
    ``arrival + deadline_s``. Predicted admission sheds exactly the
    requests that were going to miss anyway, so goodput stays pinned at
    capacity under overload instead of collapsing into queueing.
    """

    max_batch_size: int = 64
    max_wait_s: float = 2e-3
    max_queue_depth: int = 1024
    admission: str = "depth"
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.admission not in ADMISSION_KINDS:
            raise ValueError(f"admission must be one of {ADMISSION_KINDS}, "
                             f"got {self.admission!r}")
        if self.admission == "predicted":
            if self.deadline_s is None or self.deadline_s <= 0:
                raise ValueError("predicted admission needs a positive "
                                 "deadline_s")


@dataclass(frozen=True)
class InferenceRequest:
    """One user request: a (usually single-sample) batch plus arrival time.

    ``user_id`` tags the originating user when the trace comes from a
    Zipf user population (fleet traffic); ``None`` for anonymous
    flat-Poisson traces. ``tenant`` names the model the request targets
    on a multi-tenant fleet (``None`` on single-model paths).
    """

    request_id: int
    arrival_s: float
    batch: MiniBatch
    user_id: Optional[int] = None
    tenant: Optional[str] = None

    @property
    def num_samples(self) -> int:
        return self.batch.batch_size


@dataclass
class ScheduledBatch:
    """One dispatched batch in the virtual-time schedule.

    ``trigger`` records why it was cut: ``"full"`` (max_batch_size
    reached), ``"deadline"`` (oldest request hit max_wait) or
    ``"drain"`` (no further arrivals, queue flushed).
    """

    requests: List[InferenceRequest]
    dispatch_s: float
    completion_s: float
    trigger: str

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_samples(self) -> int:
        return sum(r.num_samples for r in self.requests)

    @property
    def service_s(self) -> float:
        return self.completion_s - self.dispatch_s


@dataclass
class BatchPlan:
    """The complete deterministic schedule for one arrival trace."""

    batches: List[ScheduledBatch] = field(default_factory=list)
    shed: List[InferenceRequest] = field(default_factory=list)

    @property
    def num_offered(self) -> int:
        return self.num_completed + self.num_shed

    @property
    def num_completed(self) -> int:
        return sum(b.num_requests for b in self.batches)

    @property
    def num_shed(self) -> int:
        return len(self.shed)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion (0 for an empty plan)."""
        if not self.batches:
            return 0.0
        first = min(r.arrival_s for b in self.batches for r in b.requests)
        return self.batches[-1].completion_s - first

    def latencies_s(self) -> List[float]:
        """Per-completed-request latency, in request-id order."""
        out = []
        for b in self.batches:
            out.extend((r.request_id, b.completion_s - r.arrival_s)
                       for r in b.requests)
        return [lat for _, lat in sorted(out)]


class MicroBatcher:
    """Deterministic discrete-event dynamic batcher.

    :meth:`plan` replays an arrival trace against a service-time model
    and returns the full :class:`BatchPlan`. The loop alternates between
    two event kinds — "next arrival" and "next dispatch" — always taking
    the earlier one, so arrivals during a long-running batch correctly
    queue (or shed) while the server is busy.

    Dispatch rule, evaluated whenever the queue is non-empty: cut a
    batch at ``max(server_free, trigger)`` where ``trigger`` is the
    earlier of (a) the arrival of the ``max_batch_size``-th waiting
    request and (b) ``oldest.arrival + max_wait_s``. Rule (b) bounds
    batch-formation waiting; a request can still wait longer when the
    server is busy serving earlier batches (that time is queueing, not
    batching, delay — the fuzz suite asserts exactly this split).
    """

    def __init__(self, policy: Optional[BatchingPolicy] = None) -> None:
        self.policy = policy if policy is not None else BatchingPolicy()

    def plan(self, requests: Sequence[InferenceRequest],
             service_time: Callable[[List[InferenceRequest]], float]
             ) -> BatchPlan:
        """Schedule ``requests`` (any order; sorted internally by arrival,
        ties broken by request id) through the dispatch rule."""
        pol = self.policy
        pending = sorted(requests,
                         key=lambda r: (r.arrival_s, r.request_id))
        seen = set()
        for r in pending:
            if r.request_id in seen:
                raise ValueError(f"duplicate request id {r.request_id}")
            seen.add(r.request_id)
        plan = BatchPlan()
        queue: List[InferenceRequest] = []
        server_free = 0.0
        i = 0
        n = len(pending)
        while i < n or queue:
            next_arrival = pending[i].arrival_s if i < n else float("inf")
            if queue:
                if len(queue) >= pol.max_batch_size:
                    trigger_s = queue[pol.max_batch_size - 1].arrival_s
                    trigger = "full"
                else:
                    trigger_s = queue[0].arrival_s + pol.max_wait_s
                    trigger = "deadline" if i < n else "drain"
                dispatch = max(server_free, trigger_s)
                if dispatch <= next_arrival:
                    batch = queue[:pol.max_batch_size]
                    del queue[:pol.max_batch_size]
                    svc = float(service_time(batch))
                    if svc < 0:
                        raise ValueError("service_time must be >= 0")
                    plan.batches.append(ScheduledBatch(
                        requests=batch, dispatch_s=dispatch,
                        completion_s=dispatch + svc, trigger=trigger))
                    server_free = dispatch + svc
                    continue
            # admit (or shed) the next arrival
            r = pending[i]
            i += 1
            if len(queue) >= pol.max_queue_depth:
                plan.shed.append(r)
            elif pol.admission == "predicted" and \
                    self._predicted_completion(queue, r, server_free,
                                               service_time) \
                    > r.arrival_s + pol.deadline_s:
                plan.shed.append(r)
            else:
                queue.append(r)
        return plan

    @staticmethod
    def predicted_completion(policy: BatchingPolicy,
                             queue: List[InferenceRequest],
                             r: InferenceRequest, server_free: float,
                             service_time: Callable[
                                 [List[InferenceRequest]], float]) -> float:
        """Earliest possible completion of ``r`` given ``queue`` —
        work-conserving FIFO at full batch width from
        ``max(server_free, arrival)``. Shared with the multi-tenant
        batcher, whose per-tenant admission uses the same optimistic
        bound (a tenant cannot see the other tenants' queues)."""
        t = max(server_free, r.arrival_s)
        prospective = queue + [r]
        width = policy.max_batch_size
        for start in range(0, len(prospective), width):
            t += float(service_time(prospective[start:start + width]))
        return t

    def _predicted_completion(self, queue: List[InferenceRequest],
                              r: InferenceRequest, server_free: float,
                              service_time: Callable[
                                  [List[InferenceRequest]], float]) -> float:
        """Earliest possible completion of ``r`` given the current queue.

        Assumes work-conserving FIFO dispatch at full batch width
        starting at ``max(server_free, r.arrival)`` — an optimistic
        (lower) bound, since real dispatches may also wait on the
        max-wait trigger. Shedding only when even this bound misses the
        deadline means predicted admission never sheds a request the
        scheduler could still have saved.
        """
        return self.predicted_completion(self.policy, queue, r, server_free,
                                         service_time)


class MultiTenantBatcher:
    """Per-tenant queues and admission over one shared server timeline.

    Each tenant brings its own :class:`BatchingPolicy` (batch width, wait
    bound, admission rule); batches never mix tenants because each tenant
    targets a different :class:`~repro.serving.export.ServableModel`. The
    shared part is the *server*: one device timeline serves every
    tenant's dispatches, so a long batch from a heavy tenant delays
    whoever triggers next — exactly the head-of-line blocking a naive
    shared fleet exhibits, and what planner-partitioned replica subsets
    avoid (:mod:`repro.fleet.tenancy`).

    Dispatch rule: every queued tenant computes its trigger exactly as
    :class:`MicroBatcher` would (full-batch arrival or oldest+max_wait);
    the tenant with the *earliest trigger* (ties broken by name) cuts the
    next batch at ``max(server_free, trigger)``. Admission is evaluated
    against the arriving request's own tenant queue only — a tenant
    cannot observe (or be shed because of) another tenant's backlog,
    though its *latency* still pays for the shared timeline.
    """

    def __init__(self, policies: Dict[str, BatchingPolicy]) -> None:
        if not policies:
            raise ValueError("need at least one tenant policy")
        self.policies = dict(policies)

    def plan(self, requests: Sequence[InferenceRequest],
             service_time: Callable[[str, List[InferenceRequest]], float]
             ) -> Dict[str, BatchPlan]:
        """Schedule a mixed-tenant arrival trace; ``service_time`` takes
        ``(tenant, batch)`` so each tenant's model prices its own
        dispatches. Returns one :class:`BatchPlan` per tenant."""
        pending = sorted(requests,
                         key=lambda r: (r.arrival_s, r.request_id))
        seen = set()
        for r in pending:
            if r.tenant not in self.policies:
                raise ValueError(
                    f"request {r.request_id} targets unknown tenant "
                    f"{r.tenant!r} (have {sorted(self.policies)})")
            if r.request_id in seen:
                raise ValueError(f"duplicate request id {r.request_id}")
            seen.add(r.request_id)
        plans = {name: BatchPlan() for name in self.policies}
        queues: Dict[str, List[InferenceRequest]] = {
            name: [] for name in self.policies}
        server_free = 0.0
        i = 0
        n = len(pending)
        while i < n or any(queues.values()):
            next_arrival = pending[i].arrival_s if i < n else float("inf")
            # the queued tenant with the earliest trigger cuts next
            chosen: Optional[str] = None
            chosen_trigger_s = float("inf")
            chosen_trigger = ""
            for name in sorted(queues):
                queue = queues[name]
                if not queue:
                    continue
                pol = self.policies[name]
                if len(queue) >= pol.max_batch_size:
                    trigger_s = queue[pol.max_batch_size - 1].arrival_s
                    trigger = "full"
                else:
                    trigger_s = queue[0].arrival_s + pol.max_wait_s
                    trigger = "deadline" if i < n else "drain"
                if trigger_s < chosen_trigger_s:
                    chosen, chosen_trigger_s = name, trigger_s
                    chosen_trigger = trigger
            if chosen is not None:
                dispatch = max(server_free, chosen_trigger_s)
                if dispatch <= next_arrival:
                    pol = self.policies[chosen]
                    queue = queues[chosen]
                    batch = queue[:pol.max_batch_size]
                    del queue[:pol.max_batch_size]
                    svc = float(service_time(chosen, batch))
                    if svc < 0:
                        raise ValueError("service_time must be >= 0")
                    plans[chosen].batches.append(ScheduledBatch(
                        requests=batch, dispatch_s=dispatch,
                        completion_s=dispatch + svc, trigger=chosen_trigger))
                    server_free = dispatch + svc
                    continue
            # admit (or shed) the next arrival into its tenant's queue
            r = pending[i]
            i += 1
            pol = self.policies[r.tenant]
            queue = queues[r.tenant]
            if len(queue) >= pol.max_queue_depth:
                plans[r.tenant].shed.append(r)
            elif pol.admission == "predicted" and \
                    MicroBatcher.predicted_completion(
                        pol, queue, r, server_free,
                        lambda batch: service_time(r.tenant, batch)) \
                    > r.arrival_s + pol.deadline_s:
                plans[r.tenant].shed.append(r)
            else:
                queue.append(r)
        return plans

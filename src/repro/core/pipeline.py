"""Training-iteration pipeline model: Eq. 1 and Fig. 9 of the paper.

A DLRM iteration decomposes into components whose dependencies allow
specific overlaps (Section 4.3):

* the **bottom MLP forward** runs concurrently with **embedding lookup +
  forward AlltoAll** (independent until the interaction);
* on the backward pass, the **MLP AllReduce** overlaps with the rest of
  the backward compute (DDP bucketing) and only its excess is exposed;
* the **input AlltoAll for batch i+1** hides under batch i's top-MLP
  forward, and **HtoD copies** hide under compute (double buffering).

:func:`iteration_latency` is a literal implementation of Eq. 1;
:func:`breakdown` additionally reports serialized vs exposed time per
component — the quantity plotted in Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ComponentTimes", "LatencyBreakdown", "iteration_latency",
           "breakdown"]


@dataclass(frozen=True)
class ComponentTimes:
    """Per-iteration serialized component latencies, in seconds.

    Forward-direction times and their backward counterparts. Backward
    compute defaults to 2x forward (two GEMMs per layer instead of one).
    """

    bottom_mlp_fwd: float
    embedding_lookup: float
    alltoall_fwd: float
    interaction_fwd: float
    top_mlp_fwd: float
    alltoall_bwd: float
    embedding_update: float
    allreduce: float
    input_alltoall: float = 0.0
    h2d: float = 0.0
    bottom_mlp_bwd: float = -1.0
    interaction_bwd: float = -1.0
    top_mlp_bwd: float = -1.0

    def __post_init__(self) -> None:
        for name in ("bottom_mlp_fwd", "embedding_lookup", "alltoall_fwd",
                     "interaction_fwd", "top_mlp_fwd", "alltoall_bwd",
                     "embedding_update", "allreduce", "input_alltoall",
                     "h2d"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        # default backward costs: 2x forward
        for fwd, bwd in (("bottom_mlp_fwd", "bottom_mlp_bwd"),
                         ("interaction_fwd", "interaction_bwd"),
                         ("top_mlp_fwd", "top_mlp_bwd")):
            if getattr(self, bwd) < 0:
                object.__setattr__(self, bwd, 2.0 * getattr(self, fwd))

    @property
    def serialized_total(self) -> float:
        """Sum of every component with no overlap at all."""
        return (self.bottom_mlp_fwd + self.embedding_lookup
                + self.alltoall_fwd + self.interaction_fwd
                + self.top_mlp_fwd + self.top_mlp_bwd + self.interaction_bwd
                + self.alltoall_bwd + self.embedding_update
                + self.bottom_mlp_bwd + self.allreduce + self.input_alltoall
                + self.h2d)


@dataclass
class LatencyBreakdown:
    """Eq. 1 outputs plus per-component serialized/exposed attribution."""

    t_fwd: float
    t_bwd: float
    serialized: Dict[str, float] = field(default_factory=dict)
    exposed: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.t_fwd + self.t_bwd

    @property
    def exposed_comms(self) -> float:
        return sum(v for k, v in self.exposed.items()
                   if "alltoall" in k or "allreduce" in k)

    def serialized_shares(self) -> Dict[str, float]:
        """Each serialized component as a fraction of their sum.

        The normalized Fig. 12 view; also what
        :func:`repro.obs.compare_to_model` diffs measured traces against.
        """
        total = sum(self.serialized.values())
        if total <= 0:
            return {k: 0.0 for k in self.serialized}
        return {k: v / total for k, v in self.serialized.items()}


def iteration_latency(t: ComponentTimes) -> float:
    """Eq. 1 verbatim.

    ``T_fwd = max(BotMLP_fwd, Emb_lookup + alltoall_fwd)
              + Interaction_fwd + TopMLP_fwd``

    ``T_bwd = max(TopMLP_bwd + Interaction_bwd
                  + max(alltoall_bwd + Emb_update, BotMLP_bwd),
                  AllReduce)``
    """
    t_fwd = max(t.bottom_mlp_fwd, t.embedding_lookup + t.alltoall_fwd) \
        + t.interaction_fwd + t.top_mlp_fwd
    t_bwd = max(
        t.top_mlp_bwd + t.interaction_bwd
        + max(t.alltoall_bwd + t.embedding_update, t.bottom_mlp_bwd),
        t.allreduce)
    return t_fwd + t_bwd


def breakdown(t: ComponentTimes) -> LatencyBreakdown:
    """Serialized and exposed attribution per component (Fig. 12).

    Exposed time is a component's contribution to the critical path:
    overlapped components expose only their excess over whatever they hide
    behind. The input AlltoAll (batch i+1) hides under the top-MLP forward
    and HtoD hides under compute — each is exposed only beyond that.
    """
    t_fwd = max(t.bottom_mlp_fwd, t.embedding_lookup + t.alltoall_fwd) \
        + t.interaction_fwd + t.top_mlp_fwd
    emb_path = t.embedding_lookup + t.alltoall_fwd
    if emb_path >= t.bottom_mlp_fwd:
        exposed_lookup = t.embedding_lookup
        exposed_a2a_fwd = t.alltoall_fwd - min(
            t.alltoall_fwd, max(0.0, t.bottom_mlp_fwd - t.embedding_lookup))
        exposed_bot_fwd = 0.0
    else:
        exposed_bot_fwd = t.bottom_mlp_fwd
        exposed_lookup = 0.0
        exposed_a2a_fwd = 0.0

    bwd_compute = t.top_mlp_bwd + t.interaction_bwd \
        + max(t.alltoall_bwd + t.embedding_update, t.bottom_mlp_bwd)
    t_bwd = max(bwd_compute, t.allreduce)
    exposed_allreduce = max(0.0, t.allreduce - bwd_compute)
    inner = max(t.alltoall_bwd + t.embedding_update, t.bottom_mlp_bwd)
    if t.alltoall_bwd + t.embedding_update >= t.bottom_mlp_bwd:
        exposed_a2a_bwd = t.alltoall_bwd
        exposed_update = t.embedding_update
        exposed_bot_bwd = 0.0
    else:
        exposed_a2a_bwd = 0.0
        exposed_update = 0.0
        exposed_bot_bwd = t.bottom_mlp_bwd

    # pipelined-away components: exposed only beyond their cover
    exposed_input_a2a = max(0.0, t.input_alltoall - t.top_mlp_fwd)
    exposed_h2d = max(0.0, t.h2d - (t_fwd + t_bwd))

    serialized = {
        "bottom_mlp_fwd": t.bottom_mlp_fwd,
        "embedding_lookup": t.embedding_lookup,
        "alltoall_fwd": t.alltoall_fwd,
        "interaction_fwd": t.interaction_fwd,
        "top_mlp_fwd": t.top_mlp_fwd,
        "top_mlp_bwd": t.top_mlp_bwd,
        "interaction_bwd": t.interaction_bwd,
        "alltoall_bwd": t.alltoall_bwd,
        "embedding_update": t.embedding_update,
        "bottom_mlp_bwd": t.bottom_mlp_bwd,
        "allreduce": t.allreduce,
        "input_alltoall": t.input_alltoall,
        "h2d": t.h2d,
    }
    exposed = {
        "bottom_mlp_fwd": exposed_bot_fwd,
        "embedding_lookup": exposed_lookup,
        "alltoall_fwd": exposed_a2a_fwd,
        "interaction_fwd": t.interaction_fwd,
        "top_mlp_fwd": t.top_mlp_fwd,
        "top_mlp_bwd": t.top_mlp_bwd,
        "interaction_bwd": t.interaction_bwd,
        "alltoall_bwd": exposed_a2a_bwd,
        "embedding_update": exposed_update,
        "bottom_mlp_bwd": exposed_bot_bwd,
        "allreduce": exposed_allreduce,
        "input_alltoall": exposed_input_a2a,
        "h2d": exposed_h2d,
    }
    return LatencyBreakdown(t_fwd=t_fwd, t_bwd=t_bwd, serialized=serialized,
                            exposed=exposed)

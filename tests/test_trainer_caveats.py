"""Documented caveats of scheme/optimizer combinations (paper Sec 4.2.3).

"Since the rows of column-wise sharded tables are split across different
trainers, using an independent row-wise update for these tables
introduces additional parameters — one for each shard of the row instead
of just a single value for the entire row."

These tests pin that behaviour down: CW + RowWiseAdaGrad keeps one
moment per (row, shard) and therefore deviates from the single-process
per-row update, while element-wise optimizers are immune (their state
splits cleanly along columns).
"""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import (EmbeddingTableConfig, RowWiseAdaGrad,
                             SparseAdaGrad, SparseSGD)
from repro.models import DLRM, DLRMConfig
from repro.sharding import ShardingPlan, ShardingScheme, shard_table


def make_parts(world=2, seed=0):
    tables = (EmbeddingTableConfig("t0", 32, 8, avg_pooling=3.0),)
    config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                        top_mlp=(8,))
    plan = ShardingPlan(world_size=world)
    plan.tables["t0"] = shard_table(tables[0], ShardingScheme.COLUMN_WISE,
                                    list(range(world)))
    ds = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
    return config, plan, ds


def train_pair(sparse_opt_factory, steps=3, world=2):
    config, plan, ds = make_parts(world=world)
    batches = ds.batches(8, steps)

    reference = DLRM(config, seed=0)
    ref_opt = nn.SGD(reference.dense_parameters(), lr=0.1)
    ref_sparse = sparse_opt_factory()
    for b in batches:
        reference.train_step(b, ref_opt, ref_sparse)

    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
        sparse_optimizer=sparse_opt_factory(), seed=0)
    for b in batches:
        trainer.train_step(b.split(world))
    return reference.embeddings.table("t0").weight, \
        trainer.gather_table("t0")


class TestColumnWiseRowWiseAdaGradCaveat:
    def test_elementwise_adagrad_immune(self):
        """Element-wise AdaGrad state splits cleanly along columns: CW
        training matches the single-process reference."""
        ref, dist = train_pair(lambda: SparseAdaGrad(lr=0.1))
        np.testing.assert_allclose(dist, ref, rtol=1e-4, atol=1e-6)

    def test_sgd_immune(self):
        ref, dist = train_pair(lambda: SparseSGD(lr=0.1))
        np.testing.assert_allclose(dist, ref, rtol=1e-4, atol=1e-6)

    def test_rowwise_adagrad_deviates_per_shard(self):
        """The Sec 4.2.3 caveat: per-shard row moments != per-row moment,
        so CW + RowWiseAdaGrad deviates from the reference (and the paper
        flags the extra optimizer parameters this introduces)."""
        ref, dist = train_pair(lambda: RowWiseAdaGrad(lr=0.1))
        assert not np.allclose(dist, ref, rtol=1e-4, atol=1e-6)

    def test_rowwise_adagrad_cw_still_deterministic(self):
        """Deviation from the reference is NOT nondeterminism: two CW
        runs are bitwise identical."""
        results = []
        for _ in range(2):
            _, dist = train_pair(lambda: RowWiseAdaGrad(lr=0.1))
            results.append(dist)
        assert np.array_equal(results[0], results[1])

    def test_rowwise_adagrad_cw_extra_state(self):
        """One moment vector per column shard: W times the state of the
        unsharded table (the 'additional parameters' of Sec 4.2.3)."""
        config, plan, ds = make_parts(world=2)
        opt = RowWiseAdaGrad(lr=0.1)
        trainer = NeoTrainer(
            config, plan, ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=opt, seed=0)
        trainer.train_step(ds.batch(8, 0).split(2))
        moment_vectors = [
            state["moment"] for state in opt._state.values()
            if "moment" in state]
        assert len(moment_vectors) == 2  # one per column shard
        total_state = sum(m.size for m in moment_vectors)
        assert total_state == 2 * 32  # 2 shards x H rows

    def test_rowwise_adagrad_cw_still_learns(self):
        """The caveat is an accuracy nuance, not a correctness bug: the
        combination still trains."""
        config, plan, ds = make_parts(world=2)
        trainer = NeoTrainer(
            config, plan, ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
            sparse_optimizer=RowWiseAdaGrad(lr=0.1), seed=0)
        losses = [trainer.train_step(ds.batch(32, i).split(2))
                  for i in range(40)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

"""Load-generator and SLO-report tests: seeded determinism and accounting.

An open-loop Poisson trace must be exactly reproducible from its seed,
statistically honest about its offered rate, and the report derived
from a serve run must account for every offered request.
"""

import numpy as np
import pytest

from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig
from repro.models import DLRM, DLRMConfig
from repro.serving import (BatchingPolicy, InferenceServer, LoadReport,
                           PoissonLoadGen, ServingPerfModel, freeze,
                           run_load_test)
from repro.serving.loadgen import summarize


def make_setup(seed=3):
    tables = tuple(EmbeddingTableConfig(f"t{i}", 200, 8, avg_pooling=3.0)
                   for i in range(3))
    config = DLRMConfig(dense_dim=6, bottom_mlp=(16, 8), tables=tables,
                        top_mlp=(16,))
    ds = SyntheticCTRDataset(tables, dense_dim=6, seed=seed)
    return freeze(DLRM(config, seed=seed)), ds


class TestPoissonLoadGen:
    def test_same_seed_same_trace(self):
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        np.testing.assert_array_equal(a.arrival_times(), b.arrival_times())

    def test_different_seed_different_trace(self):
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=8)
        assert not np.array_equal(a.arrival_times(), b.arrival_times())

    def test_mean_rate_approximates_qps(self):
        gen = PoissonLoadGen(qps=500, num_requests=4000, seed=0)
        arrivals = gen.arrival_times()
        measured = len(arrivals) / arrivals[-1]
        assert measured == pytest.approx(500, rel=0.1)

    def test_arrivals_increase_from_start(self):
        gen = PoissonLoadGen(qps=100, num_requests=20, seed=1, start_s=5.0)
        arrivals = gen.arrival_times()
        assert arrivals[0] > 5.0
        assert np.all(np.diff(arrivals) > 0)

    def test_requests_slice_the_bulk_batch(self):
        _, ds = make_setup()
        gen = PoissonLoadGen(qps=100, num_requests=10, seed=2)
        requests = gen.requests(ds)
        bulk = ds.batch(10, batch_index=2)
        assert [r.request_id for r in requests] == list(range(10))
        for i, r in enumerate(requests):
            assert r.num_samples == 1
            np.testing.assert_array_equal(r.batch.dense, bulk.dense[i:i + 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonLoadGen(qps=0, num_requests=10)
        with pytest.raises(ValueError):
            PoissonLoadGen(qps=10, num_requests=0)


class TestLoadReport:
    def test_accounting_conserves_requests(self):
        model, ds = make_setup()
        # tiny queue + slow server forces sheds
        server = InferenceServer(
            model, BatchingPolicy(max_batch_size=4, max_wait_s=1e-4,
                                  max_queue_depth=4),
            ServingPerfModel(overhead_s=5e-3))
        report = run_load_test(server, ds, qps=5000, num_requests=200,
                               slo_s=5e-3, seed=0)
        assert report.num_offered == 200
        assert report.num_completed + report.num_shed == 200
        assert report.num_shed > 0
        assert 0 < report.shed_fraction < 1

    def test_seeded_report_is_exactly_reproducible(self):
        model, ds = make_setup()
        server = InferenceServer(model)
        a = run_load_test(server, ds, qps=2000, num_requests=150,
                          slo_s=5e-3, seed=4)
        b = run_load_test(server, ds, qps=2000, num_requests=150,
                          slo_s=5e-3, seed=4)
        assert a == b

    def test_percentiles_ordered(self):
        model, ds = make_setup()
        server = InferenceServer(model)
        report = run_load_test(server, ds, qps=2000, num_requests=150,
                               slo_s=5e-3, seed=0)
        assert 0 < report.p50_s <= report.p95_s <= report.p99_s \
            <= report.max_s
        assert report.makespan_s > 0

    def test_goodput_counts_only_within_slo(self):
        model, ds = make_setup()
        server = InferenceServer(model)
        out = []
        report = run_load_test(server, ds, qps=2000, num_requests=100,
                               slo_s=5e-3, seed=0, result_out=out)
        result = out[0]
        within = int(np.sum(result.latencies_s() <= report.slo_s))
        assert report.goodput_qps == pytest.approx(
            within / result.makespan_s())
        assert report.slo_attainment == pytest.approx(within / 100)
        # under light load everything meets a 5 ms SLO
        assert report.slo_attainment == 1.0
        assert report.goodput_qps == pytest.approx(report.completed_qps)

    def test_impossible_slo_zeroes_goodput(self):
        model, ds = make_setup()
        server = InferenceServer(model)
        report = run_load_test(server, ds, qps=2000, num_requests=100,
                               slo_s=1e-9, seed=0)
        assert report.goodput_qps == 0.0
        assert report.slo_attainment == 0.0
        assert report.completed_qps > 0  # work still happened

    def test_row_matches_header(self):
        model, ds = make_setup()
        server = InferenceServer(model)
        report = run_load_test(server, ds, qps=2000, num_requests=50,
                               slo_s=5e-3, seed=0)
        assert len(report.row()) == len(LoadReport.ROW_HEADER)

    def test_summarize_empty_result(self):
        from repro.serving import ServeResult
        report = summarize(ServeResult(), offered_qps=100, num_offered=0,
                           slo_s=1e-3)
        assert report.num_completed == 0
        assert report.goodput_qps == 0.0
        assert report.shed_fraction == 0.0

    def test_rejects_bad_slo(self):
        model, ds = make_setup()
        server = InferenceServer(model)
        with pytest.raises(ValueError):
            run_load_test(server, ds, qps=100, num_requests=10, slo_s=0.0)

"""Fig. 10: training-quality comparison — asynchronous small-batch on the
distributed CPU platform vs synchronous large-batch on the proposed
platform, measured in relative normalized entropy.

Both systems train the same (shrunken) model A1 on the same synthetic CTR
stream: the async arm uses small batches with Hogwild staleness and EASGD,
the sync arm uses a 16x larger batch through the Neo trainer. The paper's
claim: despite the much larger batch, synchronous training reaches on-par
or better NE.
"""

import numpy as np
import pytest

from repro import nn
from repro.baselines import AsyncPSTrainer
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import SparseAdaGrad
from repro.metrics import normalized_entropy, relative_ne
from repro.models import mini_config
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

SYNC_WORLD = 4
SMALL_BATCH = 16
LARGE_BATCH = 256  # 16x, mirroring the paper's 64K vs ~150 ratio
EVAL_BATCH = 4096
TOTAL_SAMPLES = 40_960


def make_parts():
    config = mini_config("A1", scale=256, num_tables=4, embedding_dim=8)
    dataset = SyntheticCTRDataset(config.tables, dense_dim=config.dense_dim,
                                  noise=0.25, seed=7)
    return config, dataset


def eval_ne(model, dataset):
    test = dataset.batch(EVAL_BATCH, 900_000)
    return normalized_entropy(model.predict_proba(test), test.labels)


def run_async(config, dataset):
    trainer = AsyncPSTrainer(config, num_trainers=4, lr=0.05, seed=0)
    curve = []
    steps = TOTAL_SAMPLES // SMALL_BATCH
    for i in range(steps):
        trainer.step(dataset.batch(SMALL_BATCH, i))
        if (i + 1) % (steps // 8) == 0:
            curve.append(eval_ne(trainer.snapshot(), dataset))
    return curve


def run_sync(config, dataset):
    plan = ShardingPlan(world_size=SYNC_WORLD)
    for i, t in enumerate(config.tables):
        plan.tables[t.name] = shard_table(t, ShardingScheme.TABLE_WISE,
                                          [i % SYNC_WORLD])
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=SYNC_WORLD),
        dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0)
    curve = []
    steps = TOTAL_SAMPLES // LARGE_BATCH
    for i in range(steps):
        trainer.train_step(dataset.batch(LARGE_BATCH, 10_000 + i).split(
            SYNC_WORLD))
        if (i + 1) % (steps // 8) == 0:
            curve.append(eval_ne(trainer.to_local_model(), dataset))
    return curve


def test_fig10_quality(benchmark, report):
    config, dataset = make_parts()

    def run():
        return run_async(config, dataset), run_sync(config, dataset)

    async_curve, sync_curve = benchmark.pedantic(run, rounds=1, iterations=1)
    # Fig 10 normalizes to the async baseline's final NE
    ref = async_curve[-1]
    rel_async = relative_ne(async_curve, reference=ref)
    rel_sync = relative_ne(sync_curve, reference=ref)
    rows = [(f"{(i + 1) / 8:.0%}", f"{a:.4f}", f"{s:.4f}")
            for i, (a, s) in enumerate(zip(rel_async, rel_sync))]
    report("Fig 10: relative NE through training "
           "(async small-batch vs sync large-batch)",
           ["progress", "async CPU (rel NE)", "sync large-batch (rel NE)"],
           rows)
    # both arms actually learned (beat the base-rate predictor)
    assert async_curve[-1] < 1.0
    assert sync_curve[-1] < 1.0
    # the paper's claim: sync large-batch is on-par or better
    assert sync_curve[-1] <= async_curve[-1] * 1.02

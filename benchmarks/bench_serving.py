"""Serving benchmark: micro-batching goodput vs unbatched, under an SLO.

The serving claim mirrors the paper's training one — recommendation
kernels only pay off at batch width. Here the same frozen model serves
the same seeded Poisson arrival trace twice: once dispatching every
request alone (``max_batch_size=1``) and once through the dynamic
micro-batcher. At loads past the unbatched capacity the single-request
server collapses into queueing (p99 blows through the SLO, goodput goes
to ~0) while the batcher widens its dispatches and keeps p99 bounded by
``max_wait + service``. All latency accounting is virtual time from the
shared perf/platform models, so the JSON is deterministic for a given
seed and identical on every machine.

Run standalone to write ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--quick] [--out PATH] [--min-speedup X]

``--min-speedup`` exits nonzero unless batched goodput is at least X
times the unbatched goodput at the overload point while batched p99
stays within the SLO (the acceptance gate; default 2.0).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig
from repro.models import DLRM, DLRMConfig
from repro.serving import (BatchingPolicy, FreezeConfig, InferenceServer,
                           LoadReport, ServingPerfModel, freeze,
                           run_load_test)

FULL_CONFIG = dict(num_tables=4, rows=400, dim=16, dense_dim=8,
                   requests=2500, slo_ms=5.0, max_batch=64,
                   max_wait_us=2000.0, precision="fp32", seed=0)
QUICK_CONFIG = dict(num_tables=3, rows=200, dim=8, dense_dim=6,
                    requests=800, slo_ms=5.0, max_batch=64,
                    max_wait_us=2000.0, precision="fp32", seed=0)


def build_setup(config):
    tables = tuple(EmbeddingTableConfig(f"t{i}", config["rows"],
                                        config["dim"], avg_pooling=3.0)
                   for i in range(config["num_tables"]))
    model_config = DLRMConfig(dense_dim=config["dense_dim"],
                              bottom_mlp=(32, config["dim"]),
                              tables=tables, top_mlp=(32,))
    servable = freeze(DLRM(model_config, seed=config["seed"]),
                      FreezeConfig(precision=config["precision"]))
    dataset = SyntheticCTRDataset(tables, dense_dim=config["dense_dim"],
                                  seed=config["seed"])
    return servable, dataset


def policies(config):
    return {
        "batch=1": BatchingPolicy(max_batch_size=1, max_wait_s=0.0),
        "batched": BatchingPolicy(
            max_batch_size=config["max_batch"],
            max_wait_s=config["max_wait_us"] * 1e-6),
    }


def measure(config):
    """Both policies across under-load/at-capacity/overload points.

    Load points are placed relative to the *modeled* unbatched capacity,
    so the overload point saturates batch=1 by construction on any
    machine (everything downstream is virtual time)."""
    servable, dataset = build_setup(config)
    perf = ServingPerfModel()
    nnz = sum(t.avg_pooling for t in servable.config.tables)
    base_qps = perf.capacity_qps(servable, 1, nnz)
    load_points = {"0.5x": 0.5, "1x": 1.0, "2x": 2.0}
    results = {"capacity_batch1_qps": base_qps, "loads": {}}
    for label, scale in load_points.items():
        point = {}
        for name, policy in policies(config).items():
            server = InferenceServer(servable, policy, perf)
            report = run_load_test(
                server, dataset, qps=base_qps * scale,
                num_requests=config["requests"],
                slo_s=config["slo_ms"] * 1e-3, seed=config["seed"])
            point[name] = report
        results["loads"][label] = point
    overload = results["loads"]["2x"]
    results["goodput_speedup_at_2x"] = (
        overload["batched"].goodput_qps / overload["batch=1"].goodput_qps
        if overload["batch=1"].goodput_qps > 0 else float("inf"))
    results["batched_p99_within_slo_at_2x"] = (
        overload["batched"].p99_s <= config["slo_ms"] * 1e-3)
    return results


def as_json(config, results):
    def report_dict(r):
        d = dict(r.__dict__)
        d.pop("samples_s", None)  # raw samples stay out of the JSON
        d["shed_fraction"] = r.shed_fraction
        return d
    return {
        "benchmark": "serving",
        "config": config,
        "capacity_batch1_qps": results["capacity_batch1_qps"],
        "loads": {label: {name: report_dict(rep)
                          for name, rep in point.items()}
                  for label, point in results["loads"].items()},
        "goodput_speedup_at_2x": results["goodput_speedup_at_2x"],
        "batched_p99_within_slo_at_2x":
            results["batched_p99_within_slo_at_2x"],
    }


def result_rows(results):
    rows = []
    for label, point in results["loads"].items():
        for name, rep in point.items():
            rows.append([label, name] + rep.row())
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_serving.json",
                        help="output JSON path")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        metavar="X",
                        help="fail unless batched goodput >= X * unbatched "
                             "at 2x load with batched p99 within SLO")
    args = parser.parse_args(argv)
    config = dict(QUICK_CONFIG if args.quick else FULL_CONFIG)
    config["mode"] = "quick" if args.quick else "full"
    results = measure(config)
    with open(args.out, "w") as f:
        json.dump(as_json(config, results), f, indent=2)
        f.write("\n")
    header = ["load", "policy"] + LoadReport.ROW_HEADER
    rows = result_rows(results)
    widths = [max(len(str(h)), *(len(str(r[c])) for r in rows))
              for c, h in enumerate(header)]
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))
    speedup = results["goodput_speedup_at_2x"]
    print(f"\nbatched/unbatched goodput at 2x load: {speedup:.1f}x "
          f"(batched p99 within SLO: "
          f"{results['batched_p99_within_slo_at_2x']})")
    print(f"wrote {args.out}")
    if speedup < args.min_speedup:
        print(f"FAIL: goodput speedup {speedup:.2f}x < floor "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if not results["batched_p99_within_slo_at_2x"]:
        print("FAIL: batched p99 exceeded the SLO at 2x load",
              file=sys.stderr)
        return 1
    return 0


def test_batched_goodput_speedup(benchmark, report):
    """Batched goodput >= 2x unbatched at overload, p99 within SLO."""
    results = benchmark.pedantic(measure, args=(dict(QUICK_CONFIG),),
                                 rounds=1, iterations=1)
    report("serving: batched vs unbatched under Poisson load "
           f"(SLO {QUICK_CONFIG['slo_ms']:.0f} ms)",
           ["load", "policy"] + LoadReport.ROW_HEADER,
           result_rows(results))
    assert results["goodput_speedup_at_2x"] >= 2.0
    assert results["batched_p99_within_slo_at_2x"]
    # under light load both policies meet the SLO — batching must not
    # sacrifice attainment when it isn't needed
    light = results["loads"]["0.5x"]
    assert light["batched"].slo_attainment == 1.0
    assert light["batch=1"].slo_attainment == 1.0


def test_deterministic_json(benchmark, report):
    """Same seed, same config -> identical serialized results."""
    config = dict(QUICK_CONFIG, requests=200)
    a = as_json(config, measure(config))
    b = benchmark.pedantic(lambda: as_json(config, measure(config)),
                           rounds=1, iterations=1)
    report("serving determinism", ["check", "result"],
           [["json identical across runs", a == b]])
    assert a == b


if __name__ == "__main__":
    sys.exit(main())

"""Shared test utilities: the tiny-system fixture factory, numerical
gradient checking and tolerances.

``tiny_system`` (and the smaller builders it composes) replaces the
hand-rolled "small DLRM + trainer + frozen servable + batcher" setup
that used to be copy-pasted across the serving and resilience suites.
Defaults are laptop-tiny and deterministic; every knob the suites
actually vary (table count/rows/dims, world size, sharding style,
optimizer momentum, fault-injecting process groups) is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer, TrainingLoop
from repro.data import MiniBatch, SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRM, DLRMConfig
from repro.serving import (BatchingPolicy, FreezeConfig, InferenceRequest,
                           MicroBatcher, ServableModel, freeze)
from repro.sharding import ShardingPlan, ShardingScheme, shard_table


# ----------------------------------------------------------------------
# tiny-system builders
# ----------------------------------------------------------------------
def tiny_tables(num_tables: int = 3, rows: int = 200, dim: int = 8,
                avg_pooling: float = 3.0) -> tuple:
    """Uniform tiny embedding-table configs named t0..tN-1."""
    return tuple(EmbeddingTableConfig(f"t{i}", rows, dim,
                                      avg_pooling=avg_pooling)
                 for i in range(num_tables))


def tiny_config(num_tables: int = 3, rows: int = 200, dim: int = 8,
                dense_dim: int = 6, avg_pooling: float = 3.0,
                bottom_mlp: Optional[tuple] = None,
                top_mlp: tuple = (16,)) -> DLRMConfig:
    """A laptop-scale DLRM config (bottom MLP defaults to ``(16, dim)``)."""
    return DLRMConfig(
        dense_dim=dense_dim,
        bottom_mlp=bottom_mlp if bottom_mlp is not None else (16, dim),
        tables=tiny_tables(num_tables, rows, dim, avg_pooling),
        top_mlp=top_mlp)


def tiny_dataset(config: DLRMConfig, seed: int = 0,
                 noise: Optional[float] = None) -> SyntheticCTRDataset:
    kwargs = {} if noise is None else {"noise": noise}
    return SyntheticCTRDataset(config.tables, dense_dim=config.dense_dim,
                               seed=seed, **kwargs)


def tiny_trainer(config: DLRMConfig, world: int = 2, seed: int = 0,
                 pg_factory=None, lr: float = 0.1, momentum: float = 0.0,
                 scheme: str = "parity",
                 representation_plan=None) -> NeoTrainer:
    """A NeoTrainer over ``world`` simulated ranks.

    ``scheme`` picks the sharding style:

    * ``"parity"`` — alternate table-wise / data-parallel placements,
      both summation-order-preserving, so a frozen export's forward can
      be compared *bitwise* against the trainer's eval forward (row-wise
      sharding changes the reduce order and is only ever close);
    * ``"table_wise"`` — every table whole on rank ``i % world``, the
      layout that re-plans cleanly onto any world size (what the
      recovery suite shrinks and regrows worlds with).

    Momentum is a knob because per-parameter optimizer state is exactly
    what the bitwise recovery tests need to prove survives a restore.
    """
    plan = ShardingPlan(world_size=world)
    for i, t in enumerate(config.tables):
        if scheme == "table_wise" or i % 2 == 0:
            plan.tables[t.name] = shard_table(
                t, ShardingScheme.TABLE_WISE, [i % world])
        else:
            plan.tables[t.name] = shard_table(
                t, ShardingScheme.DATA_PARALLEL, list(range(world)))
    plan.validate()
    return NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
        dense_optimizer=lambda p: nn.SGD(p, lr=lr, momentum=momentum),
        sparse_optimizer=SparseSGD(lr=lr), seed=seed,
        process_group_factory=pg_factory,
        representation_plan=representation_plan)


@dataclass
class TinySystem:
    """Everything the serving/resilience/online suites set up repeatedly:
    a tiny DLRM (and optionally its distributed trainer), the synthetic
    dataset, a frozen servable and a micro-batcher."""

    config: DLRMConfig
    dataset: SyntheticCTRDataset
    model: DLRM
    servable: ServableModel
    policy: BatchingPolicy
    batcher: MicroBatcher
    trainer: Optional[NeoTrainer] = None

    def loop(self, global_batch_size: int = 64, eval_every: int = 1000,
             **kwargs) -> TrainingLoop:
        """A TrainingLoop over the system's trainer and dataset."""
        if self.trainer is None:
            raise ValueError("tiny_system(world=...) needed for a loop")
        return TrainingLoop(self.trainer, self.dataset,
                            global_batch_size=global_batch_size,
                            eval_every=eval_every, **kwargs)

    def requests(self, n: int, spacing_s: float = 1e-4,
                 batch_index: int = 0) -> List[InferenceRequest]:
        """``n`` evenly spaced single-sample requests from one bulk draw."""
        bulk = self.dataset.batch(n, batch_index=batch_index)
        return [InferenceRequest(request_id=i, arrival_s=i * spacing_s,
                                 batch=bulk.slice(i, i + 1))
                for i in range(n)]


def tiny_system(num_tables: int = 3, rows: int = 200, dim: int = 8,
                dense_dim: int = 6, avg_pooling: float = 3.0,
                seed: int = 3, dataset_seed: Optional[int] = None,
                noise: Optional[float] = None, world: int = 0,
                freeze_config: Optional[FreezeConfig] = None,
                policy: Optional[BatchingPolicy] = None,
                **trainer_kwargs) -> TinySystem:
    """The shared fixture factory.

    ``world=0`` (default) freezes a single-process reference
    :class:`DLRM`; ``world>=2`` builds a :class:`NeoTrainer` (extra
    ``trainer_kwargs`` go to :func:`tiny_trainer`) and freezes *it*, so
    the servable carries real gathered-shard state.
    """
    config = tiny_config(num_tables, rows, dim, dense_dim, avg_pooling)
    dataset = tiny_dataset(
        config, seed=seed if dataset_seed is None else dataset_seed,
        noise=noise)
    trainer = None
    if world:
        trainer = tiny_trainer(config, world=world, seed=seed,
                               **trainer_kwargs)
        model = trainer.to_local_model()
        servable = freeze(trainer, freeze_config)
    else:
        model = DLRM(config, seed=seed)
        servable = freeze(model, freeze_config)
    pol = policy if policy is not None else BatchingPolicy()
    return TinySystem(config=config, dataset=dataset, model=model,
                      servable=servable, policy=pol,
                      batcher=MicroBatcher(pol), trainer=trainer)


def single_sample_request(request_id: int, arrival_s: float,
                          samples: int = 1) -> InferenceRequest:
    """A content-free request (ids all zero) for pure scheduling tests."""
    return InferenceRequest(
        request_id=request_id, arrival_s=arrival_s,
        batch=MiniBatch(
            dense=np.zeros((samples, 2), dtype=np.float32),
            sparse={"t0": (np.zeros(samples, dtype=np.int64),
                           np.arange(samples + 1, dtype=np.int64))},
            labels=np.zeros(samples, dtype=np.float32)))


# ----------------------------------------------------------------------
# numerics
# ----------------------------------------------------------------------
def numerical_gradient(f: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar function ``f`` at ``x``.

    Uses float64 internally; callers should compare with rtol around 1e-2
    because the layers themselves compute in float32.
    """
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x.astype(np.float32))
        x[idx] = orig - eps
        f_minus = f(x.astype(np.float32))
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def assert_close(actual: np.ndarray, expected: np.ndarray,
                 rtol: float = 1e-2, atol: float = 1e-4) -> None:
    np.testing.assert_allclose(actual, expected, rtol=rtol, atol=atol)

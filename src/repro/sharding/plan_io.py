"""Sharding-plan serialization.

Production plans are deployment artifacts: the sharder runs once, the
plan ships with the job, and restarted trainers must reconstruct the
*identical* placement (checkpointed shards only load back onto the ranks
that own them). JSON round-tripping with full validation covers that.
"""

from __future__ import annotations

import json
from typing import Dict

from ..embedding.table import EmbeddingTableConfig
from .schemes import Shard, ShardingPlan, ShardingScheme, TableShardingPlan

__all__ = ["plan_to_dict", "plan_from_dict", "save_plan", "load_plan"]

_FORMAT_VERSION = 1


def plan_to_dict(plan: ShardingPlan) -> Dict:
    """Plain-dict form of a plan (stable across releases via version)."""
    return {
        "version": _FORMAT_VERSION,
        "world_size": plan.world_size,
        "tables": {
            name: {
                "scheme": tp.scheme.value,
                "config": {
                    "name": tp.config.name,
                    "num_embeddings": tp.config.num_embeddings,
                    "embedding_dim": tp.config.embedding_dim,
                    "avg_pooling": tp.config.avg_pooling,
                    "pooling_mode": tp.config.pooling_mode,
                    "precision": tp.config.precision,
                },
                "shards": [
                    {"rank": s.rank,
                     "rows": list(s.row_range),
                     "cols": list(s.col_range)}
                    for s in tp.shards],
            }
            for name, tp in plan.tables.items()
        },
    }


def plan_from_dict(data: Dict) -> ShardingPlan:
    """Reconstruct and validate a plan from its dict form."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported plan format version {version!r}")
    plan = ShardingPlan(world_size=int(data["world_size"]))
    for name, tp in data["tables"].items():
        cfg = EmbeddingTableConfig(**tp["config"])
        shards = [Shard(table=name, rank=int(s["rank"]),
                        row_range=tuple(s["rows"]),
                        col_range=tuple(s["cols"]))
                  for s in tp["shards"]]
        plan.tables[name] = TableShardingPlan(
            config=cfg, scheme=ShardingScheme(tp["scheme"]), shards=shards)
    plan.validate()
    return plan


def save_plan(plan: ShardingPlan, path: str) -> None:
    plan.validate()
    with open(path, "w") as f:
        json.dump(plan_to_dict(plan), f, indent=2, sort_keys=True)


def load_plan(path: str) -> ShardingPlan:
    with open(path) as f:
        return plan_from_dict(json.load(f))

"""The serving fleet: N inference replicas behind one router.

``ServingFleet`` composes the pieces this package adds — a
:class:`~repro.fleet.router.FleetRouter` assignment plane and N
:class:`~repro.serving.server.InferenceServer` replicas of one frozen
model — into a single ``serve(trace)`` call. Replicas may be
heterogeneous: each can sit on its own
:class:`~repro.serving.server.ServingPerfModel` (and therefore its own
:class:`~repro.perf.PlatformSpec` placement), and the router's backlog
estimates use each replica's own prices, so platform differences shape
the routing instead of being averaged away.

Observability: all replicas share the fleet's tracer and metric
registry, but each replica is *named* (``replica0``, ``replica1``, …)
so its spans carry a ``replica=`` attribute and its metrics live under
``replicaN.serving.*`` — per-replica series out of one registry.

Everything runs on the shared virtual clock: route, batch, serve,
merge are all deterministic functions of (trace, policies, seed), so a
whole fleet sweep is bitwise-repeatable, and an N=1 round-robin fleet
reproduces the single-server load test exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..obs.metrics import MetricRegistry
from ..obs.tracer import as_tracer
from ..serving.batcher import BatchingPolicy, InferenceRequest
from ..serving.export import ServableModel
from ..serving.loadgen import LoadReport, summarize
from ..serving.server import InferenceServer, ServeResult, ServingPerfModel
from .router import FleetRouter, RouterPolicy, RoutingPlan

__all__ = ["FleetResult", "ServingFleet"]


@dataclass
class FleetResult:
    """Everything one fleet serve produced.

    ``merged`` is the fleet-level :class:`LoadReport` (exact pooled
    percentiles via :meth:`LoadReport.merge`); ``per_replica`` the
    replica reports it was merged from (indexed by fleet replica id —
    inactive replicas report zeros); ``results`` the raw per-replica
    :class:`ServeResult`\\ s and ``routing`` the assignment plan.
    """

    merged: LoadReport
    per_replica: List[LoadReport]
    results: List[ServeResult] = field(default_factory=list)
    routing: Optional[RoutingPlan] = None

    @property
    def num_replicas(self) -> int:
        return len(self.per_replica)


class ServingFleet:
    """N replicas of one frozen model behind a routing policy.

    ``perfs`` gives each replica its own service-time model (defaults to
    one shared :class:`ServingPerfModel`); ``num_replicas`` is implied
    by its length. ``policy`` (batching/admission) is shared — it is a
    fleet-wide serving contract, not a placement property.
    """

    def __init__(self, model: ServableModel, num_replicas: int = 1,
                 policy: Optional[BatchingPolicy] = None,
                 perfs: Optional[Sequence[ServingPerfModel]] = None,
                 router: Optional[RouterPolicy] = None,
                 tracer=None,
                 metrics: Optional[MetricRegistry] = None) -> None:
        if perfs is not None:
            perfs = list(perfs)
            if num_replicas not in (1, len(perfs)) :
                raise ValueError(
                    f"num_replicas={num_replicas} conflicts with "
                    f"{len(perfs)} per-replica perf models")
            num_replicas = len(perfs)
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.model = model
        self.policy = policy if policy is not None else BatchingPolicy()
        self.router = FleetRouter(router)
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        if perfs is None:
            perfs = [ServingPerfModel() for _ in range(num_replicas)]
        self.replicas = [
            InferenceServer(model, self.policy, perf, tracer=self.tracer,
                            metrics=self.metrics, name=f"replica{i}")
            for i, perf in enumerate(perfs)]

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    def _estimators(self):
        """Per-replica single-request service predictors for the router,
        each priced by that replica's own perf model."""
        return [
            (lambda r, srv=server: srv.perf.service_time(
                srv.model, r.num_samples, srv.model.nnz(r.batch)))
            for server in self.replicas]

    def capacity_qps(self, batch_size: int, nnz_per_sample: float,
                     active: Optional[Sequence[int]] = None) -> float:
        """Summed saturated throughput of the (active) replicas at a
        fixed dispatch width — the ceiling the fleet's goodput curve
        approaches under perfect balance."""
        active = range(self.num_replicas) if active is None else active
        return sum(self.replicas[i].perf.capacity_qps(
            self.model, batch_size, nnz_per_sample) for i in active)

    def serve(self, requests: Sequence[InferenceRequest], slo_s: float,
              offered_qps: float,
              active: Optional[Sequence[int]] = None,
              keep_samples: bool = True) -> FleetResult:
        """Route and serve one arrival trace; merge the replica reports.

        ``offered_qps`` is the fleet-level offered rate the reports are
        labeled with; each replica's report carries its proportional
        share so the merged report sums back to the fleet rate.
        ``active`` restricts routing to a replica subset (autoscaling);
        inactive replicas serve nothing and report zeros.
        """
        if slo_s <= 0:
            raise ValueError("slo_s must be positive")
        plan = self.router.route(requests, self._estimators(), active)
        total = sum(plan.counts) or 1
        results: List[ServeResult] = []
        reports: List[LoadReport] = []
        for server, sub in zip(self.replicas, plan.assignments):
            result = server.serve(sub) if sub else ServeResult()
            results.append(result)
            reports.append(summarize(
                result, offered_qps=offered_qps * (len(sub) / total),
                num_offered=len(sub), slo_s=slo_s, keep_samples=True))
        merged = LoadReport.merge(reports)
        if not keep_samples:
            merged = merged.without_samples()
            reports = [r.without_samples() for r in reports]
        return FleetResult(merged=merged, per_replica=reports,
                           results=results, routing=plan)

"""Command-line entry points: ``python -m repro [subcommand]``.

* ``python -m repro`` / ``python -m repro selfcheck`` — prints the
  version, verifies the headline calibrations against the paper's
  measured anchors, and runs a two-second smoke train proving the
  distributed trainer matches the single-process reference on this
  machine. Exit code 0 means the installation is healthy.
* ``python -m repro trace`` — runs a few traced iterations of a shrunken
  Table 3 model on the simulated multi-rank trainer, writes a Chrome
  ``trace_event`` JSON (open in Perfetto / ``chrome://tracing``) and
  prints a run summary comparing measured phase shares against the
  analytical Eq. 1 latency breakdown.
* ``python -m repro serve-bench`` — freezes a mini Table 3 model and
  replays a seeded Poisson arrival trace through the micro-batching
  inference server at several offered loads, printing the SLO report
  (p50/p99, goodput, shed rate) per load, batched vs unbatched.
* ``python -m repro online-bench`` — runs the train-while-serving
  co-simulation at several snapshot refresh cadences (atomic hot-swap
  through the double-buffered model slot) and prints the staleness vs
  held-out-NE vs goodput curve; ``--freshness-budget-s`` derives the
  cadence from the :mod:`repro.perf.online` cluster sizing instead.
* ``python -m repro fleet-bench`` — serves a compressed diurnal day
  (seeded NHPP arrivals over a Zipf user population) through a
  multi-replica fleet under the SLO-driven autoscaler and prints the
  per-window scaling timeline plus the replica-hours saved against the
  cheapest static fleet that holds the same SLO.
* ``python -m repro cache-bench`` — replays hashed Zipf embedding
  traces through every ``RowCache`` kind at identical fast-tier
  capacity (set-associative, UVM pages, frequency-aware chunks, and
  frequency-aware with pipelined prefetch) and prints hit rate, slow
  tier traffic, and modeled effective bandwidth per Zipf alpha.
* ``python -m repro planner-bench`` — runs the multi-path
  representation planner over a mini Table 3 model at a hot-memory
  budget fraction and quality floor, prints the per-table assignment
  (full/fp16/bf16/int8/TT/cold) with measured errors and the memory
  comparison against every uniform single-path baseline at the same
  floor.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def selfcheck() -> int:
    """Installation health check (the original ``python -m repro``)."""
    import repro
    from repro import nn
    from repro.comms import PROTOTYPE_TOPOLOGY, ClusterTopology
    from repro.comms.perf_model import (achieved_all_reduce_bw,
                                        achieved_all_to_all_bw)
    from repro.core import NeoTrainer
    from repro.data import SyntheticCTRDataset
    from repro.embedding import EmbeddingTableConfig, SparseAdaGrad
    from repro.models import DLRM, DLRMConfig
    from repro.models import full_spec
    from repro.perf import capacity_ladder
    from repro.sharding import EmbeddingShardingPlanner, PlannerConfig

    print(f"repro {repro.__version__} — Neo/ZionEX reproduction "
          f"self-check\n")

    failures = []

    def check(label, ok, detail):
        status = "ok " if ok else "FAIL"
        print(f"[{status}] {label}: {detail}")
        if not ok:
            failures.append(label)

    # 1. comms calibration anchors (Section 5.1)
    topo = PROTOTYPE_TOPOLOGY(16)
    a2a = achieved_all_to_all_bw(256e6, topo) / 1e9
    ar = achieved_all_reduce_bw(256e6, topo) / 1e9
    check("AlltoAll calibration", abs(a2a - 7.0) < 1.5,
          f"{a2a:.1f} GB/s (paper: ~7)")
    check("AllReduce calibration", abs(ar - 60.0) < 10,
          f"{ar:.1f} GB/s (paper: ~60)")

    # 2. capacity arithmetic (Section 5.3.3)
    ladder = capacity_ladder(full_spec("F1"))
    check("F1 capacity ladder",
          abs(ladder[0].total_bytes - 96e12) < 2e12
          and abs(ladder[2].total_bytes - 24e12) < 2e12,
          f"{ladder[0].total_bytes / 1e12:.0f} -> "
          f"{ladder[2].total_bytes / 1e12:.1f} TB (paper: 96 -> 24)")

    # 3. smoke train: distributed == reference
    tables = tuple(EmbeddingTableConfig(f"t{i}", 64, 8, avg_pooling=3.0)
                   for i in range(3))
    config = DLRMConfig(dense_dim=4, bottom_mlp=(16, 8), tables=tables,
                        top_mlp=(16,))
    ds = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
    batches = ds.batches(16, 3)
    reference = DLRM(config, seed=0)
    ref_opt = nn.SGD(reference.dense_parameters(), lr=0.1)
    ref_sparse = SparseAdaGrad(lr=0.1)
    ref_losses = [reference.train_step(b, ref_opt, ref_sparse)
                  for b in batches]
    trainer = NeoTrainer.from_planner(
        config, ClusterTopology(num_nodes=1, gpus_per_node=4),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0,
        planner_config=PlannerConfig(world_size=4, ranks_per_node=4,
                                     dp_threshold_rows=16))
    losses = [trainer.train_step(b.split(4)) for b in batches]
    drift = max(abs(a - b) for a, b in zip(ref_losses, losses))
    check("distributed == reference", drift < 1e-4,
          f"max loss drift {drift:.2e} over {len(batches)} steps")
    check("replicas in sync", trainer.replicas_in_sync(),
          f"{trainer.world_size} ranks bitwise identical")

    print(f"\n{'ALL CHECKS PASSED' if not failures else 'FAILURES: ' + str(failures)}")
    return 0 if not failures else 1


def trace_command(args: argparse.Namespace) -> int:
    """Run a traced mini training run and emit trace JSON + summary."""
    from repro import nn
    from repro.comms import ClusterTopology
    from repro.core import NeoTrainer
    from repro.data import SyntheticCTRDataset
    from repro.embedding import SparseAdaGrad
    from repro.models import full_spec, mini_config
    from repro.obs import MetricRegistry, Tracer, render_summary
    from repro.perf import TrainingSetup, latency_breakdown
    from repro.sharding import PlannerConfig

    if args.ranks < 1 or args.iters < 1 or args.batch < 1:
        print("error: --ranks, --iters and --batch must be positive",
              file=sys.stderr)
        return 2
    if args.batch % args.ranks:
        print(f"error: --batch {args.batch} must be divisible by "
              f"--ranks {args.ranks}", file=sys.stderr)
        return 2

    config = mini_config(args.model)
    topology = ClusterTopology(num_nodes=1, gpus_per_node=args.ranks)
    tracer = Tracer(clock=args.clock)
    registry = MetricRegistry()
    trainer = NeoTrainer.from_planner(
        config, topology,
        dense_optimizer=lambda p: nn.SGD(p, lr=0.05),
        sparse_optimizer=SparseAdaGrad(lr=0.05), seed=0,
        planner_config=PlannerConfig(world_size=args.ranks,
                                     ranks_per_node=args.ranks,
                                     dp_threshold_rows=64),
        trace=tracer, metrics=registry)
    dataset = SyntheticCTRDataset(config.tables, dense_dim=config.dense_dim,
                                  seed=1)
    for batch in dataset.batches(args.batch, args.iters):
        trainer.train_step(batch.split(args.ranks))

    trace = tracer.trace
    trace.save(args.out)
    print(f"wrote {len(trace.closed_events())} spans to {args.out} "
          f"(open in Perfetto or chrome://tracing)\n")

    # analytical Fig. 12 breakdown of the *full-scale* named model, for
    # the measured-vs-model share comparison
    setup = TrainingSetup(spec=full_spec(args.model), topology=topology,
                          global_batch=1024 * args.ranks)
    model_breakdown = latency_breakdown(setup)
    print(render_summary(
        trace, registry, model=model_breakdown,
        title=f"Traced run: {args.model} mini, {args.ranks} ranks, "
              f"{args.iters} iterations"))
    return 0


def serve_bench_command(args: argparse.Namespace) -> int:
    """Freeze a mini model and sweep offered load through the server."""
    from repro.data import SyntheticCTRDataset
    from repro.models import DLRM, mini_config
    from repro.serving import (BatchingPolicy, FreezeConfig, InferenceServer,
                               ServingPerfModel, freeze, run_load_test)

    if args.requests < 1:
        print("error: --requests must be positive", file=sys.stderr)
        return 2
    if args.slo_ms <= 0 or args.qps <= 0:
        print("error: --slo-ms and --qps must be positive", file=sys.stderr)
        return 2

    config = mini_config(args.model)
    model = freeze(DLRM(config, seed=args.seed),
                   FreezeConfig(precision=args.precision))
    dataset = SyntheticCTRDataset(config.tables, dense_dim=config.dense_dim,
                                  seed=args.seed)
    perf = ServingPerfModel()
    policies = [
        ("batch=1", BatchingPolicy(max_batch_size=1, max_wait_s=0.0)),
        (f"batch<={args.max_batch}",
         BatchingPolicy(max_batch_size=args.max_batch,
                        max_wait_s=args.max_wait_us * 1e-6)),
    ]
    print(f"serve-bench: {args.model} mini ({args.precision} embeddings, "
          f"{model.storage_bytes() / 1e6:.1f} MB), "
          f"{args.requests} requests, SLO {args.slo_ms:.1f} ms\n")
    from repro.serving import LoadReport
    header = ["policy"] + LoadReport.ROW_HEADER
    rows = []
    for name, policy in policies:
        server = InferenceServer(model, policy, perf)
        for scale in (0.5, 1.0, 2.0):
            report = run_load_test(server, dataset, qps=args.qps * scale,
                                   num_requests=args.requests,
                                   slo_s=args.slo_ms * 1e-3, seed=args.seed)
            rows.append([name] + report.row())
    widths = [max(len(header[c]), *(len(r[c]) for r in rows))
              for c in range(len(header))]
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return 0


def online_bench_command(args: argparse.Namespace) -> int:
    """Sweep refresh cadences through the co-simulation and print the
    staleness vs quality vs goodput curve."""
    from repro import nn
    from repro.comms import ClusterTopology
    from repro.core import NeoTrainer, TrainingLoop
    from repro.data import SyntheticCTRDataset
    from repro.embedding import SparseAdaGrad
    from repro.models import full_spec, mini_config
    from repro.online import OnlineConfig, cadence_from_sizing, \
        run_cadence_sweep
    from repro.online.report import OnlineReport, render_table
    from repro.sharding import PlannerConfig

    if args.steps < 1 or args.ranks < 1 or args.batch < 1:
        print("error: --steps, --ranks and --batch must be positive",
              file=sys.stderr)
        return 2
    if args.batch % args.ranks:
        print(f"error: --batch {args.batch} must be divisible by "
              f"--ranks {args.ranks}", file=sys.stderr)
        return 2

    step_time_s = args.step_time_ms * 1e-3
    cadences = [int(c) for c in args.cadences.split(",")]
    if args.freshness_budget_s is not None:
        # paper-scale linkage: the smallest cluster meeting the target
        # training QPS sets the step time; the freshness budget sets the
        # cadence. The co-sim then runs the mini model on that clock.
        swap_every, step_time_s, sizing = cadence_from_sizing(
            full_spec(args.model), args.target_qps,
            args.freshness_budget_s)
        print(f"sizing: {sizing.nodes} nodes at "
              f"{sizing.achieved_qps / 1e6:.2f} M samples/s -> step "
              f"{step_time_s * 1e3:.1f} ms, swap every {swap_every} "
              f"steps for a {args.freshness_budget_s:.0f} s budget\n")
        if swap_every not in cadences:
            cadences = sorted(c for c in cadences if c) + [swap_every, 0]

    config = mini_config(args.model)

    def make_loop():
        trainer = NeoTrainer.from_planner(
            config, ClusterTopology(num_nodes=1, gpus_per_node=args.ranks),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.05),
            sparse_optimizer=SparseAdaGrad(lr=0.05), seed=args.seed,
            planner_config=PlannerConfig(world_size=args.ranks,
                                         ranks_per_node=args.ranks,
                                         dp_threshold_rows=64))
        dataset = SyntheticCTRDataset(config.tables,
                                      dense_dim=config.dense_dim,
                                      seed=args.seed + 1)
        return TrainingLoop(trainer, dataset, global_batch_size=args.batch,
                            eval_every=10 ** 6)

    cosim_config = OnlineConfig(
        num_steps=args.steps, swap_every_steps=1,
        train_step_time_s=step_time_s, qps=args.qps,
        slo_s=args.slo_ms * 1e-3, seed=args.seed,
        eval_batch_size=args.eval_batch)
    print(f"online-bench: {args.model} mini, {args.ranks} ranks, "
          f"{args.steps} steps at {step_time_s * 1e3:.1f} ms/step, "
          f"{args.qps:.0f} qps offered, cadences "
          f"{', '.join('never' if c == 0 else str(c) for c in cadences)}\n")
    report = run_cadence_sweep(make_loop, cadences, cosim_config)
    print(render_table(OnlineReport.ROW_HEADER, report.rows()))
    print(f"\nfresh model NE: {report.fresh_ne:.5f}")
    print(f"completed hot-swaps: {report.total_swaps()}, shed during "
          f"swap: {report.max_shed_during_swap()}, staleness->NE-gap "
          f"monotone: {report.ne_gap_monotone_in_staleness()}")
    return 0


def fleet_bench_command(args: argparse.Namespace) -> int:
    """Serve a compressed diurnal day through an autoscaled replica
    fleet and compare against the cheapest static fleet."""
    from repro.data import SyntheticCTRDataset
    from repro.fleet import (DEFAULT_DAY_CURVE, AutoscalerConfig, DayCurve,
                             FleetTraffic, RouterPolicy, ServingFleet,
                             replica_warmup_s, run_autoscaled_day,
                             smallest_static_fleet)
    from repro.models import DLRM, mini_config
    from repro.serving import (BatchingPolicy, FreezeConfig,
                               ServingPerfModel, freeze)

    if args.replicas < 1 or args.users < 1:
        print("error: --replicas and --users must be positive",
              file=sys.stderr)
        return 2
    if args.duration <= 0 or args.slo_ms <= 0 or args.window_s <= 0:
        print("error: --duration, --slo-ms and --window-s must be "
              "positive", file=sys.stderr)
        return 2

    config = mini_config(args.model)
    model = freeze(DLRM(config, seed=args.seed),
                   FreezeConfig(precision=args.precision))
    dataset = SyntheticCTRDataset(config.tables, dense_dim=config.dense_dim,
                                  seed=args.seed)
    fleet = ServingFleet(
        model,
        policy=BatchingPolicy(max_batch_size=args.max_batch,
                              max_wait_s=0.05),
        perfs=[ServingPerfModel(overhead_s=args.overhead_ms * 1e-3)
               for _ in range(args.replicas)],
        router=RouterPolicy(kind=args.router, seed=args.seed))
    nnz = sum(t.avg_pooling for t in config.tables)
    fleet_cap = fleet.capacity_qps(args.max_batch, nnz)
    mean_qps = args.qps if args.qps is not None else 0.6 * fleet_cap
    traffic = FleetTraffic(
        mean_qps=mean_qps, duration_s=args.duration,
        curve=DayCurve(hourly=DEFAULT_DAY_CURVE, day_s=args.duration),
        num_users=args.users, seed=args.seed)
    requests = traffic.requests(dataset)
    cfg = AutoscalerConfig(
        slo_s=args.slo_ms * 1e-3, window_s=args.window_s,
        min_replicas=1, max_replicas=args.replicas,
        up_p99_frac=0.4, down_p99_frac=0.3, cooldown_s=2 * args.window_s)

    print(f"fleet-bench: {args.model} mini ({args.precision} embeddings), "
          f"{args.replicas}x {args.router} replicas "
          f"({fleet_cap:.0f} qps fleet capacity), {len(requests)} "
          f"requests from {args.users} users over a {args.duration:.0f} s "
          f"day, SLO {args.slo_ms:.0f} ms, replica warm-up "
          f"{replica_warmup_s(model) * 1e3:.0f} ms\n")
    elastic = run_autoscaled_day(fleet, requests, cfg)
    print(elastic.render())
    static = smallest_static_fleet(fleet, requests, cfg)
    saved = 1.0 - elastic.replica_seconds / static.replica_seconds
    print(f"\nautoscaled: {elastic.replica_seconds:.0f} replica-s, "
          f"peak {elastic.peak_replicas}, trough "
          f"{elastic.trough_replicas}, p99 "
          f"{elastic.merged.p99_s * 1e3:.1f} ms, SLO held "
          f"{elastic.slo_held}")
    print(f"static x{static.peak_replicas}: "
          f"{static.replica_seconds:.0f} replica-s, p99 "
          f"{static.merged.p99_s * 1e3:.1f} ms, SLO held "
          f"{static.slo_held}")
    print(f"replica-seconds saved by elasticity: {saved * 100:.0f}%")
    return 0


def cache_bench_command(args: argparse.Namespace) -> int:
    """Sweep every RowCache kind over hashed Zipf traces and print the
    hit-rate / effective-bandwidth comparison."""
    import time

    from repro.cache import ArrayBackingStore, PrefetchPipeline, make_cache
    from repro.data import zipf_indices
    from repro.obs import Tracer

    if args.rows < 1 or args.capacity < 1 or args.dim < 1:
        print("error: --rows, --capacity and --dim must be positive",
              file=sys.stderr)
        return 2
    if args.steps < 1 or args.warm_steps < 1 or args.ids_per_step < 1:
        print("error: --steps, --warm-steps and --ids-per-step must be "
              "positive", file=sys.stderr)
        return 2
    try:
        alphas = [float(a) for a in args.alphas.split(",")]
    except ValueError:
        print(f"error: bad --alphas {args.alphas!r}", file=sys.stderr)
        return 2

    pcie_bw, hbm_bw = 12e9, 850e9  # Table 2 tier bandwidths
    row_bytes = args.dim * 4
    weights = np.random.default_rng(1).normal(
        size=(args.rows, args.dim)).astype(np.float32)
    permutation = np.random.default_rng(42).permutation(args.rows)

    def variant(kind):
        if kind == "uvm":
            return make_cache("uvm", row_dim=args.dim,
                              capacity_rows=args.capacity,
                              rows_per_page=args.rows_per_page)
        if kind == "set_associative":
            return make_cache("set_associative", row_dim=args.dim,
                              capacity_rows=args.capacity, ways=32)
        return make_cache("freq_aware", row_dim=args.dim,
                          capacity_rows=args.capacity,
                          chunk_rows=args.chunk_rows)

    print(f"cache-bench: {args.rows:,} rows, dim {args.dim}, fast tier "
          f"{args.capacity:,} rows, {args.warm_steps} warm + {args.steps} "
          f"measured steps of {args.ids_per_step} ids\n")
    header = ["alpha", "variant", "hit rate", "slow-tier traffic",
              "eff. BW", "hidden prefetch"]
    rows = []
    for alpha in alphas:
        rng = np.random.default_rng(args.seed)
        warm = [permutation[zipf_indices(args.rows, args.ids_per_step,
                                         rng, alpha=alpha)]
                for _ in range(args.warm_steps)]
        measure = [permutation[zipf_indices(args.rows, args.ids_per_step,
                                            rng, alpha=alpha)]
                   for _ in range(args.steps)]
        for kind in ("set_associative", "uvm", "freq_aware",
                     "freq+prefetch"):
            backing = ArrayBackingStore(weights)
            cache = variant(kind)
            if kind.startswith("freq"):
                cache.warm(np.bincount(np.concatenate(warm),
                                       minlength=args.rows), backing)
            else:
                for ids in warm:
                    cache.read(ids, backing)
            cache.reset_stats()
            backing.reset_counters()
            pipe = PrefetchPipeline(cache, backing, tracer=Tracer()) \
                if kind == "freq+prefetch" else None
            for k, ids in enumerate(measure):
                t0 = time.perf_counter()
                out = cache.read(ids, backing)
                if not np.array_equal(out, weights[ids]):
                    print(f"error: {kind} read diverged from backing "
                          f"store at alpha {alpha}", file=sys.stderr)
                    return 1
                if pipe is not None and k + 1 < len(measure):
                    pipe.stage(measure[k + 1],
                               compute_s=time.perf_counter() - t0)
            stats = cache.stats
            overlap = pipe.overlap_report() if pipe is not None else None
            staged = overlap["bytes_staged"] if overlap else 0
            exposed = (1.0 - overlap["hidden_frac"]) if overlap else 0.0
            demand = backing.bytes_read - staged
            requested = args.steps * args.ids_per_step * row_bytes
            slow_t = (demand + staged * exposed) / pcie_bw
            eff_bw = requested / (stats.hits * row_bytes / hbm_bw + slow_t)
            rows.append([f"{alpha:.2f}", kind, f"{stats.hit_rate:.1%}",
                         f"{demand / 1e6:.1f} MB",
                         f"{eff_bw / 1e9:.1f} GB/s",
                         f"{overlap['hidden_frac']:.0%}" if overlap
                         else "-"])
    widths = [max(len(header[c]), *(len(r[c]) for r in rows))
              for c in range(len(header))]
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return 0


def planner_bench_command(args: argparse.Namespace) -> int:
    """Plan a mini model's per-table representations under a budget and
    print the assignment plus the uniform-baseline comparison."""
    from repro.data import SyntheticCTRDataset
    from repro.models import DLRM, mini_config
    from repro.planner import (PlanBudget, PlannerCostModel,
                               plan_representation, uniform_plan)

    if not 0.0 <= args.budget_frac:
        print("error: --budget-frac must be >= 0", file=sys.stderr)
        return 2
    if args.quality_floor is not None and args.quality_floor < 0:
        print("error: --quality-floor must be >= 0", file=sys.stderr)
        return 2
    if args.eval_batch < 1:
        print("error: --eval-batch must be positive", file=sys.stderr)
        return 2

    config = mini_config(args.model)
    model = DLRM(config, seed=args.seed)
    full_bytes = sum(t.num_parameters * 4 for t in config.tables)
    cost = PlannerCostModel(allow_tt=not args.no_tt)
    budget = PlanBudget(hot_bytes=full_bytes * args.budget_frac,
                        quality_floor=args.quality_floor,
                        ne_floor=args.ne_floor)
    eval_batch = None
    if args.ne_floor is not None:
        eval_batch = SyntheticCTRDataset(
            config.tables, dense_dim=config.dense_dim,
            seed=args.seed + 1).batch(args.eval_batch, 0)
    plan = plan_representation(model, budget, cost=cost,
                               eval_batch=eval_batch)

    floor_txt = ("none" if args.quality_floor is None
                 else f"{args.quality_floor:g}")
    print(f"planner-bench: {args.model} mini, budget "
          f"{args.budget_frac:.0%} of {full_bytes / 1024:.0f} KiB full "
          f"fp32, quality floor {floor_txt}\n")
    header = ["table", "kind", "hot KiB", "total KiB", "error"]
    rows = [[name, a.kind, f"{a.hot_bytes / 1024:.1f}",
             f"{a.total_bytes / 1024:.1f}", f"{a.error:.2g}"]
            for name, a in sorted(plan.assignments.items())]
    widths = [max(len(header[c]), *(len(r[c]) for r in rows))
              for c in range(len(header))]
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    print(f"\nmixed plan: {plan.hot_bytes() / 1024:.1f} KiB hot "
          f"({plan.memory_saving():.0%} saved), max element error "
          f"{plan.max_error():.2g}")
    if plan.measured_ne_gap is not None:
        print(f"measured NE gap vs fp32 export: "
              f"{plan.measured_ne_gap:.2e} (floor {args.ne_floor:g})")
    print("\nuniform baselines at the same floor:")
    for kind in ("full", "fp16", "bf16", "int8"):
        uniform = uniform_plan(model, kind, cost=cost)
        feasible = (args.quality_floor is None
                    or uniform.max_error() <= args.quality_floor)
        print(f"  {kind:>5}: {uniform.hot_bytes() / 1024:8.1f} KiB hot, "
              f"max error {uniform.max_error():.2g}"
              f"{'' if feasible else '  (breaches floor)'}")
    return 0


def main(argv=None) -> int:
    from repro.models import MODEL_NAMES

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Neo/ZionEX reproduction command line")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("selfcheck", help="verify the installation (default)")
    trace_p = sub.add_parser(
        "trace", help="run traced iterations, write Chrome trace JSON")
    trace_p.add_argument("--model", default="A2", choices=MODEL_NAMES,
                         help="Table 3 model whose mini config to train")
    trace_p.add_argument("--ranks", type=int, default=4,
                         help="simulated ranks (single node)")
    trace_p.add_argument("--iters", type=int, default=3,
                         help="training iterations to trace")
    trace_p.add_argument("--batch", type=int, default=64,
                         help="global batch size")
    trace_p.add_argument("--clock", default="wall",
                         choices=("wall", "logical"),
                         help="span clock: wall seconds or logical ticks")
    trace_p.add_argument("--out", default="trace.json",
                         help="output path for the Chrome trace JSON")
    serve_p = sub.add_parser(
        "serve-bench",
        help="replay Poisson load through the micro-batching server")
    serve_p.add_argument("--model", default="A2", choices=MODEL_NAMES,
                         help="Table 3 model whose mini config to serve")
    serve_p.add_argument("--precision", default="fp32",
                         choices=("fp32", "fp16", "bf16", "int8"),
                         help="embedding storage precision at freeze time")
    serve_p.add_argument("--qps", type=float, default=2000.0,
                         help="center offered load (swept at 0.5x/1x/2x)")
    serve_p.add_argument("--requests", type=int, default=2000,
                         help="requests per load point")
    serve_p.add_argument("--slo-ms", type=float, default=5.0,
                         help="latency SLO in milliseconds")
    serve_p.add_argument("--max-batch", type=int, default=64,
                         help="micro-batcher max batch size")
    serve_p.add_argument("--max-wait-us", type=float, default=2000.0,
                         help="micro-batcher max wait in microseconds")
    serve_p.add_argument("--seed", type=int, default=0,
                         help="load / model / dataset seed")
    online_p = sub.add_parser(
        "online-bench",
        help="co-simulate train-while-serving across refresh cadences")
    online_p.add_argument("--model", default="A2", choices=MODEL_NAMES,
                          help="Table 3 model whose mini config to co-sim")
    online_p.add_argument("--steps", type=int, default=6,
                          help="training steps in the co-simulation")
    online_p.add_argument("--ranks", type=int, default=2,
                          help="simulated training ranks (single node)")
    online_p.add_argument("--batch", type=int, default=32,
                          help="global training batch size")
    online_p.add_argument("--step-time-ms", type=float, default=10.0,
                          help="virtual seconds per training step, in ms")
    online_p.add_argument("--qps", type=float, default=500.0,
                          help="offered serving load")
    online_p.add_argument("--slo-ms", type=float, default=5.0,
                          help="latency SLO in milliseconds")
    online_p.add_argument("--cadences", default="1,3,0",
                          help="comma-separated swap cadences (0 = never)")
    online_p.add_argument("--eval-batch", type=int, default=128,
                          help="held-out batch size for snapshot NE")
    online_p.add_argument("--freshness-budget-s", type=float, default=None,
                          metavar="S",
                          help="derive step time and cadence from the "
                               "perf.online cluster sizing for --model")
    online_p.add_argument("--target-qps", type=float, default=2e6,
                          help="training samples/s target for the sizing "
                               "(with --freshness-budget-s)")
    online_p.add_argument("--seed", type=int, default=0,
                          help="traffic / model / dataset seed")
    fleet_p = sub.add_parser(
        "fleet-bench",
        help="autoscale a replica fleet through a diurnal day")
    fleet_p.add_argument("--model", default="A2", choices=MODEL_NAMES,
                         help="Table 3 model whose mini config to serve")
    fleet_p.add_argument("--precision", default="fp32",
                         choices=("fp32", "fp16", "bf16", "int8"),
                         help="embedding storage precision at freeze time")
    fleet_p.add_argument("--replicas", type=int, default=4,
                         help="fleet size (autoscaler ceiling)")
    fleet_p.add_argument("--router", default="power_of_two",
                         choices=("round_robin", "least_loaded",
                                  "power_of_two"),
                         help="routing policy across replicas")
    fleet_p.add_argument("--qps", type=float, default=None,
                         help="mean offered load (default: 60%% of fleet "
                              "capacity)")
    fleet_p.add_argument("--duration", type=float, default=40.0,
                         help="virtual length of the compressed day, s")
    fleet_p.add_argument("--window-s", type=float, default=2.0,
                         help="autoscaler observation window, s")
    fleet_p.add_argument("--users", type=int, default=10000,
                         help="Zipf user population size")
    fleet_p.add_argument("--slo-ms", type=float, default=1000.0,
                         help="latency SLO in milliseconds")
    fleet_p.add_argument("--max-batch", type=int, default=4,
                         help="micro-batcher max batch size")
    fleet_p.add_argument("--overhead-ms", type=float, default=200.0,
                         help="per-dispatch overhead per replica, ms "
                              "(sets replica capacity)")
    fleet_p.add_argument("--seed", type=int, default=0,
                         help="traffic / model / dataset seed")
    cache_p = sub.add_parser(
        "cache-bench",
        help="sweep every RowCache kind over hashed Zipf traces")
    cache_p.add_argument("--rows", type=int, default=50_000,
                         help="embedding rows in the backing store")
    cache_p.add_argument("--dim", type=int, default=32,
                         help="embedding dimension")
    cache_p.add_argument("--capacity", type=int, default=2048,
                         help="fast-tier capacity in rows (all kinds)")
    cache_p.add_argument("--alphas", default="1.05,1.1",
                         help="comma-separated Zipf alphas to sweep")
    cache_p.add_argument("--steps", type=int, default=20,
                         help="measured trace steps per alpha")
    cache_p.add_argument("--warm-steps", type=int, default=20,
                         help="warm stream steps before measurement")
    cache_p.add_argument("--ids-per-step", type=int, default=1024,
                         help="lookups per trace step")
    cache_p.add_argument("--chunk-rows", type=int, default=64,
                         help="freq-aware chunk size in rows")
    cache_p.add_argument("--rows-per-page", type=int, default=512,
                         help="UVM page size in rows")
    cache_p.add_argument("--seed", type=int, default=0,
                         help="trace seed")
    planner_p = sub.add_parser(
        "planner-bench",
        help="plan per-table representations under a memory budget")
    planner_p.add_argument("--model", default="A2", choices=MODEL_NAMES,
                           help="Table 3 model whose mini config to plan")
    planner_p.add_argument("--budget-frac", type=float, default=0.25,
                           help="hot-memory budget as a fraction of the "
                                "all-full fp32 footprint")
    planner_p.add_argument("--quality-floor", type=float, default=None,
                           metavar="E",
                           help="per-table max element error cap (hard)")
    planner_p.add_argument("--ne-floor", type=float, default=None,
                           metavar="G",
                           help="measured NE-gap cap against the fp32 "
                                "export (enables the eval pass)")
    planner_p.add_argument("--eval-batch", type=int, default=256,
                           help="eval batch size for the NE pass")
    planner_p.add_argument("--no-tt", action="store_true",
                           help="exclude tensor-train candidates")
    planner_p.add_argument("--seed", type=int, default=0,
                           help="model / dataset seed")
    args = parser.parse_args(argv)

    if args.command == "trace":
        return trace_command(args)
    if args.command == "serve-bench":
        return serve_bench_command(args)
    if args.command == "online-bench":
        return online_bench_command(args)
    if args.command == "fleet-bench":
        return fleet_bench_command(args)
    if args.command == "cache-bench":
        return cache_bench_command(args)
    if args.command == "planner-bench":
        return planner_bench_command(args)
    return selfcheck()


if __name__ == "__main__":
    sys.exit(main())

"""Alpha-beta latency model for collectives on the ZionEX-style fabric.

The correctness path (:mod:`repro.comms.collectives`) moves real data; this
module predicts how long those collectives take on the modelled cluster,
using the standard alpha (per-message latency) + beta (per-byte) model with
a two-level (NVLink within node, RoCE across nodes) hierarchy.

Calibration targets from the paper (Section 5.1 / Appendix A, 128 GPUs):

* AlltoAll of 256 MB per GPU achieves ~7 GB/s — bounded by the scale-out
  NIC (12.5 GB/s line rate, 10.5 GB/s achievable) and all-to-all incast.
* AllReduce of 256 MB achieves ~60 GB/s bus bandwidth — higher because the
  hierarchical algorithm rides NVLink for the intra-node phases.

Naming (v2): every entry point is named after the collective it models,
with the same word boundaries as :mod:`repro.comms.collectives` —
``all_to_all_time`` pairs with ``collectives.all_to_all`` and so on. The
pre-v2 smashed-together names (``alltoall_time``, ``allreduce_time``,
``allgather_time``, ``achieved_alltoall_bw``, ``achieved_allreduce_bw``)
remain as thin deprecated aliases.
"""

from __future__ import annotations

import warnings
from typing import Callable

from .topology import ClusterTopology

__all__ = ["all_to_all_time", "all_reduce_time", "reduce_scatter_time",
           "all_gather_time", "broadcast_time", "flat_reduce_scatter_time",
           "achieved_all_to_all_bw", "achieved_all_reduce_bw",
           "ALLTOALL_INCAST_EFFICIENCY",
           # deprecated aliases (pre-v2 names)
           "alltoall_time", "allreduce_time", "allgather_time",
           "achieved_alltoall_bw", "achieved_allreduce_bw"]

# fraction of achievable NIC bandwidth an all-to-all traffic pattern
# sustains (incast/congestion); calibrated to the paper's 7 GB/s at 256 MB
ALLTOALL_INCAST_EFFICIENCY = 0.67


def all_to_all_time(bytes_per_gpu: float, topo: ClusterTopology) -> float:
    """Time for an AlltoAll where each GPU exchanges ``bytes_per_gpu``.

    Each GPU sends ``(W-1)/W`` of its buffer away; the off-node fraction
    ``(W-G)/W`` crosses the NIC, the on-node fraction rides NVLink. The two
    phases overlap, so the slower one dominates; per-peer message setup
    adds the alpha term.
    """
    if bytes_per_gpu < 0:
        raise ValueError("bytes_per_gpu must be non-negative")
    w = topo.world_size
    g = topo.gpus_per_node
    if w == 1:
        return 0.0
    off_node_frac = (w - g) / w if w > g else 0.0
    on_node_frac = (min(g, w) - 1) / w
    t_net = 0.0
    if off_node_frac > 0:
        net_bw = topo.achievable_scaleout_bw * ALLTOALL_INCAST_EFFICIENCY
        t_net = bytes_per_gpu * off_node_frac / net_bw
    t_nvlink = bytes_per_gpu * on_node_frac / topo.scaleup_bw
    alpha = (w - 1) * (topo.scaleout_latency if w > g
                       else topo.scaleup_latency)
    return max(t_net, t_nvlink) + alpha


def all_reduce_time(bytes_per_gpu: float, topo: ClusterTopology) -> float:
    """Hierarchical ring AllReduce: intra-node reduce-scatter (NVLink),
    inter-node ring AllReduce on 1/G of the buffer (RoCE), intra-node
    all-gather (NVLink)."""
    if bytes_per_gpu < 0:
        raise ValueError("bytes_per_gpu must be non-negative")
    g = min(topo.gpus_per_node, topo.world_size)
    n = topo.num_nodes
    if topo.world_size == 1:
        return 0.0
    t_intra = 2 * bytes_per_gpu * (g - 1) / g / topo.scaleup_bw
    t_inter = 0.0
    if n > 1:
        chunk = bytes_per_gpu / g
        t_inter = 2 * chunk * (n - 1) / n / topo.achievable_scaleout_bw
    alpha = 2 * (g - 1) * topo.scaleup_latency \
        + 2 * (n - 1) * topo.scaleout_latency
    return t_intra + t_inter + alpha


def reduce_scatter_time(bytes_per_gpu: float, topo: ClusterTopology) -> float:
    """Hierarchical ReduceScatter — half of the AllReduce data movement."""
    if bytes_per_gpu < 0:
        raise ValueError("bytes_per_gpu must be non-negative")
    g = min(topo.gpus_per_node, topo.world_size)
    n = topo.num_nodes
    if topo.world_size == 1:
        return 0.0
    t_intra = bytes_per_gpu * (g - 1) / g / topo.scaleup_bw
    t_inter = 0.0
    if n > 1:
        chunk = bytes_per_gpu / g
        t_inter = chunk * (n - 1) / n / topo.achievable_scaleout_bw
    alpha = (g - 1) * topo.scaleup_latency + (n - 1) * topo.scaleout_latency
    return t_intra + t_inter + alpha


def all_gather_time(bytes_per_gpu: float, topo: ClusterTopology) -> float:
    """AllGather mirrors ReduceScatter's movement pattern."""
    return reduce_scatter_time(bytes_per_gpu, topo)


def broadcast_time(payload_bytes: float, topo: ClusterTopology) -> float:
    """Two-level pipelined broadcast of ``payload_bytes`` from the root.

    The root's node leader forwards the full buffer around the inter-node
    ring (pipelined, so ``(N-1)/N`` of the buffer is exposed), then each
    node fans out over NVLink. Unlike AllGather — whose inter-node phase
    only moves the per-GPU chunk — the *whole* payload crosses the
    scale-out fabric, which is why broadcast deserved its own entry
    rather than riding ``all_gather_time``.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    w = topo.world_size
    if w == 1:
        return 0.0
    g = min(topo.gpus_per_node, w)
    n = topo.num_nodes
    t_inter = 0.0
    if n > 1:
        t_inter = payload_bytes * (n - 1) / n / topo.achievable_scaleout_bw
    t_intra = payload_bytes * (g - 1) / g / topo.scaleup_bw
    alpha = (g - 1) * topo.scaleup_latency + (n - 1) * topo.scaleout_latency
    return t_inter + t_intra + alpha


def flat_reduce_scatter_time(bytes_per_gpu: float,
                             topo: ClusterTopology) -> float:
    """Single-level ring ReduceScatter over the scale-out fabric only.

    This is what a ReduceScatter costs when shard placement cannot
    exploit NVLink locality (row shards scattered arbitrarily across
    nodes) — the comparator for the hierarchical TWRW scheme, whose
    whole point (Section 4.2.5) is keeping the reduction on NVLink.
    """
    if bytes_per_gpu < 0:
        raise ValueError("bytes_per_gpu must be non-negative")
    w = topo.world_size
    if w == 1:
        return 0.0
    t_ring = bytes_per_gpu * (w - 1) / w / topo.achievable_scaleout_bw
    return t_ring + (w - 1) * topo.scaleout_latency


def achieved_all_to_all_bw(bytes_per_gpu: float,
                           topo: ClusterTopology) -> float:
    """NCCL-tests-style achieved bandwidth: buffer size / time."""
    t = all_to_all_time(bytes_per_gpu, topo)
    return bytes_per_gpu / t if t > 0 else float("inf")


def achieved_all_reduce_bw(bytes_per_gpu: float,
                           topo: ClusterTopology) -> float:
    """Bus bandwidth: ``2 (W-1)/W * size / time`` (NCCL convention)."""
    w = topo.world_size
    t = all_reduce_time(bytes_per_gpu, topo)
    if t <= 0:
        return float("inf")
    return 2 * (w - 1) / w * bytes_per_gpu / t


def _deprecated_alias(new_fn: Callable[..., float],
                      old_name: str) -> Callable[..., float]:
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"repro.comms.perf_model.{old_name} is deprecated; use "
            f"{new_fn.__name__} (same signature)", DeprecationWarning,
            stacklevel=2)
        return new_fn(*args, **kwargs)
    wrapper.__name__ = old_name
    wrapper.__qualname__ = old_name
    wrapper.__doc__ = f"Deprecated alias of :func:`{new_fn.__name__}`."
    return wrapper


alltoall_time = _deprecated_alias(all_to_all_time, "alltoall_time")
allreduce_time = _deprecated_alias(all_reduce_time, "allreduce_time")
allgather_time = _deprecated_alias(all_gather_time, "allgather_time")
achieved_alltoall_bw = _deprecated_alias(achieved_all_to_all_bw,
                                         "achieved_alltoall_bw")
achieved_allreduce_bw = _deprecated_alias(achieved_all_reduce_bw,
                                          "achieved_allreduce_bw")

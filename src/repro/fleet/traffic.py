"""Diurnal day-curve + Zipf-user traffic for the serving fleet.

Production recommendation traffic is neither flat nor anonymous: the
offered rate follows a day curve (trough at night, evening peak — the
reason autoscaling pays at all), and the user population is heavily
Zipf-skewed, so a small set of hot users accounts for a large share of
requests. Both matter to the systems above this module: the day curve is
what the autoscaler tracks, and recurring hot users are what make
replica-local caches (and the frequency-aware cache arc after this one)
measurable — the same user always resubmits the *identical* sample.

Everything is a deterministic function of one seed, layered on the flat
Poisson substrate of :mod:`repro.serving.loadgen`:

* the arrival process is a non-homogeneous Poisson process built by
  *time-warping* a homogeneous trace through the inverse cumulative
  rate function of the :class:`DayCurve` (the standard inversion
  construction), so a flat curve degenerates to the historical
  flat-Poisson trace **bitwise** — the warp is skipped entirely;
* user draws come from the named ``USER_STREAM`` sub-stream of the same
  seed, so arrivals and user identities never correlate;
* request contents funnel through the shared
  :func:`repro.serving.loadgen.requests_from_arrivals`, one bulk
  dataset generation per trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..data.datagen import SyntheticCTRDataset
from ..serving.batcher import InferenceRequest
from ..serving.loadgen import (ARRIVAL_STREAM, USER_STREAM, PoissonLoadGen,
                               requests_from_arrivals)

__all__ = ["DayCurve", "DEFAULT_DAY_CURVE", "FleetTraffic"]

# Hourly rate multipliers of a typical consumer-app day: overnight
# trough, morning ramp, evening peak around 18:00-19:00. Normalized to
# mean 1.0 at use, so ``mean_qps`` stays the daily average whatever the
# shape. Peak-to-trough ratio ~6x — wide enough that a peak-provisioned
# static fleet wastes most of its replica-hours overnight.
DEFAULT_DAY_CURVE = (0.35, 0.30, 0.28, 0.27, 0.30, 0.38,
                     0.50, 0.65, 0.80, 0.92, 1.00, 1.05,
                     1.10, 1.15, 1.20, 1.30, 1.45, 1.60,
                     1.70, 1.65, 1.50, 1.20, 0.80, 0.50)


@dataclass(frozen=True)
class DayCurve:
    """A periodic diurnal rate-multiplier curve.

    ``hourly`` gives one multiplier per hour of the (virtual) day;
    :meth:`multiplier_at` interpolates linearly between hour centers and
    wraps around midnight. ``day_s`` is the virtual length of a day —
    benchmarks compress it (e.g. a 60 s "day") because virtual-time cost
    scales with request count, not simulated seconds.
    """

    hourly: Tuple[float, ...] = DEFAULT_DAY_CURVE
    day_s: float = 86400.0

    def __post_init__(self) -> None:
        if len(self.hourly) < 2:
            raise ValueError("need at least 2 hourly points")
        if any(h <= 0 for h in self.hourly):
            raise ValueError("hourly multipliers must be positive")
        if self.day_s <= 0:
            raise ValueError("day_s must be positive")

    @property
    def is_flat(self) -> bool:
        return len(set(self.hourly)) == 1

    def _normalized(self) -> np.ndarray:
        h = np.asarray(self.hourly, dtype=np.float64)
        return h / h.mean()

    def multiplier_at(self, t_s) -> np.ndarray:
        """Mean-1 rate multiplier at virtual time ``t_s`` (vectorized,
        periodic in ``day_s``)."""
        h = self._normalized()
        n = len(h)
        # hour centers, with wrap points on both sides for periodic interp
        phase = (np.asarray(t_s, dtype=np.float64) % self.day_s) \
            / self.day_s * n
        # hour centers at 0.5..n-0.5, plus the wrapped neighbors on
        # either side (previous day's last hour, next day's first)
        grid = np.concatenate(([-0.5], np.arange(n) + 0.5, [n + 0.5]))
        values = np.concatenate(([h[-1]], h, [h[0]]))
        return np.interp(phase, grid, values)

    def cumulative_rate(self, duration_s: float, grid_points: int = 4096
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """``(t_grid, integral of multiplier over [0, t])`` on a uniform
        grid — the Λ(t) (per unit mean rate) the NHPP inversion warps
        through."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        t = np.linspace(0.0, duration_s, grid_points)
        m = self.multiplier_at(t)
        dt = t[1] - t[0]
        # trapezoid cumulative integral, anchored at Λ(0) = 0
        cum = np.concatenate(([0.0], np.cumsum((m[1:] + m[:-1]) * 0.5 * dt)))
        return t, cum


@dataclass(frozen=True)
class FleetTraffic:
    """Seeded fleet arrival trace: diurnal rate, Zipf user population.

    ``mean_qps`` is the day-average offered rate; ``curve=None`` (or a
    flat curve) yields the historical flat Poisson trace bitwise.
    ``num_users=0`` keeps the pre-fleet anonymous behavior (every
    request a fresh sample); ``num_users>0`` draws each request's user
    from a Zipf(``zipf_alpha``) population of that size, and every
    request from one user carries the identical sample.
    """

    mean_qps: float
    duration_s: float
    curve: Optional[DayCurve] = None
    num_users: int = 0
    zipf_alpha: float = 1.05
    seed: int = 0
    stream: int = ARRIVAL_STREAM

    def __post_init__(self) -> None:
        if self.mean_qps <= 0:
            raise ValueError("mean_qps must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.num_users < 0:
            raise ValueError("num_users must be >= 0")

    @property
    def num_requests(self) -> int:
        return max(1, int(round(self.mean_qps * self.duration_s)))

    def arrival_times(self) -> np.ndarray:
        """NHPP arrivals over ``[0, duration_s]`` via inversion.

        A homogeneous Poisson trace at the mean rate becomes unit-rate
        by scaling, then warps through Λ⁻¹ of the day curve; where the
        curve runs above mean the warp compresses inter-arrival gaps
        (peak), below mean it stretches them (trough). Flat curves skip
        the warp so the trace is bit-identical to the plain generator.
        """
        gen = PoissonLoadGen(qps=self.mean_qps,
                             num_requests=self.num_requests,
                             seed=self.seed, stream=self.stream)
        homogeneous = gen.arrival_times()
        if self.curve is None or self.curve.is_flat:
            return homogeneous
        t_grid, cum = self.curve.cumulative_rate(self.duration_s)
        # unit-rate event times; Λ here is per unit mean rate, so scale
        # arrivals by mean_qps to match its units
        unit = homogeneous * self.mean_qps
        return np.interp(unit, cum * self.mean_qps, t_grid)

    def user_ids(self) -> Optional[np.ndarray]:
        """Zipf-ranked user id per request (hot user = low id), or
        ``None`` when the population is disabled."""
        if self.num_users == 0:
            return None
        rng = np.random.default_rng((self.seed, USER_STREAM))
        from ..data.datagen import zipf_indices
        return zipf_indices(self.num_users, self.num_requests, rng,
                            alpha=self.zipf_alpha)

    def requests(self, dataset: SyntheticCTRDataset
                 ) -> List[InferenceRequest]:
        """Materialize the trace over ``dataset``.

        With a user population, sample contents are generated once per
        *user* (bulk draw over the users that actually appear, densely
        re-indexed so the draw is sized to the active population) and
        shared by all of that user's requests.
        """
        arrivals = self.arrival_times()
        users = self.user_ids()
        if users is None:
            return requests_from_arrivals(dataset, arrivals,
                                          batch_index=self.seed)
        # dense re-index: row k of the bulk draw = k-th hottest active
        # user, so the draw covers exactly the users that occur
        unique, rows = np.unique(users, return_inverse=True)
        return requests_from_arrivals(dataset, arrivals,
                                      batch_index=self.seed,
                                      user_rows=rows)

"""Tests for low-precision numerics (fp16/bf16/int8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lowp


class TestFP16:
    def test_roundtrip_exact_for_representable(self):
        x = np.array([1.0, 0.5, -2.0, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(lowp.fp16_roundtrip(x), x)

    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000).astype(np.float32)
        err = np.abs(lowp.fp16_roundtrip(x) - x)
        # fp16 has 10 mantissa bits -> relative error <= 2^-11
        assert np.all(err <= np.abs(x) * 2 ** -11 + 1e-8)


class TestBF16:
    def test_roundtrip_exact_for_representable(self):
        # bf16 has 7 mantissa bits: 1.0, 1.5, -0.25 are representable
        x = np.array([1.0, 1.5, -0.25, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(lowp.bf16_roundtrip(x), x)

    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=1000).astype(np.float32)
        err = np.abs(lowp.bf16_roundtrip(x) - x)
        # 7 mantissa bits -> relative error <= 2^-8
        assert np.all(err <= np.abs(x) * 2 ** -8 + 1e-12)

    def test_preserves_fp32_range(self):
        """bf16 keeps the fp32 exponent, unlike fp16 which overflows."""
        x = np.array([1e38, -1e38], dtype=np.float32)
        out = lowp.bf16_roundtrip(x)
        assert np.all(np.isfinite(out))
        fp16_out = lowp.fp16_roundtrip(x)
        assert np.all(np.isinf(fp16_out))

    def test_round_to_nearest_even(self):
        # 1.0 + 2^-8 is exactly halfway between bf16 neighbours 1.0 and
        # 1.0078125; round-to-even picks 1.0 (even mantissa).
        halfway = np.float32(1.0) + np.float32(2.0 ** -8)
        out = lowp.bf16_roundtrip(np.array([halfway], dtype=np.float32))
        assert out[0] == np.float32(1.0)

    def test_uint16_storage(self):
        x = np.array([1.0], dtype=np.float32)
        stored = lowp.to_bf16(x)
        assert stored.dtype == np.uint16
        assert stored[0] == 0x3F80  # upper half of fp32 1.0

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100)
    def test_monotone_property(self, v):
        """Rounding never moves a value past its bf16 neighbours."""
        x = np.array([v], dtype=np.float32)
        out = lowp.bf16_roundtrip(x)
        assert abs(float(out[0]) - v) <= max(abs(v) * 2 ** -8, 1e-38)

    def test_shape_preserved(self):
        x = np.zeros((3, 4, 5), dtype=np.float32)
        assert lowp.bf16_roundtrip(x).shape == (3, 4, 5)


class TestInt8Rowwise:
    def test_reconstruction_error_bounded(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(16, 32)).astype(np.float32)
        codes, scale, offset = lowp.quantize_int8_rowwise(x)
        recon = lowp.dequantize_int8_rowwise(codes, scale, offset)
        # max error is half a quantization step per row
        row_span = x.max(axis=1) - x.min(axis=1)
        bound = row_span / 255.0 / 2.0 + 1e-6
        assert np.all(np.abs(recon - x) <= bound[:, None])

    def test_constant_row(self):
        x = np.full((1, 8), 3.25, dtype=np.float32)
        codes, scale, offset = lowp.quantize_int8_rowwise(x)
        recon = lowp.dequantize_int8_rowwise(codes, scale, offset)
        np.testing.assert_allclose(recon, x, atol=1e-6)

    def test_extremes_exact(self):
        """Row min and max reconstruct exactly (codes 0 and 255)."""
        x = np.array([[0.0, 1.0, 0.25, 0.5]], dtype=np.float32)
        codes, scale, offset = lowp.quantize_int8_rowwise(x)
        recon = lowp.dequantize_int8_rowwise(codes, scale, offset)
        assert recon[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert recon[0, 1] == pytest.approx(1.0, rel=1e-5)

    def test_codes_dtype(self):
        x = np.zeros((2, 4), dtype=np.float32)
        codes, _, _ = lowp.quantize_int8_rowwise(x)
        assert codes.dtype == np.uint8

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            lowp.quantize_int8_rowwise(np.zeros(4, dtype=np.float32))


class TestBytesPerElement:
    @pytest.mark.parametrize("dtype,expected", [
        ("fp32", 4), ("fp16", 2), ("bf16", 2), ("int8", 1)])
    def test_values(self, dtype, expected):
        assert lowp.bytes_per_element(dtype) == expected

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            lowp.bytes_per_element("fp8")

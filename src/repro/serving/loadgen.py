"""Seedable open-loop Poisson load generation and SLO reporting.

An *open-loop* generator emits arrivals from a Poisson process at the
offered rate regardless of how the server keeps up — the honest way to
measure tail latency (closed-loop generators self-throttle and hide
queueing collapse). Requests are single-user samples drawn from the
same synthetic CTR distribution training uses, so embedding id
popularity keeps its Zipf skew and the serving cache tier sees
realistic hot sets.

The report answers the SLO question directly: latency percentiles over
completed requests, goodput (completed-within-SLO per second of
makespan), shed rate from admission control, and SLO attainment. Same
seed, same policy, same report — bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..data.datagen import SyntheticCTRDataset
from .batcher import InferenceRequest
from .server import InferenceServer, ServeResult

__all__ = ["PoissonLoadGen", "LoadReport", "run_load_test"]


@dataclass(frozen=True)
class PoissonLoadGen:
    """Open-loop Poisson arrival generator over a synthetic CTR dataset."""

    qps: float
    num_requests: int
    seed: int = 0
    start_s: float = 0.0

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")

    @classmethod
    def for_duration(cls, qps: float, duration_s: float, seed: int = 0,
                     start_s: float = 0.0) -> "PoissonLoadGen":
        """A generator sized to cover ``duration_s`` of virtual time at
        the offered rate (expected arrival count, at least one request).

        The co-simulation uses this to stretch serving traffic over a
        training run's makespan; being a Poisson process, the actual
        last arrival lands near — not exactly at — the horizon.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        return cls(qps=qps, num_requests=max(1, int(round(qps * duration_s))),
                   seed=seed, start_s=start_s)

    def arrival_times(self) -> np.ndarray:
        """Cumulative exponential inter-arrival gaps at rate ``qps``."""
        rng = np.random.default_rng((self.seed, 0xA881))
        gaps = rng.exponential(1.0 / self.qps, size=self.num_requests)
        return self.start_s + np.cumsum(gaps)

    def requests(self, dataset: SyntheticCTRDataset
                 ) -> List[InferenceRequest]:
        """One single-sample request per arrival, ids drawn Zipf-skewed
        from ``dataset`` (deterministic in ``seed``)."""
        arrivals = self.arrival_times()
        # one bulk draw, then per-request single-sample slices: much
        # cheaper than num_requests independent batch(1) generations
        bulk = dataset.batch(self.num_requests, batch_index=self.seed)
        return [InferenceRequest(request_id=i, arrival_s=float(arrivals[i]),
                                 batch=bulk.slice(i, i + 1))
                for i in range(self.num_requests)]


@dataclass(frozen=True)
class LoadReport:
    """SLO-facing summary of one load-test run."""

    offered_qps: float
    num_offered: int
    num_completed: int
    num_shed: int
    slo_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    max_s: float
    goodput_qps: float       # completed-within-SLO per second of makespan
    completed_qps: float     # all completions per second of makespan
    slo_attainment: float    # fraction of *offered* requests inside SLO
    makespan_s: float
    mean_batch_samples: float

    @property
    def shed_fraction(self) -> float:
        return self.num_shed / self.num_offered if self.num_offered else 0.0

    def row(self) -> List[str]:
        """Compact table row for CLI / bench output."""
        return [f"{self.offered_qps:.0f}",
                f"{self.completed_qps:.0f}",
                f"{self.goodput_qps:.0f}",
                f"{self.p50_s * 1e3:.2f}",
                f"{self.p99_s * 1e3:.2f}",
                f"{100 * self.slo_attainment:.1f}%",
                f"{self.shed_fraction * 100:.1f}%",
                f"{self.mean_batch_samples:.1f}"]

    ROW_HEADER = ["offered qps", "completed qps", "goodput qps",
                  "p50 ms", "p99 ms", "SLO att.", "shed", "avg batch"]


def summarize(result: ServeResult, offered_qps: float, num_offered: int,
              slo_s: float) -> LoadReport:
    """Reduce a :class:`ServeResult` to the SLO-facing report."""
    lat = result.latencies_s()
    makespan = result.makespan_s()
    within = int(np.sum(lat <= slo_s)) if len(lat) else 0
    batch_sizes = [o.batch_samples for o in result.outcomes]
    return LoadReport(
        offered_qps=offered_qps,
        num_offered=num_offered,
        num_completed=result.num_completed,
        num_shed=result.num_shed,
        slo_s=slo_s,
        p50_s=result.percentile_s(50),
        p95_s=result.percentile_s(95),
        p99_s=result.percentile_s(99),
        mean_s=float(lat.mean()) if len(lat) else 0.0,
        max_s=float(lat.max()) if len(lat) else 0.0,
        goodput_qps=within / makespan if makespan > 0 else 0.0,
        completed_qps=result.num_completed / makespan
        if makespan > 0 else 0.0,
        slo_attainment=within / num_offered if num_offered else 0.0,
        makespan_s=makespan,
        mean_batch_samples=float(np.mean(batch_sizes))
        if batch_sizes else 0.0)


def run_load_test(server: InferenceServer, dataset: SyntheticCTRDataset,
                  qps: float, num_requests: int, slo_s: float,
                  seed: int = 0,
                  result_out: Optional[list] = None) -> LoadReport:
    """Generate a Poisson trace, serve it, and report against the SLO.

    ``result_out``, if given, receives the raw :class:`ServeResult` as
    its single element (for callers that also want responses/outcomes).
    """
    if slo_s <= 0:
        raise ValueError("slo_s must be positive")
    gen = PoissonLoadGen(qps=qps, num_requests=num_requests, seed=seed)
    requests = gen.requests(dataset)
    result = server.serve(requests)
    if result_out is not None:
        result_out.append(result)
    return summarize(result, offered_qps=qps, num_offered=num_requests,
                     slo_s=slo_s)

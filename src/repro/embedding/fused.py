"""Fused multi-table embedding lookup (paper Section 4.1.1, FBGEMM-style).

A DLRM can have ~1000s of embedding tables. Launching one lookup kernel per
table wastes launch overhead and bandwidth; the paper fuses all tables of a
device into a single batched kernel and additionally fuses the backward
pass with the sparse optimizer, avoiding materializing the full gradient
(which is ``L`` times larger than the update it produces).

Functionally we reproduce both fusions:

* :meth:`FusedEmbeddingCollection.forward` performs every table's pooled
  lookup in one call (one "kernel launch" — the launch counter lets the
  operator-level benchmarks quantify the 7x fused-vs-unfused claim via the
  performance model).
* :meth:`FusedEmbeddingCollection.backward_and_update` computes per-table
  sparse gradients and immediately applies the exact sparse optimizer,
  never holding more than one table's merged gradient at a time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import as_tracer
from .optim import SparseOptimizer
from .table import EmbeddingTable, EmbeddingTableConfig, SparseGradient

__all__ = ["FusedEmbeddingCollection"]


class FusedEmbeddingCollection:
    """A set of embedding tables updated and queried as one fused operator.

    Optionally instrumented: pass ``tracer=``/``registry=`` (or call
    :meth:`instrument`) to record ``embedding.fused_*`` spans and
    per-table ``embedding.lookup_rows`` counters. Instrumentation is
    read-only; the numerics are identical with it on or off.
    """

    def __init__(self, tables: Sequence[EmbeddingTable], tracer=None,
                 registry=None) -> None:
        if not tables:
            raise ValueError("need at least one table")
        names = [t.name for t in tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names: {names}")
        self.tables = list(tables)
        self._by_name = {t.name: t for t in tables}
        self.kernel_launches = 0  # one per fused forward/backward call
        self._pending_grads: Dict[str, SparseGradient] = {}
        self.tracer = as_tracer(tracer)
        self._scope = registry.scope("embedding") \
            if registry is not None else None

    def instrument(self, tracer=None, registry=None) -> None:
        """Attach a tracer and/or metric registry after construction."""
        if tracer is not None:
            self.tracer = as_tracer(tracer)
        if registry is not None:
            self._scope = registry.scope("embedding")

    def _count(self, name: str, table: str, rows: int) -> None:
        if self._scope is not None:
            self._scope.counter(name, table=table).inc(rows)

    @classmethod
    def from_configs(cls, configs: Sequence[EmbeddingTableConfig],
                     rng: Optional[np.random.Generator] = None
                     ) -> "FusedEmbeddingCollection":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls([EmbeddingTable(c, rng=rng) for c in configs])

    @property
    def names(self) -> List[str]:
        return [t.name for t in self.tables]

    def table(self, name: str) -> EmbeddingTable:
        return self._by_name[name]

    def num_parameters(self) -> int:
        return sum(t.num_parameters() for t in self.tables)

    def forward(self, batch: Dict[str, Tuple[np.ndarray, np.ndarray]]
                ) -> Dict[str, np.ndarray]:
        """Pooled lookup for every table; one fused call.

        ``batch`` maps table name to ``(indices, offsets)``. Tables not
        present in the batch are an error — a DLRM feeds every feature every
        iteration.
        """
        missing = set(self.names) - set(batch)
        if missing:
            raise KeyError(f"batch missing inputs for tables {sorted(missing)}")
        self.kernel_launches += 1
        out = {}
        with self.tracer.span("embedding.fused_fwd", cat="embedding",
                              tables=len(self.tables)):
            for t in self.tables:
                indices, offsets = batch[t.name]
                out[t.name] = t.forward(indices, offsets)
                self._count("lookup_rows", t.name, int(len(indices)))
        return out

    def backward(self, d_pooled: Dict[str, np.ndarray]
                 ) -> Dict[str, SparseGradient]:
        """Unfused backward: returns per-table sparse gradients."""
        self.kernel_launches += 1
        grads = {}
        with self.tracer.span("embedding.fused_bwd", cat="embedding",
                              tables=len(self.tables)):
            for t in self.tables:
                grads[t.name] = t.backward(d_pooled[t.name])
        self._pending_grads = grads
        return grads

    def backward_and_update(self, d_pooled: Dict[str, np.ndarray],
                            optimizer: SparseOptimizer) -> None:
        """Fused backward + exact sparse optimizer (Section 4.1.1).

        Never materializes gradients for more than one table at a time —
        the memory saving the paper attributes to this fusion.
        """
        self.kernel_launches += 1
        with self.tracer.span("embedding.fused_bwd_update", cat="embedding",
                              tables=len(self.tables)):
            for t in self.tables:
                grad = t.backward(d_pooled[t.name])
                optimizer.step(t, grad)
                self._count("update_rows", t.name, int(len(grad.rows)))

    def apply_optimizer(self, optimizer: SparseOptimizer) -> None:
        """Apply the optimizer to gradients captured by :meth:`backward`."""
        if not self._pending_grads:
            raise RuntimeError("no pending gradients; call backward first")
        for t in self.tables:
            optimizer.step(t, self._pending_grads[t.name])
        self._pending_grads = {}

    def memory_bytes(self, precision: Optional[str] = None) -> int:
        return sum(t.config.memory_bytes(precision) for t in self.tables)

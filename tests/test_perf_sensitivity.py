"""Tests for the sensitivity-analysis module."""

import numpy as np
import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.models import full_spec
from repro.perf import (KNOBS, SweepPoint, TrainingSetup, elasticity,
                        sensitivity_report, sweep_knob)


def base_setup(nodes=16):
    return TrainingSetup(spec=full_spec("A2"),
                         topology=PROTOTYPE_TOPOLOGY(nodes),
                         global_batch=65536, load_imbalance=1.15)


class TestSweepKnob:
    def test_sweep_values_recorded(self):
        points = sweep_knob(base_setup(), "load_imbalance",
                            [1.0, 1.5, 2.0])
        assert [p.value for p in points] == [1.0, 1.5, 2.0]
        assert all(p.qps > 0 for p in points)

    def test_imbalance_monotone_down(self):
        points = sweep_knob(base_setup(), "load_imbalance",
                            [1.0, 1.5, 2.0, 3.0])
        qps = [p.qps for p in points]
        assert all(a >= b for a, b in zip(qps, qps[1:]))

    def test_scaleout_monotone_up(self):
        points = sweep_knob(base_setup(), "scaleout_bw",
                            [5e9, 12.5e9, 25e9])
        qps = [p.qps for p in points]
        assert all(a <= b for a, b in zip(qps, qps[1:]))

    def test_unknown_knob(self):
        with pytest.raises(ValueError):
            sweep_knob(base_setup(), "gpu_color", [1.0])

    def test_empty_values(self):
        with pytest.raises(ValueError):
            sweep_knob(base_setup(), "scaleout_bw", [])

    def test_every_registered_knob_works(self):
        setup = base_setup()
        centers = {
            "global_batch": 65536, "load_imbalance": 1.5,
            "scaleout_bw": 12.5e9, "scaleup_bw": 150e9,
            "hbm_fraction": 0.5,
        }
        for knob in KNOBS:
            points = sweep_knob(setup, knob, [centers[knob]])
            assert points[0].qps > 0


class TestElasticity:
    def test_unit_slope(self):
        points = [SweepPoint("x", v, 10.0 * v) for v in (1.0, 2.0, 4.0)]
        assert elasticity(points) == pytest.approx(1.0)

    def test_flat_response(self):
        points = [SweepPoint("x", v, 42.0) for v in (1.0, 2.0, 4.0)]
        assert elasticity(points) == pytest.approx(0.0, abs=1e-9)

    def test_inverse_slope(self):
        points = [SweepPoint("x", v, 8.0 / v) for v in (1.0, 2.0, 4.0)]
        assert elasticity(points) == pytest.approx(-1.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            elasticity([SweepPoint("x", 1.0, 1.0)])

    def test_needs_variation(self):
        with pytest.raises(ValueError):
            elasticity([SweepPoint("x", 1.0, 1.0),
                        SweepPoint("x", 1.0, 2.0)])


class TestReport:
    def test_all_knobs_present(self):
        result = sensitivity_report(base_setup(), span=1.5, points=3)
        assert set(result) == set(KNOBS)

    def test_binding_resources_at_scale(self):
        """At 128 GPUs the network binds; on one node it does not."""
        big = sensitivity_report(base_setup(16), span=1.5, points=3)
        small = sensitivity_report(base_setup(1), span=1.5, points=3)
        assert big["scaleout_bw"] > small["scaleout_bw"]

    def test_validation(self):
        with pytest.raises(ValueError):
            sensitivity_report(base_setup(), span=1.0)
        with pytest.raises(ValueError):
            sensitivity_report(base_setup(), points=1)

"""Online-training cluster sizing (paper Sections 1, 4.1.3).

"Hierarchical memory training is also useful for applications such as
online training, which warrants using fewer nodes for training the same
model." This bench quantifies that: for each model, the minimum node
count that satisfies an online (reduced) throughput target, versus the
offline fleet — showing the hierarchy (HBM fraction < 1) is what makes
the small deployment possible at all.
"""

import pytest

from repro.models import full_spec
from repro.perf import min_nodes_for, sizing_sweep

OFFLINE_NODES = 16
ONLINE_TARGET_QPS = 100e3  # ~10x below the offline throughputs of Table 4


def sizing_rows():
    rows = []
    for name in ("A1", "A2", "F1"):
        spec = full_spec(name)
        result = min_nodes_for(spec, target_qps=ONLINE_TARGET_QPS,
                               max_nodes=OFFLINE_NODES)
        if result is None:
            rows.append((name, "-", "-", "-", "unreachable"))
            continue
        rows.append((name, result.nodes,
                     f"{result.hbm_fraction:.0%}",
                     f"{result.bw_fraction:.2f}",
                     f"{result.achieved_qps / 1e3:.0f}K"))
    return rows


def test_online_sizing(benchmark, report):
    rows = benchmark.pedantic(sizing_rows, rounds=1, iterations=1)
    report(f"Online training: min nodes for {ONLINE_TARGET_QPS / 1e3:.0f}K "
           f"QPS (offline fleet = {OFFLINE_NODES} nodes)",
           ["model", "min nodes", "HBM-resident", "lookup bw vs HBM",
            "QPS at min"], rows)
    by_model = {r[0]: r for r in rows}
    # A1/A2 run online on a small fraction of the offline fleet
    assert by_model["A1"][1] <= OFFLINE_NODES // 4
    assert by_model["A2"][1] <= OFFLINE_NODES // 2
    # F1 is capacity-bound: its min nodes come from memory, not QPS
    f1 = min_nodes_for(full_spec("F1"), target_qps=ONLINE_TARGET_QPS,
                       max_nodes=OFFLINE_NODES)
    assert f1 is not None
    assert f1.nodes > 8  # 24 TB needs most of the fleet's memory
    # and at that size the model does NOT fit in HBM alone — the
    # hierarchy (HBM fraction < 1, bw fraction < 1) is load-bearing
    assert f1.hbm_fraction < 0.5
    assert f1.bw_fraction < 1.0

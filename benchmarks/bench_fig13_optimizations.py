"""Fig. 13: model A2 throughput optimization waterfall on 128 GPUs.

The paper's ladder, cumulatively:

1. baseline: table-wise-only greedy sharding, FP32, 64K global batch
   (<400K QPS, severe load imbalance);
2. + optimized sharding (TW+CW+DP, LDM): ~+20%;
3. + FP16 embeddings (placement headroom -> better balance): ~+20%;
4. + quantized comms (FP16 fwd / BF16 bwd AlltoAll): direct volume cut;
5. + 256K global batch: better saturation/overlap;
total ~+87% over baseline.

Load imbalance at each rung is *measured* from the planner run with that
rung's constraints, not assumed.
"""

import pytest

from repro.comms import PROTOTYPE_TOPOLOGY, QuantizedCommsConfig
from repro.models import full_spec
from repro.perf import TrainingSetup, plan_imbalance, qps
from repro.sharding import (CostModelParams, EmbeddingShardingPlanner,
                            PlannerConfig, plan_cost_per_rank)

WORLD = 128


def imbalance(spec, partitioner, allow_cw_dp, memory_bytes,
              global_batch=65536):
    params = CostModelParams(global_batch=global_batch, world_size=WORLD)
    planner = EmbeddingShardingPlanner(
        PlannerConfig(world_size=WORLD, ranks_per_node=8,
                      partitioner=partitioner,
                      allow_column_wise=allow_cw_dp,
                      allow_data_parallel=allow_cw_dp,
                      device_memory_bytes=memory_bytes),
        cost_params=params)
    plan = planner.plan(list(spec.tables))
    return plan_imbalance(plan_cost_per_rank(plan, params))


def waterfall():
    spec = full_spec("A2")
    topo = PROTOTYPE_TOPOLOGY(WORLD // 8)
    # FP32 model is ~3 TB vs 4 TB HBM: little placement headroom. We model
    # the headroom effect by the memory budget given to the planner.
    tight = 32e9 * 0.9
    roomy = 32e9
    steps = []

    imb = imbalance(spec, "round_robin", allow_cw_dp=False,
                    memory_bytes=tight)
    steps.append(("baseline (naive TW sharding, fp32, 64K)", TrainingSetup(
        spec=spec, topology=topo, global_batch=65536, load_imbalance=imb)))

    imb = imbalance(spec, "ldm", allow_cw_dp=True, memory_bytes=tight)
    steps.append(("+ optimized sharding (TW+CW+DP, LDM)", TrainingSetup(
        spec=spec, topology=topo, global_batch=65536, load_imbalance=imb)))

    imb_fp16 = imbalance(spec, "ldm", allow_cw_dp=True, memory_bytes=roomy)
    steps.append(("+ fp16 embeddings", TrainingSetup(
        spec=spec, topology=topo, global_batch=65536,
        load_imbalance=imb_fp16, embedding_precision="fp16")))

    steps.append(("+ quantized comms", TrainingSetup(
        spec=spec, topology=topo, global_batch=65536,
        load_imbalance=imb_fp16, embedding_precision="fp16",
        comms=QuantizedCommsConfig.paper_recipe())))

    steps.append(("+ 256K global batch", TrainingSetup(
        spec=spec, topology=topo, global_batch=262144,
        load_imbalance=imb_fp16, embedding_precision="fp16",
        comms=QuantizedCommsConfig.paper_recipe())))

    return [(label, qps(setup)) for label, setup in steps]


def test_fig13_waterfall(benchmark, report):
    steps = benchmark.pedantic(waterfall, rounds=1, iterations=1)
    base = steps[0][1]
    rows = [(label, f"{q / 1e3:.0f}K", f"+{(q / base - 1) * 100:.0f}%")
            for label, q in steps]
    report("Fig 13: A2 optimization waterfall (128 GPUs)",
           ["configuration", "QPS", "vs baseline"], rows)
    values = [q for _, q in steps]
    # each rung helps (or at least does not hurt)
    assert all(b >= a * 0.999 for a, b in zip(values, values[1:]))
    # cumulative gain in the paper's neighbourhood (+87%)
    total_gain = values[-1] / values[0] - 1
    assert 0.4 < total_gain < 2.0
    # paper: baseline below 400K QPS and final at ~622K
    assert values[0] < 550e3

"""Fleet benchmark: capacity-vs-replicas, goodput under overload, and
the autoscaled diurnal day.

Three curves, all virtual-time deterministic (same seed, same JSON, any
machine):

* **capacity vs replicas** — each point serves a proportionally scaled
  overload trace (``overload`` x the per-replica saturated capacity)
  through an N-replica fleet under power-of-two-choices routing with
  predicted-completion admission. Efficiency is goodput normalized by
  N x the N=1 goodput; the gate demands >= 0.8x linear at the largest
  N, i.e. routing imbalance may cost at most 20%;
* **goodput under overload** — offered load swept past a fixed fleet's
  capacity. Predicted admission sheds exactly the requests that would
  miss the deadline, so goodput *plateaus* at capacity instead of
  collapsing into queueing;
* **the diurnal day** — a sharp-peaked day curve over a Zipf user
  population, served once under the SLO-driven autoscaler (warm-up
  priced from the frozen artifact's export path) and once by the
  cheapest static fleet that holds the SLO. The gate: the autoscaler
  holds day-level p99 <= SLO with fewer replica-seconds than static
  peak provisioning.

Two parity checks ride along: an N=1 round-robin fleet must reproduce
the single-server ``bench_serving`` batched report bitwise, and an
identical re-run must produce an identical merged report.

Run standalone to write ``BENCH_fleet.json``::

    PYTHONPATH=src python benchmarks/bench_fleet.py \
        [--quick] [--out PATH] [--min-scaling X]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fleet import (AutoscalerConfig, CapacityPoint, DayCurve,
                         FleetTraffic, RouterPolicy, ServingFleet,
                         capacity_sweep, overload_sweep, replica_warmup_s,
                         run_autoscaled_day, smallest_static_fleet)
from repro.serving import (BatchingPolicy, InferenceServer, ServingPerfModel,
                           run_load_test)

FULL_CONFIG = dict(
    num_tables=4, rows=400, dim=16, dense_dim=8, precision="fp32", seed=0,
    mode="full",
    # capacity / overload sweeps: dispatch-overhead-dominated replicas
    # (~1.5k qps each) so a few hundred requests per replica genuinely
    # saturate the fleet and the admission controller has to shed
    sweep_overhead_s=5e-3, slo_ms=50.0, max_batch=8, max_wait_us=2000.0,
    replica_counts=(1, 2, 4, 8), per_replica_requests=600, overload=1.5,
    overload_replicas=4, overload_scales=(0.5, 1.0, 1.5, 2.0),
    # diurnal day: even slower replicas (~20 qps) with an SLO scaled to
    # their ~0.25 s loaded-latency floor, so the hysteresis band
    # (0.3-0.4 x SLO) brackets the latencies a loaded replica produces
    day_duration_s=80.0, day_window_s=2.0, day_users=1_000_000,
    day_slo_ms=1000.0, day_overhead_s=0.2, day_max_batch=4,
    day_max_replicas=4, day_qps_factor=1.25)
QUICK_CONFIG = dict(
    FULL_CONFIG, num_tables=3, rows=200, dim=8, dense_dim=6,
    mode="quick",
    per_replica_requests=250, overload_scales=(0.5, 1.0, 2.0),
    day_duration_s=40.0, day_window_s=1.0, day_users=20_000)

# sharp evening peak (~2.8x mean after normalization, ~14x peak/trough):
# wide enough that static peak provisioning wastes most of the night
DAY_HOURLY = (0.2, 0.2, 0.2, 0.3, 0.5, 1.0, 2.0, 3.0, 2.6, 1.6, 0.8, 0.4)


def build_setup(config):
    import bench_serving
    return bench_serving.build_setup(config)


def sweep_policy(config):
    """Fleet-wide serving contract for the sweeps: dynamic batching with
    predicted-completion admission at the SLO deadline."""
    return BatchingPolicy(max_batch_size=config["max_batch"],
                          max_wait_s=config["max_wait_us"] * 1e-6,
                          admission="predicted",
                          deadline_s=config["slo_ms"] * 1e-3)


def _nnz(servable):
    return sum(t.avg_pooling for t in servable.config.tables)


def make_fleet(servable, n, policy, kind, seed, overhead_s):
    return ServingFleet(
        servable, policy=policy,
        perfs=[ServingPerfModel(overhead_s=overhead_s) for _ in range(n)],
        router=RouterPolicy(kind=kind, seed=seed))


def measure_capacity(config, servable, dataset):
    """Goodput at each replica count under proportional 1.5x overload,
    power-of-two-choices routing."""
    per_replica_cap = ServingPerfModel(
        overhead_s=config["sweep_overhead_s"]).capacity_qps(
        servable, config["max_batch"], _nnz(servable))
    per_replica_qps = config["overload"] * per_replica_cap
    slo_s = config["slo_ms"] * 1e-3
    policy = sweep_policy(config)

    def serve_at(n):
        fleet = make_fleet(servable, n, policy, "power_of_two",
                           config["seed"], config["sweep_overhead_s"])
        traffic = FleetTraffic(
            mean_qps=n * per_replica_qps,
            duration_s=config["per_replica_requests"] / per_replica_qps,
            seed=config["seed"])
        return fleet.serve(traffic.requests(dataset), slo_s=slo_s,
                           offered_qps=n * per_replica_qps).merged

    points = capacity_sweep(serve_at, config["replica_counts"],
                            per_replica_qps)
    return {"per_replica_capacity_qps": per_replica_cap,
            "per_replica_offered_qps": per_replica_qps,
            "points": points,
            "scaling_efficiency_at_max": points[-1].efficiency}


def measure_overload(config, servable, dataset):
    """Offered load swept past a fixed fleet's capacity: the predicted
    admission plateau."""
    n = config["overload_replicas"]
    policy = sweep_policy(config)
    slo_s = config["slo_ms"] * 1e-3
    fleet = make_fleet(servable, n, policy, "power_of_two", config["seed"],
                       config["sweep_overhead_s"])
    fleet_cap = fleet.capacity_qps(config["max_batch"], _nnz(servable))
    num_requests = n * config["per_replica_requests"]

    def serve_scaled(scale):
        qps = scale * fleet_cap
        traffic = FleetTraffic(mean_qps=qps,
                               duration_s=num_requests / qps,
                               seed=config["seed"])
        return fleet.serve(traffic.requests(dataset), slo_s=slo_s,
                           offered_qps=qps).merged

    reports = overload_sweep(serve_scaled, config["overload_scales"])
    scales = list(config["overload_scales"])
    at_cap = reports[scales.index(1.0)].goodput_qps
    return {"fleet_capacity_qps": fleet_cap, "scales": scales,
            "reports": reports,
            "plateau_ratio": reports[-1].goodput_qps / at_cap
            if at_cap > 0 else 0.0}


def measure_day(config, servable, dataset):
    """One diurnal day, autoscaled vs the cheapest SLO-holding static
    fleet. Replica warm-up is priced from the frozen artifact."""
    perf = ServingPerfModel(overhead_s=config["day_overhead_s"])
    cap = perf.capacity_qps(servable, config["day_max_batch"],
                            _nnz(servable))
    mean_qps = config["day_qps_factor"] * cap
    duration = config["day_duration_s"]
    policy = BatchingPolicy(max_batch_size=config["day_max_batch"],
                            max_wait_s=0.05)
    fleet = ServingFleet(
        servable, policy=policy,
        perfs=[perf] * config["day_max_replicas"],
        router=RouterPolicy(kind="round_robin"))
    traffic = FleetTraffic(mean_qps=mean_qps, duration_s=duration,
                           curve=DayCurve(hourly=DAY_HOURLY, day_s=duration),
                           num_users=config["day_users"],
                           seed=config["seed"])
    requests = traffic.requests(dataset)
    window = config["day_window_s"]
    cfg = AutoscalerConfig(
        slo_s=config["day_slo_ms"] * 1e-3, window_s=window,
        min_replicas=1, max_replicas=config["day_max_replicas"],
        up_p99_frac=0.4, down_p99_frac=0.3, cooldown_s=2 * window)
    elastic = run_autoscaled_day(fleet, requests, cfg)
    static = smallest_static_fleet(fleet, requests, cfg)
    return {"mean_qps": mean_qps, "per_replica_capacity_qps": cap,
            "num_requests": len(requests), "num_users": config["day_users"],
            "warmup_s": replica_warmup_s(servable),
            "elastic": elastic, "static": static,
            "replica_seconds_saved_frac":
                1.0 - elastic.replica_seconds / static.replica_seconds}


def measure_parity(config):
    """N=1 round-robin fleet vs bench_serving's own batched 1x load
    point, using bench_serving's mode-matched config — the fleet must
    reproduce that report bitwise."""
    import bench_serving
    sconfig = (bench_serving.QUICK_CONFIG if config["mode"] == "quick"
               else bench_serving.FULL_CONFIG)
    servable, dataset = bench_serving.build_setup(sconfig)
    policy = bench_serving.policies(sconfig)["batched"]
    perf = ServingPerfModel()
    qps = perf.capacity_qps(servable, 1, _nnz(servable))
    slo_s = sconfig["slo_ms"] * 1e-3
    n = sconfig["requests"]
    single = run_load_test(InferenceServer(servable, policy, perf),
                           dataset, qps=qps, num_requests=n, slo_s=slo_s,
                           seed=sconfig["seed"])
    fleet = ServingFleet(servable, policy=policy, perfs=[perf],
                         router=RouterPolicy(kind="round_robin"))
    traffic = FleetTraffic(mean_qps=qps, duration_s=n / qps,
                           seed=sconfig["seed"])
    assert traffic.num_requests == n
    merged = fleet.serve(traffic.requests(dataset), slo_s=slo_s,
                         offered_qps=qps).merged
    return {"single": single, "fleet": merged.without_samples(),
            "matches": merged.without_samples() == single}


def measure_determinism(config, servable, dataset):
    """Two identical 2-replica p2c runs -> identical merged reports."""
    slo_s = config["slo_ms"] * 1e-3
    policy = sweep_policy(config)
    qps = 2 * ServingPerfModel(
        overhead_s=config["sweep_overhead_s"]).capacity_qps(
        servable, config["max_batch"], _nnz(servable))

    def run():
        fleet = make_fleet(servable, 2, policy, "power_of_two",
                           config["seed"], config["sweep_overhead_s"])
        traffic = FleetTraffic(
            mean_qps=qps,
            duration_s=config["per_replica_requests"] / qps,
            seed=config["seed"])
        return fleet.serve(traffic.requests(dataset), slo_s=slo_s,
                           offered_qps=qps).merged

    a, b = run(), run()
    return {"identical": a == b}


def measure(config):
    servable, dataset = build_setup(config)
    return {
        "capacity": measure_capacity(config, servable, dataset),
        "overload": measure_overload(config, servable, dataset),
        "day": measure_day(config, servable, dataset),
        "parity": measure_parity(config),
        "determinism": measure_determinism(config, servable, dataset),
    }


def report_dict(r):
    d = dict(r.__dict__)
    d.pop("samples_s", None)
    d["shed_fraction"] = r.shed_fraction
    return d


def day_dict(day_report):
    return {
        "replica_seconds": day_report.replica_seconds,
        "replica_hours": day_report.replica_hours,
        "peak_replicas": day_report.peak_replicas,
        "trough_replicas": day_report.trough_replicas,
        "slo_held": day_report.slo_held,
        "num_scale_ups": day_report.num_scale_ups(),
        "num_scale_downs": day_report.num_scale_downs(),
        "num_windows": len(day_report.windows),
        "warmup_s": day_report.warmup_s,
        "events": [e.__dict__ for e in day_report.events],
        "merged": report_dict(day_report.merged),
    }


def as_json(config, results):
    cap, over, day = results["capacity"], results["overload"], results["day"]
    return {
        "benchmark": "fleet",
        "config": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in config.items()},
        "capacity": {
            "per_replica_capacity_qps": cap["per_replica_capacity_qps"],
            "per_replica_offered_qps": cap["per_replica_offered_qps"],
            "points": [{"replicas": p.replicas,
                        "offered_qps": p.offered_qps,
                        "efficiency": p.efficiency,
                        "report": report_dict(p.report)}
                       for p in cap["points"]],
        },
        "scaling_efficiency_at_max": cap["scaling_efficiency_at_max"],
        "overload": {
            "fleet_capacity_qps": over["fleet_capacity_qps"],
            "scales": over["scales"],
            "reports": [report_dict(r) for r in over["reports"]],
            "plateau_ratio": over["plateau_ratio"],
        },
        "day": {
            "mean_qps": day["mean_qps"],
            "per_replica_capacity_qps": day["per_replica_capacity_qps"],
            "num_requests": day["num_requests"],
            "num_users": day["num_users"],
            "warmup_s": day["warmup_s"],
            "elastic": day_dict(day["elastic"]),
            "static": day_dict(day["static"]),
            "replica_seconds_saved_frac":
                day["replica_seconds_saved_frac"],
        },
        "autoscaler_slo_held": day["elastic"].slo_held,
        "autoscaler_cheaper_than_static":
            day["elastic"].replica_seconds < day["static"].replica_seconds,
        "n1_round_robin_matches_bench_serving":
            results["parity"]["matches"],
        "deterministic_rerun_identical":
            results["determinism"]["identical"],
    }


def capacity_rows(results):
    return [p.row() for p in results["capacity"]["points"]]


def day_rows(results):
    day = results["day"]
    rows = []
    for label in ("elastic", "static"):
        r = day[label]
        rows.append([label, f"{r.replica_seconds:.0f}",
                     str(r.peak_replicas), str(r.trough_replicas),
                     f"{r.merged.p99_s * 1e3:.1f}",
                     f"{r.merged.slo_attainment * 100:.1f}%",
                     str(r.slo_held)])
    return rows


DAY_HEADER = ["fleet", "replica-s", "peak", "trough", "p99 ms",
              "SLO att.", "held"]


def _print_table(header, rows):
    widths = [max(len(str(h)), *(len(str(r[c])) for r in rows))
              for c, h in enumerate(header)]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output JSON path")
    parser.add_argument("--min-scaling", type=float, default=0.8,
                        metavar="X",
                        help="fail unless capacity efficiency at the "
                             "largest replica count is >= X")
    args = parser.parse_args(argv)
    config = dict(QUICK_CONFIG if args.quick else FULL_CONFIG)
    config["mode"] = "quick" if args.quick else "full"
    results = measure(config)
    doc = as_json(config, results)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    print("capacity vs replicas (power-of-two routing, "
          f"{config['overload']}x overload per replica):")
    _print_table(CapacityPoint.ROW_HEADER, capacity_rows(results))
    print(f"\ngoodput plateau at {config['overload_scales'][-1]}x "
          f"capacity: {results['overload']['plateau_ratio']:.3f}x of "
          f"the 1x goodput")
    print("\nautoscaled vs static diurnal day "
          f"({results['day']['num_requests']} requests, "
          f"{results['day']['num_users']} users, warm-up "
          f"{results['day']['warmup_s'] * 1e3:.0f} ms):")
    _print_table(DAY_HEADER, day_rows(results))
    print(f"\nreplica-seconds saved by elasticity: "
          f"{results['day']['replica_seconds_saved_frac'] * 100:.0f}%")
    print(f"N=1 round-robin == bench_serving single server: "
          f"{doc['n1_round_robin_matches_bench_serving']}")
    print(f"re-run bitwise identical: "
          f"{doc['deterministic_rerun_identical']}")
    print(f"wrote {args.out}")

    failures = []
    eff = doc["scaling_efficiency_at_max"]
    if eff < args.min_scaling:
        failures.append(f"capacity efficiency {eff:.3f} at "
                        f"N={config['replica_counts'][-1]} below the "
                        f"{args.min_scaling:.2f} floor")
    if not doc["autoscaler_slo_held"]:
        failures.append("autoscaler missed the day-level SLO")
    if not doc["autoscaler_cheaper_than_static"]:
        failures.append("autoscaler used more replica-seconds than the "
                        "static baseline")
    if not doc["n1_round_robin_matches_bench_serving"]:
        failures.append("N=1 fleet diverged from the single-server report")
    if not doc["deterministic_rerun_identical"]:
        failures.append("re-run produced a different merged report")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def test_capacity_scaling(benchmark, report):
    """>= 0.8x linear goodput scaling at the largest replica count."""
    config = dict(QUICK_CONFIG)
    servable, dataset = build_setup(config)
    results = benchmark.pedantic(
        lambda: measure_capacity(config, servable, dataset),
        rounds=1, iterations=1)
    report("fleet: capacity vs replicas (p2c, predicted admission)",
           CapacityPoint.ROW_HEADER, [p.row() for p in results["points"]])
    assert results["scaling_efficiency_at_max"] >= 0.8
    # goodput must actually grow with the fleet
    goodputs = [p.report.goodput_qps for p in results["points"]]
    assert goodputs == sorted(goodputs)


def test_overload_plateau(benchmark, report):
    """Predicted admission: goodput plateaus past capacity."""
    config = dict(QUICK_CONFIG)
    servable, dataset = build_setup(config)
    results = benchmark.pedantic(
        lambda: measure_overload(config, servable, dataset),
        rounds=1, iterations=1)
    rows = [[f"{s:.1f}x"] + r.row()
            for s, r in zip(results["scales"], results["reports"])]
    report("fleet: goodput under overload",
           ["scale"] + type(results["reports"][0]).ROW_HEADER, rows)
    assert results["plateau_ratio"] >= 0.85
    # past capacity the fleet sheds rather than queueing without bound
    assert results["reports"][-1].shed_fraction > 0


def test_autoscaled_day_beats_static(benchmark, report):
    """SLO held all day on fewer replica-seconds than peak static."""
    config = dict(QUICK_CONFIG)
    servable, dataset = build_setup(config)
    results = benchmark.pedantic(
        lambda: measure_day(config, servable, dataset),
        rounds=1, iterations=1)
    report("fleet: autoscaled vs static diurnal day", DAY_HEADER,
           day_rows({"day": results}))
    elastic, static = results["elastic"], results["static"]
    assert elastic.slo_held
    assert static.slo_held
    assert elastic.replica_seconds < static.replica_seconds
    assert elastic.num_scale_ups() >= 1
    assert elastic.num_scale_downs() >= 1


def test_parity_and_determinism(benchmark, report):
    """N=1 RR fleet == single server bitwise; re-runs identical."""
    config = dict(QUICK_CONFIG)
    servable, dataset = build_setup(config)

    def run():
        return (measure_parity(config),
                measure_determinism(config, servable, dataset))

    parity, determinism = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fleet: parity and determinism", ["check", "result"],
           [["N=1 round-robin == single server", parity["matches"]],
            ["re-run bitwise identical", determinism["identical"]]])
    assert parity["matches"]
    assert determinism["identical"]


if __name__ == "__main__":
    sys.exit(main())

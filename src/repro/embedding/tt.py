"""Tensor-Train compressed embedding tables (TT-Rec [59], Section 4.1.4).

A table of shape ``(H, D)`` with ``H = h_1 * ... * h_K`` and
``D = d_1 * ... * d_K`` is represented by ``K`` cores
``G_k`` of shape ``(h_k, r_{k-1}, d_k, r_k)`` with ``r_0 = r_K = 1``.
Row ``i`` decomposes into mixed-radix digits ``(i_1, ..., i_K)`` and
materializes as the contraction of the per-digit core slices — memory drops
from ``H*D`` to ``sum_k h_k * r_{k-1} * d_k * r_k``, often orders of
magnitude, at the cost of extra FLOPs per lookup.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .kernels import segment_sum

__all__ = ["TTEmbeddingTable", "factorize_dims", "tt_decompose"]


def factorize_dims(value: int, num_factors: int) -> Tuple[int, ...]:
    """Factor ``value`` into ``num_factors`` roughly equal integer factors.

    Pads with 1s if value has too few prime factors; the product always
    equals ``value`` exactly (callers should pad their tables to a
    convenient cardinality, as TT-Rec does).
    """
    if value <= 0 or num_factors <= 0:
        raise ValueError("value and num_factors must be positive")
    factors = [1] * num_factors
    remaining = value
    # greedy: repeatedly split off the factor closest to the ideal root
    for k in range(num_factors - 1):
        ideal = round(remaining ** (1.0 / (num_factors - k)))
        best = 1
        for cand in range(max(ideal, 1), 0, -1):
            if remaining % cand == 0:
                best = cand
                break
        factors[k] = best
        remaining //= best
    factors[-1] = remaining
    return tuple(factors)


def tt_decompose(weight: np.ndarray, ranks: Sequence[int] = (8, 8),
                 row_factors: Optional[Sequence[int]] = None,
                 dim_factors: Optional[Sequence[int]] = None
                 ) -> List[np.ndarray]:
    """TT-SVD of a trained ``(H, D)`` table into :class:`TTEmbeddingTable`
    cores ``G_k`` of shape ``(h_k, r_{k-1}, d_k, r_k)``.

    Sequential truncated SVD over the interleaved ``(h_1, d_1, ..., h_K,
    d_K)`` tensor; requested ranks are clamped to the matrix ranks of the
    unfoldings, so asking for a rank at least ``min(H, D)`` reproduces the
    input exactly (up to fp32 rounding). Deterministic for a given input.
    """
    weight = np.asarray(weight)
    if weight.ndim != 2:
        raise ValueError("weight must be a 2-D (H, D) array")
    num_rows, dim = weight.shape
    k = len(ranks) + 1
    row_factors = tuple(row_factors) if row_factors else \
        factorize_dims(num_rows, k)
    dim_factors = tuple(dim_factors) if dim_factors else \
        factorize_dims(dim, k)
    if math.prod(row_factors) != num_rows or math.prod(dim_factors) != dim:
        raise ValueError("factors must multiply to the table shape")
    # reshape to (h_1..h_K, d_1..d_K) and interleave to (h_1, d_1, ...)
    tensor = weight.astype(np.float64).reshape(*row_factors, *dim_factors)
    perm: List[int] = []
    for i in range(k):
        perm.extend((i, k + i))
    tensor = tensor.transpose(perm)
    modes = [row_factors[i] * dim_factors[i] for i in range(k)]
    cores: List[np.ndarray] = []
    carry = tensor.reshape(1, -1)
    r_prev = 1
    for i in range(k - 1):
        mat = carry.reshape(r_prev * modes[i], -1)
        u, s, vt = np.linalg.svd(mat, full_matrices=False)
        r = int(min(ranks[i], len(s)))
        core = u[:, :r].reshape(r_prev, row_factors[i], dim_factors[i], r)
        cores.append(core.transpose(1, 0, 2, 3).astype(np.float32))
        carry = s[:r, None] * vt[:r]
        r_prev = r
    last = carry.reshape(r_prev, row_factors[-1], dim_factors[-1], 1)
    cores.append(last.transpose(1, 0, 2, 3).astype(np.float32))
    return cores


class TTEmbeddingTable:
    """Embedding table stored as a tensor train; trains its cores with SGD.

    Unlike a plain table there are no per-row parameters, so exact sparse
    row optimizers don't apply; gradients accumulate on the cores and
    :meth:`apply_gradients` performs the update (the TT-Rec training mode).
    """

    def __init__(self, name: str, num_embeddings: int, embedding_dim: int,
                 ranks: Sequence[int] = (8, 8),
                 row_factors: Optional[Sequence[int]] = None,
                 dim_factors: Optional[Sequence[int]] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        k = len(ranks) + 1
        self.name = name
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.row_factors = tuple(row_factors) if row_factors else \
            factorize_dims(num_embeddings, k)
        self.dim_factors = tuple(dim_factors) if dim_factors else \
            factorize_dims(embedding_dim, k)
        if len(self.row_factors) != k or len(self.dim_factors) != k:
            raise ValueError("row/dim factors must have len(ranks)+1 entries")
        if math.prod(self.row_factors) != num_embeddings:
            raise ValueError(
                f"row_factors {self.row_factors} do not multiply to "
                f"{num_embeddings}")
        if math.prod(self.dim_factors) != embedding_dim:
            raise ValueError(
                f"dim_factors {self.dim_factors} do not multiply to "
                f"{embedding_dim}")
        self.ranks = (1,) + tuple(ranks) + (1,)
        rng = rng if rng is not None else np.random.default_rng(0)
        # scale init so materialized rows have variance comparable to 1/H
        scale = (1.0 / math.sqrt(num_embeddings)) ** (1.0 / k)
        self.cores: List[np.ndarray] = []
        for i in range(k):
            shape = (self.row_factors[i], self.ranks[i], self.dim_factors[i],
                     self.ranks[i + 1])
            self.cores.append(
                rng.normal(0.0, scale, size=shape).astype(np.float32))
        self.core_grads: List[Optional[np.ndarray]] = [None] * k
        self._saved: Optional[tuple] = None

    @classmethod
    def from_weight(cls, name: str, weight: np.ndarray,
                    ranks: Sequence[int] = (8, 8),
                    row_factors: Optional[Sequence[int]] = None,
                    dim_factors: Optional[Sequence[int]] = None
                    ) -> "TTEmbeddingTable":
        """Build a TT table approximating a trained ``(H, D)`` weight via
        :func:`tt_decompose` (ranks clamp to the unfoldings' ranks)."""
        cores = tt_decompose(weight, ranks=ranks, row_factors=row_factors,
                             dim_factors=dim_factors)
        table = cls(name, weight.shape[0], weight.shape[1],
                    ranks=[c.shape[3] for c in cores[:-1]],
                    row_factors=[c.shape[0] for c in cores],
                    dim_factors=[c.shape[2] for c in cores])
        table.cores = cores
        return table

    # ------------------------------------------------------------------
    # index arithmetic
    # ------------------------------------------------------------------
    def _digits(self, indices: np.ndarray) -> List[np.ndarray]:
        """Row-major mixed-radix decomposition of row ids into core digits."""
        digits = []
        remainder = indices.astype(np.int64)
        for k in range(len(self.row_factors)):
            radix = math.prod(self.row_factors[k + 1:]) or 1
            digits.append(remainder // radix)
            remainder = remainder % radix
        return digits

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def rows(self, indices: np.ndarray) -> np.ndarray:
        """Materialize rows for ``indices``: shape (N, D)."""
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) and (indices.min() < 0
                             or indices.max() >= self.num_embeddings):
            raise IndexError(f"indices out of range for H={self.num_embeddings}")
        digits = self._digits(indices)
        slices = [core[dig] for core, dig in zip(self.cores, digits)]
        # left partials: L_k has shape (N, prod(d_1..d_k), r_k)
        lefts = []
        n = len(indices)
        left = slices[0].reshape(n, self.dim_factors[0], self.ranks[1])
        lefts.append(left)
        for k in range(1, len(slices)):
            left = np.einsum("nep,npdq->nedq", left, slices[k])
            left = left.reshape(n, -1, self.ranks[k + 1])
            lefts.append(left)
        self._saved = (indices, digits, slices, lefts)
        return lefts[-1].reshape(n, self.embedding_dim).astype(np.float32)

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Pooled (sum) lookup matching :class:`EmbeddingTable.forward`."""
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        rows = self.rows(indices)
        batch = len(offsets) - 1
        lengths = np.diff(offsets)
        bag_ids = np.repeat(np.arange(batch, dtype=np.int64), lengths)
        out = segment_sum(rows, offsets) if len(indices) else \
            np.zeros((batch, self.embedding_dim), dtype=np.float32)
        self._pool_saved = (bag_ids, len(indices))
        return out

    def backward_pooled(self, d_pooled: np.ndarray) -> None:
        """Backward through pooling then into the cores."""
        bag_ids, nnz = self._pool_saved
        d_rows = d_pooled[bag_ids].astype(np.float32) if nnz else \
            np.zeros((0, self.embedding_dim), dtype=np.float32)
        self.backward_rows(d_rows)

    def backward_rows(self, d_rows: np.ndarray) -> None:
        """Accumulate core gradients for the last :meth:`rows` call."""
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        indices, digits, slices, lefts = self._saved
        n = len(indices)
        k_cores = len(self.cores)
        if n == 0:
            return
        # right partials: R_k has shape (N, r_{k-1}, prod(d_k..d_K))
        rights: List[np.ndarray] = [None] * (k_cores + 1)
        rights[k_cores] = np.ones((n, 1, 1), dtype=np.float32)
        for k in range(k_cores - 1, -1, -1):
            nxt = rights[k + 1]
            r = np.einsum("npdq,nqf->npdf", slices[k], nxt)
            rights[k] = r.reshape(n, self.ranks[k], -1)
        for k in range(k_cores):
            if k == 0:
                left = np.ones((n, 1, 1), dtype=np.float32)
            else:
                left = lefts[k - 1]  # (n, E, r_k)
            e_dim = left.shape[1]
            f_dim = rights[k + 1].shape[2]
            g = d_rows.reshape(n, e_dim, self.dim_factors[k], f_dim)
            d_slice = np.einsum("nep,nedf,nqf->npdq", left, g, rights[k + 1])
            if self.core_grads[k] is None:
                self.core_grads[k] = np.zeros_like(self.cores[k])
            np.add.at(self.core_grads[k], digits[k], d_slice.astype(np.float32))

    def apply_gradients(self, lr: float) -> None:
        """SGD step on the cores, then clear accumulated gradients."""
        for k, grad in enumerate(self.core_grads):
            if grad is not None:
                self.cores[k] -= (lr * grad).astype(np.float32)
        self.core_grads = [None] * len(self.cores)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(c.size for c in self.cores)

    def full_parameters(self) -> int:
        return self.num_embeddings * self.embedding_dim

    def compression_ratio(self) -> float:
        return self.full_parameters() / self.num_parameters()

    def materialize(self) -> np.ndarray:
        """Expand the full (H, D) table — tests/small tables only."""
        return self.rows(np.arange(self.num_embeddings))

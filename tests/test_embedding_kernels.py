"""Unit tests for the shared segment-reduce kernels (repro.embedding.kernels).

These primitives back every pooled lookup in the repo (per-table,
arena, TT, dedup, cached tables), so their edge cases — above all the
``np.add.reduceat`` empty-segment identity gap — get dedicated coverage
here rather than indirectly through the operators.
"""

import numpy as np
import pytest

from repro.embedding.kernels import (expand_bag_ids, merge_sorted_coo,
                                     rebase_jagged, segment_mean,
                                     segment_sum, segment_sum_gather)


def reference_segment_sum(values, offsets):
    """Straight-line oracle: per-bag slice-and-sum.

    ``ndarray.sum`` blocks its pairwise summation differently from
    ``np.add.reduceat``, so comparisons against this oracle are allclose,
    not bitwise (the bitwise assertions in this file compare reduceat
    against reduceat).
    """
    out = np.zeros((len(offsets) - 1, values.shape[1]), dtype=np.float32)
    for b in range(len(offsets) - 1):
        seg = values[offsets[b]:offsets[b + 1]]
        if len(seg):
            out[b] = seg.sum(axis=0)
    return out


def assert_close(actual, desired):
    np.testing.assert_allclose(actual, desired, rtol=1e-6, atol=1e-6)


def random_jagged(rng, num_bags, max_len, dim, empty_prob=0.3):
    lengths = rng.integers(0, max_len + 1, size=num_bags)
    lengths[rng.random(num_bags) < empty_prob] = 0
    offsets = np.zeros(num_bags + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = rng.normal(size=(int(offsets[-1]), dim)).astype(np.float32)
    return values, offsets


class TestSegmentSum:
    def test_matches_reference_dense(self):
        rng = np.random.default_rng(0)
        values, offsets = random_jagged(rng, 50, 9, 8, empty_prob=0.0)
        assert_close(segment_sum(values, offsets),
                     reference_segment_sum(values, offsets))

    def test_empty_bag_between_full_bags_yields_zeros(self):
        # The reduceat identity gap: offsets[i] == offsets[i+1] would make
        # raw reduceat return values[offsets[i]] instead of 0.
        values = np.arange(12, dtype=np.float32).reshape(6, 2)
        offsets = np.array([0, 2, 2, 6], dtype=np.int64)
        out = segment_sum(values, offsets)
        np.testing.assert_array_equal(out[1], np.zeros(2, dtype=np.float32))
        np.testing.assert_array_equal(out, reference_segment_sum(values,
                                                                 offsets))

    def test_trailing_empty_bags(self):
        # Trailing empty bags start at len(values) — out of range for raw
        # reduceat; must still produce zeros, not raise.
        values = np.ones((3, 4), dtype=np.float32)
        offsets = np.array([0, 3, 3, 3], dtype=np.int64)
        out = segment_sum(values, offsets)
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out[0], np.full(4, 3.0))
        np.testing.assert_array_equal(out[1:], np.zeros((2, 4)))

    def test_leading_empty_bag(self):
        values = np.ones((2, 3), dtype=np.float32)
        offsets = np.array([0, 0, 2], dtype=np.int64)
        out = segment_sum(values, offsets)
        np.testing.assert_array_equal(out[0], np.zeros(3))
        np.testing.assert_array_equal(out[1], np.full(3, 2.0))

    def test_all_bags_empty(self):
        values = np.zeros((0, 5), dtype=np.float32)
        offsets = np.zeros(4, dtype=np.int64)
        out = segment_sum(values, offsets)
        np.testing.assert_array_equal(out, np.zeros((3, 5)))

    def test_zero_bags(self):
        values = np.zeros((0, 5), dtype=np.float32)
        offsets = np.zeros(1, dtype=np.int64)
        assert segment_sum(values, offsets).shape == (0, 5)

    def test_out_parameter_reused_and_cleared(self):
        rng = np.random.default_rng(1)
        values, offsets = random_jagged(rng, 20, 5, 4)
        out = np.full((20, 4), 7.0, dtype=np.float32)
        result = segment_sum(values, offsets, out=out)
        assert result is out
        assert_close(out, reference_segment_sum(values, offsets))

    def test_randomized_with_empties(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            values, offsets = random_jagged(rng, int(rng.integers(1, 40)),
                                            7, 3, empty_prob=0.4)
            assert_close(segment_sum(values, offsets),
                         reference_segment_sum(values, offsets))


class TestSegmentSumGather:
    def test_bitwise_equals_unfused_gather_then_sum(self):
        rng = np.random.default_rng(3)
        storage = rng.normal(size=(500, 16)).astype(np.float32)
        _, offsets = random_jagged(rng, 200, 40, 1, empty_prob=0.1)
        indices = rng.integers(0, 500, size=int(offsets[-1]))
        expected = segment_sum(storage[indices], offsets)
        np.testing.assert_array_equal(
            segment_sum_gather(storage, indices, offsets), expected)

    @pytest.mark.parametrize("tile_rows", [1, 3, 17, 64, 10_000])
    def test_tile_size_invariance(self, tile_rows):
        # Tiles snap to whole-bag boundaries, so any tile size gives the
        # same bits — including tiles smaller than a single bag.
        rng = np.random.default_rng(4)
        storage = rng.normal(size=(100, 8)).astype(np.float32)
        _, offsets = random_jagged(rng, 60, 12, 1, empty_prob=0.25)
        indices = rng.integers(0, 100, size=int(offsets[-1]))
        expected = segment_sum(storage[indices], offsets)
        np.testing.assert_array_equal(
            segment_sum_gather(storage, indices, offsets,
                               tile_rows=tile_rows), expected)

    def test_empty_bags_inside_tile(self):
        storage = np.arange(20, dtype=np.float32).reshape(10, 2)
        indices = np.array([1, 2, 9], dtype=np.int64)
        offsets = np.array([0, 2, 2, 3, 3], dtype=np.int64)
        out = segment_sum_gather(storage, indices, offsets, tile_rows=4)
        np.testing.assert_array_equal(
            out, segment_sum(storage[indices], offsets))

    def test_all_empty(self):
        storage = np.ones((5, 3), dtype=np.float32)
        out = segment_sum_gather(storage, np.zeros(0, dtype=np.int64),
                                 np.zeros(4, dtype=np.int64))
        np.testing.assert_array_equal(out, np.zeros((3, 3)))

    def test_zero_bags(self):
        storage = np.ones((5, 3), dtype=np.float32)
        out = segment_sum_gather(storage, np.zeros(0, dtype=np.int64),
                                 np.zeros(1, dtype=np.int64))
        assert out.shape == (0, 3)

    def test_split_invariance_concat_vs_solo(self):
        # The arena's parity foundation: pooling a table's bags inside a
        # concatenated multi-table batch gives the same bits as pooling
        # them alone.
        rng = np.random.default_rng(5)
        storage = rng.normal(size=(300, 16)).astype(np.float32)
        batches = []
        for seed in range(3):
            r = np.random.default_rng(seed)
            _, offsets = random_jagged(r, 30, 20, 1, empty_prob=0.1)
            indices = r.integers(0, 300, size=int(offsets[-1]))
            batches.append((indices, offsets))
        solo = [segment_sum_gather(storage, idx, off)
                for idx, off in batches]
        gidx, goff, _ = rebase_jagged(batches, [0, 0, 0])
        fused = segment_sum_gather(storage, gidx, goff)
        bag = 0
        for s in solo:
            np.testing.assert_array_equal(fused[bag:bag + len(s)], s)
            bag += len(s)


class TestSegmentMean:
    def test_matches_sum_divided_by_lengths(self):
        rng = np.random.default_rng(6)
        values, offsets = random_jagged(rng, 30, 6, 4, empty_prob=0.2)
        lengths = np.diff(offsets)
        expected = reference_segment_sum(values, offsets)
        expected /= np.maximum(lengths, 1).astype(np.float32)[:, None]
        assert_close(segment_mean(values, offsets), expected)

    def test_empty_bags_stay_zero(self):
        values = np.ones((2, 3), dtype=np.float32)
        offsets = np.array([0, 0, 2], dtype=np.int64)
        out = segment_mean(values, offsets)
        np.testing.assert_array_equal(out[0], np.zeros(3))
        np.testing.assert_array_equal(out[1], np.ones(3))


class TestExpandBagIds:
    def test_basic(self):
        np.testing.assert_array_equal(
            expand_bag_ids(np.array([2, 0, 3])),
            np.array([0, 0, 2, 2, 2], dtype=np.int64))

    def test_empty(self):
        assert len(expand_bag_ids(np.zeros(0, dtype=np.int64))) == 0


class TestRebaseJagged:
    def test_two_tables(self):
        a = (np.array([0, 1, 2]), np.array([0, 1, 3]))
        b = (np.array([0, 4]), np.array([0, 0, 2]))
        gidx, goff, counts = rebase_jagged([a, b], [0, 10])
        np.testing.assert_array_equal(gidx, [0, 1, 2, 10, 14])
        np.testing.assert_array_equal(goff, [0, 1, 3, 3, 5])
        np.testing.assert_array_equal(counts, [3, 2])

    def test_does_not_mutate_inputs(self):
        idx = np.array([1, 2], dtype=np.int64)
        rebase_jagged([(idx, np.array([0, 2]))], [100])
        np.testing.assert_array_equal(idx, [1, 2])

    def test_empty_input_list(self):
        gidx, goff, counts = rebase_jagged([], [])
        assert len(gidx) == 0 and len(counts) == 0
        np.testing.assert_array_equal(goff, [0])

    def test_mismatched_bases_raises(self):
        with pytest.raises(ValueError):
            rebase_jagged([(np.array([0]), np.array([0, 1]))], [0, 1])


class TestMergeSortedCoo:
    def test_sums_duplicates(self):
        rows = np.array([3, 1, 3, 1, 2], dtype=np.int64)
        vals = np.arange(10, dtype=np.float32).reshape(5, 2)
        m_rows, m_vals = merge_sorted_coo(rows, vals)
        np.testing.assert_array_equal(m_rows, [1, 2, 3])
        np.testing.assert_array_equal(m_vals[0], vals[1] + vals[3])
        np.testing.assert_array_equal(m_vals[1], vals[4])
        np.testing.assert_array_equal(m_vals[2], vals[0] + vals[2])

    def test_order_independence(self):
        # Value-column tie-breakers make the result a pure function of the
        # (row, grad) multiset — Section 4.1.2 determinism.
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 5, size=200)
        vals = rng.normal(size=(200, 4)).astype(np.float32)
        base_r, base_v = merge_sorted_coo(rows, vals)
        for seed in range(5):
            perm = np.random.default_rng(seed).permutation(200)
            r, v = merge_sorted_coo(rows[perm], vals[perm])
            np.testing.assert_array_equal(r, base_r)
            np.testing.assert_array_equal(v, base_v)

    def test_empty(self):
        r, v = merge_sorted_coo(np.zeros(0, dtype=np.int64),
                                np.zeros((0, 3), dtype=np.float32))
        assert len(r) == 0 and v.shape == (0, 3)

    def test_segmented_merge_bitwise_equals_global(self):
        # Disjoint increasing row ranges per segment (the arena's
        # table-major layout): segment-wise merge must give the same bits
        # as one global merge.
        rng = np.random.default_rng(8)
        rows_parts, vals_parts, offsets = [], [], [0]
        base = 0
        for _ in range(4):
            n = int(rng.integers(0, 60))
            rows_parts.append(base + rng.integers(0, 10, size=n))
            vals_parts.append(rng.normal(size=(n, 3)).astype(np.float32))
            offsets.append(offsets[-1] + n)
            base += 10
        rows = np.concatenate(rows_parts)
        vals = np.concatenate(vals_parts, axis=0)
        g_rows, g_vals = merge_sorted_coo(rows, vals)
        s_rows, s_vals = merge_sorted_coo(
            rows, vals, segment_offsets=np.array(offsets, dtype=np.int64))
        np.testing.assert_array_equal(s_rows, g_rows)
        np.testing.assert_array_equal(s_vals, g_vals)

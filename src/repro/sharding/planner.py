"""Sharding planner: choose a scheme per table and place shards on ranks
(paper Sections 3.0.1 and 4.2.5).

The planner mirrors the paper's practice:

1. Pick a scheme per table — small tables replicate (DP), tables that
   exceed a single device's memory split by rows (RW, or TWRW within a
   node), wide tables can split by columns (CW), everything else stays
   table-wise (TW).
2. Compute each shard's scalar cost with the Section 3.0.1 cost model.
3. Balance shards across ranks with the greedy or Karmarkar-Karp (LDM)
   heuristic.

The planner is deliberately topology-aware only at the level the paper
describes: TWRW keeps a table's row shards within one node's ranks to
exploit NVLink over the scale-out network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..embedding.table import EmbeddingTableConfig
from .cost_model import CostModelParams, shard_cost
from .partitioners import (Assignment, greedy_partition, ldm_partition,
                           round_robin_partition)
from .schemes import (Shard, ShardingPlan, ShardingScheme, TableShardingPlan,
                      shard_table)

__all__ = ["PlannerConfig", "EmbeddingShardingPlanner", "plan_cost_per_rank"]


@dataclass(frozen=True)
class PlannerConfig:
    """Planner policy knobs.

    ``dp_threshold_rows`` — tables with fewer rows replicate (Sec 4.2.4
    says small tables are good DP candidates).
    ``cw_min_dim``/``cw_shards`` — wide-table column split policy.
    ``device_memory_bytes`` — per-rank HBM budget; tables whose shards
    would exceed it are forced row-wise across more ranks.
    """

    world_size: int = 8
    ranks_per_node: int = 8
    dp_threshold_rows: int = 10_000
    cw_min_dim: int = 256
    cw_shards: int = 4
    device_memory_bytes: float = 32e9
    bytes_per_element: int = 4
    partitioner: str = "ldm"
    allow_data_parallel: bool = True
    allow_column_wise: bool = True

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        if self.partitioner not in ("round_robin", "greedy", "ldm"):
            raise ValueError(f"unknown partitioner {self.partitioner!r}")
        if self.world_size % self.ranks_per_node and \
                self.world_size > self.ranks_per_node:
            raise ValueError("world_size must be a multiple of ranks_per_node")


class EmbeddingShardingPlanner:
    """Produces a validated :class:`ShardingPlan` for a set of tables."""

    def __init__(self, config: PlannerConfig,
                 cost_params: Optional[CostModelParams] = None) -> None:
        self.config = config
        self.cost_params = cost_params or CostModelParams(
            world_size=config.world_size)

    # ------------------------------------------------------------------
    # scheme selection
    # ------------------------------------------------------------------
    def choose_scheme(self, table: EmbeddingTableConfig) -> ShardingScheme:
        cfg = self.config
        table_bytes = table.num_parameters * cfg.bytes_per_element
        if cfg.allow_data_parallel and \
                table.num_embeddings <= cfg.dp_threshold_rows:
            return ShardingScheme.DATA_PARALLEL
        if table_bytes > cfg.device_memory_bytes:
            # cannot live on one device: row-wise, hierarchically if the
            # table fits within one node's aggregate HBM
            node_bytes = cfg.device_memory_bytes * cfg.ranks_per_node
            if table_bytes <= node_bytes and \
                    cfg.world_size > cfg.ranks_per_node:
                return ShardingScheme.TABLE_ROW_WISE
            return ShardingScheme.ROW_WISE
        if cfg.allow_column_wise and table.embedding_dim >= cfg.cw_min_dim:
            return ShardingScheme.COLUMN_WISE
        return ShardingScheme.TABLE_WISE

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, tables: Sequence[EmbeddingTableConfig],
             schemes: Optional[Dict[str, ShardingScheme]] = None
             ) -> ShardingPlan:
        """Build and validate a plan. ``schemes`` overrides per-table."""
        names = [t.name for t in tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names in {names}")
        schemes = schemes or {}
        cfg = self.config
        plan = ShardingPlan(world_size=cfg.world_size)

        # Partitionable units: TW tables are placed whole; CW/RW/TWRW
        # tables are pre-split and their shard units placed independently
        # (CW) or on fixed rank groups (RW spans all ranks, TWRW spans one
        # node chosen by load).
        unit_costs: List[float] = []
        unit_shards: List[List] = []  # parallel: list of (table, proto) units
        deferred: List[tuple] = []    # (table, scheme) needing group placement

        for table in tables:
            scheme = schemes.get(table.name) or self.choose_scheme(table)
            if scheme == ShardingScheme.DATA_PARALLEL:
                plan.tables[table.name] = shard_table(
                    table, scheme, list(range(cfg.world_size)))
            elif scheme == ShardingScheme.ROW_WISE:
                plan.tables[table.name] = shard_table(
                    table, scheme, list(range(cfg.world_size)))
            elif scheme == ShardingScheme.TABLE_ROW_WISE:
                deferred.append((table, scheme))
            elif scheme == ShardingScheme.COLUMN_WISE:
                n_shards = min(cfg.cw_shards, table.embedding_dim,
                               cfg.world_size)
                proto = shard_table(table, scheme, list(range(n_shards)))
                for s in proto.shards:
                    unit_costs.append(shard_cost(
                        table, s, scheme, self.cost_params).total_seconds)
                    unit_shards.append((table, scheme, s))
            else:  # TABLE_WISE
                proto = shard_table(table, scheme, [0])
                s = proto.shards[0]
                unit_costs.append(shard_cost(
                    table, s, scheme, self.cost_params).total_seconds)
                unit_shards.append((table, scheme, s))

        assignment = self._partition(unit_costs, cfg.world_size)
        placed: Dict[str, List[Shard]] = {}
        placed_scheme: Dict[str, ShardingScheme] = {}
        for rank, bin_items in enumerate(assignment.bins):
            for item in bin_items:
                table, scheme, proto = unit_shards[item]
                shard = Shard(table.name, rank, proto.row_range,
                              proto.col_range)
                placed.setdefault(table.name, []).append(shard)
                placed_scheme[table.name] = scheme
        for table in tables:
            if table.name in placed:
                plan.tables[table.name] = TableShardingPlan(
                    config=table, scheme=placed_scheme[table.name],
                    shards=placed[table.name])

        # hierarchical TWRW: assign each table to the currently
        # lightest node, then split rows across that node's local ranks
        if deferred:
            node_loads = self._rank_loads_by_node(plan)
            for table, scheme in sorted(
                    deferred,
                    key=lambda ts: ts[0].num_parameters, reverse=True):
                node = min(range(len(node_loads)),
                           key=lambda n: node_loads[n])
                local = list(range(node * cfg.ranks_per_node,
                                   (node + 1) * cfg.ranks_per_node))
                plan.tables[table.name] = shard_table(table, scheme, local)
                for s in plan.tables[table.name].shards:
                    node_loads[node] += shard_cost(
                        table, s, scheme, self.cost_params).total_seconds
        plan.validate()
        return plan

    def _partition(self, costs: Sequence[float],
                   num_bins: int) -> Assignment:
        if self.config.partitioner == "round_robin":
            return round_robin_partition(costs, num_bins)
        if self.config.partitioner == "greedy":
            return greedy_partition(costs, num_bins)
        return ldm_partition(costs, num_bins)

    def _rank_loads_by_node(self, plan: ShardingPlan) -> List[float]:
        cfg = self.config
        num_nodes = max(1, cfg.world_size // cfg.ranks_per_node)
        loads = [0.0] * num_nodes
        for table_plan in plan.tables.values():
            for s in table_plan.shards:
                node = s.rank // cfg.ranks_per_node
                loads[node] += shard_cost(
                    table_plan.config, s, table_plan.scheme,
                    self.cost_params).total_seconds
        return loads


def plan_cost_per_rank(plan: ShardingPlan,
                       params: CostModelParams) -> List[float]:
    """Per-rank summed shard cost — the load-balance metric of Fig. 13."""
    loads = [0.0] * plan.world_size
    for table_plan in plan.tables.values():
        for s in table_plan.shards:
            loads[s.rank] += shard_cost(table_plan.config, s,
                                        table_plan.scheme,
                                        params).total_seconds
    return loads

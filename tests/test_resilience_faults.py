"""Tests for deterministic fault injection: schedules, retry math,
health tracking, and FaultyProcessGroup semantics (including the
zero-fault bit-parity guarantee against SimProcessGroup)."""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology, SimProcessGroup
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRMConfig
from repro.obs import MetricRegistry
from repro.resilience import (FaultKind, FaultSchedule, FaultSpec,
                              FaultyProcessGroup, HealthTracker, RankFailure,
                              RetryPolicy, faulty_process_group_factory)
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

WORLD = 4
TOPO = ClusterTopology(num_nodes=1, gpus_per_node=WORLD)


def _payload(value=1.0):
    return [np.full(8, value, dtype=np.float32) for _ in range(WORLD)]


def _baseline_seconds():
    pg = SimProcessGroup(TOPO)
    pg.all_reduce(_payload())
    return pg.log.modeled_seconds["all_reduce"]


class TestFaultSchedule:
    def test_random_is_seed_deterministic(self):
        a = FaultSchedule.random(seed=7, num_iterations=20, world_size=8)
        b = FaultSchedule.random(seed=7, num_iterations=20, world_size=8)
        assert a.faults == b.faults
        c = FaultSchedule.random(seed=8, num_iterations=20, world_size=8)
        assert a.faults != c.faults

    def test_one_shot_consumed_persistent_not(self):
        one_shot = FaultSpec(FaultKind.DROP, rank=0, iteration=3)
        persistent = FaultSpec(FaultKind.DELAY, rank=1, iteration=None,
                               delay_seconds=0.1)
        sched = FaultSchedule([one_shot, persistent])
        assert sched.take(3, "all_reduce") == (one_shot, persistent)
        # one-shot gone, persistent still firing
        assert sched.take(3, "all_reduce") == (persistent,)
        assert sched.take(4, "all_gather") == (persistent,)
        sched.reset()
        assert sched.take(3, "all_reduce") == (one_shot, persistent)

    def test_collective_matching(self):
        spec = FaultSpec(FaultKind.DROP, rank=0, iteration=1,
                         collective="all_to_all")
        # base name matches every flavour; other collectives don't fire
        assert spec.matches(1, "all_to_all/forward_alltoall")
        assert spec.matches(1, "all_to_all/index")
        assert not spec.matches(1, "all_reduce")
        assert not spec.matches(2, "all_to_all/index")
        exact = FaultSpec(FaultKind.DROP, rank=0, iteration=1,
                          collective="all_to_all/index")
        assert exact.matches(1, "all_to_all/index")
        assert not exact.matches(1, "all_to_all/forward_alltoall")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DELAY, rank=0, delay_seconds=0.0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DROP, rank=-1)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DROP, rank=0, failures=0)
        with pytest.raises(ValueError):
            FaultSchedule.random(seed=0, num_iterations=0, world_size=4)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(timeout_seconds=1.0, backoff_seconds=0.1,
                        backoff_multiplier=2.0, max_attempts=3)
        assert p.backoff(0) == pytest.approx(0.1)
        assert p.backoff(1) == pytest.approx(0.2)
        assert p.backoff(2) == pytest.approx(0.4)

    def test_penalty_sums_timeouts_and_backoffs(self):
        p = RetryPolicy(timeout_seconds=1.0, backoff_seconds=0.1,
                        backoff_multiplier=2.0, max_attempts=3)
        assert p.penalty(0) == 0.0
        assert p.penalty(1) == pytest.approx(1.1)
        assert p.penalty(3) == pytest.approx(3.0 + 0.1 + 0.2 + 0.4)
        # exponent resets after each exhausted window of max_attempts
        assert p.penalty(4) == pytest.approx(p.penalty(3) + 1.1)
        assert p.strikes(2) == 0
        assert p.strikes(3) == 1
        assert p.strikes(7) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1)


class TestHealthTracker:
    def test_straggler_detection_from_ewma(self):
        h = HealthTracker(world_size=4, alpha=0.5, straggler_factor=2.0)
        for _ in range(8):
            h.observe([0.1, 0.1, 0.1, 0.5])
        assert h.stragglers() == [3]
        # uniform latencies: nobody is a straggler
        h2 = HealthTracker(world_size=4)
        h2.observe_uniform(0.2)
        assert h2.stragglers() == []

    def test_timeout_strikes_kill_rank(self):
        h = HealthTracker(world_size=4, dead_after=2)
        assert not h.record_timeout(2)
        assert not h.is_dead(2)
        assert h.record_timeout(2)
        assert h.is_dead(2)
        assert h.dead_ranks == [2]

    def test_dead_ranks_excluded_from_stragglers(self):
        h = HealthTracker(world_size=4, alpha=1.0, straggler_factor=2.0)
        h.observe([0.1, 0.1, 0.1, 0.9])
        h.mark_dead(3)
        assert h.stragglers() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthTracker(world_size=0)
        with pytest.raises(ValueError):
            HealthTracker(world_size=4, alpha=0.0)
        with pytest.raises(ValueError):
            HealthTracker(world_size=4).observe([0.1, 0.2])


class TestFaultyProcessGroup:
    def test_delay_fault_stalls_the_collective(self):
        base = _baseline_seconds()
        sched = FaultSchedule([FaultSpec(FaultKind.DELAY, rank=1,
                                         iteration=0, delay_seconds=0.25)])
        reg = MetricRegistry()
        pg = FaultyProcessGroup(TOPO, registry=reg, schedule=sched)
        pg.on_iteration_start(0)
        result = pg.all_reduce(_payload())
        # synchronous collective: one straggler stalls everyone
        assert result.modeled_seconds == pytest.approx(base + 0.25)
        assert result.per_rank_seconds[1] == pytest.approx(base + 0.25)
        assert result.per_rank_seconds[0] == pytest.approx(base)
        assert reg.counter("resilience.faults_injected",
                           kind="delay").value == 1
        assert reg.counter("resilience.fault_seconds").value == \
            pytest.approx(0.25)
        # outputs are still the correct reduction
        np.testing.assert_array_equal(result[0],
                                      np.full(8, WORLD, dtype=np.float32))

    def test_fault_only_fires_on_its_iteration(self):
        base = _baseline_seconds()
        sched = FaultSchedule([FaultSpec(FaultKind.DELAY, rank=0,
                                         iteration=5, delay_seconds=1.0)])
        pg = FaultyProcessGroup(TOPO, schedule=sched)
        pg.on_iteration_start(4)
        assert pg.all_reduce(_payload()).modeled_seconds == \
            pytest.approx(base)
        pg.on_iteration_start(5)
        assert pg.all_reduce(_payload()).modeled_seconds == \
            pytest.approx(base + 1.0)
        # consumed: replaying iteration 5 is clean
        pg.on_iteration_start(5)
        assert pg.all_reduce(_payload()).modeled_seconds == \
            pytest.approx(base)

    def test_drop_fault_bills_retry_penalty(self):
        base = _baseline_seconds()
        policy = RetryPolicy(timeout_seconds=0.5, backoff_seconds=0.05)
        sched = FaultSchedule([FaultSpec(FaultKind.DROP, rank=2,
                                         iteration=0, failures=2)])
        reg = MetricRegistry()
        pg = FaultyProcessGroup(TOPO, registry=reg, schedule=sched,
                                policy=policy)
        pg.on_iteration_start(0)
        result = pg.all_reduce(_payload())
        assert result.modeled_seconds == pytest.approx(
            base + policy.penalty(2))
        assert reg.counter("resilience.retries").value == 2
        assert reg.counter("resilience.faults_injected",
                           kind="drop").value == 1

    def test_corrupt_fault_detected_and_retried(self):
        sched = FaultSchedule([FaultSpec(FaultKind.CORRUPT, rank=0,
                                         iteration=0, failures=1)])
        reg = MetricRegistry()
        pg = FaultyProcessGroup(TOPO, registry=reg, schedule=sched)
        pg.on_iteration_start(0)
        result = pg.all_reduce(_payload())
        assert reg.counter("resilience.corruptions_detected").value == 1
        assert reg.counter("resilience.retries").value == 1
        # the payload that reached the reduction was pristine
        np.testing.assert_array_equal(result[0],
                                      np.full(8, WORLD, dtype=np.float32))

    def test_crash_fault_raises_rank_failure(self):
        sched = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=3,
                                         iteration=2)])
        reg = MetricRegistry()
        pg = FaultyProcessGroup(TOPO, registry=reg, schedule=sched)
        pg.on_iteration_start(2)
        with pytest.raises(RankFailure) as exc:
            pg.all_reduce(_payload())
        assert exc.value.rank == 3
        assert exc.value.iteration == 2
        assert exc.value.collective == "all_reduce"
        assert pg.health.is_dead(3)
        assert reg.counter("resilience.ranks_dead").value == 1

    def test_repeated_timeouts_declare_rank_dead(self):
        # 6 failures under max_attempts=3 is two exhausted windows; with
        # dead_after=2 the rank dies inside a single collective
        policy = RetryPolicy(max_attempts=3)
        sched = FaultSchedule([FaultSpec(FaultKind.DROP, rank=1,
                                         iteration=0, failures=6)])
        pg = FaultyProcessGroup(
            TOPO, schedule=sched, policy=policy,
            health=HealthTracker(WORLD, dead_after=2))
        pg.on_iteration_start(0)
        with pytest.raises(RankFailure) as exc:
            pg.all_reduce(_payload())
        assert exc.value.rank == 1
        assert pg.health.timeout_strikes[1] == 2

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FaultyProcessGroup(TOPO, health=HealthTracker(WORLD + 1))


def _tiny_trainer(pg_factory=None, seed=0):
    tables = tuple(EmbeddingTableConfig(f"t{i}", 64, 8, avg_pooling=2.0)
                   for i in range(2))
    config = DLRMConfig(dense_dim=4, bottom_mlp=(8,), tables=tables,
                        top_mlp=(8,))
    plan = ShardingPlan(world_size=2)
    plan.tables["t0"] = shard_table(tables[0], ShardingScheme.TABLE_WISE, [0])
    plan.tables["t1"] = shard_table(tables[1], ShardingScheme.ROW_WISE,
                                    [0, 1])
    plan.validate()
    topo = ClusterTopology(num_nodes=1, gpus_per_node=2)
    trainer = NeoTrainer(
        config, plan, topo,
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
        sparse_optimizer=SparseSGD(lr=0.1), seed=seed,
        process_group_factory=pg_factory)
    dataset = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
    return trainer, dataset


class TestZeroFaultParity:
    """An empty schedule makes FaultyProcessGroup bit-identical to
    SimProcessGroup — losses, weights, bytes and modeled seconds."""

    def test_training_is_bit_identical(self):
        plain, dataset = _tiny_trainer()
        faulty, _ = _tiny_trainer(
            pg_factory=faulty_process_group_factory())
        assert isinstance(faulty.pg, FaultyProcessGroup)
        for batch in dataset.batches(8, 5):
            loss_a = plain.train_step(batch.split(2))
            loss_b = faulty.train_step(batch.split(2))
            assert loss_a == loss_b  # bitwise, not approx
        for t in ("t0", "t1"):
            np.testing.assert_array_equal(plain.gather_table(t),
                                          faulty.gather_table(t))
        for pa, pb in zip(plain.ranks[0].dense_parameters(),
                          faulty.ranks[0].dense_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
        assert plain.pg.log.wire_bytes == faulty.pg.log.wire_bytes
        assert plain.pg.log.modeled_seconds == faulty.pg.log.modeled_seconds
        assert plain.pg.log.calls == faulty.pg.log.calls

    def test_trainer_announces_iterations_to_the_group(self):
        trainer, dataset = _tiny_trainer(
            pg_factory=faulty_process_group_factory())
        for batch in dataset.batches(8, 3):
            trainer.train_step(batch.split(2))
        # after 3 steps the group saw iterations 0, 1, 2
        assert trainer.pg.iteration == 2

    def test_persistent_straggler_visible_in_health(self):
        sched = FaultSchedule([FaultSpec(FaultKind.DELAY, rank=1,
                                         iteration=None,
                                         delay_seconds=0.05)])
        trainer, dataset = _tiny_trainer(
            pg_factory=faulty_process_group_factory(schedule=sched,
                                                    straggler_factor=1.5))
        for batch in dataset.batches(8, 4):
            trainer.train_step(batch.split(2))
        assert trainer.pg.health.stragglers() == [1]
        assert trainer.metrics.counter(
            "resilience.faults_injected", kind="delay").value > 0

"""The serving fleet: scale-out of :mod:`repro.serving` to N replicas.

One :class:`~repro.serving.server.InferenceServer` is a node;
production capacity planning happens at the *fleet* — the unit the
scale-out companion work (Naumov et al.) plans in. This package adds
the three planes a fleet needs on top of the single-server stack, all
on the shared virtual clock so whole-fleet sweeps stay bitwise
deterministic:

* :mod:`repro.fleet.traffic` — million-user-shaped load: a seeded
  diurnal day-curve (NHPP by inversion over the flat Poisson substrate)
  and a Zipf user population whose hot users resubmit identical
  samples;
* :mod:`repro.fleet.router` — deterministic virtual-time request
  routing (round-robin / least-loaded / power-of-two-choices) with
  per-replica perf-model backlog estimates, so heterogeneous
  :class:`~repro.perf.PlatformSpec` placements route accordingly;
* :mod:`repro.fleet.autoscaler` — a windowed p99-vs-SLO control loop
  with hysteresis, cooldown and export-priced replica warm-up, plus
  the static peak-provisioned baseline it must beat on replica-hours;
* :mod:`repro.fleet.fleet` / :mod:`repro.fleet.report` — the
  ``ServingFleet`` orchestrator and the capacity-vs-replicas /
  goodput-under-overload / day-report curves, merged with *exact*
  percentiles through :meth:`repro.serving.LoadReport.merge`.

* :mod:`repro.fleet.tenancy` — the multi-tenant plane: a
  :class:`TenantSpec` zoo served either by planner-partitioned replica
  subsets or a naive shared deployment, with per-tenant SLO reports
  (``MultiTenantFleet``) and :func:`plan_tenancy` splitting one
  hot-memory budget across tenants through
  :mod:`repro.planner`.

``benchmarks/bench_fleet.py`` regenerates the curves and gates them;
``python -m repro fleet-bench`` (and ``planner-bench`` for tenancy)
are the CLI front-ends.
"""

from .autoscaler import (Autoscaler, AutoscalerConfig, replica_warmup_s,
                         run_autoscaled_day, run_static_day,
                         smallest_static_fleet)
from .fleet import FleetResult, ServingFleet
from .report import (CapacityPoint, FleetDayReport, ScaleEvent,
                     WindowRecord, capacity_sweep, overload_sweep)
from .router import ROUTING_POLICIES, FleetRouter, RouterPolicy, RoutingPlan
from .tenancy import (TENANCY_MODES, FleetTenancyReport, MultiTenantFleet,
                      MultiTenantServer, TenantLoadSummary, TenantSpec,
                      partition_replicas, plan_tenancy)
from .traffic import DEFAULT_DAY_CURVE, DayCurve, FleetTraffic

__all__ = [
    "DayCurve",
    "DEFAULT_DAY_CURVE",
    "FleetTraffic",
    "ROUTING_POLICIES",
    "RouterPolicy",
    "RoutingPlan",
    "FleetRouter",
    "ServingFleet",
    "FleetResult",
    "AutoscalerConfig",
    "Autoscaler",
    "replica_warmup_s",
    "run_autoscaled_day",
    "run_static_day",
    "smallest_static_fleet",
    "WindowRecord",
    "ScaleEvent",
    "FleetDayReport",
    "CapacityPoint",
    "capacity_sweep",
    "overload_sweep",
    "TENANCY_MODES",
    "TenantSpec",
    "MultiTenantServer",
    "TenantLoadSummary",
    "FleetTenancyReport",
    "MultiTenantFleet",
    "partition_replicas",
    "plan_tenancy",
]

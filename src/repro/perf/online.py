"""Cluster sizing for online training (paper Sections 1, 4.1.3).

Online (recurrent/continuous) training has a *lower* throughput
requirement than offline pre-training, so it should run on
proportionally fewer nodes — which only works if the model still *fits*
on the smaller cluster, the exact situation that motivates hierarchical
memory: fewer nodes means less aggregate HBM, so tables spill to DRAM
behind the software cache and lookups slow down.

:func:`min_nodes_for` finds the smallest cluster that satisfies both the
capacity constraint (model fits in HBM+DRAM) and the throughput target,
accounting for the hierarchy slowdown when the model overflows HBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..comms import PROTOTYPE_TOPOLOGY
from ..models.zoo import ModelSpec
from .capacity import model_footprint
from .iteration import TrainingSetup, qps
from .platform import ZIONEX_PLATFORM, PlatformSpec

__all__ = ["NodeSizing", "hierarchy_bw_fraction", "min_nodes_for",
           "sizing_sweep"]


@dataclass(frozen=True)
class NodeSizing:
    """Evaluation of one candidate node count."""

    nodes: int
    fits: bool
    hbm_fraction: float        # fraction of model bytes resident in HBM
    bw_fraction: float         # effective lookup bw vs pure-HBM
    achieved_qps: float
    meets_target: bool


def hierarchy_bw_fraction(hbm_fraction: float,
                          cache_hit_boost: float = 0.5,
                          platform: PlatformSpec = ZIONEX_PLATFORM) -> float:
    """Effective lookup bandwidth (relative to HBM) when only
    ``hbm_fraction`` of the model is HBM-resident.

    Thin wrapper over :meth:`PlatformSpec.hierarchy_bw_fraction`, kept
    here because the sizing API grew up in this module; the arithmetic
    (and the Table 2 numbers) live on the shared platform spec that the
    serving-side capacity model reads too.
    """
    return platform.hierarchy_bw_fraction(hbm_fraction, cache_hit_boost)


def _evaluate(spec: ModelSpec, nodes: int, target_qps: float,
              precision: str, optimizer: str, per_gpu_batch: int,
              platform: PlatformSpec = ZIONEX_PLATFORM) -> NodeSizing:
    footprint = model_footprint(spec, precision, optimizer)
    fits = platform.fits(footprint.total_bytes, nodes)
    hbm_fraction = platform.hbm_fraction(footprint.total_bytes, nodes)
    bw_fraction = platform.hierarchy_bw_fraction(hbm_fraction)
    achieved = 0.0
    if fits:
        topo = PROTOTYPE_TOPOLOGY(nodes)
        setup = TrainingSetup(
            spec=spec, topology=topo,
            global_batch=per_gpu_batch * topo.world_size,
            embedding_precision="fp16" if precision == "fp16" else "fp32",
            memory_hierarchy_bw_fraction=max(bw_fraction, 1e-3),
            load_imbalance=1.1)
        achieved = qps(setup)
    return NodeSizing(nodes=nodes, fits=fits, hbm_fraction=hbm_fraction,
                      bw_fraction=bw_fraction, achieved_qps=achieved,
                      meets_target=fits and achieved >= target_qps)


def min_nodes_for(spec: ModelSpec, target_qps: float,
                  precision: str = "fp16",
                  optimizer: str = "rowwise_adagrad",
                  per_gpu_batch: int = 512,
                  max_nodes: int = 64,
                  platform: PlatformSpec = ZIONEX_PLATFORM
                  ) -> Optional[NodeSizing]:
    """Smallest node count meeting capacity + throughput, or None."""
    if target_qps <= 0:
        raise ValueError("target_qps must be positive")
    for nodes in range(1, max_nodes + 1):
        sizing = _evaluate(spec, nodes, target_qps, precision, optimizer,
                           per_gpu_batch, platform=platform)
        if sizing.meets_target:
            return sizing
    return None


def sizing_sweep(spec: ModelSpec, target_qps: float,
                 node_counts: List[int], precision: str = "fp16",
                 optimizer: str = "rowwise_adagrad",
                 per_gpu_batch: int = 512,
                 platform: PlatformSpec = ZIONEX_PLATFORM
                 ) -> List[NodeSizing]:
    """Evaluate a list of node counts (for the online-training bench)."""
    return [_evaluate(spec, n, target_qps, precision, optimizer,
                      per_gpu_batch, platform=platform)
            for n in node_counts]

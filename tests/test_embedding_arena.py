"""Parity tests for the fused embedding arena (repro.embedding.arena).

The contract under test: the arena's single-dispatch fused kernels are
*bitwise* identical to the per-table segment-sum path (``fusion="loop"``)
for forward, backward and fused backward+optimizer — and numerically
equal (up to summation-order rounding) to the seed's ``np.add.at``
reference implementation.
"""

import numpy as np
import pytest

from repro.embedding import (EmbeddingArena, EmbeddingTable,
                             EmbeddingTableConfig, FusedEmbeddingCollection,
                             RowWiseAdaGrad, SparseSGD, lengths_to_offsets)


def make_tables(configs, seed=0):
    rng = np.random.default_rng(seed)
    return [EmbeddingTable(c, rng=rng) for c in configs]


def clone_tables(tables):
    return [EmbeddingTable(t.config, weight=t.weight.copy()) for t in tables]


def random_batch(configs, batch_size, rng, max_len=6, empty_prob=0.2):
    batch = {}
    for c in configs:
        lengths = rng.integers(0, max_len + 1, size=batch_size)
        lengths[rng.random(batch_size) < empty_prob] = 0
        offsets = lengths_to_offsets(lengths)
        indices = rng.integers(0, c.num_embeddings,
                               size=int(offsets[-1])).astype(np.int64)
        batch[c.name] = (indices, offsets)
    return batch


MIXED_CONFIGS = [
    EmbeddingTableConfig("sum_a", 50, 8),
    EmbeddingTableConfig("mean_b", 30, 8, pooling_mode="mean"),
    EmbeddingTableConfig("sum_c", 70, 8),
    EmbeddingTableConfig("single_row", 1, 8),          # H=1 edge case
    EmbeddingTableConfig("wide", 40, 16),              # second dim group
    EmbeddingTableConfig("wide_mean", 25, 16, pooling_mode="mean"),
]


class TestArenaLayout:
    def test_groups_by_dimension(self):
        arena = EmbeddingArena(make_tables(MIXED_CONFIGS))
        assert arena.num_groups == 2
        dims = sorted(g.dim for g in arena.groups)
        assert dims == [8, 16]

    def test_storage_is_contiguous_and_views_alias_it(self):
        tables = make_tables(MIXED_CONFIGS)
        before = {t.name: t.weight.copy() for t in tables}
        arena = EmbeddingArena(tables)
        for group in arena.groups:
            assert group.storage.flags.c_contiguous
            assert group.storage.shape == (
                sum(t.config.num_embeddings for t in group.tables),
                group.dim)
            for t, base in zip(group.tables, group.bases):
                # weight is a view of arena storage with unchanged contents
                assert t.weight.base is group.storage
                np.testing.assert_array_equal(t.weight, before[t.name])
                np.testing.assert_array_equal(
                    group.storage[base:base + t.config.num_embeddings],
                    before[t.name])

    def test_table_write_visible_to_arena(self):
        tables = make_tables(MIXED_CONFIGS[:2])
        arena = EmbeddingArena(tables)
        tables[0].weight[3] = 42.0
        group = arena.groups[0]
        np.testing.assert_array_equal(group.storage[3], np.full(8, 42.0))

    def test_rebound_weight_resynced_on_forward(self):
        tables = make_tables(MIXED_CONFIGS[:2], seed=1)
        arena = EmbeddingArena(tables)
        # external rebind, e.g. a checkpoint restore
        fresh = np.random.default_rng(9).normal(
            size=tables[0].weight.shape).astype(np.float32)
        tables[0].weight = fresh
        batch = random_batch(MIXED_CONFIGS[:2], 4, np.random.default_rng(2))
        out = arena.forward(batch)
        # arena must have repacked the new rows and re-pointed the view
        assert tables[0].weight.base is arena.groups[0].storage
        np.testing.assert_array_equal(tables[0].weight, fresh)
        ref = EmbeddingTable(tables[0].config, weight=fresh.copy())
        np.testing.assert_array_equal(
            out["sum_a"], ref.forward(*batch["sum_a"]))

    def test_memory_bytes(self):
        arena = EmbeddingArena(make_tables(MIXED_CONFIGS))
        expected = sum(c.num_embeddings * c.embedding_dim * 4
                       for c in MIXED_CONFIGS)
        assert arena.memory_bytes() == expected

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingArena([])


class TestForwardParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_bitwise_vs_loop_mode(self, seed):
        rng = np.random.default_rng(seed)
        arena_c = FusedEmbeddingCollection(make_tables(MIXED_CONFIGS, seed),
                                           fusion="arena")
        loop_c = FusedEmbeddingCollection(
            clone_tables(arena_c.tables), fusion="loop")
        batch = random_batch(MIXED_CONFIGS, 16, rng)
        out_a, out_l = arena_c.forward(batch), loop_c.forward(batch)
        for name in arena_c.names:
            np.testing.assert_array_equal(out_a[name], out_l[name])

    def test_close_to_add_at_reference(self):
        rng = np.random.default_rng(3)
        arena_c = FusedEmbeddingCollection(make_tables(MIXED_CONFIGS),
                                           fusion="arena")
        refs = clone_tables(arena_c.tables)
        batch = random_batch(MIXED_CONFIGS, 16, rng, max_len=20)
        out = arena_c.forward(batch)
        for t in refs:
            np.testing.assert_allclose(
                out[t.name], t.forward_reference(*batch[t.name]),
                rtol=1e-6, atol=1e-6)

    def test_all_empty_batch(self):
        configs = MIXED_CONFIGS[:3]
        arena_c = FusedEmbeddingCollection(make_tables(configs),
                                           fusion="arena")
        batch = {c.name: (np.zeros(0, dtype=np.int64),
                          np.zeros(9, dtype=np.int64)) for c in configs}
        out = arena_c.forward(batch)
        for c in configs:
            np.testing.assert_array_equal(out[c.name], np.zeros((8, 8)))

    def test_per_table_backward_still_works_after_arena_forward(self):
        # arena.forward primes each table's saved state, so table.backward
        # must keep working.
        configs = MIXED_CONFIGS[:2]
        arena_c = FusedEmbeddingCollection(make_tables(configs),
                                           fusion="arena")
        loop = clone_tables(arena_c.tables)
        rng = np.random.default_rng(4)
        batch = random_batch(configs, 8, rng)
        arena_c.forward(batch)
        dy = rng.normal(size=(8, 8)).astype(np.float32)
        for t_a, t_l in zip(arena_c.tables, loop):
            t_l.forward(*batch[t_l.name])
            g_a, g_l = t_a.backward(dy), t_l.backward(dy)
            np.testing.assert_array_equal(g_a.rows, g_l.rows)
            np.testing.assert_array_equal(g_a.values, g_l.values)


class TestBackwardParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_sparse_gradients_bitwise(self, seed):
        rng = np.random.default_rng(seed + 10)
        arena_c = FusedEmbeddingCollection(make_tables(MIXED_CONFIGS, seed),
                                           fusion="arena")
        loop_c = FusedEmbeddingCollection(
            clone_tables(arena_c.tables), fusion="loop")
        batch = random_batch(MIXED_CONFIGS, 12, rng)
        arena_c.forward(batch)
        loop_c.forward(batch)
        dy = {c.name: rng.normal(size=(12, c.embedding_dim)).astype(
            np.float32) for c in MIXED_CONFIGS}
        g_a, g_l = arena_c.backward(dy), loop_c.backward(dy)
        for name in arena_c.names:
            np.testing.assert_array_equal(g_a[name].rows, g_l[name].rows)
            np.testing.assert_array_equal(g_a[name].values, g_l[name].values)

    @pytest.mark.parametrize("make_opt", [
        lambda: SparseSGD(lr=0.1),
        lambda: RowWiseAdaGrad(lr=0.05),
    ])
    @pytest.mark.parametrize("seed", range(3))
    def test_fused_update_bitwise(self, make_opt, seed):
        rng = np.random.default_rng(seed + 20)
        arena_c = FusedEmbeddingCollection(make_tables(MIXED_CONFIGS, seed),
                                           fusion="arena")
        loop_c = FusedEmbeddingCollection(
            clone_tables(arena_c.tables), fusion="loop")
        opt_a, opt_l = make_opt(), make_opt()
        for step in range(3):   # multi-step: optimizer state must agree too
            batch = random_batch(MIXED_CONFIGS, 12, rng)
            arena_c.forward(batch)
            loop_c.forward(batch)
            dy = {c.name: rng.normal(size=(12, c.embedding_dim)).astype(
                np.float32) for c in MIXED_CONFIGS}
            arena_c.backward_and_update(dy, opt_a)
            loop_c.backward_and_update(dy, opt_l)
            for name in arena_c.names:
                np.testing.assert_array_equal(
                    arena_c.table(name).weight, loop_c.table(name).weight,
                    err_msg=f"step {step} table {name}")

    def test_backward_before_forward_raises(self):
        arena = EmbeddingArena(make_tables(MIXED_CONFIGS[:1]))
        with pytest.raises(RuntimeError):
            arena.backward({"sum_a": np.zeros((2, 8), dtype=np.float32)})


class TestKernelLaunchAccounting:
    def test_loop_counts_one_launch_per_table(self):
        coll = FusedEmbeddingCollection(make_tables(MIXED_CONFIGS),
                                        fusion="loop")
        batch = random_batch(MIXED_CONFIGS, 4, np.random.default_rng(0))
        coll.forward(batch)
        assert coll.kernel_launches == len(MIXED_CONFIGS)

    def test_arena_counts_one_launch_per_dim_group(self):
        coll = FusedEmbeddingCollection(make_tables(MIXED_CONFIGS),
                                        fusion="arena")
        batch = random_batch(MIXED_CONFIGS, 4, np.random.default_rng(0))
        coll.forward(batch)
        assert coll.kernel_launches == 2  # dims {8, 16}
        dy = {c.name: np.zeros((4, c.embedding_dim), dtype=np.float32)
              for c in MIXED_CONFIGS}
        coll.backward_and_update(dy, SparseSGD(lr=0.1))
        assert coll.kernel_launches == 4

    def test_uniform_dim_model_is_single_dispatch(self):
        configs = [EmbeddingTableConfig(f"t{i}", 20, 8) for i in range(10)]
        coll = FusedEmbeddingCollection(make_tables(configs),
                                        fusion="arena")
        batch = random_batch(configs, 4, np.random.default_rng(1))
        coll.forward(batch)
        assert coll.kernel_launches == 1

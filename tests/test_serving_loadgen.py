"""Load-generator and SLO-report tests: seeded determinism and accounting.

An open-loop Poisson trace must be exactly reproducible from its seed,
statistically honest about its offered rate, and the report derived
from a serve run must account for every offered request.
"""

import numpy as np
import pytest

from repro.serving import (BatchingPolicy, InferenceServer, LoadReport,
                           PoissonLoadGen, ServingPerfModel, run_load_test)
from repro.serving.loadgen import summarize

from .helpers import tiny_system


class TestPoissonLoadGen:
    def test_same_seed_same_trace(self):
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        np.testing.assert_array_equal(a.arrival_times(), b.arrival_times())

    def test_different_seed_different_trace(self):
        a = PoissonLoadGen(qps=1000, num_requests=50, seed=7)
        b = PoissonLoadGen(qps=1000, num_requests=50, seed=8)
        assert not np.array_equal(a.arrival_times(), b.arrival_times())

    def test_mean_rate_approximates_qps(self):
        gen = PoissonLoadGen(qps=500, num_requests=4000, seed=0)
        arrivals = gen.arrival_times()
        measured = len(arrivals) / arrivals[-1]
        assert measured == pytest.approx(500, rel=0.1)

    def test_arrivals_increase_from_start(self):
        gen = PoissonLoadGen(qps=100, num_requests=20, seed=1, start_s=5.0)
        arrivals = gen.arrival_times()
        assert arrivals[0] > 5.0
        assert np.all(np.diff(arrivals) > 0)

    def test_requests_slice_the_bulk_batch(self):
        ds = tiny_system().dataset
        gen = PoissonLoadGen(qps=100, num_requests=10, seed=2)
        requests = gen.requests(ds)
        bulk = ds.batch(10, batch_index=2)
        assert [r.request_id for r in requests] == list(range(10))
        for i, r in enumerate(requests):
            assert r.num_samples == 1
            np.testing.assert_array_equal(r.batch.dense, bulk.dense[i:i + 1])

    def test_for_duration_sizes_to_expected_arrivals(self):
        gen = PoissonLoadGen.for_duration(qps=250, duration_s=2.0, seed=5)
        assert gen.num_requests == 500
        assert gen.qps == 250
        assert gen.seed == 5
        # degenerate horizon still produces at least one request
        assert PoissonLoadGen.for_duration(qps=1, duration_s=1e-6) \
            .num_requests == 1
        with pytest.raises(ValueError):
            PoissonLoadGen.for_duration(qps=100, duration_s=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonLoadGen(qps=0, num_requests=10)
        with pytest.raises(ValueError):
            PoissonLoadGen(qps=10, num_requests=0)


class TestLoadReport:
    def test_accounting_conserves_requests(self):
        sys = tiny_system()
        # tiny queue + slow server forces sheds
        server = InferenceServer(
            sys.servable, BatchingPolicy(max_batch_size=4, max_wait_s=1e-4,
                                         max_queue_depth=4),
            ServingPerfModel(overhead_s=5e-3))
        report = run_load_test(server, sys.dataset, qps=5000,
                               num_requests=200, slo_s=5e-3, seed=0)
        assert report.num_offered == 200
        assert report.num_completed + report.num_shed == 200
        assert report.num_shed > 0
        assert 0 < report.shed_fraction < 1

    def test_seeded_report_is_exactly_reproducible(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        a = run_load_test(server, sys.dataset, qps=2000, num_requests=150,
                          slo_s=5e-3, seed=4)
        b = run_load_test(server, sys.dataset, qps=2000, num_requests=150,
                          slo_s=5e-3, seed=4)
        assert a == b

    def test_percentiles_ordered(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=150, slo_s=5e-3, seed=0)
        assert 0 < report.p50_s <= report.p95_s <= report.p99_s \
            <= report.max_s
        assert report.makespan_s > 0

    def test_goodput_counts_only_within_slo(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        out = []
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=100, slo_s=5e-3, seed=0,
                               result_out=out)
        result = out[0]
        within = int(np.sum(result.latencies_s() <= report.slo_s))
        assert report.goodput_qps == pytest.approx(
            within / result.makespan_s())
        assert report.slo_attainment == pytest.approx(within / 100)
        # under light load everything meets a 5 ms SLO
        assert report.slo_attainment == 1.0
        assert report.goodput_qps == pytest.approx(report.completed_qps)

    def test_impossible_slo_zeroes_goodput(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=100, slo_s=1e-9, seed=0)
        assert report.goodput_qps == 0.0
        assert report.slo_attainment == 0.0
        assert report.completed_qps > 0  # work still happened

    def test_row_matches_header(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        report = run_load_test(server, sys.dataset, qps=2000,
                               num_requests=50, slo_s=5e-3, seed=0)
        assert len(report.row()) == len(LoadReport.ROW_HEADER)

    def test_summarize_empty_result(self):
        from repro.serving import ServeResult
        report = summarize(ServeResult(), offered_qps=100, num_offered=0,
                           slo_s=1e-3)
        assert report.num_completed == 0
        assert report.goodput_qps == 0.0
        assert report.shed_fraction == 0.0

    def test_rejects_bad_slo(self):
        sys = tiny_system()
        server = InferenceServer(sys.servable)
        with pytest.raises(ValueError):
            run_load_test(server, sys.dataset, qps=100, num_requests=10,
                          slo_s=0.0)

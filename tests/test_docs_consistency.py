"""Meta-tests: documentation and public-API consistency.

Keeps the repository honest as it grows: every module documented, every
``__all__`` name real, every subpackage inventoried in DESIGN.md, and
every bench file indexed in the docs.
"""

import importlib
import os
import pkgutil

import pytest

import repro

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield info.name


class TestDocstrings:
    def test_every_module_has_docstring(self):
        missing = []
        for name in iter_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_all_entry_exists(self):
        broken = []
        for name in iter_modules():
            module = importlib.import_module(name)
            for entry in getattr(module, "__all__", []):
                if not hasattr(module, entry):
                    broken.append(f"{name}.{entry}")
        assert not broken, f"__all__ names that do not exist: {broken}"

    def test_public_classes_have_docstrings(self):
        undocumented = []
        for name in iter_modules():
            module = importlib.import_module(name)
            for entry in getattr(module, "__all__", []):
                obj = getattr(module, entry, None)
                if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{name}.{entry}")
        assert not undocumented, \
            f"public classes without docstrings: {undocumented}"


class TestDesignInventory:
    def test_subpackages_in_design_md(self):
        design = open(os.path.join(REPO_ROOT, "DESIGN.md")).read()
        src = os.path.join(REPO_ROOT, "src", "repro")
        for entry in sorted(os.listdir(src)):
            path = os.path.join(src, entry)
            if os.path.isdir(path) and not entry.startswith("__"):
                assert entry in design, \
                    f"subpackage {entry!r} missing from DESIGN.md"

    def test_benches_indexed_in_docs(self):
        """Every bench file appears in DESIGN.md's experiment index or
        EXPERIMENTS.md."""
        design = open(os.path.join(REPO_ROOT, "DESIGN.md")).read()
        experiments = open(os.path.join(REPO_ROOT, "EXPERIMENTS.md")).read()
        docs = design + experiments
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        missing = []
        for name in sorted(os.listdir(bench_dir)):
            if name.startswith("bench_") and name.endswith(".py"):
                if name not in docs:
                    missing.append(name)
        assert not missing, f"benches not indexed in docs: {missing}"

    def test_examples_listed_in_readme(self):
        readme = open(os.path.join(REPO_ROOT, "README.md")).read()
        examples_dir = os.path.join(REPO_ROOT, "examples")
        for name in sorted(os.listdir(examples_dir)):
            if name.endswith(".py"):
                assert name in readme, \
                    f"example {name!r} not listed in README.md"


class TestPackaging:
    def test_version_defined(self):
        assert repro.__version__

    def test_top_level_all_importable(self):
        for entry in repro.__all__:
            importlib.import_module(f"repro.{entry}")

"""Tests for the software cache, UVM baseline, and memory hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (ArrayBackingStore, CachedEmbeddingTable,
                         MemoryHierarchy, MemoryTier, SetAssociativeCache,
                         UVMPageCache, ZIONEX_NODE_HIERARCHY)
from repro.embedding import EmbeddingTable, EmbeddingTableConfig


def make_backing(h=64, d=4, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayBackingStore(rng.normal(size=(h, d)).astype(np.float32))


class TestBackingStore:
    def test_read_counts_bytes(self):
        b = make_backing(d=4)
        b.read_rows(np.array([0, 1, 2]))
        assert b.bytes_read == 3 * 4 * 4

    def test_write_then_read(self):
        b = make_backing()
        vals = np.ones((2, 4), dtype=np.float32)
        b.write_rows(np.array([5, 6]), vals)
        np.testing.assert_array_equal(b.read_rows(np.array([5, 6])), vals)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            ArrayBackingStore(np.zeros(4))


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(capacity_rows=8, row_dim=4, ways=2)
        backing = make_backing()
        cache.read(np.array([3]), backing)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.read(np.array([3]), backing)
        assert cache.stats.hits == 1

    def test_read_returns_backing_values(self):
        cache = SetAssociativeCache(capacity_rows=256, row_dim=4)
        backing = make_backing()
        ids = np.array([1, 17, 33, 1])
        out = cache.read(ids, backing)
        np.testing.assert_array_equal(out, backing.rows[ids])

    def test_read_after_write_returns_written(self):
        cache = SetAssociativeCache(capacity_rows=8, row_dim=4, ways=2)
        backing = make_backing()
        new = np.full((1, 4), 9.0, dtype=np.float32)
        cache.write(np.array([7]), new, backing)
        out = cache.read(np.array([7]), backing)
        np.testing.assert_array_equal(out, new)

    def test_write_back_on_eviction(self):
        """Dirty victim reaches the backing store when evicted."""
        cache = SetAssociativeCache(capacity_rows=1, row_dim=4, ways=1)
        backing = make_backing(h=8)
        new = np.full((1, 4), 5.0, dtype=np.float32)
        cache.write(np.array([0]), new, backing)
        # evict row 0 by touching another row in the same (only) set
        cache.read(np.array([1]), backing)
        np.testing.assert_array_equal(backing.rows[0], new[0])
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = SetAssociativeCache(capacity_rows=1, row_dim=4, ways=1)
        backing = make_backing(h=8)
        cache.read(np.array([0]), backing)
        cache.read(np.array([1]), backing)
        assert cache.stats.evictions == 1
        assert cache.stats.writebacks == 0

    def test_lru_evicts_least_recent(self):
        cache = SetAssociativeCache(capacity_rows=2, row_dim=4, ways=2,
                                    policy="lru")
        backing = make_backing(h=8)
        cache.read(np.array([0]), backing)
        cache.read(np.array([1]), backing)
        cache.read(np.array([0]), backing)  # 0 now most recent
        cache.read(np.array([2]), backing)  # evicts 1
        assert cache.contains(0) and cache.contains(2)
        assert not cache.contains(1)

    def test_lfu_evicts_least_frequent(self):
        cache = SetAssociativeCache(capacity_rows=2, row_dim=4, ways=2,
                                    policy="lfu")
        backing = make_backing(h=8)
        for _ in range(3):
            cache.read(np.array([0]), backing)
        cache.read(np.array([1]), backing)
        cache.read(np.array([2]), backing)  # evicts 1 (freq 1 < freq 3)
        assert cache.contains(0) and cache.contains(2)
        assert not cache.contains(1)

    def test_flush_writes_all_dirty(self):
        cache = SetAssociativeCache(capacity_rows=8, row_dim=4, ways=2)
        backing = make_backing(h=16)
        vals = np.arange(8, dtype=np.float32).reshape(2, 4)
        cache.write(np.array([2, 9]), vals, backing)
        flushed = cache.flush(backing)
        assert flushed == 2
        np.testing.assert_array_equal(backing.rows[2], vals[0])
        np.testing.assert_array_equal(backing.rows[9], vals[1])
        assert cache.flush(backing) == 0  # idempotent

    def test_hit_plus_miss_equals_accesses(self):
        cache = SetAssociativeCache(capacity_rows=128, row_dim=4)
        backing = make_backing()
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 64, size=200)
        cache.read(ids, backing)
        assert cache.stats.accesses == 200

    def test_set_mapping(self):
        cache = SetAssociativeCache(capacity_rows=128, row_dim=4)
        assert cache._set_index(7) == 3
        assert cache._set_index(8) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_rows=0, row_dim=4)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_rows=128, row_dim=4, policy="fifo")
        with pytest.raises(TypeError):
            SetAssociativeCache(row_dim=4)  # no sizing at all
        with pytest.raises(TypeError):
            # pre-protocol geometry sizing was removed
            SetAssociativeCache(num_sets=4, row_dim=4, capacity_rows=128)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_coherence_property(self, trace):
        """Reads through the cache always equal a shadow dense copy."""
        cache = SetAssociativeCache(capacity_rows=4, row_dim=4, ways=2)
        backing = make_backing(h=64, seed=1)
        shadow = backing.rows.copy()
        rng = np.random.default_rng(0)
        for i, row in enumerate(trace):
            if i % 3 == 2:  # every third access is a write
                val = rng.normal(size=(1, 4)).astype(np.float32)
                cache.write(np.array([row]), val, backing)
                shadow[row] = val[0]
            else:
                out = cache.read(np.array([row]), backing)
                np.testing.assert_array_equal(out[0], shadow[row])
        cache.flush(backing)
        np.testing.assert_array_equal(backing.rows, shadow)


class TestUVMPageCache:
    def test_page_migration_fetches_whole_page(self):
        cache = UVMPageCache(capacity_rows=16, row_dim=4, rows_per_page=8)
        backing = make_backing(h=64)
        cache.read(np.array([0]), backing)
        # one row requested but a full page of bytes moved
        assert backing.bytes_read == 8 * 4 * 4
        assert cache.pages_migrated == 1

    def test_same_page_hits(self):
        cache = UVMPageCache(capacity_rows=16, row_dim=4, rows_per_page=8)
        backing = make_backing(h=64)
        cache.read(np.array([0]), backing)
        cache.read(np.array([7]), backing)  # same page
        assert cache.stats.hits == 1

    def test_eviction_at_capacity(self):
        cache = UVMPageCache(capacity_rows=8, row_dim=4, rows_per_page=8)
        backing = make_backing(h=64)
        cache.read(np.array([0]), backing)   # page 0
        cache.read(np.array([8]), backing)   # page 1 evicts page 0
        assert not cache.contains(0)
        assert cache.contains(8)

    def test_dirty_page_written_back(self):
        cache = UVMPageCache(capacity_rows=8, row_dim=4, rows_per_page=8)
        backing = make_backing(h=64)
        val = np.full((1, 4), 3.0, dtype=np.float32)
        cache.write(np.array([1]), val, backing)
        cache.read(np.array([9]), backing)  # evict page 0
        np.testing.assert_array_equal(backing.rows[1], val[0])

    def test_row_cache_beats_uvm_on_sparse_hot_set(self):
        """The paper's granularity argument: for a scattered hot set, the
        row cache holds every hot row while UVM thrashes pages."""
        h, d = 4096, 4
        backing_row = make_backing(h=h, d=d, seed=2)
        backing_uvm = make_backing(h=h, d=d, seed=2)
        capacity = 256
        row_cache = SetAssociativeCache(capacity_rows=capacity, row_dim=d,
                                        ways=32)
        uvm = UVMPageCache(capacity_rows=capacity, row_dim=d,
                           rows_per_page=64)
        # hot rows scattered one per page
        hot = np.arange(0, h, h // 128)[:128]
        rng = np.random.default_rng(3)
        for _ in range(20):
            ids = rng.choice(hot, size=64)
            row_cache.read(ids, backing_row)
            uvm.read(ids, backing_uvm)
        assert row_cache.stats.hit_rate > uvm.stats.hit_rate
        assert backing_row.bytes_read < backing_uvm.bytes_read

    def test_flush(self):
        cache = UVMPageCache(capacity_rows=16, row_dim=4, rows_per_page=8)
        backing = make_backing(h=64)
        val = np.full((1, 4), 2.0, dtype=np.float32)
        cache.write(np.array([3]), val, backing)
        assert cache.flush(backing) == 1
        np.testing.assert_array_equal(backing.rows[3], val[0])
        assert cache.flush(backing) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            UVMPageCache(capacity_rows=4, row_dim=4, rows_per_page=8)

    def test_partial_last_page(self):
        """Backing stores whose row count is not a page multiple work."""
        cache = UVMPageCache(capacity_rows=16, row_dim=4, rows_per_page=8)
        backing = make_backing(h=12)  # last page has 4 rows
        out = cache.read(np.array([11]), backing)
        np.testing.assert_array_equal(out[0], backing.rows[11])


class TestMemoryHierarchy:
    def test_zionex_capacity(self):
        hier = ZIONEX_NODE_HIERARCHY()
        assert hier.total_capacity_bytes == pytest.approx(
            256e9 + 1.5e12 + 4e12)

    def test_fits(self):
        hier = ZIONEX_NODE_HIERARCHY()
        assert hier.fits(5e12)
        assert not hier.fits(6e12)

    def test_placement_waterfall(self):
        hier = MemoryHierarchy([MemoryTier("a", 100, 1000),
                                MemoryTier("b", 100, 100)])
        assert hier.placement(150) == [100, 50]

    def test_placement_overflow_raises(self):
        hier = MemoryHierarchy([MemoryTier("a", 100, 1000)])
        with pytest.raises(ValueError):
            hier.placement(101)

    def test_effective_bandwidth_harmonic(self):
        hier = MemoryHierarchy([MemoryTier("fast", 1, 100),
                                MemoryTier("slow", 1, 10)])
        bw = hier.effective_bandwidth([0.5, 0.5])
        assert bw == pytest.approx(1 / (0.5 / 100 + 0.5 / 10))

    def test_effective_bandwidth_validates(self):
        hier = MemoryHierarchy([MemoryTier("a", 1, 100)])
        with pytest.raises(ValueError):
            hier.effective_bandwidth([0.5])
        with pytest.raises(ValueError):
            hier.effective_bandwidth([0.5, 0.5])

    def test_tier_ordering_enforced(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([MemoryTier("slow", 1, 10),
                             MemoryTier("fast", 1, 100)])

    def test_hbm_pcie_gap(self):
        """Section 4.1.3: HBM is ~36-50x faster than PCIe-bound UVM."""
        hbm = 7.2e12 / 8  # per GPU
        pcie = 25e9       # PCIe gen3 x16 measured
        assert 30 <= hbm / pcie <= 50


class TestCachedEmbeddingTable:
    def make(self, h=32, d=4):
        cfg = EmbeddingTableConfig("t", h, d)
        cache = SetAssociativeCache(capacity_rows=8, row_dim=d, ways=2)
        return CachedEmbeddingTable(cfg, cache,
                                    rng=np.random.default_rng(0))

    def test_matches_uncached_forward(self):
        cached = self.make()
        plain = EmbeddingTable(cached.config,
                               weight=cached.backing.rows.copy())
        indices = np.array([1, 5, 9, 1], dtype=np.int64)
        offsets = np.array([0, 2, 4], dtype=np.int64)
        np.testing.assert_array_equal(cached.forward(indices, offsets),
                                      plain.forward(indices, offsets))

    def test_training_step_coherent(self):
        """Train through the cache, checkpoint, compare with dense math."""
        cached = self.make()
        reference = cached.backing.rows.copy()
        indices = np.array([2, 3, 2], dtype=np.int64)
        offsets = np.array([0, 3], dtype=np.int64)
        cached.forward(indices, offsets)
        grad = cached.backward(np.ones((1, 4), dtype=np.float32))
        cached.sgd_step(grad, lr=0.5)
        final = cached.checkpoint()
        # row 2 hit twice (merged), row 3 once
        reference[2] -= 0.5 * 2.0
        reference[3] -= 0.5 * 1.0
        np.testing.assert_allclose(final, reference, rtol=1e-5)

    def test_empty_batch(self):
        cached = self.make()
        out = cached.forward(np.array([], dtype=np.int64),
                             np.array([0], dtype=np.int64))
        assert out.shape == (0, 4)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            self.make().backward(np.zeros((1, 4), dtype=np.float32))

"""Embedding tables with pooled (EmbeddingBag-style) lookup.

An embedding table of shape ``(H, D)`` maps categorical ids to dense
vectors; a pooled lookup reduces the ``L`` ids of each sample ("bag") into a
single vector. This is the memory-bandwidth-bound operator at the heart of
DLRM (Section 4.1 of the paper).

Inputs use the jagged ``(indices, offsets)`` layout of
``torch.nn.EmbeddingBag``: ``indices`` concatenates all ids, ``offsets[b]``
is the start of bag ``b`` and has length ``B + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .kernels import expand_bag_ids, segment_sum

__all__ = ["EmbeddingTableConfig", "SparseGradient", "EmbeddingTable",
           "lengths_to_offsets", "offsets_to_lengths"]


def lengths_to_offsets(lengths: np.ndarray) -> np.ndarray:
    """Convert per-bag lengths to the (B+1)-element offsets vector."""
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def offsets_to_lengths(offsets: np.ndarray) -> np.ndarray:
    return np.diff(offsets).astype(np.int64)


@dataclass(frozen=True)
class EmbeddingTableConfig:
    """Static description of one embedding table.

    ``avg_pooling`` (the paper's ``L``) and ``batch_hotness`` only feed the
    sharding cost model and the performance model; the functional path uses
    whatever indices it is given.
    """

    name: str
    num_embeddings: int  # H
    embedding_dim: int   # D
    avg_pooling: float = 1.0  # L
    pooling_mode: str = "sum"
    precision: str = "fp32"

    def __post_init__(self) -> None:
        if self.num_embeddings <= 0:
            raise ValueError(f"num_embeddings must be positive: {self}")
        if self.embedding_dim <= 0:
            raise ValueError(f"embedding_dim must be positive: {self}")
        if self.pooling_mode not in ("sum", "mean"):
            raise ValueError(f"pooling_mode must be 'sum' or 'mean': {self}")

    @property
    def num_parameters(self) -> int:
        return self.num_embeddings * self.embedding_dim

    def memory_bytes(self, precision: Optional[str] = None) -> int:
        from .. import lowp
        return self.num_parameters * lowp.bytes_per_element(
            precision or self.precision)


@dataclass
class SparseGradient:
    """Gradient of a pooled lookup w.r.t. table rows, in COO-row form.

    ``rows[k]`` received gradient ``values[k]``; the same row may appear
    multiple times (once per occurrence in the batch) — exact optimizers
    merge duplicates before updating (Section 4.1.2).
    """

    rows: np.ndarray          # (nnz,) int64
    values: np.ndarray        # (nnz, D) float32
    num_embeddings: int = 0   # H, for densification

    def to_dense(self) -> np.ndarray:
        """Scatter-add into a dense (H, D) gradient (reference semantics)."""
        if self.num_embeddings <= 0:
            raise ValueError("num_embeddings must be set to densify")
        dense = np.zeros((self.num_embeddings, self.values.shape[1]),
                         dtype=np.float32)
        np.add.at(dense, self.rows, self.values)
        return dense


class EmbeddingTable:
    """One embedding table with pooled lookup and explicit sparse backward."""

    def __init__(self, config: EmbeddingTableConfig,
                 rng: Optional[np.random.Generator] = None,
                 weight: Optional[np.ndarray] = None) -> None:
        self.config = config
        if weight is not None:
            if weight.shape != (config.num_embeddings, config.embedding_dim):
                raise ValueError(
                    f"weight shape {weight.shape} does not match config "
                    f"({config.num_embeddings}, {config.embedding_dim})")
            self.weight = weight.astype(np.float32, copy=True)
        else:
            rng = rng if rng is not None else np.random.default_rng(0)
            # DLRM reference init: uniform in +-1/sqrt(H)
            limit = 1.0 / np.sqrt(config.num_embeddings)
            self.weight = rng.uniform(
                -limit, limit,
                size=(config.num_embeddings, config.embedding_dim),
            ).astype(np.float32)
        self._saved: Optional[tuple] = None

    @property
    def name(self) -> str:
        return self.config.name

    def _validate(self, indices: np.ndarray, offsets: np.ndarray) -> None:
        if offsets.ndim != 1 or len(offsets) < 1:
            raise ValueError("offsets must be a 1-D array of length B+1")
        if offsets[0] != 0 or offsets[-1] != len(indices):
            raise ValueError(
                f"offsets must start at 0 and end at len(indices)="
                f"{len(indices)}, got [{offsets[0]}, {offsets[-1]}]")
        if len(indices) and (indices.min() < 0
                             or indices.max() >= self.config.num_embeddings):
            raise IndexError(
                f"indices out of range for table {self.name} with "
                f"H={self.config.num_embeddings}")

    def forward(self, indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Pooled lookup: returns (B, D) with B = len(offsets) - 1.

        One gather plus one segment-reduce (``np.add.reduceat``), the
        CPU analogue of the paper's batched FBGEMM lookup. Bag ids for
        the backward pass are derived lazily — the forward hot path
        never materializes a scatter index.
        """
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        self._validate(indices, offsets)
        lengths = np.diff(offsets)
        gathered = self.weight[indices] if len(indices) else \
            np.zeros((0, self.config.embedding_dim), dtype=np.float32)
        out = segment_sum(gathered, offsets)
        if self.config.pooling_mode == "mean":
            denom = np.maximum(lengths, 1).astype(np.float32)
            out /= denom[:, None]
        self._saved = (indices, None, lengths)
        return out

    def forward_reference(self, indices: np.ndarray,
                          offsets: np.ndarray) -> np.ndarray:
        """Seed ``np.add.at`` scatter implementation, kept as the slow
        reference: the parity oracle for kernel tests and the baseline the
        ``bench_fused_kernel`` trajectory measures speedups against.

        Note ``np.add.at`` accumulates strictly sequentially while
        :func:`~repro.embedding.kernels.segment_sum` uses numpy's pairwise
        reduction order, so for bags longer than ~8 the two are equal only
        to float32 rounding (the pairwise order is the more accurate one).
        """
        indices = np.asarray(indices, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        self._validate(indices, offsets)
        batch = len(offsets) - 1
        lengths = np.diff(offsets)
        bag_ids = np.repeat(np.arange(batch, dtype=np.int64), lengths)
        out = np.zeros((batch, self.config.embedding_dim), dtype=np.float32)
        if len(indices):
            np.add.at(out, bag_ids, self.weight[indices])
        if self.config.pooling_mode == "mean":
            denom = np.maximum(lengths, 1).astype(np.float32)
            out /= denom[:, None]
        self._saved = (indices, bag_ids, lengths)
        return out

    def backward(self, dy: np.ndarray) -> SparseGradient:
        """Gradient w.r.t. rows touched in the last forward pass."""
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        indices, bag_ids, lengths = self._saved
        if bag_ids is None:
            bag_ids = expand_bag_ids(lengths)
            self._saved = (indices, bag_ids, lengths)
        grad_rows = dy[bag_ids].astype(np.float32)
        if self.config.pooling_mode == "mean":
            denom = np.maximum(lengths, 1).astype(np.float32)
            grad_rows = grad_rows / denom[bag_ids][:, None]
        return SparseGradient(rows=indices, values=grad_rows,
                              num_embeddings=self.config.num_embeddings)

    def num_parameters(self) -> int:
        return self.config.num_parameters

"""Dense neural-network substrate: layers, losses and optimizers.

This is the reproduction's stand-in for the PyTorch operator stack the paper
builds on — a numpy "autograd-lite" with hand-written backward passes, kept
small and fully deterministic.
"""

from . import functional, init, stacked
from .interaction import CatInteraction, DotInteraction
from .layers import MLP, Identity, Linear, Module, ReLU, Sequential, Sigmoid
from .losses import BCEWithLogitsLoss
from .lr_scheduler import (LRScheduler, PolynomialDecay, StepDecay,
                           WarmupLinearDecay, linear_scaled_lr)
from .optim import LAMB, AdaGrad, Adam, Optimizer, SGD
from .parameter import Parameter
from .softmax import CrossEntropyLoss, Softmax

__all__ = [
    "functional",
    "init",
    "stacked",
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Identity",
    "Sequential",
    "MLP",
    "DotInteraction",
    "CatInteraction",
    "BCEWithLogitsLoss",
    "Optimizer",
    "SGD",
    "AdaGrad",
    "Adam",
    "LAMB",
    "LRScheduler",
    "WarmupLinearDecay",
    "StepDecay",
    "PolynomialDecay",
    "linear_scaled_lr",
    "Softmax",
    "CrossEntropyLoss",
]

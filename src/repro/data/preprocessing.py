"""Reader-side feature pre-processing (paper Fig. 6, Section 4.4).

The disaggregated readers "perform lightweight data pre-processing
operations in a distributed fashion" before batches reach trainers. The
standard DLRM transforms, composable and stateful-where-needed:

* :class:`LogTransform` — ``log1p`` of non-negative dense counters;
* :class:`DenseNormalizer` — running mean/std standardization (state
  accumulated with Welford/Chan parallel merging so distributed readers
  can combine their statistics exactly);
* :class:`MissingValueImputer` — replace NaNs with a fill value;
* :class:`FeatureHasher` — fold raw categorical ids into table ranges;
* :class:`TransformPipeline` — ordered composition applied per batch.

All transforms return new :class:`MiniBatch` objects (readers must not
mutate buffers shared with the prefetch queue).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..embedding.table import EmbeddingTableConfig
from .datagen import MiniBatch
from .hashing import hash_indices

__all__ = ["Transform", "LogTransform", "DenseNormalizer",
           "MissingValueImputer", "FeatureHasher", "TransformPipeline"]


class Transform:
    """One batch-in, batch-out preprocessing step."""

    def apply(self, batch: MiniBatch) -> MiniBatch:
        raise NotImplementedError

    def __call__(self, batch: MiniBatch) -> MiniBatch:
        return self.apply(batch)


def _clone(batch: MiniBatch, dense: Optional[np.ndarray] = None,
           sparse: Optional[Dict] = None) -> MiniBatch:
    return MiniBatch(
        dense=batch.dense.copy() if dense is None else dense,
        sparse={k: (i.copy(), o.copy()) for k, (i, o) in
                batch.sparse.items()} if sparse is None else sparse,
        labels=batch.labels.copy())


class LogTransform(Transform):
    """``log(1 + max(x, 0))`` on the dense features."""

    def apply(self, batch: MiniBatch) -> MiniBatch:
        dense = np.log1p(np.maximum(batch.dense, 0.0)).astype(np.float32)
        return _clone(batch, dense=dense)


class MissingValueImputer(Transform):
    """Replace NaNs in dense features with ``fill_value``."""

    def __init__(self, fill_value: float = 0.0) -> None:
        self.fill_value = float(fill_value)

    def apply(self, batch: MiniBatch) -> MiniBatch:
        dense = np.where(np.isnan(batch.dense), self.fill_value,
                         batch.dense).astype(np.float32)
        return _clone(batch, dense=dense)


class DenseNormalizer(Transform):
    """Standardize dense features with running statistics.

    Statistics update on every batch (unless frozen) using Chan's
    parallel-merge formulas, so two readers processing disjoint shards
    can :meth:`merge` into exactly the statistics one reader would have
    computed — the distributed-reader requirement.
    """

    def __init__(self, eps: float = 1e-6) -> None:
        self.eps = eps
        self.count = 0
        self.mean: Optional[np.ndarray] = None
        self.m2: Optional[np.ndarray] = None
        self.frozen = False

    def _update(self, dense: np.ndarray) -> None:
        b = dense.shape[0]
        batch_mean = dense.mean(axis=0, dtype=np.float64)
        batch_m2 = ((dense - batch_mean) ** 2).sum(axis=0,
                                                   dtype=np.float64)
        if self.mean is None:
            self.count, self.mean, self.m2 = b, batch_mean, batch_m2
            return
        delta = batch_mean - self.mean
        total = self.count + b
        self.mean = self.mean + delta * (b / total)
        self.m2 = self.m2 + batch_m2 + delta ** 2 * (self.count * b / total)
        self.count = total

    def merge(self, other: "DenseNormalizer") -> None:
        """Fold another reader's statistics into this one (exact)."""
        if other.mean is None:
            return
        if self.mean is None:
            self.count, self.mean, self.m2 = \
                other.count, other.mean.copy(), other.m2.copy()
            return
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean = self.mean + delta * (other.count / total)
        self.m2 = self.m2 + other.m2 \
            + delta ** 2 * (self.count * other.count / total)
        self.count = total

    @property
    def std(self) -> Optional[np.ndarray]:
        if self.m2 is None or self.count < 2:
            return None
        return np.sqrt(self.m2 / self.count)

    def apply(self, batch: MiniBatch) -> MiniBatch:
        if not self.frozen:
            self._update(batch.dense.astype(np.float64))
        if self.mean is None:
            return _clone(batch)
        std = self.std
        scale = np.where(std > self.eps, std, 1.0) if std is not None \
            else np.ones_like(self.mean)
        dense = ((batch.dense - self.mean) / scale).astype(np.float32)
        return _clone(batch, dense=dense)


class FeatureHasher(Transform):
    """Fold each sparse feature's raw ids into its table's row range."""

    def __init__(self, tables: Sequence[EmbeddingTableConfig]) -> None:
        self.ranges = {t.name: t.num_embeddings for t in tables}

    def apply(self, batch: MiniBatch) -> MiniBatch:
        missing = set(batch.sparse) - set(self.ranges)
        if missing:
            raise KeyError(f"no table range for features {sorted(missing)}")
        sparse = {}
        for salt, (name, (ids, offsets)) in enumerate(
                sorted(batch.sparse.items())):
            sparse[name] = (hash_indices(ids, self.ranges[name],
                                         salt=salt), offsets.copy())
        return _clone(batch, sparse=sparse)


class TransformPipeline(Transform):
    """Ordered composition of transforms."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def apply(self, batch: MiniBatch) -> MiniBatch:
        for t in self.transforms:
            batch = t.apply(batch)
        return batch

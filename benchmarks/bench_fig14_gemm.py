"""Figs. 14-15: GEMM performance (TF/s) across problem sizes and
precisions on V100 and A100 (Appendix A).

Shape requirements: TF/s grows with size and saturates at the measured
efficiency ceilings; precision ladders stack V100 FP32 < A100 FP32 <
A100 TF32 < V100 FP16 < A100 FP16/BF16 at large sizes.
"""

import pytest

from repro.perf import A100, V100, gemm_tflops

SIZES = [256, 512, 1024, 2048, 4096, 8192]


def gemm_table():
    rows = []
    for n in SIZES:
        rows.append((
            n,
            round(gemm_tflops(n, n, n, V100, "fp32"), 1),
            round(gemm_tflops(n, n, n, A100, "fp32"), 1),
            round(gemm_tflops(n, n, n, A100, "tf32"), 1),
            round(gemm_tflops(n, n, n, V100, "fp16"), 1),
            round(gemm_tflops(n, n, n, A100, "fp16"), 1),
            round(gemm_tflops(n, n, n, A100, "bf16"), 1),
        ))
    return rows


def test_fig14_15_gemm(benchmark, report):
    rows = benchmark(gemm_table)
    report("Figs 14-15: square GEMM TF/s",
           ["N", "V100 fp32", "A100 fp32", "A100 tf32", "V100 fp16",
            "A100 fp16", "A100 bf16"], rows)
    # monotone growth with size, per column
    for col in range(1, 7):
        series = [r[col] for r in rows]
        assert all(a <= b * 1.001 for a, b in zip(series, series[1:]))
    largest = rows[-1]
    # saturation near the paper's ceilings
    assert largest[1] == pytest.approx(15.7 * 0.786, rel=0.1)   # V100 fp32
    assert largest[3] == pytest.approx(156 * 0.705, rel=0.15)   # A100 tf32
    # precision ladder at large size
    assert largest[1] < largest[2] < largest[3] < largest[5]
    assert largest[4] > largest[1] * 3  # tensor cores >> fp32 CUDA cores
    # bf16 ~ fp16 on A100
    assert largest[6] == pytest.approx(largest[5], rel=0.05)

"""Neo: synchronous hybrid-parallel DLRM training (paper Sections 3, 4).

The trainer runs ``W`` simulated ranks in lock-step inside one process:

* **data parallelism** for the MLPs — every rank holds a replica, local
  backward gradients are AllReduced and averaged (PyTorch-DDP semantics);
* **model parallelism** for the embedding tables — each table is placed by
  a :class:`repro.sharding.ShardingPlan` and its forward/backward follows
  the Fig. 8 communication pattern of its scheme:

  =============  =======================  =========================
  scheme         forward comms            backward comms
  =============  =======================  =========================
  table-wise     index AlltoAll + pooled  pooled-gradient AlltoAll
                 AlltoAll
  row-wise /     bucketized index         pooled-gradient AllGather
  table-row-wise AlltoAll + ReduceScatter
  column-wise    replicated index         sliced-gradient AlltoAll
                 AlltoAll + pooled
                 AlltoAll
  data-parallel  none (local lookup)      gradient AllReduce
  =============  =======================  =========================

* **exact sparse optimizers** update the embedding shards, so results are
  independent of how the batch was split across ranks.

All collectives move real data through :class:`SimProcessGroup`, which also
accumulates wire bytes and modeled latency. The trainer's numerics are
validated against the single-process :class:`repro.models.DLRM` reference.

**Rank-stacked simulation** (default, ``stacked=True``): since every
rank's dense replica is bitwise identical in architecture, all replicas'
parameters are packed into leading-axis ``(R, ...)`` arrays
(:class:`StackedRankState`, built by :mod:`repro.nn.stacked`) so the
data-parallel bottom/top MLP forward and backward across all ranks is
one batched ``np.matmul`` per layer instead of ``R`` sequential calls,
and the bucketed dense AllReduce ships one ``(R, elements)`` array
through the :class:`SimProcessGroup` stacked fast path. Wire-byte
accounting, modeled latency, spans and fault injection are unchanged,
and every per-rank quantity is bitwise identical to the legacy looped
path (``stacked=False``, kept as the reference oracle and fuzzed
against in ``tests/test_trainer_stacked.py``). The per-rank
``_RankState`` objects survive as *views* into the stacked storage, so
checkpointing, ``freeze()`` export and replica-sync checks read rank
state exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..comms import (AlltoAllKind, ClusterTopology, QuantizedCommsConfig,
                     SimProcessGroup)
from ..comms.bucketing import GradientBucketer
from ..data.datagen import MiniBatch
from ..data.kernels import bucketize_sparse
from ..embedding import (EmbeddingArena, EmbeddingTable,
                         EmbeddingTableConfig, QuantizedEmbeddingTable,
                         SparseGradient, SparseOptimizer)
from ..embedding.table import lengths_to_offsets, offsets_to_lengths
from ..models.dlrm import DLRM, DLRMConfig
from ..obs.metrics import MetricRegistry
from ..obs.tracer import as_tracer
from ..sharding import Shard, ShardingPlan, ShardingScheme

__all__ = ["NeoTrainer", "StackedRankState"]


@dataclass
class _RankState:
    """Dense (data-parallel) model state of one rank."""

    bottom: nn.MLP
    top: nn.MLP
    interaction: nn.Module  # DotInteraction or CatInteraction
    loss_fn: nn.BCEWithLogitsLoss
    dense_opt: nn.Optimizer
    projections: Dict[str, nn.Linear]
    table_order: Tuple[str, ...]

    def dense_parameters(self) -> List[nn.Parameter]:
        """Same ordering as :meth:`repro.models.DLRM.dense_parameters`."""
        params = self.bottom.parameters()
        for name in self.table_order:
            if name in self.projections:
                params.extend(self.projections[name].parameters())
        return params + self.top.parameters()


@dataclass
class StackedRankState:
    """All ranks' dense state packed into leading-axis ``(R, ...)`` arrays.

    Mirrors :class:`_RankState` field for field; every parameter holds
    the ``(R, *shape)`` stack of the per-rank replicas (built by
    :mod:`repro.nn.stacked`), and each rank's ``_RankState`` parameters
    are rebound to the contiguous views ``stacked.data[r]`` so both
    representations share storage — mutating one mutates the other.
    """

    bottom: nn.Module
    top: nn.Module
    interaction: nn.Module
    loss_fn: nn.BCEWithLogitsLoss
    dense_opt: nn.Optimizer
    projections: Dict[str, nn.Module]
    table_order: Tuple[str, ...]

    def dense_parameters(self) -> List[nn.Parameter]:
        """Stacked parameters in :meth:`_RankState.dense_parameters`
        order; entry ``i`` is the ``(R, *shape)`` stack of every rank's
        parameter ``i``."""
        params = self.bottom.parameters()
        for name in self.table_order:
            if name in self.projections:
                params.extend(self.projections[name].parameters())
        return params + self.top.parameters()


class _StackedOptimizerView:
    """Per-rank facade over the shared stacked dense optimizer.

    Keeps the ``trainer.ranks[r].dense_opt`` surface alive in stacked
    mode: LR schedulers read/write ``.lr`` (one shared optimizer — in
    looped mode all replica optimizers move in lock-step anyway), and
    checkpointing reads per-rank slot state through :meth:`state_for`,
    which slices this rank out of any stacked state array. Calling
    :meth:`step` raises: the trainer steps the stacked optimizer once
    per iteration, and a silent per-rank step would double-update.
    """

    def __init__(self, opt: nn.Optimizer, rank: int,
                 rank_params: Sequence[nn.Parameter],
                 stacked_params: Sequence[nn.Parameter]) -> None:
        self._opt = opt
        self._rank = rank
        self.params = list(rank_params)
        self._to_stacked = {id(p): sp for p, sp in
                            zip(rank_params, stacked_params)}

    @property
    def lr(self) -> float:
        return self._opt.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self._opt.lr = value

    def state_for(self, param: nn.Parameter) -> Dict[str, np.ndarray]:
        """This rank's view of the stacked optimizer state for ``param``.

        Stacked state arrays (shape ``(R, *param_shape)``) are sliced to
        this rank; anything else — step counters, state restored at
        per-rank shape by :meth:`NeoTrainer.load_dense_state` — is
        rank-identical already and passes through. The returned dict is
        a snapshot: mutate optimizer state through the trainer, not here.
        """
        sp = self._to_stacked.get(id(param))
        if sp is None:
            return {}
        out: Dict[str, np.ndarray] = {}
        for key, value in self._opt.state_for(sp).items():
            if isinstance(value, np.ndarray) and \
                    value.shape == sp.data.shape:
                out[key] = value[self._rank]
            else:
                out[key] = value
        return out

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise RuntimeError(
            "per-rank dense_opt is a read-only view in stacked mode; "
            "the trainer steps the shared stacked optimizer")


def _empty_ids() -> np.ndarray:
    return np.zeros(0, dtype=np.int64)


class NeoTrainer:
    """Synchronous distributed DLRM trainer over simulated ranks."""

    def __init__(self, config: DLRMConfig, plan: ShardingPlan,
                 topology: ClusterTopology,
                 dense_optimizer: Callable[[Sequence[nn.Parameter]],
                                           nn.Optimizer],
                 sparse_optimizer: SparseOptimizer,
                 comms_config: Optional[QuantizedCommsConfig] = None,
                 seed: int = 0, trace=None,
                 metrics: Optional[MetricRegistry] = None,
                 process_group_factory: Optional[
                     Callable[..., SimProcessGroup]] = None,
                 stacked: bool = True,
                 representation_plan=None) -> None:
        if plan.world_size != topology.world_size:
            raise ValueError(
                f"plan world size {plan.world_size} != topology world size "
                f"{topology.world_size}")
        missing = {t.name for t in config.tables} - set(plan.tables)
        if missing:
            raise ValueError(f"plan missing tables {sorted(missing)}")
        for t in config.tables:
            scheme = plan.scheme_of(t.name)
            if scheme in (ShardingScheme.ROW_WISE,
                          ShardingScheme.TABLE_ROW_WISE) and \
                    t.pooling_mode != "sum":
                raise ValueError(
                    f"row-wise sharding requires sum pooling "
                    f"(table {t.name} uses {t.pooling_mode})")
        self.config = config
        self.plan = plan
        # optional repro.planner.RepresentationPlan (duck-typed: anything
        # with training_precision(name)): tables planned for fp16/bf16/
        # int8 serving train on quantized shard storage so the trained
        # weights already live with the round-trip numerics the export
        # will freeze; full/tt/cold-planned tables train fp32
        self.representation_plan = representation_plan
        if representation_plan is not None:
            missing_repr = [t.name for t in config.tables
                            if t.name not in representation_plan.assignments]
            if missing_repr:
                raise ValueError(
                    f"representation plan has no assignment for tables "
                    f"{missing_repr}")
        # observability: off by default (no-op tracer); `trace` accepts a
        # Tracer, True (wall clock) or a clock name ("wall"/"logical")
        self.tracer = as_tracer(trace)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        # the factory hook lets callers substitute a wrapped group — e.g.
        # repro.resilience.FaultyProcessGroup for fault-injection runs —
        # without the trainer knowing anything about faults
        make_pg = process_group_factory if process_group_factory is not None \
            else SimProcessGroup
        self.pg = make_pg(topology, comms_config,
                          registry=self.metrics, tracer=self.tracer)
        self.world_size = plan.world_size
        self.sparse_opt = sparse_optimizer
        self.steps = 0

        # Golden initialization: slice a reference model so the distributed
        # start state is identical to the single-process DLRM's.
        golden = DLRM(config, seed=seed)
        self.ranks: List[_RankState] = []
        table_order = tuple(t.name for t in config.tables)
        for _ in range(self.world_size):
            bottom = nn.MLP((config.dense_dim,) + config.bottom_mlp,
                            final_activation="relu", name="bottom")
            top = nn.MLP((config.interaction_dim,) + config.top_mlp + (1,),
                         name="top")
            projections: Dict[str, nn.Linear] = {}
            if config.project_features:
                for t in config.tables:
                    projections[t.name] = nn.Linear(
                        t.embedding_dim, config.embedding_dim,
                        name=f"proj.{t.name}")
            state = _RankState(
                bottom=bottom, top=top,
                interaction=config.make_interaction(),
                loss_fn=nn.BCEWithLogitsLoss(), dense_opt=None,
                projections=projections, table_order=table_order)
            for dst, src in zip(state.dense_parameters(),
                                golden.dense_parameters()):
                dst.data = src.data.copy()
            self.ranks.append(state)
        # rank-stacked mode packs every replica's dense parameters into
        # (R, ...) arrays and rebinds the per-rank parameters to views;
        # looped mode (the reference oracle) keeps per-rank optimizers
        self._stacked_state: Optional[StackedRankState] = None
        if stacked:
            self._stacked_state = self._stack_ranks(dense_optimizer)
        else:
            for state in self.ranks:
                state.dense_opt = dense_optimizer(state.dense_parameters())
        # bucketing is defined over one replica's parameter shapes in
        # both modes (the stacked fast path packs (R, elems) buckets)
        self._bucketer = GradientBucketer(
            self.ranks[0].dense_parameters())

        # Shard the embedding weights according to the plan.
        self._build_shards(config, plan, golden)

    @classmethod
    def from_planner(cls, config: DLRMConfig, topology: ClusterTopology,
                     dense_optimizer, sparse_optimizer,
                     comms_config: Optional[QuantizedCommsConfig] = None,
                     seed: int = 0,
                     planner_config=None,
                     device_memory_bytes: Optional[float] = None,
                     trace=None,
                     metrics: Optional[MetricRegistry] = None,
                     process_group_factory: Optional[
                         Callable[..., SimProcessGroup]] = None,
                     stacked: bool = True,
                     representation_plan=None) -> "NeoTrainer":
        """Build a trainer with an automatically planned, memory-validated
        sharding plan — the one-call production entry point.

        ``representation_plan`` is an optional
        :class:`repro.planner.RepresentationPlan`: tables the plan stores
        at fp16/bf16/int8 train on quantized shards (write-back through
        the storage precision after every sparse step)."""
        from ..sharding import EmbeddingShardingPlanner, PlannerConfig
        from ..sharding.memory_validation import validate_plan_memory
        if planner_config is None:
            planner_config = PlannerConfig(
                world_size=topology.world_size,
                ranks_per_node=min(topology.gpus_per_node,
                                   topology.world_size))
        planner = EmbeddingShardingPlanner(planner_config)
        plan = planner.plan(list(config.tables))
        if device_memory_bytes is not None:
            validate_plan_memory(plan, device_memory_bytes)
        return cls(config, plan, topology, dense_optimizer,
                   sparse_optimizer, comms_config=comms_config, seed=seed,
                   trace=trace, metrics=metrics,
                   process_group_factory=process_group_factory,
                   stacked=stacked, representation_plan=representation_plan)

    @property
    def stacked(self) -> bool:
        """True when running the rank-stacked fast path."""
        return self._stacked_state is not None

    def _stack_ranks(self, dense_optimizer: Callable[
            [Sequence[nn.Parameter]], nn.Optimizer]) -> StackedRankState:
        """Pack the per-rank dense replicas into one stacked model.

        After this, ``ranks[r]``'s parameters are contiguous views into
        the stacked ``(R, ...)`` storage and ``ranks[r].dense_opt`` is a
        :class:`_StackedOptimizerView` over the single shared optimizer.
        """
        ss = StackedRankState(
            bottom=nn.stacked.stack_modules(
                [s.bottom for s in self.ranks]),
            top=nn.stacked.stack_modules([s.top for s in self.ranks]),
            interaction=self.config.make_interaction(),
            loss_fn=nn.BCEWithLogitsLoss(),
            dense_opt=None,
            projections={
                name: nn.stacked.stack_modules(
                    [s.projections[name] for s in self.ranks])
                for name in self.ranks[0].projections},
            table_order=self.ranks[0].table_order)
        stacked_params = ss.dense_parameters()
        ss.dense_opt = dense_optimizer(stacked_params)
        for r, state in enumerate(self.ranks):
            rank_params = state.dense_parameters()
            for p, sp in zip(rank_params, stacked_params):
                p.data = sp.data[r]
            state.dense_opt = _StackedOptimizerView(
                ss.dense_opt, r, rank_params, stacked_params)
        return ss

    def _build_shards(self, config: DLRMConfig, plan: ShardingPlan,
                      golden: DLRM) -> None:
        self._shard_tables: Dict[Shard, EmbeddingTable] = {}
        # per-shard metric counters, created once so the hot path only
        # pays a cached-attribute increment
        emb_metrics = self.metrics.scope("embedding")
        self._lookup_counters: Dict[Shard, object] = {}
        self._update_counters: Dict[Shard, object] = {}
        for t in config.tables:
            weight = golden.embeddings.table(t.name).weight
            train_precision = "fp32"
            if self.representation_plan is not None:
                train_precision = \
                    self.representation_plan.training_precision(t.name)
            for shard in plan.tables[t.name].shards:
                r0, r1 = shard.row_range
                c0, c1 = shard.col_range
                shard_cfg = EmbeddingTableConfig(
                    name=f"{t.name}@{shard.rank}:{r0}-{r1}:{c0}-{c1}",
                    num_embeddings=r1 - r0, embedding_dim=c1 - c0,
                    avg_pooling=t.avg_pooling, pooling_mode=t.pooling_mode,
                    precision=train_precision)
                if train_precision == "fp32":
                    self._shard_tables[shard] = EmbeddingTable(
                        shard_cfg, weight=weight[r0:r1, c0:c1])
                else:
                    self._shard_tables[shard] = QuantizedEmbeddingTable(
                        shard_cfg, weight=weight[r0:r1, c0:c1])
                self._lookup_counters[shard] = emb_metrics.counter(
                    "lookup_rows", table=t.name)
                self._update_counters[shard] = emb_metrics.counter(
                    "update_rows", table=t.name)
        # Pack each rank's shard weights into per-dimension arenas — the
        # device-local "megatable" layout of Section 4.1.1. Packing
        # re-points every shard table's ``.weight`` at a view of the
        # rank's contiguous storage; lookups and sparse updates read and
        # write through the views, so numerics are unchanged while each
        # rank's embedding memory becomes one allocation per dimension.
        by_rank: Dict[int, List[EmbeddingTable]] = {}
        for shard, table in self._shard_tables.items():
            by_rank.setdefault(shard.rank, []).append(table)
        self._rank_arenas: Dict[int, EmbeddingArena] = {
            rank: EmbeddingArena(tables)
            for rank, tables in sorted(by_rank.items())}
        self._launch_counter = emb_metrics.counter("kernel_launches")

    # ------------------------------------------------------------------
    # instrumented shard access
    # ------------------------------------------------------------------
    def _shard_forward(self, shard: Shard, ids: np.ndarray,
                       offsets: np.ndarray) -> np.ndarray:
        """Pooled lookup on one shard, under an ``embedding_lookup`` span."""
        with self.tracer.span("trainer.embedding_lookup", cat="embedding",
                              table=shard.table, rank=shard.rank,
                              rows=int(len(ids))):
            out = self._shard_tables[shard].forward(ids, offsets)
        self._lookup_counters[shard].inc(int(len(ids)))
        self._launch_counter.inc(1)  # one gather+segment-reduce dispatch
        return out

    def _shard_update(self, shard: Shard, d_global: np.ndarray) -> None:
        """Shard backward + exact sparse update, under an
        ``embedding_update`` span."""
        with self.tracer.span("trainer.embedding_update", cat="embedding",
                              table=shard.table, rank=shard.rank):
            table = self._shard_tables[shard]
            grad = table.backward(d_global)
            self.sparse_opt.step(table, grad)
            self._sync_shard_storage(table)
        self._update_counters[shard].inc(int(len(grad.rows)))
        self._launch_counter.inc(1)  # one merge+apply dispatch

    def _apply_sparse(self, shard: Shard, sparse: SparseGradient) -> None:
        with self.tracer.span("trainer.embedding_update", cat="embedding",
                              table=shard.table, rank=shard.rank):
            table = self._shard_tables[shard]
            self.sparse_opt.step(table, sparse)
            self._sync_shard_storage(table)
        self._update_counters[shard].inc(int(len(sparse.rows)))

    @staticmethod
    def _sync_shard_storage(table: EmbeddingTable) -> None:
        """Re-round a quantized shard's storage after an optimizer step
        (no-op for fp32 shards) — the write-back half of training on
        low-precision tables."""
        if isinstance(table, QuantizedEmbeddingTable):
            table.sync_storage()

    # ------------------------------------------------------------------
    # embedding forward/backward, per scheme
    # ------------------------------------------------------------------
    def _global_jagged(self, shards_inputs: List[Tuple[np.ndarray,
                                                       np.ndarray]]
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate per-source-rank (ids, lengths) into one global
        jagged batch, source-rank-major (matching batch concatenation)."""
        ids = np.concatenate([i for i, _ in shards_inputs]) \
            if shards_inputs else _empty_ids()
        lengths = np.concatenate([l for _, l in shards_inputs]) \
            if shards_inputs else _empty_ids()
        return ids, lengths_to_offsets(lengths)

    def _forward_table_wise(self, table: EmbeddingTableConfig,
                            shard: Shard,
                            local_inputs: List[Tuple[np.ndarray, np.ndarray]],
                            local_batch: int) -> List[np.ndarray]:
        w = self.world_size
        owner = shard.rank
        # index AlltoAll: every rank ships its local ids to the owner
        payload = [[local_inputs[src][0] if dst == owner else _empty_ids()
                    for dst in range(w)] for src in range(w)]
        arrived = self.pg.all_to_all(payload, kind=AlltoAllKind.INDEX)
        lengths = [[offsets_to_lengths(local_inputs[src][1])
                    if dst == owner else _empty_ids()
                    for dst in range(w)] for src in range(w)]
        arrived_lengths = self.pg.all_to_all(lengths, kind=AlltoAllKind.INDEX)
        ids, offsets = self._global_jagged(
            list(zip(arrived[owner], arrived_lengths[owner])))
        pooled_global = self._shard_forward(shard, ids, offsets)
        # pooled AlltoAll: owner scatters each rank's sub-batch
        d = pooled_global.shape[1]
        out_payload = [[pooled_global[dst * local_batch:(dst + 1)
                                      * local_batch]
                        if src == owner else
                        np.zeros((0, d), dtype=np.float32)
                        for dst in range(w)] for src in range(w)]
        delivered = self.pg.all_to_all(out_payload,
                                       kind=AlltoAllKind.FORWARD)
        return [delivered[r][owner] for r in range(w)]

    def _backward_table_wise(self, shard: Shard,
                             d_pooled: List[np.ndarray]) -> None:
        w = self.world_size
        owner = shard.rank
        d = d_pooled[0].shape[1]
        payload = [[d_pooled[src] / w if dst == owner else
                    np.zeros((0, d), dtype=np.float32)
                    for dst in range(w)] for src in range(w)]
        arrived = self.pg.all_to_all(payload, kind=AlltoAllKind.BACKWARD)
        d_global = np.concatenate(arrived[owner], axis=0).astype(np.float32)
        self._shard_update(shard, d_global)

    def _forward_column_wise(self, table: EmbeddingTableConfig,
                             shards: List[Shard],
                             local_inputs: List[Tuple[np.ndarray,
                                                      np.ndarray]],
                             local_batch: int) -> List[np.ndarray]:
        w = self.world_size
        owners = [s.rank for s in shards]
        # replicated index AlltoAll: each rank ships ids to every owner
        payload = [[local_inputs[src][0] if dst in owners else _empty_ids()
                    for dst in range(w)] for src in range(w)]
        arrived = self.pg.all_to_all(payload, kind=AlltoAllKind.INDEX)
        lengths = [[offsets_to_lengths(local_inputs[src][1])
                    if dst in owners else _empty_ids()
                    for dst in range(w)] for src in range(w)]
        arrived_lengths = self.pg.all_to_all(lengths, kind=AlltoAllKind.INDEX)
        # each owner pools its column slice for the global batch
        pooled_slices: Dict[Shard, np.ndarray] = {}
        for shard in shards:
            ids, offsets = self._global_jagged(
                list(zip(arrived[shard.rank],
                         arrived_lengths[shard.rank])))
            pooled_slices[shard] = self._shard_forward(shard, ids, offsets)
        # pooled AlltoAll per shard (two shards may share an owner rank),
        # then concatenate slices by column order
        ordered = sorted(shards, key=lambda s: s.col_range)
        delivered_by_shard = {}
        for shard in ordered:
            pooled = pooled_slices[shard]
            d = pooled.shape[1]
            out_payload = [[pooled[dst * local_batch:(dst + 1) * local_batch]
                            if src == shard.rank else
                            np.zeros((0, d), dtype=np.float32)
                            for dst in range(w)] for src in range(w)]
            delivered = self.pg.all_to_all(out_payload,
                                           kind=AlltoAllKind.FORWARD)
            delivered_by_shard[shard] = [delivered[r][shard.rank]
                                         for r in range(w)]
        return [np.concatenate([delivered_by_shard[s][r] for s in ordered],
                               axis=1) for r in range(w)]

    def _backward_column_wise(self, shards: List[Shard],
                              d_pooled: List[np.ndarray]) -> None:
        w = self.world_size
        for shard in sorted(shards, key=lambda s: s.col_range):
            c0, c1 = shard.col_range
            payload = [[d_pooled[src][:, c0:c1] / w
                        if dst == shard.rank else
                        np.zeros((0, c1 - c0), dtype=np.float32)
                        for dst in range(w)] for src in range(w)]
            arrived = self.pg.all_to_all(payload,
                                         kind=AlltoAllKind.BACKWARD)
            d_global = np.concatenate(arrived[shard.rank],
                                      axis=0).astype(np.float32)
            self._shard_update(shard, d_global)

    def _forward_row_wise(self, table: EmbeddingTableConfig,
                          shards: List[Shard],
                          local_inputs: List[Tuple[np.ndarray, np.ndarray]],
                          local_batch: int) -> List[np.ndarray]:
        w = self.world_size
        d = table.embedding_dim
        ordered = sorted(shards, key=lambda s: s.row_range)
        boundaries = [s.row_range[0] for s in ordered] \
            + [ordered[-1].row_range[1]]
        # bucketize each rank's ids and ship bucket k to its owner
        payload_ids = [[_empty_ids() for _ in range(w)] for _ in range(w)]
        payload_lengths = [[_empty_ids() for _ in range(w)]
                           for _ in range(w)]
        for src in range(w):
            ids, offsets = local_inputs[src]
            buckets = bucketize_sparse(ids, offsets_to_lengths(offsets),
                                       boundaries)
            for shard, (b_ids, b_lengths) in zip(ordered, buckets):
                payload_ids[src][shard.rank] = b_ids
                payload_lengths[src][shard.rank] = b_lengths
        arrived_ids = self.pg.all_to_all(payload_ids, kind=AlltoAllKind.INDEX)
        arrived_lengths = self.pg.all_to_all(payload_lengths,
                                             kind=AlltoAllKind.INDEX)
        # owners compute partial pooled sums for the global batch
        global_batch = local_batch * w
        partials = [np.zeros((global_batch, d), dtype=np.float32)
                    for _ in range(w)]
        for shard in ordered:
            ids, offsets = self._global_jagged(
                list(zip(arrived_ids[shard.rank],
                         arrived_lengths[shard.rank])))
            partials[shard.rank] = self._shard_forward(shard, ids, offsets)
        # ReduceScatter: sum partials, deliver each rank its sub-batch
        chunked = [[p[r * local_batch:(r + 1) * local_batch]
                    for r in range(w)] for p in partials]
        return self.pg.reduce_scatter(chunked)

    def _backward_row_wise(self, shards: List[Shard],
                           d_pooled) -> None:
        w = self.world_size
        if isinstance(d_pooled, np.ndarray):
            # rank-stacked fast path: one (W, B, D) array through the
            # AllGather; the gathered stack reshapes to the same
            # source-rank-major (W*B, D) global gradient the looped
            # path concatenates
            result = self.pg.all_gather(d_pooled / w)
            gathered = result.stacked
            d_global = gathered.reshape(
                gathered.shape[0] * gathered.shape[1],
                -1).astype(np.float32)
            for shard in shards:
                self._shard_update(shard, d_global)
            return
        gathered = self.pg.all_gather([d / w for d in d_pooled])
        for shard in shards:
            d_global = np.concatenate(gathered[shard.rank],
                                      axis=0).astype(np.float32)
            self._shard_update(shard, d_global)

    def _forward_data_parallel(self, shards: List[Shard],
                               local_inputs: List[Tuple[np.ndarray,
                                                        np.ndarray]]
                               ) -> List[np.ndarray]:
        by_rank = {s.rank: s for s in shards}
        out = []
        for r in range(self.world_size):
            ids, offsets = local_inputs[r]
            out.append(self._shard_forward(by_rank[r], ids, offsets))
        return out

    def _backward_data_parallel(self, shards: List[Shard],
                                d_pooled: List[np.ndarray]) -> None:
        by_rank = {s.rank: s for s in shards}
        dense_grads = []
        for r in range(self.world_size):
            grad = self._shard_tables[by_rank[r]].backward(d_pooled[r])
            dense_grads.append(grad.to_dense())
        summed = self.pg.all_reduce(dense_grads)
        for r in range(self.world_size):
            avg = summed[r] / self.world_size
            rows = np.nonzero(np.any(avg != 0.0, axis=1))[0]
            sparse = SparseGradient(rows=rows.astype(np.int64),
                                    values=avg[rows],
                                    num_embeddings=avg.shape[0])
            self._apply_sparse(by_rank[r], sparse)

    # ------------------------------------------------------------------
    # shared per-phase helpers: each is used by train_step AND
    # eval_forward, and each is the single looped-vs-stacked seam for
    # its phase (the stacked branch advances all ranks with one batched
    # kernel; the looped branch is the per-rank reference oracle)
    # ------------------------------------------------------------------
    def _check_batches(self, local_batches: List[MiniBatch]) -> int:
        if len(local_batches) != self.world_size:
            raise ValueError(
                f"need {self.world_size} local batches, "
                f"got {len(local_batches)}")
        sizes = {b.batch_size for b in local_batches}
        if len(sizes) != 1:
            raise ValueError(f"local batches must be equal size, got {sizes}")
        return sizes.pop()

    def _bottom_forward(self, local_batches: List[MiniBatch]):
        """Bottom MLP over all ranks: (R, B, D) stacked, or per-rank list."""
        ss = self._stacked_state
        if ss is not None:
            dense_in = np.stack([b.dense for b in local_batches], axis=0)
            return ss.bottom.forward(dense_in)
        return [self.ranks[r].bottom.forward(local_batches[r].dense)
                for r in range(self.world_size)]

    def _table_forward(self, t: EmbeddingTableConfig, table_plan,
                       inputs: List[Tuple[np.ndarray, np.ndarray]],
                       local_batch: int) -> List[np.ndarray]:
        """Scheme dispatch for one table's forward (Fig. 8 patterns)."""
        scheme = table_plan.scheme
        if scheme == ShardingScheme.TABLE_WISE:
            return self._forward_table_wise(
                t, table_plan.shards[0], inputs, local_batch)
        if scheme == ShardingScheme.COLUMN_WISE:
            return self._forward_column_wise(
                t, table_plan.shards, inputs, local_batch)
        if scheme in (ShardingScheme.ROW_WISE,
                      ShardingScheme.TABLE_ROW_WISE):
            return self._forward_row_wise(
                t, table_plan.shards, inputs, local_batch)
        return self._forward_data_parallel(table_plan.shards, inputs)

    def _embedding_forward(self, local_batches: List[MiniBatch],
                           local_batch: int, spans: bool
                           ) -> Dict[str, List[np.ndarray]]:
        """All tables' pooled lookups; ``spans`` wraps each table in a
        ``trainer.table_fwd`` span (train path) or not (eval path)."""
        pooled: Dict[str, List[np.ndarray]] = {}
        for t in self.config.tables:
            table_plan = self.plan.tables[t.name]
            inputs = [local_batches[r].sparse[t.name]
                      for r in range(self.world_size)]
            if spans:
                with self.tracer.span("trainer.table_fwd", cat="trainer",
                                      table=t.name,
                                      scheme=table_plan.scheme.value):
                    pooled[t.name] = self._table_forward(
                        t, table_plan, inputs, local_batch)
            else:
                pooled[t.name] = self._table_forward(
                    t, table_plan, inputs, local_batch)
        return pooled

    def _interaction_forward(self, dense_out, pooled):
        """Projections + interaction; returns (R, B, I) or per-rank list."""
        ss = self._stacked_state
        if ss is not None:
            features = [dense_out]
            for t in self.config.tables:
                value = np.stack(list(pooled[t.name]), axis=0)
                if t.name in ss.projections:
                    value = ss.projections[t.name].forward(value)
                features.append(value)
            return ss.interaction.forward_list(features)
        interacted = []
        for r in range(self.world_size):
            state = self.ranks[r]
            features = [dense_out[r]]
            for t in self.config.tables:
                value = pooled[t.name][r]
                if t.name in state.projections:
                    value = state.projections[t.name].forward(value)
                features.append(value)
            interacted.append(state.interaction.forward_list(features))
        return interacted

    def _top_forward(self, interacted):
        """Top MLP logits: (R, B) stacked, or per-rank (B,) list."""
        ss = self._stacked_state
        if ss is not None:
            return ss.top.forward(interacted)[..., 0]
        return [self.ranks[r].top.forward(interacted[r])[:, 0]
                for r in range(self.world_size)]

    def _loss_forward(self, logits, local_batches: List[MiniBatch]):
        """Per-rank mean BCE losses: (R,) stacked, or list of floats."""
        ss = self._stacked_state
        if ss is not None:
            labels = np.stack([b.labels for b in local_batches], axis=0)
            return ss.loss_fn.forward(logits, labels)
        return [self.ranks[r].loss_fn.forward(logits[r],
                                              local_batches[r].labels)
                for r in range(self.world_size)]

    def _dense_backward(self) -> Dict[str, object]:
        """Loss -> top -> interaction -> bottom backward; returns each
        table's pooled-embedding gradient — a (R, B, D) array in stacked
        mode, a per-rank list otherwise."""
        ss = self._stacked_state
        if ss is not None:
            for p in ss.dense_parameters():
                p.zero_grad()
            d_logits = ss.loss_fn.backward()[..., None]
            d_inter = ss.top.backward(d_logits)
            d_features = ss.interaction.backward_list(d_inter)
            ss.bottom.backward(d_features[0])
            d_pooled: Dict[str, object] = {}
            for i, t in enumerate(self.config.tables):
                grad = d_features[1 + i]
                if t.name in ss.projections:
                    grad = ss.projections[t.name].backward(grad)
                d_pooled[t.name] = grad
            return d_pooled
        d_pooled = {t.name: [] for t in self.config.tables}
        for r in range(self.world_size):
            state = self.ranks[r]
            for p in state.dense_parameters():
                p.zero_grad()
            d_logits = state.loss_fn.backward()[:, None]
            d_inter = state.top.backward(d_logits)
            d_features = state.interaction.backward_list(d_inter)
            state.bottom.backward(d_features[0])
            for i, t in enumerate(self.config.tables):
                grad = d_features[1 + i]
                if t.name in state.projections:
                    grad = state.projections[t.name].backward(grad)
                d_pooled[t.name].append(grad)
        return d_pooled

    def _table_backward(self, table_plan, d_pooled) -> None:
        """Scheme dispatch for one table's backward. ``d_pooled`` may be
        the stacked (R, B, D) gradient: row-wise keeps it whole (its
        AllGather ships the stack in one call); other schemes consume
        per-rank slices, bitwise equal to the looped payloads."""
        scheme = table_plan.scheme
        if scheme in (ShardingScheme.ROW_WISE,
                      ShardingScheme.TABLE_ROW_WISE):
            self._backward_row_wise(table_plan.shards, d_pooled)
            return
        if isinstance(d_pooled, np.ndarray):
            d_pooled = [d_pooled[r] for r in range(self.world_size)]
        if scheme == ShardingScheme.TABLE_WISE:
            self._backward_table_wise(table_plan.shards[0], d_pooled)
        elif scheme == ShardingScheme.COLUMN_WISE:
            self._backward_column_wise(table_plan.shards, d_pooled)
        else:
            self._backward_data_parallel(table_plan.shards, d_pooled)

    def _dense_allreduce(self):
        """Bucketed DDP gradient sync; returns the reduced flat buckets
        ((R, elems) arrays stacked, else per-rank lists of buckets)."""
        w = self.world_size
        ss = self._stacked_state
        if ss is not None:
            flats = self._bucketer.flatten_stacked(
                [p.grad for p in ss.dense_parameters()])
            for b in range(self._bucketer.num_buckets):
                flats[b] = self.pg.all_reduce(flats[b]).stacked
            return flats
        flat_per_rank = [
            self._bucketer.flatten([p.grad for p in
                                    self.ranks[r].dense_parameters()])
            for r in range(w)]
        for b in range(self._bucketer.num_buckets):
            reduced = self.pg.all_reduce([flat_per_rank[r][b]
                                          for r in range(w)])
            for r in range(w):
                flat_per_rank[r][b] = reduced[r]
        return flat_per_rank

    def _optimizer_step(self, flats) -> List[nn.Parameter]:
        """Unflatten reduced buckets, average, step. Returns the
        parameter list whose ``.grad`` mirrors rank 0 (for read-only
        instrumentation)."""
        w = self.world_size
        ss = self._stacked_state
        if ss is not None:
            params = ss.dense_parameters()
            for p, g in zip(params, self._bucketer.unflatten_stacked(flats)):
                p.grad = (g / w).astype(np.float32)
            ss.dense_opt.step()
            return params
        for r in range(w):
            grads = self._bucketer.unflatten(flats[r])
            for p, g in zip(self.ranks[r].dense_parameters(), grads):
                p.grad = (g / w).astype(np.float32)
            self.ranks[r].dense_opt.step()
        return self.ranks[0].dense_parameters()

    # ------------------------------------------------------------------
    # the training step
    # ------------------------------------------------------------------
    def train_step(self, local_batches: List[MiniBatch]) -> float:
        """One synchronous iteration over per-rank sub-batches.

        Returns the global mean loss. All ranks advance together; the
        update is mathematically the single-process update on the
        concatenated global batch, and bitwise identical between the
        rank-stacked and looped execution modes.

        When tracing is enabled (``trace=`` at construction) each phase
        runs under a span (``trainer.bottom_mlp_fwd`` ... ``trainer.
        optimizer``) with collective spans nested inside; the compute is
        byte-for-byte identical either way — instrumentation only reads.
        """
        w = self.world_size
        local_batch = self._check_batches(local_batches)
        tr = self.tracer
        # announce the iteration boundary (v2 ProcessGroup API) so
        # wrappers can key scheduled faults on the logical step
        self.pg.on_iteration_start(self.steps)

        with tr.span("trainer.iteration", cat="trainer", step=self.steps,
                     local_batch=local_batch):
            # forward: bottom MLP (data parallel)
            with tr.span("trainer.bottom_mlp_fwd", cat="trainer"):
                dense_out = self._bottom_forward(local_batches)

            # forward: embeddings per table, per scheme
            with tr.span("trainer.embedding_fwd", cat="trainer"):
                pooled = self._embedding_forward(local_batches, local_batch,
                                                 spans=True)

            # forward: per-feature projections + interaction (data parallel)
            with tr.span("trainer.interaction_fwd", cat="trainer"):
                interacted = self._interaction_forward(dense_out, pooled)

            # forward: top MLP + loss (data parallel)
            with tr.span("trainer.top_mlp_fwd", cat="trainer"):
                logits = self._top_forward(interacted)
                losses = self._loss_forward(logits, local_batches)

            # backward: top MLP + interaction + bottom MLP (data parallel)
            with tr.span("trainer.dense_bwd", cat="trainer"):
                d_pooled = self._dense_backward()

            # backward: embeddings per table (exact sparse updates)
            with tr.span("trainer.embedding_bwd", cat="trainer"):
                for t in self.config.tables:
                    table_plan = self.plan.tables[t.name]
                    with tr.span("trainer.table_bwd", cat="trainer",
                                 table=t.name,
                                 scheme=table_plan.scheme.value):
                        self._table_backward(table_plan, d_pooled[t.name])

            # gradient sync (DDP semantics, bucketed — one AllReduce per
            # ~25 MB bucket, not per parameter)
            with tr.span("trainer.allreduce", cat="trainer"):
                flats = self._dense_allreduce()

            # dense optimizer step
            with tr.span("trainer.optimizer", cat="trainer"):
                ref_params = self._optimizer_step(flats)
                if tr.enabled:
                    # read-only instrumentation: global dense grad norm
                    # (identical on every rank after the AllReduce)
                    norm = float(np.sqrt(sum(
                        float(np.sum(np.asarray(
                            p.grad[0] if getattr(p, "stacked", False)
                            else p.grad).astype(np.float64) ** 2))
                        for p in ref_params)))
                    self.metrics.histogram("trainer.grad_norm").record(norm)
        self.steps += 1
        return float(np.mean(losses))

    # ------------------------------------------------------------------
    # evaluation forward (the serving-export parity reference)
    # ------------------------------------------------------------------
    def eval_forward(self, local_batches: List[MiniBatch]
                     ) -> List[np.ndarray]:
        """Forward-only pass over per-rank sub-batches; returns each
        rank's logits ``(B/W,)``.

        No optimizer state, gradients or weights are touched — this is
        the eval answer the online-training loop would ship to serving,
        and the reference :func:`repro.serving.freeze` parity is tested
        against. Collectives still run (and are billed) exactly as in
        the forward half of :meth:`train_step`.
        """
        w = self.world_size
        local_batch = self._check_batches(local_batches)
        with self.tracer.span("trainer.eval_forward", cat="trainer",
                              local_batch=local_batch):
            dense_out = self._bottom_forward(local_batches)
            pooled = self._embedding_forward(local_batches, local_batch,
                                             spans=False)
            interacted = self._interaction_forward(dense_out, pooled)
            logits = self._top_forward(interacted)
        if isinstance(logits, np.ndarray):  # stacked (R, B) -> per-rank
            return [logits[r].copy() for r in range(w)]
        return logits

    # ------------------------------------------------------------------
    # checkpoint restore
    # ------------------------------------------------------------------
    def load_dense_state(self, dense: Dict[int, np.ndarray],
                         opt_state: Dict[int, Dict[str, np.ndarray]]
                         ) -> None:
        """Restore dense parameters and optimizer slot state from
        checkpoint payloads (``dense[i]`` is parameter ``i`` at per-rank
        shape; ``opt_state[i]`` its optimizer slots).

        Works identically for looped and stacked trainers, so a
        checkpoint written by either mode resumes bitwise in the other.
        Stacked mode broadcast-writes each value across the leading axis
        *in place*, preserving the per-rank parameter views, and
        restores slot state at per-rank shape: every optimizer update is
        elementwise over the replica axis, so the first step broadcasts
        the state back to stacked shape with bitwise-identical values.
        """
        ss = self._stacked_state
        if ss is not None:
            for i, sp in enumerate(ss.dense_parameters()):
                sp.data[...] = dense[i][None]
                slot = ss.dense_opt.state_for(sp)
                slot.clear()
                for name, value in opt_state.get(i, {}).items():
                    slot[name] = value.copy()
            return
        for state in self.ranks:
            for i, p in enumerate(state.dense_parameters()):
                p.data = dense[i].copy()
                slot = state.dense_opt.state_for(p)
                slot.clear()
                for name, value in opt_state.get(i, {}).items():
                    slot[name] = value.copy()

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def gather_table(self, name: str) -> np.ndarray:
        """Reassemble the full (H, D) weight of one table from shards."""
        table_plan = self.plan.tables[name]
        cfg = table_plan.config
        if table_plan.scheme == ShardingScheme.DATA_PARALLEL:
            return self._shard_tables[table_plan.shards[0]].weight.copy()
        full = np.zeros((cfg.num_embeddings, cfg.embedding_dim),
                        dtype=np.float32)
        for shard in table_plan.shards:
            r0, r1 = shard.row_range
            c0, c1 = shard.col_range
            full[r0:r1, c0:c1] = self._shard_tables[shard].weight
        return full

    def to_local_model(self, seed: int = 0) -> DLRM:
        """Export current distributed state as a single-process DLRM."""
        model = DLRM(self.config, seed=seed)
        for dst, src in zip(model.dense_parameters(),
                            self.ranks[0].dense_parameters()):
            dst.data = src.data.copy()
        for t in self.config.tables:
            model.embeddings.table(t.name).weight = self.gather_table(t.name)
        return model

    def replicas_in_sync(self) -> bool:
        """Data-parallel invariant: all dense replicas bitwise identical."""
        ref = self.ranks[0].dense_parameters()
        for state in self.ranks[1:]:
            for a, b in zip(ref, state.dense_parameters()):
                if not np.array_equal(a.data, b.data):
                    return False
        return True

"""Throughput projection: estimate training QPS for your model on a
ZionEX-style cluster before buying the hardware.

What a downstream capacity-planning user does with this library: describe
the model, pick a cluster size, measure the sharding plan's balance, and
read iteration-latency breakdowns (which component is the bottleneck?
does quantized comms help? how far does scaling go?).

Run:  python examples/throughput_projection.py
"""

from repro.comms import PROTOTYPE_TOPOLOGY, QuantizedCommsConfig
from repro.models import full_spec
from repro.perf import (TrainingSetup, latency_breakdown, plan_imbalance,
                        qps, weak_scaling_curve)
from repro.sharding import (CostModelParams, EmbeddingShardingPlanner,
                            PlannerConfig, plan_cost_per_rank)


def main():
    spec = full_spec("A2")  # swap in your own ModelSpec here
    nodes = 16
    topo = PROTOTYPE_TOPOLOGY(nodes)
    print(f"projecting model {spec.name}: "
          f"{spec.num_parameters / 1e9:.0f}B params, "
          f"{len(spec.tables)} tables, on {topo.world_size} GPUs\n")

    # 1. shard it and measure the plan's balance
    params = CostModelParams(global_batch=65536,
                             world_size=topo.world_size)
    planner = EmbeddingShardingPlanner(
        PlannerConfig(world_size=topo.world_size, ranks_per_node=8),
        cost_params=params)
    plan = planner.plan(list(spec.tables))
    imbalance = plan_imbalance(plan_cost_per_rank(plan, params))
    print(f"planner imbalance (max/mean rank load): {imbalance:.2f}")

    # 2. project throughput, stock vs optimized configuration
    stock = TrainingSetup(spec=spec, topology=topo, global_batch=65536,
                          load_imbalance=imbalance)
    optimized = TrainingSetup(spec=spec, topology=topo, global_batch=262144,
                              load_imbalance=imbalance,
                              embedding_precision="fp16",
                              comms=QuantizedCommsConfig.paper_recipe())
    print(f"stock fp32, 64K batch:        {qps(stock) / 1e3:7.0f}K QPS")
    print(f"fp16 emb + quant comms, 256K: {qps(optimized) / 1e3:7.0f}K QPS")

    # 3. where does the time go? (Fig 12-style breakdown)
    b = latency_breakdown(stock)
    print(f"\niteration latency {b.total * 1e3:.1f} ms; "
          "top exposed components:")
    exposed = sorted(b.exposed.items(), key=lambda kv: -kv[1])[:5]
    for name, seconds in exposed:
        print(f"  {name:<18} {seconds * 1e3:7.2f} ms exposed "
              f"(serialized {b.serialized[name] * 1e3:.2f} ms)")

    # 4. is it worth buying more nodes? (Fig 11-style weak scaling)
    base = TrainingSetup(spec=spec, topology=PROTOTYPE_TOPOLOGY(1),
                         global_batch=512 * 8, load_imbalance=imbalance)
    curve = weak_scaling_curve(base, [1, 2, 4, 8, 16])
    print("\nweak scaling (fixed 512 per-GPU batch):")
    for n, value in curve.items():
        eff = value / (n * curve[1])
        print(f"  {n * 8:4d} GPUs: {value / 1e3:7.0f}K QPS "
              f"({eff:.0%} efficiency)")


if __name__ == "__main__":
    main()

"""DLRM model assembly and the paper's production model zoo (Table 3)."""

from .dlrm import DLRM, DLRMConfig
from .zoo import (MODEL_NAMES, TABLE3_REFERENCE, ModelSpec, full_spec,
                  mini_config)

__all__ = [
    "DLRM",
    "DLRMConfig",
    "ModelSpec",
    "full_spec",
    "mini_config",
    "MODEL_NAMES",
    "TABLE3_REFERENCE",
]

"""What-if sensitivity: which platform resource binds A2's throughput?

The co-design argument in one table: at 128 GPUs, QPS elasticity is
dominated by load balance and scale-out network bandwidth (the two
things Neo/ZionEX invest in — the sharder and the dedicated RoCE
fabric), while NVLink and batch size are nearly slack.
"""

import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.models import full_spec
from repro.perf import TrainingSetup, sensitivity_report


def report_for_a2():
    setup = TrainingSetup(spec=full_spec("A2"),
                          topology=PROTOTYPE_TOPOLOGY(16),
                          global_batch=65536, load_imbalance=1.15)
    return sensitivity_report(setup)


def test_sensitivity_ranking(benchmark, report):
    result = benchmark.pedantic(report_for_a2, rounds=1, iterations=1)
    rows = sorted(result.items(), key=lambda kv: -abs(kv[1]))
    report("QPS elasticity per platform knob (A2, 128 GPUs)",
           ["knob", "elasticity (dlogQPS/dlogX)"],
           [(k, f"{v:+.2f}") for k, v in rows])
    # the paper's investments are the binding resources
    assert abs(result["load_imbalance"]) > 0.3      # sharder matters
    assert result["scaleout_bw"] > 0.3              # RoCE fabric matters
    # and the slack ones are slack
    assert abs(result["scaleup_bw"]) < 0.1          # NVLink not binding
    assert abs(result["global_batch"]) < 0.3
    # signs are physical: more imbalance hurts, more bandwidth helps
    assert result["load_imbalance"] < 0
    assert result["scaleout_bw"] > 0

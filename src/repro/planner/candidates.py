"""Candidate enumeration: every representation one table could take.

For each table the planner measures the representation's *actual*
element error on the trained weights (fp16/bf16/int8 via
:mod:`repro.lowp` roundtrips, TT via a real TT-SVD decomposition
materialized back) and prices its pooled-lookup time with the existing
perf models: hot representations on the
:func:`repro.perf.embedding_achieved_bw` coalescing roofline inflated by
the sharding cost model's :meth:`~repro.sharding.cost_model.CostModelParams.locality_factor`,
TT contraction chains on the fp32 GEMM roofline (the same DeviceSpec
ceiling :func:`repro.perf.gemm_time` prices against, fused-kernel form),
and the cold tier as a hit-rate mix of HBM and the platform DRAM link
(:class:`repro.perf.PlatformSpec`). Nothing here is asserted from table
shape alone: error columns come from the weights the model actually
trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import lowp
from ..data.freq import FrequencyStats
from ..embedding.table import EmbeddingTableConfig
from ..embedding.tt import TTEmbeddingTable
from ..perf.devices import V100, DeviceSpec
from ..perf.embedding_bw import _COALESCE_HALF_BYTES
from ..perf.platform import ZIONEX_PLATFORM, PlatformSpec
from ..sharding.cost_model import CostModelParams
from .plan import TableAssignment

__all__ = ["PlannerCostModel", "TableCandidates", "enumerate_candidates"]

# int8 row-wise storage carries a float32 (scale, offset) pair per row
_INT8_ROW_OVERHEAD_BYTES = 8
_STORAGE_BYTES = {"full": 4, "fp16": 2, "bf16": 2, "int8": 1}


@dataclass(frozen=True)
class PlannerCostModel:
    """Hardware lens + search space the planner scores candidates with.

    ``batch_size`` sizes the pooled-lookup batch every ``lookup_s`` is
    priced for. ``cold_hit_rate`` is the expected software-cache hit rate
    of the cold tier when no :class:`~repro.data.freq.FrequencyStats` are
    available (the default matches ``ServingPerfModel.cache_hit_boost``);
    with stats, the hit rate is the *measured* coverage of the hottest
    ``cache_fraction`` of rows. ``time_weight`` converts normalized
    lookup-time regressions into error units for the greedy score (see
    :mod:`repro.planner.planner`).
    """

    device: DeviceSpec = V100
    platform: PlatformSpec = ZIONEX_PLATFORM
    sharding_params: CostModelParams = field(default_factory=CostModelParams)
    batch_size: int = 512
    precisions: Tuple[str, ...] = ("fp16", "bf16", "int8")
    tt_rank_options: Tuple[Tuple[int, ...], ...] = ((4, 4), (8, 8))
    allow_tt: bool = True
    allow_cold: bool = True
    cache_fraction: float = 0.25
    cold_hit_rate: float = 0.5
    time_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for p in self.precisions:
            if p not in ("fp16", "bf16", "int8"):
                raise ValueError(f"unknown precision {p!r}")
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in (0, 1]")
        if not 0.0 <= self.cold_hit_rate < 1.0:
            raise ValueError("cold_hit_rate must be in [0, 1)")
        if self.time_weight < 0:
            raise ValueError("time_weight must be >= 0")

    # ------------------------------------------------------------------
    def _coalesced_bw(self, row_bytes: float) -> float:
        """Achieved HBM bytes/s for rows of ``row_bytes`` — the same
        coalescing roofline as :func:`repro.perf.embedding_achieved_bw`,
        generalized to arbitrary row widths (int8 rows carry their
        scale/offset pair)."""
        return self.device.hbm_achievable_bw * row_bytes / (
            row_bytes + _COALESCE_HALF_BYTES)

    def hot_lookup_s(self, cfg: EmbeddingTableConfig, row_bytes: float
                     ) -> float:
        """Pooled lookup seconds per batch for an arena-resident table."""
        nnz = self.batch_size * cfg.avg_pooling
        locality = self.sharding_params.locality_factor(cfg.num_embeddings)
        return (nnz * row_bytes * locality / self._coalesced_bw(row_bytes)
                + self.device.kernel_launch_overhead)

    def cold_lookup_s(self, cfg: EmbeddingTableConfig, hit_rate: float
                      ) -> float:
        """Pooled lookup seconds per batch through the cold-tier cache:
        hits stream from HBM, misses crawl over the per-GPU DRAM link."""
        nnz = self.batch_size * cfg.avg_pooling
        row_bytes = cfg.embedding_dim * 4.0
        link_bw = (self.platform.dram_link_bw_per_node
                   / self.platform.gpus_per_node)
        per_row = (hit_rate * row_bytes / self._coalesced_bw(row_bytes)
                   + (1.0 - hit_rate) * row_bytes / link_bw)
        return nnz * per_row + self.device.kernel_launch_overhead

    def tt_lookup_s(self, cfg: EmbeddingTableConfig, table: TTEmbeddingTable
                    ) -> float:
        """Pooled lookup seconds per batch for a TT table.

        TT-Rec runs the whole left-to-right contraction chain as one
        fused kernel, so it is priced like :func:`repro.perf.gemm_time`'s
        roofline — max(compute at the fp32 ceiling, bytes over achieved
        HBM bw) plus one kernel launch — without the per-step cuBLAS
        small-GEMM penalty a chain of tiny library calls would pay."""
        nnz = self.batch_size * cfg.avg_pooling
        flops = 0.0
        inter_elems = 0.0
        width = table.dim_factors[0]
        for k in range(1, len(table.cores)):
            r_prev = table.ranks[k]
            d_k = table.dim_factors[k]
            r_next = table.ranks[k + 1]
            # (nnz*width, r_prev) @ (r_prev, d_k*r_next) per chain step
            flops += 2.0 * nnz * width * r_prev * d_k * r_next
            inter_elems += nnz * width * r_prev  # step input spill
            width *= d_k
        ceiling = self.device.peak_flops["fp32"] \
            * self.device.max_efficiency["fp32"]
        compute = flops / ceiling
        core_bytes = sum(c.nbytes for c in table.cores)
        bytes_moved = core_bytes + 4.0 * (inter_elems
                                          + nnz * cfg.embedding_dim)
        memory = bytes_moved / self.device.hbm_achievable_bw
        return max(compute, memory) + self.device.kernel_launch_overhead

    def expected_cold_hit_rate(self, cfg: EmbeddingTableConfig,
                               frequency_stats: Optional[FrequencyStats]
                               ) -> float:
        """Measured coverage of a ``cache_fraction``-sized hot set when
        frequency stats exist, else the configured prior."""
        if frequency_stats is not None \
                and frequency_stats.total(cfg.name) > 0:
            capacity = max(1, int(cfg.num_embeddings * self.cache_fraction))
            ids = frequency_stats.top_ids(cfg.name, capacity)
            return min(0.999, frequency_stats.coverage(cfg.name, ids))
        return self.cold_hit_rate


@dataclass(frozen=True)
class TableCandidates:
    """All legal representations of one table, measured and priced.

    ``scale`` is the weight's max |element| — the denominator the greedy
    planner uses to compare errors across tables of different magnitude.
    Candidates are ordered highest fidelity first (``full`` is always
    index 0).
    """

    table: str
    scale: float
    options: Tuple[TableAssignment, ...]

    def option(self, kind: str) -> TableAssignment:
        for o in self.options:
            if o.kind == kind:
                return o
        raise KeyError(f"table {self.table!r} has no {kind!r} candidate")


def _tt_factor_count(cfg: EmbeddingTableConfig, ranks: Sequence[int]) -> bool:
    """TT only makes sense when the table factorizes non-trivially."""
    return cfg.num_embeddings >= 4 and cfg.embedding_dim >= 4 \
        and len(ranks) >= 1


def enumerate_candidates(cfg: EmbeddingTableConfig, weight: np.ndarray,
                         cost: PlannerCostModel,
                         frequency_stats: Optional[FrequencyStats] = None
                         ) -> TableCandidates:
    """Measure and price every representation ``cfg``'s table could take."""
    weight = np.asarray(weight, dtype=np.float32)
    if weight.shape != (cfg.num_embeddings, cfg.embedding_dim):
        raise ValueError(
            f"weight shape {weight.shape} does not match table "
            f"{cfg.name!r} ({cfg.num_embeddings}, {cfg.embedding_dim})")
    scale = float(np.max(np.abs(weight))) if weight.size else 0.0
    full_bytes = cfg.num_parameters * _STORAGE_BYTES["full"]
    options: List[TableAssignment] = [TableAssignment(
        table=cfg.name, kind="full", hot_bytes=full_bytes,
        total_bytes=full_bytes, error=0.0,
        lookup_s=cost.hot_lookup_s(cfg, cfg.embedding_dim * 4.0))]

    for precision in cost.precisions:
        if precision in ("fp16", "bf16"):
            roundtrip = lowp.fp16_roundtrip(weight) if precision == "fp16" \
                else lowp.bf16_roundtrip(weight)
            table_bytes = cfg.num_parameters * _STORAGE_BYTES[precision]
            row_bytes = cfg.embedding_dim * 2.0
        else:
            codes, q_scale, q_offset = lowp.quantize_int8_rowwise(weight)
            roundtrip = lowp.dequantize_int8_rowwise(codes, q_scale, q_offset)
            table_bytes = (cfg.num_parameters
                           + cfg.num_embeddings * _INT8_ROW_OVERHEAD_BYTES)
            row_bytes = cfg.embedding_dim + float(_INT8_ROW_OVERHEAD_BYTES)
        error = float(np.max(np.abs(weight - roundtrip.astype(np.float32)))) \
            if weight.size else 0.0
        options.append(TableAssignment(
            table=cfg.name, kind=precision, hot_bytes=table_bytes,
            total_bytes=table_bytes, error=error,
            lookup_s=cost.hot_lookup_s(cfg, row_bytes)))

    if cost.allow_tt:
        for ranks in cost.tt_rank_options:
            if not _tt_factor_count(cfg, ranks):
                continue
            tt = TTEmbeddingTable.from_weight(cfg.name, weight, ranks=ranks)
            tt_bytes = int(sum(c.nbytes for c in tt.cores))
            if tt_bytes >= full_bytes:
                continue  # no compression at this rank — not a candidate
            error = float(np.max(np.abs(weight - tt.materialize()))) \
                if weight.size else 0.0
            options.append(TableAssignment(
                table=cfg.name, kind="tt", hot_bytes=tt_bytes,
                total_bytes=tt_bytes, error=error,
                lookup_s=cost.tt_lookup_s(cfg, tt),
                tt_ranks=tuple(tt.ranks[1:-1])))

    if cost.allow_cold:
        hit = cost.expected_cold_hit_rate(cfg, frequency_stats)
        options.append(TableAssignment(
            table=cfg.name, kind="cold", hot_bytes=0,
            total_bytes=full_bytes, error=0.0,
            lookup_s=cost.cold_lookup_s(cfg, hit)))

    return TableCandidates(table=cfg.name, scale=scale,
                           options=tuple(options))

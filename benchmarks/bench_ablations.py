"""Ablations of the design choices DESIGN.md calls out.

Four studies, each isolating one co-design decision:

1. **exact vs Hogwild sparse updates** (Section 4.1.2) — the exact merged
   update is batch-order invariant; the racy per-occurrence update is not;
2. **pipelining / overlap** (Section 4.3) — how much latency the Fig. 9
   overlaps hide for model A2 vs fully serialized execution;
3. **hierarchical TWRW vs flat RW** (Section 4.2.5) — keeping a table's
   row shards inside one node moves the ReduceScatter onto NVLink;
4. **wire-precision sweep** (Section 5.3.2) — QPS and round-trip error
   across fp32/fp16/bf16 AlltoAll payloads.
"""

import numpy as np
import pytest

from repro import lowp
from repro.comms import (PROTOTYPE_TOPOLOGY, ClusterTopology,
                         QuantizedCommsConfig)
from repro.comms import perf_model as cpm
from repro.embedding import (EmbeddingTable, EmbeddingTableConfig,
                             SparseAdaGrad, SparseGradient)
from repro.models import full_spec
from repro.perf import TrainingSetup, component_times, qps


class RacyAdaGrad(SparseAdaGrad):
    """Hogwild!-style AdaGrad: applies each occurrence separately, in
    arrival order, with no duplicate merging — the pre-Neo semantics."""

    def step(self, table, grad):
        for i in range(len(grad.rows)):
            single = SparseGradient(rows=grad.rows[i:i + 1],
                                    values=grad.values[i:i + 1],
                                    num_embeddings=grad.num_embeddings)
            self._apply(table, single.rows, single.values)


def test_exact_vs_hogwild_updates(benchmark, report):
    def run():
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 16, size=64).astype(np.int64)
        values = rng.normal(size=(64, 8)).astype(np.float32)
        perm = rng.permutation(64)
        out = {}
        for name, opt_cls in (("exact", SparseAdaGrad),
                              ("hogwild", RacyAdaGrad)):
            results = []
            for order in (slice(None), perm):
                cfg = EmbeddingTableConfig("t", 16, 8)
                table = EmbeddingTable(cfg, rng=np.random.default_rng(1))
                grad = SparseGradient(rows=rows[order],
                                      values=values[order],
                                      num_embeddings=16)
                opt_cls(lr=0.1).step(table, grad)
                results.append(table.weight.copy())
            out[name] = float(np.max(np.abs(results[0] - results[1])))
        return out

    drift = benchmark(run)
    report("Ablation 1: batch-order sensitivity of sparse AdaGrad",
           ["update scheme", "max |param drift| after reorder"],
           [("exact (merged, Sec 4.1.2)", f"{drift['exact']:.2e}"),
            ("Hogwild (per-occurrence)", f"{drift['hogwild']:.2e}")])
    assert drift["exact"] == 0.0           # bitwise order-invariant
    assert drift["hogwild"] > 1e-6         # racy updates are not


def test_pipelining_overlap_ablation(benchmark, report):
    """How much does the Section 4.3 overlap buy on A2 at 128 GPUs?"""
    def run():
        setup = TrainingSetup(spec=full_spec("A2"),
                              topology=PROTOTYPE_TOPOLOGY(16),
                              global_batch=65536, load_imbalance=1.15)
        t = component_times(setup)
        from repro.core import iteration_latency
        return iteration_latency(t), t.serialized_total

    overlapped, serialized = benchmark(run)
    saved = 1 - overlapped / serialized
    report("Ablation 2: pipelining / overlap (A2, 128 GPUs)",
           ["execution", "per-iteration latency"],
           [("fully serialized", f"{serialized * 1e3:.1f} ms"),
            ("with Fig 9 overlaps", f"{overlapped * 1e3:.1f} ms"),
            ("latency hidden", f"{saved:.0%}")])
    assert overlapped < serialized
    assert saved > 0.15  # the overlaps are worth a substantial fraction


def test_twrw_vs_flat_rw(benchmark, report):
    """Hierarchical sharding keeps partial-sum reduction on NVLink."""
    def run():
        payload = 64e6  # pooled partial sums per GPU
        cluster = PROTOTYPE_TOPOLOGY(16)
        # flat RW with arbitrary shard placement: the reduction cannot
        # exploit NVLink locality -> single-level ring over RoCE
        flat = cpm.flat_reduce_scatter_time(payload, cluster)
        # TWRW: reduction within one node (NVLink), then the pooled
        # output ships via the normal table-wise AlltoAll
        one_node = ClusterTopology(num_nodes=1)
        twrw = cpm.reduce_scatter_time(payload, one_node) \
            + cpm.all_to_all_time(payload / one_node.gpus_per_node, cluster)
        return flat, twrw

    flat, twrw = benchmark(run)
    report("Ablation 3: flat row-wise vs hierarchical TWRW comms",
           ["strategy", "modeled comms time"],
           [("flat RW (RoCE-only ReduceScatter)", f"{flat * 1e3:.2f} ms"),
            ("TWRW (NVLink RS + AlltoAll)", f"{twrw * 1e3:.2f} ms"),
            ("speedup", f"{flat / twrw:.2f}x")])
    assert twrw < flat


def test_wire_precision_sweep(benchmark, report):
    """QPS and numeric error across AlltoAll wire precisions."""
    def run():
        spec = full_spec("A2")
        topo = PROTOTYPE_TOPOLOGY(16)
        rng = np.random.default_rng(0)
        payload = rng.normal(size=4096).astype(np.float32)
        rows = []
        for precision in ("fp32", "fp16", "bf16"):
            comms = QuantizedCommsConfig(forward_alltoall=precision,
                                         backward_alltoall=precision)
            speed = qps(TrainingSetup(spec=spec, topology=topo,
                                      global_batch=65536,
                                      load_imbalance=1.15, comms=comms))
            if precision == "fp32":
                err = 0.0
            elif precision == "fp16":
                err = float(np.max(np.abs(
                    lowp.fp16_roundtrip(payload) - payload)))
            else:
                err = float(np.max(np.abs(
                    lowp.bf16_roundtrip(payload) - payload)))
            rows.append((precision, speed, err))
        return rows

    rows = benchmark(run)
    report("Ablation 4: AlltoAll wire precision (A2, 128 GPUs)",
           ["precision", "QPS", "max round-trip error"],
           [(p, f"{q / 1e3:.0f}K", f"{e:.2e}") for p, q, e in rows])
    by_precision = {p: (q, e) for p, q, e in rows}
    # both 16-bit wires beat fp32 on speed
    assert by_precision["fp16"][0] > by_precision["fp32"][0]
    assert by_precision["bf16"][0] > by_precision["fp32"][0]
    # bf16 trades mantissa for range: larger error than fp16 on values
    # within fp16 range (the reason fwd uses fp16 and only bwd uses bf16)
    assert by_precision["bf16"][1] > by_precision["fp16"][1]

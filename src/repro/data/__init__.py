"""Data generation and ingestion: synthetic CTR workloads, sparse input
formats, redistribution kernels, and the reader service (paper Section 4.4)."""

from .criteo import (CRITEO_NUM_DENSE, CRITEO_NUM_SPARSE,
                     CriteoLikeDataset, criteo_dlrm_config,
                     criteo_table_configs, log_transform)
from .datagen import MiniBatch, SyntheticCTRDataset, zipf_indices
from .freq import FrequencyStats
from .hashing import hash_indices, shrink_batch, shrink_table_configs
from .formats import CombinedFormat, SeparateFormat, host_transfer_time
from .kernels import bucketize_sparse, permute_jagged, replicate_sparse
from .preprocessing import (DenseNormalizer, FeatureHasher, LogTransform,
                            MissingValueImputer, Transform,
                            TransformPipeline)
from .reader import DataIngestionService, IngestionStats

__all__ = [
    "MiniBatch",
    "SyntheticCTRDataset",
    "zipf_indices",
    "SeparateFormat",
    "CombinedFormat",
    "host_transfer_time",
    "permute_jagged",
    "bucketize_sparse",
    "replicate_sparse",
    "DataIngestionService",
    "IngestionStats",
    "FrequencyStats",
    "hash_indices",
    "shrink_batch",
    "shrink_table_configs",
    "CriteoLikeDataset",
    "criteo_table_configs",
    "criteo_dlrm_config",
    "log_transform",
    "CRITEO_NUM_DENSE",
    "CRITEO_NUM_SPARSE",
    "Transform",
    "LogTransform",
    "DenseNormalizer",
    "MissingValueImputer",
    "FeatureHasher",
    "TransformPipeline",
]

"""Section 4.1.1 (X1): fused multi-table embedding kernel speedup.

The paper reports up to 7x over per-table ``nn.EmbeddingBag`` at the
operator level. Three reproductions:

* the performance model's launch-amortization account across table counts
  (the 7x regime is many small tables);
* a wall-clock measurement of the real numpy operator comparing three
  implementations of the same multi-table pooled lookup:

  - ``legacy``  — per-table python loop over the seed's ``np.add.at``
    scatter kernel (the unfused baseline this PR replaced),
  - ``segloop`` — per-table loop over the shared ``segment_sum`` reduceat
    kernel (``fusion="loop"``),
  - ``arena``   — the single-dispatch fused megatable
    (``fusion="arena"``: one tiled gather + one reduceat per dim group);

* a bitwise parity check between ``arena`` and ``segloop`` (exact) and a
  numerical check against ``legacy`` (allclose — reduceat and add.at
  order their partial sums differently).

Run standalone to write ``BENCH_fused_kernel.json``::

    PYTHONPATH=src python benchmarks/bench_fused_kernel.py \
        [--quick] [--out PATH] [--assert-speedup X]

``--quick`` shrinks the workload for CI smoke runs; ``--assert-speedup``
exits nonzero unless the arena's forward speedup over ``legacy`` meets
the floor. The full-size run is the acceptance measurement: arena
forward must be >= 3x legacy at 64 tables, B=4096, L=32.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro.embedding import (EmbeddingTable, EmbeddingTableConfig,
                             FusedEmbeddingCollection, RowWiseAdaGrad,
                             lengths_to_offsets)
from repro.perf import V100, fused_speedup

BATCH = 4096
POOL = 32

FULL_CONFIG = dict(num_tables=64, batch=4096, pool=32, rows=20_000, dim=16)
QUICK_CONFIG = dict(num_tables=16, batch=256, pool=8, rows=2_000, dim=16)


def model_rows():
    rows = []
    # the 7x regime: many tables, each with little work (small batch
    # share per table — exactly the ~1000s-of-categorical-features case)
    for num_tables in (1, 8, 64, 256, 1000):
        per_table = [2048] * num_tables
        s = fused_speedup(per_table, 32, V100)
        rows.append((num_tables, f"{s:.1f}x"))
    return rows


def build_workload(num_tables, batch, pool, rows, dim, seed=0):
    """Three same-weights views of one workload: arena / segloop / legacy."""
    rng = np.random.default_rng(seed)
    configs = [EmbeddingTableConfig(
        f"t{i}", rows, dim, pooling_mode="mean" if i % 3 == 0 else "sum")
        for i in range(num_tables)]
    arena = FusedEmbeddingCollection.from_configs(
        configs, rng=np.random.default_rng(seed + 1), fusion="arena")
    segloop = FusedEmbeddingCollection(
        [EmbeddingTable(c, weight=arena.table(c.name).weight.copy())
         for c in configs], fusion="loop")
    legacy = [EmbeddingTable(c, weight=arena.table(c.name).weight.copy())
              for c in configs]
    inputs = {c.name: (rng.integers(0, rows, size=batch * pool).astype(
        np.int64), lengths_to_offsets(np.full(batch, pool, dtype=np.int64)))
        for c in configs}
    dy = {c.name: rng.normal(size=(batch, dim)).astype(np.float32)
          for c in configs}
    return arena, segloop, legacy, inputs, dy


def _best_of(fn, iters):
    best = float("inf")
    for _ in range(iters):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(quick=False, iters=None):
    """Measure forward and full-train-step wall clock for all variants.

    Returns a JSON-ready dict with per-variant timings, speedups relative
    to ``legacy``, and the parity verdicts.
    """
    config = dict(QUICK_CONFIG if quick else FULL_CONFIG)
    iters = iters if iters is not None else (2 if quick else 3)
    arena, segloop, legacy, inputs, dy = build_workload(**config)

    def legacy_fwd():
        return {t.name: t.forward_reference(*inputs[t.name])
                for t in legacy}

    def legacy_step():
        legacy_fwd()
        opt = RowWiseAdaGrad(lr=0.05)
        for t in legacy:
            opt.step(t, t.backward(dy[t.name]))

    variants = {
        "legacy": (legacy_fwd, legacy_step),
        "segloop": (lambda: segloop.forward(inputs),
                    lambda: (segloop.forward(inputs),
                             segloop.backward_and_update(
                                 dy, RowWiseAdaGrad(lr=0.05)))),
        "arena": (lambda: arena.forward(inputs),
                  lambda: (arena.forward(inputs),
                           arena.backward_and_update(
                               dy, RowWiseAdaGrad(lr=0.05)))),
    }

    # parity first (also serves as warmup): arena vs segloop is bitwise,
    # arena vs legacy is allclose (different partial-sum orders)
    out_arena = arena.forward(inputs)
    out_segloop = segloop.forward(inputs)
    out_legacy = legacy_fwd()
    bitwise = all(np.array_equal(out_arena[n], out_segloop[n])
                  for n in arena.names)
    close = all(np.allclose(out_arena[n], out_legacy[n],
                            rtol=1e-5, atol=1e-6) for n in arena.names)

    results = {}
    for name, (fwd, step) in variants.items():
        results[name] = {
            "forward_s": _best_of(fwd, iters),
            "train_step_s": _best_of(step, max(1, iters - 1)),
        }
    legacy_t = results["legacy"]
    for name, r in results.items():
        r["forward_speedup_vs_legacy"] = \
            legacy_t["forward_s"] / r["forward_s"]
        r["train_step_speedup_vs_legacy"] = \
            legacy_t["train_step_s"] / r["train_step_s"]

    return {
        "benchmark": "fused_embedding_kernel",
        "mode": "quick" if quick else "full",
        "config": config,
        "kernel_launches_per_forward": {
            "legacy": config["num_tables"],
            "segloop": config["num_tables"],
            "arena": arena.arena.num_groups,
        },
        "parity": {
            "arena_vs_segloop_bitwise": bool(bitwise),
            "arena_vs_legacy_allclose": bool(close),
        },
        "variants": results,
        "arena_forward_speedup": results["arena"][
            "forward_speedup_vs_legacy"],
        "arena_train_step_speedup": results["arena"][
            "train_step_speedup_vs_legacy"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_fused_kernel.json",
                        help="output JSON path")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless arena forward speedup >= X")
    args = parser.parse_args(argv)
    result = run_benchmark(quick=args.quick)
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    fwd = result["arena_forward_speedup"]
    step = result["arena_train_step_speedup"]
    print(f"mode={result['mode']}  arena forward speedup {fwd:.2f}x, "
          f"train-step speedup {step:.2f}x vs per-table np.add.at loop")
    print(f"parity: {result['parity']}")
    print(f"wrote {args.out}")
    if not result["parity"]["arena_vs_segloop_bitwise"]:
        print("FAIL: arena not bitwise-identical to per-table loop",
              file=sys.stderr)
        return 1
    if args.assert_speedup is not None and fwd < args.assert_speedup:
        print(f"FAIL: arena forward speedup {fwd:.2f}x < "
              f"floor {args.assert_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def test_fused_kernel_model(benchmark, report):
    rows = benchmark(model_rows)
    report("Section 4.1.1: modeled fused-vs-unfused lookup speedup",
           ["tables", "speedup"], rows)
    speedups = [float(r[1].rstrip("x")) for r in rows]
    # monotone in table count; 1x for a single table; multi-x at ~1000
    assert speedups[0] == pytest.approx(1.0)
    assert all(a <= b * 1.01 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 3.0


def test_fused_operator_wallclock(benchmark, report):
    """Real operator: arena vs segment-loop vs the seed's add.at loop."""
    result = benchmark(run_benchmark, quick=True)
    rows = [(name,
             f"{r['forward_s'] * 1e3:.2f}",
             f"{r['forward_speedup_vs_legacy']:.2f}x",
             f"{r['train_step_s'] * 1e3:.2f}",
             f"{r['train_step_speedup_vs_legacy']:.2f}x")
            for name, r in result["variants"].items()]
    report("fused arena vs per-table wall clock (numpy substrate)",
           ["variant", "fwd ms", "fwd speedup", "step ms", "step speedup"],
           rows)
    assert result["parity"]["arena_vs_segloop_bitwise"]
    assert result["parity"]["arena_vs_legacy_allclose"]
    # the fused forward must actually win, even at smoke size
    assert result["arena_forward_speedup"] >= 1.0
    # true dispatch accounting: uniform dim -> one launch per forward
    assert result["kernel_launches_per_forward"]["arena"] == 1


if __name__ == "__main__":
    sys.exit(main())

"""The SLO-aware inference server: batching + real forwards + modeled time.

The server composes the three serving pieces: an immutable
:class:`repro.serving.export.ServableModel`, the dynamic
:class:`repro.serving.batcher.MicroBatcher`, and a
:class:`ServingPerfModel` that prices every dispatched batch with the
*same* operator models training uses — GEMM rooflines for the MLPs
(:mod:`repro.perf.gemm`), the embedding bandwidth curve
(:mod:`repro.perf.embedding_bw`) degraded by the shared
:class:`repro.perf.PlatformSpec` memory hierarchy when the model
overflows HBM, and the host-transfer model for request upload. Batching
trade-offs therefore come out *measured against the platform model*,
not asserted: the benchmark can show exactly where amortized launch
overhead stops paying for added queueing delay.

Requests are served for real — every scheduled batch runs an actual
numpy forward over the coalesced samples — while latency accounting
runs in virtual time, so results are deterministic and machine
independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.datagen import MiniBatch
from ..data.formats import host_transfer_time
from ..obs.metrics import MetricRegistry
from ..obs.tracer import as_tracer
from ..perf.devices import DeviceSpec, V100
from ..perf.embedding_bw import embedding_lookup_time
from ..perf.gemm import mlp_time
from ..perf.platform import ZIONEX_PLATFORM, PlatformSpec
from .batcher import (BatchingPolicy, BatchPlan, InferenceRequest,
                      MicroBatcher, ScheduledBatch)
from .export import ServableModel

__all__ = ["ServingPerfModel", "RequestOutcome", "ServeResult",
           "InferenceServer"]

_EMB_LOOKUP_PRECISION = {"fp32": "fp32", "fp16": "fp16", "bf16": "fp16",
                         "int8": "fp16",  # bandwidth class of row reads
                         # plan-mixed artifacts: most bytes sit in the
                         # compressed representations, price as fp16
                         "mixed": "fp16"}


@dataclass(frozen=True)
class ServingPerfModel:
    """Per-batch service-time model for one serving node.

    ``nodes`` sizes the HBM pool the frozen model must fit: when the
    model's storage overflows ``nodes * hbm_per_node``, lookups slow
    down by the platform's hierarchy bandwidth fraction — the same
    arithmetic :mod:`repro.perf.online` applies to training clusters.
    ``overhead_s`` is the fixed per-dispatch cost (request decode,
    framework, result scatter) that batching amortizes.
    """

    device: DeviceSpec = V100
    platform: PlatformSpec = ZIONEX_PLATFORM
    nodes: int = 1
    cache_hit_boost: float = 0.5
    mlp_precision: str = "fp32"
    overhead_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.overhead_s < 0:
            raise ValueError("overhead_s must be >= 0")

    def bw_fraction(self, model: ServableModel) -> float:
        """Effective lookup bandwidth fraction for this model placement."""
        hbm_fraction = self.platform.hbm_fraction(
            model.embedding_storage_bytes(), self.nodes)
        return self.platform.hierarchy_bw_fraction(
            hbm_fraction, self.cache_hit_boost)

    def service_time(self, model: ServableModel, batch_size: int,
                     nnz: int) -> float:
        """Seconds to serve one coalesced batch of ``batch_size`` samples
        touching ``nnz`` embedding rows."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if nnz < 0:
            raise ValueError("nnz must be >= 0")
        cfg = model.config
        # host upload: 2 jagged tensors + dense + lengths, combined format
        total_l = sum(t.avg_pooling for t in cfg.tables)
        h2d_bytes = batch_size * (total_l * 8 + cfg.dense_dim * 4)
        h2d = host_transfer_time(4, h2d_bytes, pinned=True)
        bottom = mlp_time(batch_size, (cfg.dense_dim,) + cfg.bottom_mlp,
                          self.device, self.mlp_precision)
        top = mlp_time(batch_size,
                       (cfg.interaction_dim,) + cfg.top_mlp + (1,),
                       self.device, self.mlp_precision)
        avg_dim = max(1, int(np.mean([t.embedding_dim
                                      for t in cfg.tables])))
        lookup_precision = _EMB_LOOKUP_PRECISION[model.precision]
        lookup = embedding_lookup_time(nnz, avg_dim, self.device,
                                       lookup_precision)
        lookup /= self.bw_fraction(model)
        # interaction: memory-bound pairwise dots (same as training fwd)
        f = len(cfg.tables) + 1
        inter_bytes = batch_size * (f * avg_dim * 4 * 2 + f * f * 4)
        inter = inter_bytes / self.device.hbm_achievable_bw \
            + self.device.kernel_launch_overhead
        return h2d + bottom + lookup + inter + top + self.overhead_s

    def capacity_qps(self, model: ServableModel, batch_size: int,
                     nnz_per_sample: float) -> float:
        """Saturated throughput at a fixed dispatch width — the ceiling
        the load generator's goodput converges to."""
        svc = self.service_time(model, batch_size,
                                int(round(nnz_per_sample * batch_size)))
        return batch_size / svc


@dataclass(frozen=True)
class RequestOutcome:
    """Completion record of one served request (virtual-time accounting).

    ``model_version`` is the version of the snapshot that answered the
    request — 0 for a fixed-model server, the :class:`ModelSlot` version
    bound at dispatch time when serving through a hot-swap slot.
    """

    request_id: int
    arrival_s: float
    dispatch_s: float
    completion_s: float
    batch_samples: int
    model_version: int = 0

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s


@dataclass
class ServeResult:
    """Everything one serve run produced: responses, latencies, sheds."""

    outcomes: List[RequestOutcome] = field(default_factory=list)
    responses: Dict[int, np.ndarray] = field(default_factory=dict)
    shed_ids: List[int] = field(default_factory=list)
    plan: Optional[BatchPlan] = None

    @property
    def num_completed(self) -> int:
        return len(self.outcomes)

    @property
    def num_shed(self) -> int:
        return len(self.shed_ids)

    def latencies_s(self) -> np.ndarray:
        return np.array([o.latency_s for o in self.outcomes],
                        dtype=np.float64)

    def requests_per_version(self) -> Dict[int, int]:
        """Completed-request count by answering model version."""
        out: Dict[int, int] = {}
        for o in self.outcomes:
            out[o.model_version] = out.get(o.model_version, 0) + 1
        return out

    def percentile_s(self, q: float) -> float:
        lat = self.latencies_s()
        return float(np.percentile(lat, q)) if len(lat) else 0.0

    def makespan_s(self) -> float:
        if not self.outcomes:
            return 0.0
        first = min(o.arrival_s for o in self.outcomes)
        last = max(o.completion_s for o in self.outcomes)
        return last - first


class InferenceServer:
    """Serves frozen models through the micro-batcher, under obs spans.

    ``serve`` replays an arrival trace: the batcher plans the schedule
    in virtual time with :class:`ServingPerfModel` service times, then
    every scheduled batch is actually executed — requests coalesced via
    :meth:`MiniBatch.concat`, one real fused forward, per-request rows
    scattered back. Obs wiring: ``serving.batch``/``serving.forward``
    spans plus ``serving.*`` counters and latency/batch-size histograms.
    """

    def __init__(self, model: ServableModel,
                 policy: Optional[BatchingPolicy] = None,
                 perf: Optional[ServingPerfModel] = None,
                 tracer=None,
                 metrics: Optional[MetricRegistry] = None,
                 name: str = "") -> None:
        self.model = model
        self.policy = policy if policy is not None else BatchingPolicy()
        self.perf = perf if perf is not None else ServingPerfModel()
        self.batcher = MicroBatcher(self.policy)
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        # a named server (fleet replica) scopes its metrics under the
        # name and stamps it on every span, so a shared registry/tracer
        # keeps per-replica series apart; unnamed servers are unchanged
        self.name = name
        self._scope = self.metrics.scope(f"{name}.serving" if name
                                         else "serving")
        self._span_attrs = {"replica": name} if name else {}

    # ------------------------------------------------------------------
    def _service_time(self, requests: List[InferenceRequest]) -> float:
        batch_size = sum(r.num_samples for r in requests)
        nnz = sum(self.model.nnz(r.batch) for r in requests)
        return self.perf.service_time(self.model, batch_size, nnz)

    def _execute(self, scheduled: ScheduledBatch,
                 model: Optional[ServableModel] = None
                 ) -> Dict[int, np.ndarray]:
        """Run the real forward for one scheduled batch and scatter the
        per-request probability rows."""
        model = model if model is not None else self.model
        with self.tracer.span("serving.forward", cat="serving",
                              requests=scheduled.num_requests,
                              samples=scheduled.num_samples,
                              **self._span_attrs):
            merged = MiniBatch.concat(
                [r.batch for r in scheduled.requests])
            probs = model.predict(merged)
        out: Dict[int, np.ndarray] = {}
        row = 0
        for r in scheduled.requests:
            out[r.request_id] = probs[row:row + r.num_samples]
            row += r.num_samples
        return out

    def serve(self, requests: Sequence[InferenceRequest],
              slot=None) -> ServeResult:
        """Serve a full arrival trace; returns the per-request record.

        With ``slot`` (a :class:`repro.online.ModelSlot`), every
        dispatched batch is answered by ``slot.snapshot_at(dispatch_s)``
        — the snapshot active at its dispatch time — and outcomes carry
        that snapshot's version. The *schedule* is still priced once
        against ``self.model``: hot-swapped snapshots are
        config-identical by the slot's publish contract, so the
        service-time model is version-invariant and a swap never
        re-prices (or delays, or drops) an in-flight request. The plan
        with swaps is therefore bitwise-identical to the fixed-model
        plan; only the answering weights differ.
        """
        plan = self.batcher.plan(list(requests), self._service_time)
        result = ServeResult(plan=plan)
        batch_hist = self._scope.histogram("batch_size")
        latency_hist = self._scope.histogram("latency_s")
        requests_ctr = self._scope.counter("requests")
        completed_ctr = self._scope.counter("completed")
        shed_ctr = self._scope.counter("shed")
        batches_ctr = self._scope.counter("batches")
        samples_ctr = self._scope.counter("samples")
        requests_ctr.inc(len(requests))
        for scheduled in plan.batches:
            if slot is None:
                snapshot_model, version = None, 0
            else:
                snapshot = slot.snapshot_at(scheduled.dispatch_s)
                snapshot_model, version = snapshot.model, snapshot.version
            with self.tracer.span("serving.batch", cat="serving",
                                  requests=scheduled.num_requests,
                                  trigger=scheduled.trigger,
                                  dispatch_s=scheduled.dispatch_s,
                                  model_version=version,
                                  **self._span_attrs):
                responses = self._execute(scheduled, model=snapshot_model)
            result.responses.update(responses)
            batches_ctr.inc(1)
            samples_ctr.inc(scheduled.num_samples)
            completed_ctr.inc(scheduled.num_requests)
            batch_hist.record(scheduled.num_samples)
            for r in scheduled.requests:
                outcome = RequestOutcome(
                    request_id=r.request_id, arrival_s=r.arrival_s,
                    dispatch_s=scheduled.dispatch_s,
                    completion_s=scheduled.completion_s,
                    batch_samples=scheduled.num_samples,
                    model_version=version)
                result.outcomes.append(outcome)
                latency_hist.record(outcome.latency_s)
        result.shed_ids = sorted(r.request_id for r in plan.shed)
        shed_ctr.inc(len(result.shed_ids))
        result.outcomes.sort(key=lambda o: o.request_id)
        return result

"""Checkpoint-based recovery from rank failures.

When a collective raises :class:`repro.resilience.RankFailure`, training
cannot continue on the dead world: the simulated job tears the trainer
down and rebuilds. :class:`RecoveryManager` owns that rebuild:

1. decide the new world size — same size if a replacement host is
   available (``replacement_ranks=True``), one smaller if the job must
   degrade (``allow_degraded``);
2. construct a fresh trainer for that world via the caller-supplied
   ``trainer_factory(world_size)``, which re-plans embedding sharding
   over the survivors (checkpoints store *gathered* full tables, so any
   plan can restore from any other plan's checkpoint);
3. restore the newest checkpoint — dense replicas, dense optimizer
   state and every embedding table — or cold-start from step 0 when no
   checkpoint exists yet;
4. report a :class:`RecoveryEvent` so the loop can rewind its ingestion
   and bookkeeping to the restored step.

Because checkpoint restore is exact and the data pipeline is replayable
by batch index, a recovered run that restores the original world size
is *bitwise identical* to an uninterrupted run at the same sample
budget — the property ``tests/test_resilience_recovery.py`` asserts.
Degraded worlds recompute the lost iterations with a different rank
split; the exact sparse optimizers keep embedding math split-invariant,
but dense summation order changes, so only continued training (not
bitwise equality) is guaranteed there.

This module deliberately never imports :mod:`repro.core` at runtime
(type-checking only) — the core loop imports resilience, not the other
way around.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from .faults import RankFailure

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime cycle
    from ..core.checkpoint import CheckpointManager
    from ..core.trainer import NeoTrainer

__all__ = ["RecoveryError", "RecoveryEvent", "RecoveryManager"]


class RecoveryError(RuntimeError):
    """Recovery is impossible or misconfigured (no survivors, degraded
    mode disabled, retry budget exhausted, unrestorable schedulers)."""


@dataclass
class RecoveryEvent:
    """One completed recovery: the new trainer plus its accounting."""

    trainer: "NeoTrainer"
    failed_rank: int
    failed_iteration: int
    world_size: int
    degraded: bool
    restored_step: int
    lost_steps: int
    seconds: float
    cold_start: bool


class RecoveryManager:
    """Rebuilds a trainer after a :class:`RankFailure`.

    Parameters
    ----------
    trainer_factory:
        ``trainer_factory(world_size) -> NeoTrainer``. Called with the
        post-failure world size; responsible for re-planning sharding
        (e.g. via ``NeoTrainer.from_planner``) and for reusing the same
        fault schedule if the run is fault-injected.
    checkpoint_manager:
        Source of saved state. ``None``, or a manager with no
        checkpoints on disk yet, means cold restart from step 0.
    replacement_ranks:
        If true (default) a replacement host joins and the world size is
        preserved — the paper's production posture, and the only mode
        with a bitwise-identical resume guarantee.
    allow_degraded:
        If replacement is off, permit shrinking the world by one
        (training continues on ``W - 1`` ranks).
    scheduler_factory:
        ``scheduler_factory(trainer) -> list`` of LR schedulers for the
        new trainer; required by the loop if it was running with
        schedulers, since scheduler state is not checkpointed.
    max_recoveries:
        Hard cap on recoveries per manager — repeated failures beyond
        it raise :class:`RecoveryError` instead of looping forever.
    """

    def __init__(self, trainer_factory: Callable[[int], "NeoTrainer"],
                 checkpoint_manager: Optional["CheckpointManager"] = None,
                 replacement_ranks: bool = True,
                 allow_degraded: bool = True,
                 scheduler_factory: Optional[
                     Callable[["NeoTrainer"], list]] = None,
                 max_recoveries: int = 8) -> None:
        if max_recoveries < 1:
            raise ValueError("max_recoveries must be >= 1")
        self.trainer_factory = trainer_factory
        self.checkpoint_manager = checkpoint_manager
        self.replacement_ranks = replacement_ranks
        self.allow_degraded = allow_degraded
        self.scheduler_factory = scheduler_factory
        self.max_recoveries = max_recoveries
        self.events: List[RecoveryEvent] = []

    def recover(self, failure: RankFailure,
                current_world: int) -> RecoveryEvent:
        """Build and restore a replacement trainer after ``failure``."""
        if len(self.events) >= self.max_recoveries:
            raise RecoveryError(
                f"recovery budget exhausted ({self.max_recoveries} "
                f"recoveries); last failure: {failure}")
        start = time.perf_counter()
        if self.replacement_ranks:
            new_world = current_world
        else:
            if not self.allow_degraded:
                raise RecoveryError(
                    "rank failed with no replacement and degraded mode "
                    "disabled")
            new_world = current_world - 1
        if new_world < 1:
            raise RecoveryError("no surviving ranks to recover onto")

        trainer = self.trainer_factory(new_world)
        if trainer.world_size != new_world:
            raise RecoveryError(
                f"trainer_factory built world {trainer.world_size}, "
                f"expected {new_world}")
        cold_start = True
        restored_step = 0
        if self.checkpoint_manager is not None:
            try:
                restored_step = self.checkpoint_manager.load(trainer)
                cold_start = False
            except FileNotFoundError:
                restored_step = 0  # nothing saved yet: replay from scratch
        seconds = time.perf_counter() - start

        event = RecoveryEvent(
            trainer=trainer, failed_rank=failure.rank,
            failed_iteration=failure.iteration, world_size=new_world,
            degraded=new_world < current_world,
            restored_step=restored_step,
            lost_steps=max(failure.iteration - restored_step, 0),
            seconds=seconds, cold_start=cold_start)
        self.events.append(event)

        scope = trainer.metrics.scope("resilience")
        scope.counter("recoveries").inc(1)
        scope.counter("recovery_seconds").inc(seconds)
        scope.counter("lost_steps").inc(event.lost_steps)
        return event

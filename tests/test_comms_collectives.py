"""Tests for exact collectives: correctness identities and quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lowp
from repro.comms import collectives as C


def rank_arrays(world, shape=(4,), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape).astype(np.float32) for _ in range(world)]


class TestAllReduce:
    def test_sum_semantics(self):
        xs = rank_arrays(4)
        out = C.all_reduce(xs)
        expected = sum(xs)
        for o in out:
            np.testing.assert_allclose(o, expected, rtol=1e-6)

    def test_all_ranks_identical(self):
        out = C.all_reduce(rank_arrays(3))
        for o in out[1:]:
            np.testing.assert_array_equal(o, out[0])

    def test_outputs_independent(self):
        out = C.all_reduce(rank_arrays(2))
        out[0][0] = 999.0
        assert out[1][0] != 999.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            C.all_reduce([np.zeros(3), np.zeros(4)])

    def test_empty_world_raises(self):
        with pytest.raises(ValueError):
            C.all_reduce([])

    def test_bitwise_repeatable(self):
        xs = rank_arrays(8, seed=3)
        a = C.all_reduce(xs)[0]
        b = C.all_reduce(xs)[0]
        assert np.array_equal(a, b)

    def test_codec_applied_before_reduction(self):
        xs = [np.array([1.0 + 2 ** -12], dtype=np.float32),
              np.array([1.0], dtype=np.float32)]
        out = C.all_reduce(xs, codec=lowp.fp16_roundtrip)
        # first input rounds to 1.0 in fp16, so the sum is exactly 2.0
        assert out[0][0] == np.float32(2.0)


class TestAllGather:
    def test_gathers_all(self):
        xs = rank_arrays(3)
        out = C.all_gather(xs)
        for rank_view in out:
            assert len(rank_view) == 3
            for got, want in zip(rank_view, xs):
                np.testing.assert_array_equal(got, want)


class TestReduceScatter:
    def test_chunk_sums(self):
        world = 3
        inputs = [[np.full(2, r * 10 + c, dtype=np.float32)
                   for c in range(world)] for r in range(world)]
        out = C.reduce_scatter(inputs)
        for c in range(world):
            expected = sum(inputs[r][c] for r in range(world))
            np.testing.assert_allclose(out[c], expected)

    def test_wrong_chunk_count_raises(self):
        with pytest.raises(ValueError):
            C.reduce_scatter([[np.zeros(2)], [np.zeros(2)]])

    def test_rs_plus_ag_equals_allreduce(self):
        """reduce_scatter + all_gather == all_reduce (DESIGN invariant 2)."""
        world = 4
        rng = np.random.default_rng(1)
        full = [rng.normal(size=(8,)).astype(np.float32)
                for _ in range(world)]
        ar = C.all_reduce(full)
        chunked = [list(np.array_split(x, world)) for x in full]
        rs = C.reduce_scatter(chunked)
        ag = C.all_gather(rs)
        for rank in range(world):
            reassembled = np.concatenate(ag[rank])
            np.testing.assert_allclose(reassembled, ar[rank], rtol=1e-5)


class TestAllToAll:
    def test_transpose_semantics(self):
        world = 3
        inputs = [[np.array([src * 10 + dst], dtype=np.float32)
                   for dst in range(world)] for src in range(world)]
        out = C.all_to_all(inputs)
        for dst in range(world):
            for src in range(world):
                assert out[dst][src][0] == src * 10 + dst

    def test_round_trip_identity(self):
        """alltoall(alltoall(x)) == x (DESIGN invariant 2)."""
        world = 4
        rng = np.random.default_rng(2)
        inputs = [[rng.normal(size=(3,)).astype(np.float32)
                   for _ in range(world)] for _ in range(world)]
        once = C.all_to_all(inputs)
        twice = C.all_to_all(once)
        for a_row, b_row in zip(inputs, twice):
            for a, b in zip(a_row, b_row):
                np.testing.assert_array_equal(a, b)

    def test_ragged_payloads(self):
        """AlltoAllv: per-destination sizes may differ."""
        inputs = [[np.zeros(src + dst + 1, dtype=np.float32)
                   for dst in range(2)] for src in range(2)]
        out = C.all_to_all(inputs)
        assert out[0][1].shape == (2,)  # from src 1 to dst 0
        assert out[1][0].shape == (2,)  # from src 0 to dst 1

    def test_wrong_row_length_raises(self):
        with pytest.raises(ValueError):
            C.all_to_all([[np.zeros(1)], [np.zeros(1)]] )


class TestAllToAllSingle:
    def test_equal_split_exchange(self):
        world = 2
        xs = [np.arange(4, dtype=np.float32),
              np.arange(4, 8, dtype=np.float32)]
        out = C.all_to_all_single(xs)
        np.testing.assert_array_equal(out[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(out[1], [2, 3, 6, 7])

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20)
    def test_involution_property(self, world):
        rng = np.random.default_rng(world)
        xs = [rng.normal(size=(world * 2,)).astype(np.float32)
              for _ in range(world)]
        twice = C.all_to_all_single(C.all_to_all_single(xs))
        for a, b in zip(xs, twice):
            np.testing.assert_array_equal(a, b)


class TestBroadcast:
    def test_root_payload_everywhere(self):
        xs = rank_arrays(3)
        out = C.broadcast(xs, root=1)
        for o in out:
            np.testing.assert_array_equal(o, xs[1])

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            C.broadcast(rank_arrays(2), root=2)

"""Tests for crash recovery: bitwise-identical resume when the world
size is restored, graceful N-1 degradation, cold restarts, scheduler
rebuilds and the recovery accounting."""

import numpy as np
import pytest

from repro.core import CheckpointManager, TrainingLoop
from repro.nn import WarmupLinearDecay
from repro.resilience import (FaultKind, FaultSchedule, FaultSpec,
                              RankFailure, RecoveryError, RecoveryManager,
                              faulty_process_group_factory)

from .helpers import tiny_config, tiny_dataset, tiny_trainer

CONFIG = tiny_config(num_tables=2, rows=96, dim=8, dense_dim=4,
                     avg_pooling=2.0, bottom_mlp=(8,), top_mlp=(8,))
TABLES = CONFIG.tables


def make_trainer(world, pg_factory=None, seed=0):
    """A trainer for any world size; the table-wise scheme re-plans table
    placement over it. Momentum SGD is deliberate: it has per-parameter
    optimizer state, so the bitwise tests prove that state survives
    checkpoint recovery."""
    return tiny_trainer(CONFIG, world=world, seed=seed,
                        pg_factory=pg_factory, momentum=0.9,
                        scheme="table_wise")


def make_dataset():
    return tiny_dataset(CONFIG, seed=1, noise=0.2)


def assert_trainers_bitwise_equal(a, b):
    for t in TABLES:
        np.testing.assert_array_equal(a.gather_table(t.name),
                                      b.gather_table(t.name))
    for pa, pb in zip(a.ranks[0].dense_parameters(),
                      b.ranks[0].dense_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
        sa = a.ranks[0].dense_opt.state_for(pa)
        sb = b.ranks[0].dense_opt.state_for(pb)
        assert sorted(sa) == sorted(sb)
        for key in sa:
            np.testing.assert_array_equal(sa[key], sb[key])


class TestBitwiseRecovery:
    """A run that crashes at iteration 7, restores the step-6 checkpoint
    onto a replacement world and replays must be *bitwise identical* to
    an uninterrupted run at the same sample budget."""

    STEPS = 12

    def _reference(self):
        trainer = make_trainer(world=2)
        loop = TrainingLoop(trainer, make_dataset(), global_batch_size=8,
                            eval_every=4, eval_batch_size=64)
        return trainer, loop.run(self.STEPS)

    def test_recovered_run_is_bitwise_identical(self, tmp_path):
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=1,
                                            iteration=7)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        mgr = CheckpointManager(str(tmp_path))
        recovery = RecoveryManager(
            trainer_factory=lambda w: make_trainer(w, pg_factory=pg_factory),
            checkpoint_manager=mgr)
        trainer = make_trainer(world=2, pg_factory=pg_factory)
        loop = TrainingLoop(trainer, make_dataset(), global_batch_size=8,
                            eval_every=4, eval_batch_size=64,
                            checkpoint_manager=mgr, checkpoint_every=3,
                            recovery=recovery)
        result = loop.run(self.STEPS)

        assert len(result.recoveries) == 1
        event = result.recoveries[0]
        assert event.failed_rank == 1
        assert event.failed_iteration == 7
        assert event.restored_step == 6  # checkpoints at 3 and 6
        assert event.lost_steps == 1
        assert not event.degraded
        assert not event.cold_start
        assert loop.trainer is event.trainer
        assert loop.trainer.steps == self.STEPS

        ref_trainer, ref_result = self._reference()
        # losses and eval history: bitwise, including the replayed steps
        assert result.losses == ref_result.losses
        assert len(result.losses) == self.STEPS
        assert result.eval_steps == ref_result.eval_steps
        assert result.eval_ne == ref_result.eval_ne
        assert_trainers_bitwise_equal(loop.trainer, ref_trainer)

    def test_consumed_crash_does_not_refire_on_replay(self, tmp_path):
        # the crash iteration (7) is replayed after restoring step 6; a
        # second firing would loop recovery forever (caught by the
        # max_recoveries budget if the consumption semantics broke)
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=0,
                                            iteration=7)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        mgr = CheckpointManager(str(tmp_path))
        recovery = RecoveryManager(
            trainer_factory=lambda w: make_trainer(w, pg_factory=pg_factory),
            checkpoint_manager=mgr, max_recoveries=2)
        loop = TrainingLoop(make_trainer(world=2, pg_factory=pg_factory),
                            make_dataset(), global_batch_size=8,
                            eval_every=100, checkpoint_manager=mgr,
                            checkpoint_every=3, recovery=recovery)
        result = loop.run(self.STEPS)
        assert len(result.recoveries) == 1
        assert schedule.pending == 0

    def test_recovery_metrics_recorded(self, tmp_path):
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=1,
                                            iteration=4)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        mgr = CheckpointManager(str(tmp_path))
        recovery = RecoveryManager(
            trainer_factory=lambda w: make_trainer(w, pg_factory=pg_factory),
            checkpoint_manager=mgr)
        loop = TrainingLoop(make_trainer(world=2, pg_factory=pg_factory),
                            make_dataset(), global_batch_size=8,
                            eval_every=100, checkpoint_manager=mgr,
                            checkpoint_every=2, recovery=recovery)
        result = loop.run(6)
        metrics = loop.trainer.metrics
        assert metrics.counter("resilience.recoveries").value == 1
        assert metrics.counter("resilience.recovery_seconds").value > 0
        assert metrics.counter("resilience.lost_steps").value == \
            result.recoveries[0].lost_steps


class TestDegradedRecovery:
    def test_world_shrinks_by_one_and_training_continues(self, tmp_path):
        # global batch 12 divides both the healthy world (4) and the
        # degraded one (3)
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=2,
                                            iteration=5)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        mgr = CheckpointManager(str(tmp_path))
        recovery = RecoveryManager(
            trainer_factory=lambda w: make_trainer(w, pg_factory=pg_factory),
            checkpoint_manager=mgr, replacement_ranks=False,
            allow_degraded=True)
        loop = TrainingLoop(make_trainer(world=4, pg_factory=pg_factory),
                            make_dataset(), global_batch_size=12,
                            eval_every=4, eval_batch_size=64,
                            checkpoint_manager=mgr, checkpoint_every=2,
                            recovery=recovery)
        result = loop.run(8)
        assert len(result.recoveries) == 1
        event = result.recoveries[0]
        assert event.degraded
        assert event.world_size == 3
        assert event.restored_step == 4
        assert loop.trainer.world_size == 3
        assert loop.ingestion.world_size == 3
        assert len(result.losses) == 8
        assert all(np.isfinite(result.losses))
        assert result.eval_ne and np.isfinite(result.eval_ne[-1])

    def test_degraded_disabled_raises(self):
        recovery = RecoveryManager(trainer_factory=make_trainer,
                                   replacement_ranks=False,
                                   allow_degraded=False)
        with pytest.raises(RecoveryError):
            recovery.recover(RankFailure(0, 3), current_world=4)

    def test_no_survivors_raises(self):
        recovery = RecoveryManager(trainer_factory=make_trainer,
                                   replacement_ranks=False)
        with pytest.raises(RecoveryError):
            recovery.recover(RankFailure(0, 3), current_world=1)


class TestColdRestart:
    def test_crash_before_first_checkpoint_replays_from_scratch(
            self, tmp_path):
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=0,
                                            iteration=2)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        # manager exists but nothing is ever saved (checkpoint_every=0)
        mgr = CheckpointManager(str(tmp_path))
        recovery = RecoveryManager(
            trainer_factory=lambda w: make_trainer(w, pg_factory=pg_factory),
            checkpoint_manager=mgr)
        loop = TrainingLoop(make_trainer(world=2, pg_factory=pg_factory),
                            make_dataset(), global_batch_size=8,
                            eval_every=100, recovery=recovery)
        result = loop.run(5)
        event = result.recoveries[0]
        assert event.cold_start
        assert event.restored_step == 0
        assert event.lost_steps == 2
        assert len(result.losses) == 5
        # replay from scratch on a restored world is still bitwise exact
        reference = make_trainer(world=2)
        ref_loop = TrainingLoop(reference, make_dataset(),
                                global_batch_size=8, eval_every=100)
        ref_result = ref_loop.run(5)
        assert result.losses == ref_result.losses
        assert_trainers_bitwise_equal(loop.trainer, reference)

    def test_without_recovery_manager_failure_propagates(self):
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=0,
                                            iteration=1)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        loop = TrainingLoop(make_trainer(world=2, pg_factory=pg_factory),
                            make_dataset(), global_batch_size=8,
                            eval_every=100)
        with pytest.raises(RankFailure):
            loop.run(4)


class TestSchedulerRecovery:
    def _sched_factory(self, trainer):
        return [WarmupLinearDecay(trainer.ranks[0].dense_opt, base_lr=0.05,
                                  warmup_steps=4, total_steps=20)]

    def test_schedulers_without_factory_is_an_error(self, tmp_path):
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=0,
                                            iteration=3)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        mgr = CheckpointManager(str(tmp_path))
        recovery = RecoveryManager(
            trainer_factory=lambda w: make_trainer(w, pg_factory=pg_factory),
            checkpoint_manager=mgr)
        trainer = make_trainer(world=2, pg_factory=pg_factory)
        loop = TrainingLoop(
            trainer, make_dataset(), global_batch_size=8, eval_every=100,
            checkpoint_manager=mgr, checkpoint_every=2, recovery=recovery,
            lr_schedulers=self._sched_factory(trainer))
        with pytest.raises(RecoveryError):
            loop.run(6)

    def test_scheduler_factory_fast_forwards_lr(self, tmp_path):
        schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=0,
                                            iteration=5)])
        pg_factory = faulty_process_group_factory(schedule=schedule)
        mgr = CheckpointManager(str(tmp_path))
        recovery = RecoveryManager(
            trainer_factory=lambda w: make_trainer(w, pg_factory=pg_factory),
            checkpoint_manager=mgr,
            scheduler_factory=self._sched_factory)
        trainer = make_trainer(world=2, pg_factory=pg_factory)
        loop = TrainingLoop(
            trainer, make_dataset(), global_batch_size=8, eval_every=100,
            checkpoint_manager=mgr, checkpoint_every=2, recovery=recovery,
            lr_schedulers=self._sched_factory(trainer))
        loop.run(8)

        reference = make_trainer(world=2)
        ref_loop = TrainingLoop(
            reference, make_dataset(), global_batch_size=8, eval_every=100,
            lr_schedulers=self._sched_factory(reference))
        ref_loop.run(8)
        assert loop.trainer.ranks[0].dense_opt.lr == \
            pytest.approx(reference.ranks[0].dense_opt.lr)


class TestRecoveryManagerBudget:
    def test_budget_exhaustion_raises(self):
        recovery = RecoveryManager(trainer_factory=make_trainer,
                                   max_recoveries=1)
        recovery.recover(RankFailure(0, 1), current_world=2)
        with pytest.raises(RecoveryError):
            recovery.recover(RankFailure(1, 2), current_world=2)

    def test_factory_world_mismatch_rejected(self):
        recovery = RecoveryManager(trainer_factory=lambda w: make_trainer(2))
        with pytest.raises(RecoveryError):
            recovery.recover(RankFailure(0, 1), current_world=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryManager(trainer_factory=make_trainer, max_recoveries=0)

"""Embedding operators: tables, fused arena lookup, segment-reduce
kernels, exact sparse optimizers, reduced-precision storage and
tensor-train compression (paper Section 4.1)."""

from .arena import EmbeddingArena
from .dedup import dedup_cache_read, dedup_forward, duplication_factor
from .fused import FusedEmbeddingCollection
from .kernels import (expand_bag_ids, merge_sorted_coo, rebase_jagged,
                      segment_mean, segment_sum)
from .optim import (RowWiseAdaGrad, SparseAdaGrad, SparseAdam, SparseLAMB,
                    SparseOptimizer, SparseSGD, merge_duplicate_rows,
                    optimizer_state_bytes)
from .quantized import QuantizedEmbeddingTable
from .table import (EmbeddingTable, EmbeddingTableConfig, SparseGradient,
                    lengths_to_offsets, offsets_to_lengths)
from .tt import TTEmbeddingTable, factorize_dims, tt_decompose

__all__ = [
    "EmbeddingTable",
    "EmbeddingTableConfig",
    "SparseGradient",
    "lengths_to_offsets",
    "offsets_to_lengths",
    "FusedEmbeddingCollection",
    "EmbeddingArena",
    "segment_sum",
    "segment_mean",
    "expand_bag_ids",
    "rebase_jagged",
    "merge_sorted_coo",
    "SparseOptimizer",
    "SparseSGD",
    "SparseAdaGrad",
    "RowWiseAdaGrad",
    "SparseAdam",
    "SparseLAMB",
    "merge_duplicate_rows",
    "optimizer_state_bytes",
    "QuantizedEmbeddingTable",
    "TTEmbeddingTable",
    "factorize_dims",
    "tt_decompose",
    "dedup_forward",
    "dedup_cache_read",
    "duplication_factor",
]

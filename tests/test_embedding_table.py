"""Tests for embedding tables, pooled lookup, and sparse gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import (EmbeddingTable, EmbeddingTableConfig,
                             lengths_to_offsets, offsets_to_lengths)


def make_table(h=10, d=4, pooling="sum", seed=0):
    cfg = EmbeddingTableConfig(name="t", num_embeddings=h, embedding_dim=d,
                               pooling_mode=pooling)
    return EmbeddingTable(cfg, rng=np.random.default_rng(seed))


class TestConfig:
    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            EmbeddingTableConfig("t", num_embeddings=0, embedding_dim=4)
        with pytest.raises(ValueError):
            EmbeddingTableConfig("t", num_embeddings=4, embedding_dim=-1)

    def test_invalid_pooling_raises(self):
        with pytest.raises(ValueError):
            EmbeddingTableConfig("t", 4, 4, pooling_mode="max")

    def test_num_parameters(self):
        cfg = EmbeddingTableConfig("t", 100, 16)
        assert cfg.num_parameters == 1600

    def test_memory_bytes_by_precision(self):
        cfg = EmbeddingTableConfig("t", 100, 16)
        assert cfg.memory_bytes("fp32") == 6400
        assert cfg.memory_bytes("fp16") == 3200
        assert cfg.memory_bytes("int8") == 1600


class TestOffsetsLengths:
    def test_round_trip(self):
        lengths = np.array([3, 0, 2, 5], dtype=np.int64)
        offsets = lengths_to_offsets(lengths)
        np.testing.assert_array_equal(offsets, [0, 3, 3, 5, 10])
        np.testing.assert_array_equal(offsets_to_lengths(offsets), lengths)

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=0,
                    max_size=50))
    @settings(max_examples=50)
    def test_round_trip_property(self, lengths_list):
        lengths = np.array(lengths_list, dtype=np.int64)
        np.testing.assert_array_equal(
            offsets_to_lengths(lengths_to_offsets(lengths)), lengths)


class TestLookup:
    def test_sum_pooling_matches_manual(self):
        table = make_table()
        indices = np.array([1, 2, 3, 7], dtype=np.int64)
        offsets = np.array([0, 2, 4], dtype=np.int64)
        out = table.forward(indices, offsets)
        w = table.weight
        np.testing.assert_allclose(out[0], w[1] + w[2], rtol=1e-6)
        np.testing.assert_allclose(out[1], w[3] + w[7], rtol=1e-6)

    def test_mean_pooling(self):
        table = make_table(pooling="mean")
        indices = np.array([0, 1, 2, 3], dtype=np.int64)
        offsets = np.array([0, 4], dtype=np.int64)
        out = table.forward(indices, offsets)
        np.testing.assert_allclose(out[0], table.weight[:4].mean(axis=0),
                                   rtol=1e-5)

    def test_empty_bag_is_zero(self):
        table = make_table()
        indices = np.array([5], dtype=np.int64)
        offsets = np.array([0, 0, 1], dtype=np.int64)
        out = table.forward(indices, offsets)
        np.testing.assert_array_equal(out[0], np.zeros(4, dtype=np.float32))
        np.testing.assert_allclose(out[1], table.weight[5])

    def test_empty_batch(self):
        table = make_table()
        out = table.forward(np.array([], dtype=np.int64),
                            np.array([0], dtype=np.int64))
        assert out.shape == (0, 4)

    def test_duplicate_indices_in_bag(self):
        table = make_table()
        indices = np.array([3, 3, 3], dtype=np.int64)
        offsets = np.array([0, 3], dtype=np.int64)
        out = table.forward(indices, offsets)
        np.testing.assert_allclose(out[0], 3 * table.weight[3], rtol=1e-6)

    def test_out_of_range_raises(self):
        table = make_table(h=5)
        with pytest.raises(IndexError):
            table.forward(np.array([5], dtype=np.int64),
                          np.array([0, 1], dtype=np.int64))
        with pytest.raises(IndexError):
            table.forward(np.array([-1], dtype=np.int64),
                          np.array([0, 1], dtype=np.int64))

    def test_bad_offsets_raise(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.forward(np.array([1, 2], dtype=np.int64),
                          np.array([0, 1], dtype=np.int64))  # ends at 1 != 2

    def test_custom_weight(self):
        w = np.arange(20, dtype=np.float32).reshape(5, 4)
        cfg = EmbeddingTableConfig("t", 5, 4)
        table = EmbeddingTable(cfg, weight=w)
        out = table.forward(np.array([2], dtype=np.int64),
                            np.array([0, 1], dtype=np.int64))
        np.testing.assert_array_equal(out[0], w[2])

    def test_wrong_weight_shape_raises(self):
        cfg = EmbeddingTableConfig("t", 5, 4)
        with pytest.raises(ValueError):
            EmbeddingTable(cfg, weight=np.zeros((4, 5)))


class TestBackward:
    def test_sparse_gradient_rows(self):
        table = make_table()
        indices = np.array([1, 2, 2], dtype=np.int64)
        offsets = np.array([0, 1, 3], dtype=np.int64)
        table.forward(indices, offsets)
        dy = np.ones((2, 4), dtype=np.float32)
        grad = table.backward(dy)
        np.testing.assert_array_equal(grad.rows, indices)
        # each occurrence gets its bag's upstream gradient
        np.testing.assert_array_equal(grad.values, np.ones((3, 4)))

    def test_dense_equivalence_sum(self):
        """Sparse backward densified == numerical dense gradient."""
        table = make_table(h=6, d=3)
        indices = np.array([0, 1, 1, 5], dtype=np.int64)
        offsets = np.array([0, 2, 4], dtype=np.int64)
        table.forward(indices, offsets)
        rng = np.random.default_rng(0)
        dy = rng.normal(size=(2, 3)).astype(np.float32)
        dense = table.backward(dy).to_dense()

        # numerical: d(sum(out * dy))/dW
        eps = 1e-2
        num = np.zeros_like(table.weight, dtype=np.float64)
        for i in range(6):
            for j in range(3):
                table.weight[i, j] += eps
                up = float(np.sum(table.forward(indices, offsets) * dy))
                table.weight[i, j] -= 2 * eps
                down = float(np.sum(table.forward(indices, offsets) * dy))
                table.weight[i, j] += eps
                num[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(dense, num, rtol=1e-2, atol=1e-3)

    def test_mean_pooling_scales_gradient(self):
        table = make_table(pooling="mean")
        indices = np.array([0, 1, 2, 3], dtype=np.int64)
        offsets = np.array([0, 4], dtype=np.int64)
        table.forward(indices, offsets)
        dy = np.ones((1, 4), dtype=np.float32)
        grad = table.backward(dy)
        np.testing.assert_allclose(grad.values, np.full((4, 4), 0.25))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            make_table().backward(np.zeros((1, 4), dtype=np.float32))

    def test_to_dense_requires_h(self):
        from repro.embedding import SparseGradient
        g = SparseGradient(rows=np.array([0]), values=np.zeros((1, 2)),
                           num_embeddings=0)
        with pytest.raises(ValueError):
            g.to_dense()

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_gradient_row_count_equals_nnz(self, batch, per_bag):
        table = make_table(h=20, d=2)
        rng = np.random.default_rng(batch * 10 + per_bag)
        lengths = np.full(batch, per_bag, dtype=np.int64)
        indices = rng.integers(0, 20, size=per_bag * batch).astype(np.int64)
        offsets = lengths_to_offsets(lengths)
        table.forward(indices, offsets)
        grad = table.backward(np.ones((batch, 2), dtype=np.float32))
        assert len(grad.rows) == len(indices)

"""Online co-simulation benchmark: the staleness vs quality vs goodput curve.

The paper's continuous-training story implies an operating curve it never
plots: refresh the serving fleet faster and answers are fresher (lower
held-out NE) at the cost of more freeze/publish work; refresh slower and
quality decays while the request path is untouched — hot-swap is free
for serving by construction. This benchmark runs the same seeded
train-while-serving co-simulation at several refresh cadences (including
the two degenerate ends: swap-every-step and never-swap) and exports the
curve, plus the losslessness evidence:

* every cadence completes its expected hot-swaps and sheds **zero**
  requests to swapping (the conservation residual);
* ordering cadences by staleness orders their NE gaps the same way;
* swap-every-step reproduces a pure-serving load test bit for bit — the
  swap machinery adds exactly nothing to the schedule.

Run standalone to write ``BENCH_online.json``::

    PYTHONPATH=src python benchmarks/bench_online.py [--quick] [--out PATH]

Exit is nonzero unless at least one hot-swap completed, no request was
shed during a swap, the staleness->NE-gap curve is monotone over >= 3
cadences, and the swap-every-step schedule equals pure serving bitwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer, TrainingLoop
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRMConfig
from repro.models.zoo import full_spec
from repro.online import OnlineConfig, cadence_from_sizing, run_cadence_sweep
from repro.online.report import OnlineReport, render_table
from repro.serving import InferenceServer, PoissonLoadGen, freeze
from repro.serving.loadgen import summarize
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

FULL_CONFIG = dict(num_tables=4, rows=200, dim=8, dense_dim=6,
                   world=2, global_batch=16, num_steps=16,
                   step_time_ms=10.0, qps=1200.0, slo_ms=5.0,
                   eval_batch=256, cadences=(1, 2, 4, 8, 0), seed=0)
QUICK_CONFIG = dict(num_tables=2, rows=96, dim=8, dense_dim=4,
                    world=2, global_batch=8, num_steps=8,
                    step_time_ms=10.0, qps=800.0, slo_ms=5.0,
                    eval_batch=128, cadences=(1, 4, 0), seed=0)

# the sizing linkage: what cadence the repro.perf.online cluster sizing
# implies for a real Table 3 model at production scale
SIZING_SPEC = "A1"
SIZING_TARGET_QPS = 2e6
SIZING_FRESHNESS_S = 30.0


def build_loop(config):
    """A fresh tiny training loop (fresh trainer, fresh ingestion)."""
    tables = tuple(EmbeddingTableConfig(f"t{i}", config["rows"],
                                        config["dim"], avg_pooling=2.0)
                   for i in range(config["num_tables"]))
    model_config = DLRMConfig(dense_dim=config["dense_dim"],
                              bottom_mlp=(16, config["dim"]),
                              tables=tables, top_mlp=(16,))
    world = config["world"]
    plan = ShardingPlan(world_size=world)
    for i, t in enumerate(tables):
        plan.tables[t.name] = shard_table(t, ShardingScheme.TABLE_WISE,
                                          [i % world])
    plan.validate()
    trainer = NeoTrainer(
        model_config, plan, ClusterTopology(num_nodes=1,
                                            gpus_per_node=world),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
        sparse_optimizer=SparseSGD(lr=0.1), seed=config["seed"])
    dataset = SyntheticCTRDataset(tables, dense_dim=config["dense_dim"],
                                  seed=config["seed"] + 1)
    return TrainingLoop(trainer, dataset,
                        global_batch_size=config["global_batch"],
                        eval_every=10 ** 6)


def online_config(config, swap_every=1):
    return OnlineConfig(
        num_steps=config["num_steps"], swap_every_steps=swap_every,
        train_step_time_s=config["step_time_ms"] * 1e-3,
        qps=config["qps"], slo_s=config["slo_ms"] * 1e-3,
        seed=config["seed"], eval_batch_size=config["eval_batch"])


def pure_serving_report(config):
    """An independent load test of the initial snapshot over the same
    trace — the bitwise reference for the swap-every-step schedule."""
    loop = build_loop(config)
    servable = freeze(loop.trainer)
    horizon = config["num_steps"] * config["step_time_ms"] * 1e-3
    gen = PoissonLoadGen.for_duration(config["qps"], horizon,
                                      seed=config["seed"])
    result = InferenceServer(servable).serve(gen.requests(loop.dataset))
    return summarize(result, offered_qps=config["qps"],
                     num_offered=gen.num_requests,
                     slo_s=config["slo_ms"] * 1e-3)


def measure(config):
    """The cadence sweep plus the degenerate-end parity evidence."""
    results = []
    report = run_cadence_sweep(lambda: build_loop(config),
                               list(config["cadences"]),
                               online_config(config),
                               results_out=results)
    by_cadence = {r.config.swap_every_steps: r for r in results}
    parity = by_cadence[1].report == pure_serving_report(config)
    never = by_cadence.get(0)
    training_isolated = (
        never is not None and
        never.training.losses == build_loop(config)
        .run(config["num_steps"]).losses)
    return {
        "report": report,
        "results": results,
        "swap_every_step_matches_pure_serving": parity,
        "never_swap_matches_pure_training": training_isolated,
        "total_swaps": report.total_swaps(),
        "max_shed_during_swap": report.max_shed_during_swap(),
        "monotone": report.ne_gap_monotone_in_staleness(),
    }


def as_json(config, results):
    swap_every, step_time_s, sizing = cadence_from_sizing(
        full_spec(SIZING_SPEC), SIZING_TARGET_QPS, SIZING_FRESHNESS_S)
    out = dict(results["report"].to_json())
    out.update({
        "benchmark": "online",
        "config": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in config.items()},
        "swap_every_step_matches_pure_serving":
            results["swap_every_step_matches_pure_serving"],
        "never_swap_matches_pure_training":
            results["never_swap_matches_pure_training"],
        "sizing_derived_cadence": {
            "spec": SIZING_SPEC,
            "target_qps": SIZING_TARGET_QPS,
            "freshness_budget_s": SIZING_FRESHNESS_S,
            "nodes": sizing.nodes,
            "achieved_qps": sizing.achieved_qps,
            "train_step_time_s": step_time_s,
            "swap_every_steps": swap_every,
        },
    })
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_online.json",
                        help="output JSON path")
    args = parser.parse_args(argv)
    config = dict(QUICK_CONFIG if args.quick else FULL_CONFIG)
    config["mode"] = "quick" if args.quick else "full"
    results = measure(config)
    with open(args.out, "w") as f:
        json.dump(as_json(config, results), f, indent=2)
        f.write("\n")
    report = results["report"]
    print(render_table(OnlineReport.ROW_HEADER, report.rows()))
    print(f"\nfresh model NE: {report.fresh_ne:.5f}")
    print(f"completed hot-swaps: {results['total_swaps']}, "
          f"shed during swap: {results['max_shed_during_swap']}")
    print("swap-every-step == pure serving (bitwise): "
          f"{results['swap_every_step_matches_pure_serving']}")
    print("never-swap == pure training (bitwise): "
          f"{results['never_swap_matches_pure_training']}")
    print(f"wrote {args.out}")

    failures = []
    if results["total_swaps"] < 1:
        failures.append("no hot-swap completed")
    if results["max_shed_during_swap"] != 0:
        failures.append(
            f"{results['max_shed_during_swap']} requests shed during swap")
    if len(report.points) < 3 or not results["monotone"]:
        failures.append("staleness->NE-gap curve not monotone over >= 3 "
                        "cadences")
    if not results["swap_every_step_matches_pure_serving"]:
        failures.append("swap-every-step schedule diverged from pure "
                        "serving")
    if not results["never_swap_matches_pure_training"]:
        failures.append("serving traffic perturbed the training "
                        "trajectory")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def test_online_curve(benchmark, report):
    """Monotone staleness->NE-gap curve, lossless swaps, bitwise parity."""
    results = benchmark.pedantic(measure, args=(dict(QUICK_CONFIG),),
                                 rounds=1, iterations=1)
    rep = results["report"]
    report("online: staleness vs NE vs goodput "
           f"(fresh NE {rep.fresh_ne:.5f})",
           OnlineReport.ROW_HEADER, rep.rows())
    assert results["total_swaps"] >= 1
    assert results["max_shed_during_swap"] == 0
    assert len(rep.points) >= 3
    assert results["monotone"]
    assert results["swap_every_step_matches_pure_serving"]
    assert results["never_swap_matches_pure_training"]
    # the request path is cadence-invariant: identical goodput and p99
    goodputs = {p.goodput_qps for p in rep.points}
    p99s = {p.p99_s for p in rep.points}
    assert len(goodputs) == 1 and len(p99s) == 1


def test_deterministic_json(benchmark, report):
    """Same seed, same config -> identical serialized results."""
    config = dict(QUICK_CONFIG, num_steps=4, cadences=(1, 2, 0))
    a = as_json(config, measure(config))
    b = benchmark.pedantic(lambda: as_json(config, measure(config)),
                           rounds=1, iterations=1)
    report("online determinism", ["check", "result"],
           [["json identical across runs", a == b]])
    assert a == b


if __name__ == "__main__":
    sys.exit(main())

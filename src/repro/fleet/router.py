"""Deterministic virtual-time request routing across fleet replicas.

The router is the fleet's admission plane: every request is assigned to
exactly one replica *at its arrival time*, using only information a real
front-end would have (the arrival clock and a per-replica backlog
estimate), and the assignment is a pure function of (trace, policy,
seed). Three classic policies:

* ``round_robin`` — cyclic assignment; perfectly balanced for
  homogeneous replicas and uniform requests, oblivious otherwise;
* ``least_loaded`` — route to the replica with the smallest estimated
  backlog (outstanding predicted work in seconds). Backlog is tracked
  with the same perf-model service predictions the batcher prices
  dispatches with, so a slower `PlatformSpec` replica *looks* slower to
  the router and receives proportionally less traffic;
* ``power_of_two`` — sample two distinct replicas from a seeded rng
  sub-stream and route to the less loaded. The classic
  balls-into-bins result: two choices collapse the max/mean imbalance
  of random single-choice from Θ(log n / log log n) to Θ(log log n),
  at 2 backlog probes per request instead of N.

Backlog bookkeeping is an O(1)-per-request fluid approximation:
``busy_until[r] = max(busy_until[r], t) + predicted_service`` — the
replica's micro-batcher will actually coalesce queued requests and
finish earlier, but the *relative* ordering of replica backlogs (all
estimated the same way) is what load balancing needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..serving.batcher import InferenceRequest
from ..serving.loadgen import ROUTER_STREAM

__all__ = ["ROUTING_POLICIES", "RouterPolicy", "RoutingPlan", "FleetRouter"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "power_of_two")


@dataclass(frozen=True)
class RouterPolicy:
    """Routing policy knob: the algorithm and its rng sub-stream seed."""

    kind: str = "power_of_two"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ROUTING_POLICIES:
            raise ValueError(f"kind must be one of {ROUTING_POLICIES}, "
                             f"got {self.kind!r}")


@dataclass
class RoutingPlan:
    """The complete assignment of one trace onto replica sub-traces.

    ``assignments[i]`` is replica ``i``'s sub-trace in arrival order
    (indexed by *fleet* replica id, inactive replicas get ``[]``);
    ``replica_of`` maps request id -> replica id. Backlog diagnostics
    are the router's own fluid estimates, recorded for the imbalance
    tests and the report.
    """

    assignments: List[List[InferenceRequest]]
    replica_of: Dict[int, int]
    final_backlog_s: List[float]

    @property
    def counts(self) -> List[int]:
        return [len(a) for a in self.assignments]

    def imbalance(self, active: Optional[Sequence[int]] = None) -> float:
        """max/mean assigned-request ratio over the replicas that
        received the trace (1.0 = perfectly balanced)."""
        counts = [self.counts[i] for i in active] if active is not None \
            else list(self.counts)
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


class FleetRouter:
    """Routes an arrival trace across replicas under a
    :class:`RouterPolicy` (see module docstring for the policies)."""

    def __init__(self, policy: Optional[RouterPolicy] = None) -> None:
        self.policy = policy if policy is not None else RouterPolicy()

    def route(self, requests: Sequence[InferenceRequest],
              est_service: Sequence[Callable[[InferenceRequest], float]],
              active: Optional[Sequence[int]] = None) -> RoutingPlan:
        """Assign ``requests`` (sorted internally by arrival, ties by
        id) over the ``active`` subset of replicas.

        ``est_service[r]`` predicts one request's service seconds on
        replica ``r`` — the fleet wires in each replica's own
        :class:`~repro.serving.server.ServingPerfModel`, which is how
        per-replica platform placement reaches the router.
        """
        num_replicas = len(est_service)
        if num_replicas < 1:
            raise ValueError("need at least one replica")
        active = list(range(num_replicas)) if active is None else list(active)
        if not active:
            raise ValueError("need at least one active replica")
        if any(not 0 <= a < num_replicas for a in active):
            raise ValueError(f"active indices {active} out of range for "
                             f"{num_replicas} replicas")
        if len(set(active)) != len(active):
            raise ValueError("active indices must be unique")
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        assignments: List[List[InferenceRequest]] = \
            [[] for _ in range(num_replicas)]
        replica_of: Dict[int, int] = {}
        busy_until = [0.0] * num_replicas
        kind = self.policy.kind
        n_active = len(active)
        if kind == "power_of_two" and n_active > 1:
            rng = np.random.default_rng((self.policy.seed, ROUTER_STREAM))
            first = rng.integers(0, n_active, size=len(pending))
            # distinct second choice via the shift trick
            second = (first + 1
                      + rng.integers(0, n_active - 1, size=len(pending))) \
                % n_active
        for i, r in enumerate(pending):
            t = r.arrival_s
            if kind == "round_robin" or n_active == 1:
                chosen = active[i % n_active]
            elif kind == "least_loaded":
                chosen = min(active,
                             key=lambda a: (max(busy_until[a] - t, 0.0), a))
            else:  # power_of_two
                a, b = active[int(first[i])], active[int(second[i])]
                backlog_a = max(busy_until[a] - t, 0.0)
                backlog_b = max(busy_until[b] - t, 0.0)
                # ties go to the first sample — itself uniform — so an
                # idle fleet spreads instead of piling onto low indices
                chosen = b if backlog_b < backlog_a else a
            assignments[chosen].append(r)
            replica_of[r.request_id] = chosen
            busy_until[chosen] = max(busy_until[chosen], t) \
                + float(est_service[chosen](r))
        return RoutingPlan(assignments=assignments, replica_of=replica_of,
                           final_backlog_s=busy_until)

"""Integration tests for the observability layer: golden wire-byte
values, tracer-vs-legacy accounting consistency, the column-wise
uneven-split byte audit, and the ``python -m repro trace`` CLI."""

import json

import numpy as np
import pytest

from repro import nn
from repro.comms import (AlltoAllKind, ClusterTopology,
                         QuantizedCommsConfig, SimProcessGroup)
from repro.comms import perf_model
from repro.comms.quantization import wire_bytes
from repro.core import NeoTrainer
from repro.core.pipeline import LatencyBreakdown
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRMConfig
from repro.obs import (MetricRegistry, Tracer, compare_to_model,
                       render_summary)
from repro.sharding import (Shard, ShardingPlan, ShardingScheme,
                            TableShardingPlan, shard_table)

WORLD = 2
LOCAL_BATCH = 4
GLOBAL_BATCH = WORLD * LOCAL_BATCH
DIM = 8
ITERS = 3


def _mixed_plan(config):
    """t0 table-wise on rank 0, t1 row-wise across both ranks."""
    plan = ShardingPlan(world_size=WORLD)
    t0, t1 = config.tables
    plan.tables[t0.name] = shard_table(t0, ShardingScheme.TABLE_WISE, [0])
    plan.tables[t1.name] = shard_table(t1, ShardingScheme.ROW_WISE,
                                       list(range(WORLD)))
    plan.validate()
    return plan


def _run_traced(comms_config=None):
    tables = (EmbeddingTableConfig("t0", 64, DIM, avg_pooling=2.0),
              EmbeddingTableConfig("t1", 64, DIM, avg_pooling=2.0))
    config = DLRMConfig(dense_dim=4, bottom_mlp=(8,), tables=tables,
                        top_mlp=(8,))
    topo = ClusterTopology(num_nodes=1, gpus_per_node=WORLD)
    tracer = Tracer(clock="logical")
    registry = MetricRegistry()
    trainer = NeoTrainer(
        config, _mixed_plan(config), topo,
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
        sparse_optimizer=SparseSGD(lr=0.1), comms_config=comms_config,
        seed=0, trace=tracer, metrics=registry)
    ds = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
    batches = ds.batches(GLOBAL_BATCH, ITERS)
    for b in batches:
        trainer.train_step(b.split(WORLD))
    return trainer, tracer, batches, topo


class TestGoldenWireBytes:
    """Traced per-collective wire bytes for a tiny TW + RW model match
    both the legacy CommsLog accounting and hand-computed predictions."""

    def test_float_collectives_match_analytic_bytes(self):
        trainer, _, _, _ = _run_traced()
        got = trainer.pg.log.wire_bytes

        # TW t0: one pooled AlltoAll each way, global_batch x dim fp32
        pooled = wire_bytes(GLOBAL_BATCH * DIM, "fp32")
        assert got["all_to_all/forward_alltoall"] == ITERS * pooled
        assert got["all_to_all/backward_alltoall"] == ITERS * pooled
        # RW t1 forward: ReduceScatter of one partial-sum matrix per rank
        assert got["reduce_scatter"] == ITERS * GLOBAL_BATCH * DIM * 4 * \
            WORLD // WORLD * WORLD  # per_gpu = global x dim, x world ranks
        assert got["reduce_scatter"] == ITERS * GLOBAL_BATCH * DIM * 4 * WORLD
        # RW t1 backward: AllGather of each rank's local gradient slab
        assert got["all_gather"] == ITERS * LOCAL_BATCH * DIM * 4 * WORLD

    def test_index_bytes_match_batch_contents(self):
        trainer, _, batches, _ = _run_traced()
        got = trainer.pg.log.wire_bytes

        # both schemes ship every local id to exactly one owner (ids are
        # int64). Lengths arrays ride along: one entry per sample for the
        # TW table, one per (sample, row shard) bucket for the RW table.
        total_ids = sum(len(b.sparse[t][0]) for b in batches
                        for t in ("t0", "t1"))
        total_lengths = ITERS * GLOBAL_BATCH + ITERS * GLOBAL_BATCH * WORLD
        assert got["all_to_all/index"] == (total_ids + total_lengths) * 8

    def test_span_attribution_matches_legacy_log(self):
        trainer, tracer, _, _ = _run_traced()
        log = trainer.pg.log
        for name, want in log.wire_bytes.items():
            spans = tracer.trace.find(f"comms.{name}")
            assert len(spans) == log.calls[name]
            assert sum(s.args["wire_bytes"] for s in spans) == want
        for name, want in log.modeled_seconds.items():
            spans = tracer.trace.find(f"comms.{name}")
            got = sum(s.args["modeled_seconds"] for s in spans)
            assert got == pytest.approx(want)

    def test_modeled_seconds_match_perf_model(self):
        trainer, _, _, topo = _run_traced()
        log = trainer.pg.log
        pooled = wire_bytes(GLOBAL_BATCH * DIM, "fp32")
        assert log.modeled_seconds["all_to_all/forward_alltoall"] == \
            pytest.approx(
                ITERS * perf_model.all_to_all_time(pooled / WORLD, topo))
        assert log.modeled_seconds["reduce_scatter"] == pytest.approx(
            ITERS * perf_model.reduce_scatter_time(
                GLOBAL_BATCH * DIM * 4, topo))

    def test_quantized_wire_halves_forward_bytes(self):
        full, _, _, _ = _run_traced()
        quant, _, _, _ = _run_traced(QuantizedCommsConfig.paper_recipe())
        assert quant.pg.log.wire_bytes["all_to_all/forward_alltoall"] * 2 \
            == full.pg.log.wire_bytes["all_to_all/forward_alltoall"]
        # index traffic is integer data: never quantized
        assert quant.pg.log.wire_bytes["all_to_all/index"] == \
            full.pg.log.wire_bytes["all_to_all/index"]


class TestColumnWiseByteAudit:
    """Sliced-gradient AlltoAll accounting for column-wise sharding:
    bytes == sum(shard_cols) * batch * 4, no matter how uneven the cut
    or how shards map onto ranks."""

    @pytest.mark.parametrize("col_cuts,ranks", [
        ((0, 5, 10), (0, 1)),         # even split
        ((0, 3, 10), (0, 1)),         # uneven split
        ((0, 2, 5, 10), (0, 1, 0)),   # three shards, shared owner rank
    ])
    def test_bytes_independent_of_split(self, col_cuts, ranks):
        dim = col_cuts[-1]
        table = EmbeddingTableConfig("t0", 64, dim, avg_pooling=2.0)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, dim),
                            tables=(table,), top_mlp=(8,))
        plan = ShardingPlan(world_size=WORLD)
        shards = [Shard("t0", rank, (0, 64), (lo, hi))
                  for rank, (lo, hi) in zip(ranks, zip(col_cuts,
                                                       col_cuts[1:]))]
        plan.tables["t0"] = TableShardingPlan(
            config=table, scheme=ShardingScheme.COLUMN_WISE, shards=shards)
        plan.validate()
        trainer = NeoTrainer(
            config, plan, ClusterTopology(num_nodes=1, gpus_per_node=WORLD),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1), seed=0)
        ds = SyntheticCTRDataset((table,), dense_dim=4, seed=1)
        for b in ds.batches(GLOBAL_BATCH, ITERS):
            trainer.train_step(b.split(WORLD))

        want = ITERS * GLOBAL_BATCH * dim * 4
        got = trainer.pg.log.wire_bytes
        assert got["all_to_all/forward_alltoall"] == want
        assert got["all_to_all/backward_alltoall"] == want

    def test_index_bytes_scale_with_owner_count(self):
        """Column-wise replicates ids to every owner rank; an int32 id
        stream must be billed at 4 bytes, not a hardcoded 8."""
        topo = ClusterTopology(num_nodes=1, gpus_per_node=2)
        pg = SimProcessGroup(topo)
        ids32 = np.arange(6, dtype=np.int32)
        payload = [[ids32, ids32], [ids32, ids32]]
        pg.all_to_all(payload, kind=AlltoAllKind.INDEX)
        assert pg.log.wire_bytes["all_to_all/index"] == 4 * 6 * 4


class TestCompareToModel:

    def test_share_normalization(self):
        tracer = Tracer(clock="logical")
        with tracer.span("trainer.bottom_mlp_fwd"):
            pass  # 1 tick
        with tracer.span("trainer.allreduce"):
            with tracer.span("pad"):
                pass  # 3 ticks inclusive
        model = LatencyBreakdown(
            t_fwd=1.0, t_bwd=1.0,
            serialized={"bottom_mlp_fwd": 0.25, "allreduce": 0.75})
        rows = {r.component: r
                for r in compare_to_model(tracer.trace, model)}
        assert rows["trainer.bottom_mlp_fwd"].measured_share == \
            pytest.approx(0.25)
        assert rows["trainer.allreduce"].measured_share == pytest.approx(0.75)
        assert rows["trainer.bottom_mlp_fwd"].model_share == \
            pytest.approx(0.25)
        assert rows["trainer.allreduce"].delta_share == pytest.approx(0.0)
        # unmapped model components are excluded from normalization
        assert sum(r.measured_share for r in rows.values()) == \
            pytest.approx(1.0)

    def test_trained_run_summary_renders(self):
        _, tracer, _, _ = _run_traced()
        model = LatencyBreakdown(
            t_fwd=1.0, t_bwd=2.0,
            serialized={"bottom_mlp_fwd": 0.2, "allreduce": 0.8})
        text = render_summary(tracer.trace, model=model)
        assert "## Spans" in text
        assert "trainer.iteration" in text
        assert "Measured vs analytical model" in text


class TestTraceCLI:
    """The exact invocation the issue pins down must produce loadable
    Chrome trace JSON and a model-comparison summary."""

    def test_cli_trace_output(self, tmp_path, capsys):
        from repro.__main__ import main
        out = tmp_path / "trace.json"
        rc = main(["trace", "--model", "A2", "--ranks", "4", "--iters", "3",
                   "--clock", "logical", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert len(events) > 10
        for e in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
            assert e["ph"] in ("M", "X")
            assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0
        names = {e["name"] for e in events}
        assert "trainer.iteration" in names
        assert any(n.startswith("comms.all_to_all") for n in names)

        printed = capsys.readouterr().out
        assert "Measured vs analytical model" in printed
        assert "trainer.embedding_fwd" in printed

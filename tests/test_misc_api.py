"""Tests for API ergonomics: from_planner, the self-check entry point,
and the cat-interaction DLRM variant."""

import subprocess
import sys

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRM, DLRMConfig
from repro.sharding import PlannerConfig, ShardingPlan, ShardingScheme, \
    shard_table


def small_tables(n=3, h=64):
    return tuple(EmbeddingTableConfig(f"t{i}", h, 8, avg_pooling=3.0)
                 for i in range(n))


class TestFromPlanner:
    def test_builds_and_trains(self):
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8),
                            tables=small_tables(), top_mlp=(8,))
        trainer = NeoTrainer.from_planner(
            config, ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1),
            planner_config=PlannerConfig(world_size=2, ranks_per_node=2,
                                         dp_threshold_rows=16))
        ds = SyntheticCTRDataset(config.tables, dense_dim=4)
        loss = trainer.train_step(ds.batch(8).split(2))
        assert np.isfinite(loss)
        trainer.plan.validate()

    def test_default_planner_config(self):
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8),
                            tables=small_tables(), top_mlp=(8,))
        trainer = NeoTrainer.from_planner(
            config, ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1))
        assert trainer.world_size == 2

    def test_memory_validation_enforced(self):
        big = (
            EmbeddingTableConfig("huge", 10_000_000, 64, avg_pooling=3.0),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 64), tables=big,
                            top_mlp=(8,))
        with pytest.raises(ValueError, match="budget"):
            NeoTrainer.from_planner(
                config, ClusterTopology(num_nodes=1, gpus_per_node=2),
                dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
                sparse_optimizer=SparseSGD(lr=0.1),
                planner_config=PlannerConfig(
                    world_size=2, ranks_per_node=2,
                    device_memory_bytes=64e9,
                    allow_column_wise=False),
                device_memory_bytes=5e9)


class TestCatInteraction:
    def make_config(self):
        return DLRMConfig(dense_dim=4, bottom_mlp=(8, 8),
                          tables=small_tables(2), top_mlp=(8,),
                          interaction="cat")

    def test_interaction_dim(self):
        cfg = self.make_config()
        assert cfg.interaction_dim == 3 * 8  # dense + 2 tables

    def test_invalid_interaction(self):
        with pytest.raises(ValueError):
            DLRMConfig(dense_dim=4, bottom_mlp=(8, 8),
                       tables=small_tables(1), top_mlp=(8,),
                       interaction="mlp")

    def test_trains(self):
        cfg = self.make_config()
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, noise=0.2,
                                 seed=1)
        opt = nn.Adam(model.dense_parameters(), lr=0.02)
        sparse = SparseSGD(lr=0.1)
        losses = [model.train_step(ds.batch(64, i), opt, sparse)
                  for i in range(40)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_distributed_matches_reference(self):
        cfg = self.make_config()
        world = 2
        plan = ShardingPlan(world_size=world)
        for i, t in enumerate(cfg.tables):
            plan.tables[t.name] = shard_table(
                t, ShardingScheme.TABLE_WISE, [i % world])
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, seed=0)
        batches = ds.batches(8, 3)
        reference = DLRM(cfg, seed=0)
        ref_opt = nn.SGD(reference.dense_parameters(), lr=0.1)
        sparse = SparseSGD(lr=0.1)
        ref_losses = [reference.train_step(b, ref_opt, sparse)
                      for b in batches]
        trainer = NeoTrainer(
            cfg, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1), seed=0)
        losses = [trainer.train_step(b.split(world)) for b in batches]
        np.testing.assert_allclose(losses, ref_losses, rtol=1e-4,
                                   atol=1e-6)


class TestSelfCheck:
    def test_module_entry_point(self):
        result = subprocess.run([sys.executable, "-m", "repro"],
                                capture_output=True, text=True,
                                timeout=180)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "ALL CHECKS PASSED" in result.stdout

"""Tests for the data ingestion service."""

import numpy as np
import pytest

from repro.data import DataIngestionService, SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig


def make_service(world=4, global_batch=32, prefetch=2, num_tables=3):
    tables = [EmbeddingTableConfig(f"t{i}", 500, 8, avg_pooling=4.0)
              for i in range(num_tables)]
    ds = SyntheticCTRDataset(tables, dense_dim=4, seed=0)
    return DataIngestionService(ds, world_size=world,
                                global_batch_size=global_batch,
                                prefetch_depth=prefetch)


class TestIngestion:
    def test_next_batch_shape(self):
        svc = make_service()
        shards = svc.next_batch()
        assert len(shards) == 4
        assert all(s.batch_size == 8 for s in shards)

    def test_prefetch_queue_stays_full(self):
        svc = make_service(prefetch=3)
        svc.next_batch()
        assert svc.queue_depth == 3

    def test_batches_advance(self):
        svc = make_service()
        b1 = svc.next_batch()
        b2 = svc.next_batch()
        assert not np.array_equal(b1[0].dense, b2[0].dense)

    def test_deterministic_stream(self):
        s1, s2 = make_service(), make_service()
        for _ in range(3):
            b1, b2 = s1.next_batch(), s2.next_batch()
            for r1, r2 in zip(b1, b2):
                np.testing.assert_array_equal(r1.dense, r2.dense)
                np.testing.assert_array_equal(r1.labels, r2.labels)

    def test_combined_format_advantage_recorded(self):
        """Stats exhibit the 2-vs-2T tensor-count gap of Section 4.4."""
        svc = make_service(num_tables=100)
        svc.next_batch()
        assert svc.stats.separate_tensors_per_iter == 2 * 100 + 2
        assert svc.stats.combined_tensors_per_iter == 2 + 2
        assert svc.stats.h2d_seconds_pinned < svc.stats.h2d_seconds_pageable

    def test_frontend_bytes_accumulate(self):
        svc = make_service()
        svc.next_batch()
        before = svc.stats.frontend_bytes
        svc.next_batch()
        assert svc.stats.frontend_bytes > before

    def test_validation(self):
        tables = [EmbeddingTableConfig("t", 100, 8)]
        ds = SyntheticCTRDataset(tables)
        with pytest.raises(ValueError):
            DataIngestionService(ds, world_size=0, global_batch_size=8)
        with pytest.raises(ValueError):
            DataIngestionService(ds, world_size=3, global_batch_size=8)
        with pytest.raises(ValueError):
            DataIngestionService(ds, world_size=2, global_batch_size=8,
                                 prefetch_depth=0)

"""Tests for sharding-plan serialization."""

import json

import numpy as np
import pytest

from repro.embedding import EmbeddingTableConfig
from repro.sharding import (EmbeddingShardingPlanner, PlannerConfig,
                            ShardingScheme, load_plan, plan_from_dict,
                            plan_to_dict, save_plan, shard_table,
                            ShardingPlan)


def make_plan():
    planner = EmbeddingShardingPlanner(PlannerConfig(
        world_size=4, ranks_per_node=4, dp_threshold_rows=100))
    tables = [
        EmbeddingTableConfig("small", 50, 8, avg_pooling=2.0),
        EmbeddingTableConfig("mid", 5000, 16, avg_pooling=5.0),
        EmbeddingTableConfig("wide", 2000, 256, avg_pooling=3.0),
    ]
    return planner.plan(tables)


class TestRoundTrip:
    def test_dict_round_trip(self):
        plan = make_plan()
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.world_size == plan.world_size
        assert set(restored.tables) == set(plan.tables)
        for name in plan.tables:
            a, b = plan.tables[name], restored.tables[name]
            assert a.scheme == b.scheme
            assert [(s.rank, s.row_range, s.col_range) for s in a.shards] \
                == [(s.rank, s.row_range, s.col_range) for s in b.shards]
            assert a.config == b.config

    def test_file_round_trip(self, tmp_path):
        plan = make_plan()
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        restored = load_plan(path)
        assert set(restored.tables) == set(plan.tables)

    def test_json_is_stable(self, tmp_path):
        """Same plan serializes to byte-identical JSON (sorted keys)."""
        plan = make_plan()
        p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        save_plan(plan, p1)
        save_plan(plan, p2)
        assert open(p1).read() == open(p2).read()

    def test_restored_plan_trains(self, tmp_path):
        """A reloaded plan drives the trainer exactly like the original
        (shard placement identity is what checkpoints rely on)."""
        from repro import nn
        from repro.comms import ClusterTopology
        from repro.core import NeoTrainer
        from repro.data import SyntheticCTRDataset
        from repro.embedding import SparseSGD
        from repro.models import DLRMConfig

        tables = (EmbeddingTableConfig("t0", 32, 8, avg_pooling=3.0),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                            top_mlp=(8,))
        plan = ShardingPlan(world_size=2)
        plan.tables["t0"] = shard_table(tables[0],
                                        ShardingScheme.ROW_WISE, [0, 1])
        path = str(tmp_path / "plan.json")
        save_plan(plan, path)
        restored = load_plan(path)

        ds = SyntheticCTRDataset(tables, dense_dim=4)
        batch = ds.batch(8)
        results = []
        for p in (plan, restored):
            trainer = NeoTrainer(
                config, p, ClusterTopology(num_nodes=1, gpus_per_node=2),
                dense_optimizer=lambda ps: nn.SGD(ps, lr=0.1),
                sparse_optimizer=SparseSGD(lr=0.1), seed=0)
            trainer.train_step(batch.split(2))
            results.append(trainer.gather_table("t0"))
        assert np.array_equal(results[0], results[1])


class TestValidationOnLoad:
    def test_bad_version_rejected(self):
        data = plan_to_dict(make_plan())
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            plan_from_dict(data)

    def test_corrupted_coverage_rejected(self):
        data = plan_to_dict(make_plan())
        name = next(iter(data["tables"]))
        data["tables"][name]["shards"] = data["tables"][name]["shards"][:1]
        tp = data["tables"][name]
        if tp["scheme"] in ("row_wise", "column_wise") and \
                len(tp["shards"]) >= 1:
            with pytest.raises(ValueError):
                plan_from_dict(data)

    def test_rank_out_of_world_rejected(self):
        data = plan_to_dict(make_plan())
        data["world_size"] = 1
        with pytest.raises(ValueError):
            plan_from_dict(data)

"""The unified ``RowCache`` API: protocol, shared stats, and factory.

Three cache organizations live in :mod:`repro.cache` — the 32-way
set-associative row cache, the UVM page-cache baseline, and the
frequency-aware chunked hot store — and historically each grew its own
ad-hoc constructor signature and stats counters. This module is the
single contract they all implement:

* :class:`CacheStats` — one stats dataclass shared by every
  implementation (hits/misses/evictions/writebacks plus ``fills``, the
  demand fetches from the backing store, and ``prefetched_rows``, the
  rows staged ahead of use). ``reset_stats()`` is defined once on
  :class:`RowCacheBase`, so no implementation can drift its own partial
  reset again.
* :class:`RowCache` — a :class:`typing.Protocol` naming the six-method
  surface (``read`` / ``write`` / ``flush`` / ``contains`` /
  ``prefetch_rows`` / ``reset_stats`` plus the ``stats`` and
  ``capacity_rows`` attributes). Consumers (``CachedEmbeddingTable``,
  ``serving.export``, the benchmarks) type against this, never against a
  concrete class.
* :func:`make_cache` — the one factory: every cache is built as
  ``make_cache(kind, row_dim=D, capacity_rows=N, **cfg)`` with a
  like-for-like capacity in rows, so policies are swappable at every
  call site. The legacy geometry-first constructor forms (e.g.
  ``SetAssociativeCache(num_sets=...)``) were removed after their
  deprecation window.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Protocol, runtime_checkable

import numpy as np

from .backing import ArrayBackingStore

__all__ = ["CacheStats", "RowCache", "RowCacheBase", "CACHE_KINDS",
           "make_cache"]


@dataclass
class CacheStats:
    """Counters shared by every :class:`RowCache` implementation.

    ``fills`` counts demand fetches from the backing store in the
    cache's native granularity (rows for row caches, pages for the UVM
    baseline); ``prefetched_rows`` counts rows made resident by
    :meth:`RowCache.prefetch_rows` ahead of their first access, which
    never count as misses.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills: int = 0
    prefetched_rows: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)


@runtime_checkable
class RowCache(Protocol):
    """The uniform software-cache surface in front of a backing store.

    Every method takes the backing store explicitly — a cache is a
    placement policy, not an owner of the canonical rows — and all
    implementations are *exact*: a read through the cache is bitwise
    identical to an uncached :meth:`ArrayBackingStore.read_rows`.
    """

    stats: CacheStats

    @property
    def capacity_rows(self) -> int:
        """Rows the fast tier can hold (like-for-like across kinds)."""
        ...

    def read(self, row_ids: np.ndarray,
             backing: ArrayBackingStore) -> np.ndarray:
        """Read rows through the cache; misses fetch from ``backing``."""
        ...

    def write(self, row_ids: np.ndarray, values: np.ndarray,
              backing: ArrayBackingStore) -> None:
        """Write rows through the cache (write-back, write-allocate)."""
        ...

    def flush(self, backing: ArrayBackingStore) -> int:
        """Write back everything dirty; returns units written."""
        ...

    def contains(self, row_id: int) -> bool:
        """Whether ``row_id`` is resident in the fast tier."""
        ...

    def prefetch_rows(self, row_ids: np.ndarray,
                      backing: ArrayBackingStore) -> int:
        """Stage rows ahead of use; returns rows newly made resident."""
        ...

    def reset_stats(self) -> None:
        """Zero the stats counters (capacity and contents untouched)."""
        ...


class RowCacheBase:
    """Shared stats plumbing for :class:`RowCache` implementations.

    Owning ``stats`` construction and :meth:`reset_stats` here is the
    fix for the historical drift where each cache reset a different
    subset of its counters.
    """

    def __init__(self) -> None:
        self.stats = CacheStats()

    def reset_stats(self) -> None:
        self.stats.reset()


def _make_set_associative(row_dim: int, capacity_rows: int, **cfg):
    from .set_associative import SetAssociativeCache
    return SetAssociativeCache(row_dim=row_dim, capacity_rows=capacity_rows,
                               **cfg)


def _make_uvm(row_dim: int, capacity_rows: int, **cfg):
    from .uvm import UVMPageCache
    cfg.setdefault("rows_per_page", min(64, max(1, capacity_rows)))
    return UVMPageCache(capacity_rows=capacity_rows, row_dim=row_dim, **cfg)


def _make_freq_aware(row_dim: int, capacity_rows: int, **cfg):
    from .freq_aware import FreqAwareCache
    return FreqAwareCache(capacity_rows=capacity_rows, row_dim=row_dim,
                          **cfg)


_FACTORIES = {
    "set_associative": _make_set_associative,
    "uvm": _make_uvm,
    "freq_aware": _make_freq_aware,
}

CACHE_KINDS = tuple(sorted(_FACTORIES))


def make_cache(kind: str, *, row_dim: int, capacity_rows: int,
               **cfg) -> RowCache:
    """Build any registered :class:`RowCache` from one normalized spec.

    Parameters
    ----------
    kind:
        One of :data:`CACHE_KINDS` (``"set_associative"``, ``"uvm"``,
        ``"freq_aware"``).
    row_dim:
        Row width ``D``; cached data is float32.
    capacity_rows:
        Fast-tier capacity in rows — the like-for-like budget every kind
        is sized by (implementations may round down to their natural
        granularity: sets x ways, whole pages, whole chunks).
    cfg:
        Kind-specific knobs, e.g. ``ways=``/``policy=`` for
        ``set_associative``, ``rows_per_page=`` for ``uvm``,
        ``chunk_rows=`` for ``freq_aware``.
    """
    if kind not in _FACTORIES:
        raise ValueError(
            f"unknown cache kind {kind!r}; expected one of "
            f"{list(CACHE_KINDS)}")
    if row_dim < 1:
        raise ValueError(f"row_dim must be positive, got {row_dim}")
    if capacity_rows < 1:
        raise ValueError(
            f"capacity_rows must be positive, got {capacity_rows}")
    return _FACTORIES[kind](row_dim=row_dim, capacity_rows=capacity_rows,
                            **cfg)

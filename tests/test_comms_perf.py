"""Tests for the comms latency model, topology, and process group facade."""

import numpy as np
import pytest

from repro.comms import (PROTOTYPE_TOPOLOGY, ZION_TOPOLOGY, AlltoAllKind,
                         ClusterTopology, QuantizedCommsConfig,
                         SimProcessGroup)
from repro.comms import perf_model as pm


class TestTopology:
    def test_world_size(self):
        topo = PROTOTYPE_TOPOLOGY(num_nodes=16)
        assert topo.world_size == 128

    def test_achievable_scaleout(self):
        """Paper: 12.5 GB/s peak, 10.5 GB/s achievable on V100 RoCE."""
        topo = PROTOTYPE_TOPOLOGY()
        assert topo.achievable_scaleout_bw == pytest.approx(10.5e9, rel=0.01)

    def test_zion_is_worse(self):
        """Zion's host-mediated TCP networking underperforms ZionEX RDMA."""
        zion = ZION_TOPOLOGY()
        zionex = PROTOTYPE_TOPOLOGY()
        assert zion.achievable_scaleout_bw < zionex.achievable_scaleout_bw / 2
        assert not zion.rdma and zionex.rdma

    def test_invalid(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_nodes=0)


class TestAlltoallModel:
    def test_paper_calibration_7gbps(self):
        """Fig 20 / Sec 5.1: 256 MB AlltoAll at 128 GPUs -> ~7 GB/s."""
        topo = PROTOTYPE_TOPOLOGY(num_nodes=16)
        bw = pm.achieved_all_to_all_bw(256e6, topo)
        assert bw == pytest.approx(7e9, rel=0.15)

    def test_bandwidth_rises_with_message_size(self):
        """Small messages are alpha-bound: the Fig 20 curve shape."""
        topo = PROTOTYPE_TOPOLOGY(num_nodes=16)
        sizes = [2 ** k for k in range(10, 28, 2)]
        bws = [pm.achieved_all_to_all_bw(s, topo) for s in sizes]
        assert all(b1 <= b2 * 1.001 for b1, b2 in zip(bws, bws[1:]))
        assert bws[0] < bws[-1] / 100

    def test_single_node_uses_nvlink(self):
        """Intra-node AlltoAll is NVLink-speed, far faster than RoCE."""
        one = ClusterTopology(num_nodes=1)
        sixteen = PROTOTYPE_TOPOLOGY(num_nodes=16)
        assert pm.all_to_all_time(64e6, one) < pm.all_to_all_time(64e6, sixteen) / 5

    def test_single_gpu_is_free(self):
        topo = ClusterTopology(num_nodes=1, gpus_per_node=1)
        assert pm.all_to_all_time(1e6, topo) == 0.0

    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError):
            pm.all_to_all_time(-1, PROTOTYPE_TOPOLOGY())


class TestAllreduceModel:
    def test_paper_calibration_60gbps(self):
        """Sec 5.1: 256 MB AllReduce at 128 GPUs -> ~60 GB/s bus bandwidth."""
        topo = PROTOTYPE_TOPOLOGY(num_nodes=16)
        bw = pm.achieved_all_reduce_bw(256e6, topo)
        assert bw == pytest.approx(60e9, rel=0.15)

    def test_allreduce_faster_than_alltoall(self):
        """AllReduce rides NVLink for intra-node phases (Sec 5.1)."""
        topo = PROTOTYPE_TOPOLOGY(num_nodes=16)
        ar = pm.achieved_all_reduce_bw(256e6, topo)
        a2a = pm.achieved_all_to_all_bw(256e6, topo)
        assert ar > 5 * a2a

    def test_scaling_with_nodes(self):
        """More nodes -> longer AllReduce for the same buffer."""
        t2 = pm.all_reduce_time(64e6, PROTOTYPE_TOPOLOGY(num_nodes=2))
        t16 = pm.all_reduce_time(64e6, PROTOTYPE_TOPOLOGY(num_nodes=16))
        assert t16 > t2

    def test_reduce_scatter_half_of_allreduce(self):
        topo = PROTOTYPE_TOPOLOGY(num_nodes=4)
        rs = pm.reduce_scatter_time(128e6, topo)
        ar = pm.all_reduce_time(128e6, topo)
        assert rs == pytest.approx(ar / 2, rel=0.05)

    def test_zion_much_slower(self):
        """The Sec 3.1 scaling argument: Zion networking bottlenecks."""
        t_zionex = pm.all_reduce_time(256e6, PROTOTYPE_TOPOLOGY(num_nodes=16))
        t_zion = pm.all_reduce_time(256e6, ZION_TOPOLOGY(num_nodes=16))
        assert t_zion > 2 * t_zionex


class TestSimProcessGroup:
    def make_pg(self, nodes=1, gpus=4, config=None):
        topo = ClusterTopology(num_nodes=nodes, gpus_per_node=gpus)
        return SimProcessGroup(topo, comms_config=config)

    def test_all_reduce_records_log(self):
        pg = self.make_pg()
        xs = [np.ones(8, dtype=np.float32) for _ in range(4)]
        out = pg.all_reduce(xs)
        np.testing.assert_array_equal(out[0], np.full(8, 4.0))
        assert pg.log.calls["all_reduce"] == 1
        assert pg.log.wire_bytes["all_reduce"] == 8 * 4 * 4
        assert pg.log.total_seconds > 0

    def test_wrong_world_size_raises(self):
        pg = self.make_pg()
        with pytest.raises(ValueError):
            pg.all_reduce([np.ones(2)] * 3)

    def test_quantized_alltoall_halves_wire_bytes(self):
        cfg = QuantizedCommsConfig.paper_recipe()
        pg_fp32 = self.make_pg()
        pg_q = self.make_pg(config=cfg)
        inputs = [[np.ones(16, dtype=np.float32) for _ in range(4)]
                  for _ in range(4)]
        pg_fp32.all_to_all(inputs, kind=AlltoAllKind.FORWARD)
        pg_q.all_to_all(inputs, kind=AlltoAllKind.FORWARD)
        key = "all_to_all/forward_alltoall"
        assert pg_q.log.wire_bytes[key] == pg_fp32.log.wire_bytes[key] // 2
        assert pg_q.log.modeled_seconds[key] <= \
            pg_fp32.log.modeled_seconds[key]

    def test_quantized_alltoall_rounds_payload(self):
        cfg = QuantizedCommsConfig.paper_recipe()
        pg = self.make_pg(config=cfg)
        value = 1.0 + 2 ** -12  # not representable in fp16
        inputs = [[np.array([value], dtype=np.float32) for _ in range(4)]
                  for _ in range(4)]
        out = pg.all_to_all(inputs, kind=AlltoAllKind.FORWARD)
        assert out[0][0][0] == np.float32(1.0)

    def test_index_alltoall_not_quantized(self):
        cfg = QuantizedCommsConfig.paper_recipe()
        pg = self.make_pg(config=cfg)
        inputs = [[np.array([123456789], dtype=np.int64) for _ in range(4)]
                  for _ in range(4)]
        out = pg.all_to_all(inputs, kind=AlltoAllKind.INDEX)
        assert out[0][0][0] == 123456789

    def test_unknown_kind_raises(self):
        pg = self.make_pg()
        inputs = [[np.zeros(1) for _ in range(4)] for _ in range(4)]
        with pytest.raises(ValueError):
            pg.all_to_all(inputs, "sideways")

    def test_reduce_scatter_and_gather(self):
        pg = self.make_pg()
        chunked = [[np.full(2, r, dtype=np.float32) for _ in range(4)]
                   for r in range(4)]
        rs = pg.reduce_scatter(chunked)
        np.testing.assert_array_equal(rs[0], np.full(2, 0 + 1 + 2 + 3))
        ag = pg.all_gather(rs)
        assert len(ag[0]) == 4

    def test_reset_log(self):
        pg = self.make_pg()
        pg.all_reduce([np.ones(2, dtype=np.float32)] * 4)
        pg.reset_log()
        assert pg.log.total_bytes == 0


class TestQuantizedCommsConfig:
    def test_paper_recipe(self):
        cfg = QuantizedCommsConfig.paper_recipe()
        assert cfg.forward_alltoall == "fp16"
        assert cfg.backward_alltoall == "bf16"
        assert cfg.allreduce == "fp32"

    def test_volume_factor(self):
        cfg = QuantizedCommsConfig.paper_recipe()
        assert cfg.volume_factor("forward_alltoall") == 0.5
        assert cfg.volume_factor("allreduce") == 1.0

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            QuantizedCommsConfig(forward_alltoall="fp8")

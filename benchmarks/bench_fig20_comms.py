"""Fig. 20: achieved AlltoAll and AllReduce bandwidth at 128 GPUs over
power-of-two message sizes (the PARAM comms benchmark, "bench mode").

Calibration anchors from the paper: AlltoAll saturates at ~7 GB/s
(scale-out limited: 12.5 GB/s line rate, 10.5 achievable); AllReduce
reaches ~60 GB/s bus bandwidth thanks to NVLink-assisted hierarchy.

Also exercises the *functional* collectives at small scale ("replay
mode"), checking the data path the latency model describes.
"""

import numpy as np
import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.comms import collectives as C
from repro.comms.perf_model import (achieved_all_reduce_bw,
                                    achieved_all_to_all_bw)

SIZES = [2 ** k for k in range(16, 29, 2)]  # 64 KB .. 256 MB


def bandwidth_table():
    topo = PROTOTYPE_TOPOLOGY(16)
    return [(size,
             round(achieved_all_to_all_bw(size, topo) / 1e9, 2),
             round(achieved_all_reduce_bw(size, topo) / 1e9, 2))
            for size in SIZES]


def test_fig20_bandwidth_curves(benchmark, report):
    rows = benchmark(bandwidth_table)
    report("Fig 20: achieved bandwidth at 128 GPUs (GB/s)",
           ["message bytes", "alltoall", "allreduce"], rows)
    a2a = [r[1] for r in rows]
    ar = [r[2] for r in rows]
    # monotone rise with message size (latency-bound -> bandwidth-bound)
    assert all(x <= y * 1.001 for x, y in zip(a2a, a2a[1:]))
    assert all(x <= y * 1.001 for x, y in zip(ar, ar[1:]))
    # saturation points match the paper
    assert a2a[-1] == pytest.approx(7.0, rel=0.15)
    assert ar[-1] == pytest.approx(60.0, rel=0.15)
    # allreduce rides NVLink: higher than alltoall at every size >= 1 MB
    for (size, a, r) in rows:
        if size >= 2 ** 20:
            assert r > a


def test_replay_mode_functional_collectives(benchmark):
    """PARAM "replay mode": run a real DLRM-like collective sequence
    (index alltoall, pooled alltoall, gradient allreduce) on 8 simulated
    ranks and time the data path."""
    world = 8
    rng = np.random.default_rng(0)
    pooled = [[rng.normal(size=(64, 32)).astype(np.float32)
               for _ in range(world)] for _ in range(world)]
    grads = [rng.normal(size=(512,)).astype(np.float32)
             for _ in range(world)]
    ids = [[rng.integers(0, 1000, size=128) for _ in range(world)]
           for _ in range(world)]

    def replay():
        C.all_to_all(ids)
        out = C.all_to_all(pooled)
        red = C.all_reduce(grads)
        return out, red

    out, red = benchmark(replay)
    np.testing.assert_allclose(red[0], sum(grads), rtol=1e-5)
    assert out[0][3].shape == (64, 32)

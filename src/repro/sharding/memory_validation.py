"""Per-rank memory validation for sharding plans (paper Section 5.3.2).

The sharder's placement freedom is bounded by each GPU's usable HBM
"after discounting for memory reserved by PyTorch framework and NCCL".
This module checks a plan against that budget — weights plus optimizer
state plus a framework reserve — and reports the overflowing ranks with
enough detail to act on (which tables, how much over).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import lowp
from ..embedding.optim import optimizer_state_bytes
from .schemes import ShardingPlan

__all__ = ["RankMemoryReport", "plan_memory_report", "validate_plan_memory"]


@dataclass(frozen=True)
class RankMemoryReport:
    """Memory demand of one rank under a plan."""

    rank: int
    weight_bytes: int
    optimizer_bytes: int
    num_shards: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.optimizer_bytes


def plan_memory_report(plan: ShardingPlan, precision: str = "fp32",
                       optimizer: str = "rowwise_adagrad"
                       ) -> List[RankMemoryReport]:
    """Weights + optimizer state per rank.

    Optimizer state is computed per *shard* (a row-wise AdaGrad moment is
    one scalar per shard row — including the Sec 4.2.3 caveat that
    column-wise shards each carry their own row moments).
    """
    bytes_per_elem = lowp.bytes_per_element(precision)
    weights: Dict[int, int] = {r: 0 for r in range(plan.world_size)}
    states: Dict[int, int] = {r: 0 for r in range(plan.world_size)}
    counts: Dict[int, int] = {r: 0 for r in range(plan.world_size)}
    for table_plan in plan.tables.values():
        for shard in table_plan.shards:
            weights[shard.rank] += shard.num_parameters * bytes_per_elem
            states[shard.rank] += optimizer_state_bytes(
                optimizer, shard.num_rows, shard.num_cols)
            counts[shard.rank] += 1
    return [RankMemoryReport(rank=r, weight_bytes=weights[r],
                             optimizer_bytes=states[r],
                             num_shards=counts[r])
            for r in range(plan.world_size)]


def validate_plan_memory(plan: ShardingPlan, device_memory_bytes: float,
                         precision: str = "fp32",
                         optimizer: str = "rowwise_adagrad",
                         framework_reserve_bytes: float = 4e9) -> None:
    """Raise ``ValueError`` naming every rank whose demand exceeds the
    usable budget (device memory minus the framework/NCCL reserve)."""
    if device_memory_bytes <= framework_reserve_bytes:
        raise ValueError(
            f"device memory {device_memory_bytes:.3g} B does not even "
            f"cover the framework reserve {framework_reserve_bytes:.3g} B")
    budget = device_memory_bytes - framework_reserve_bytes
    offenders = []
    for report in plan_memory_report(plan, precision, optimizer):
        if report.total_bytes > budget:
            offenders.append(
                f"rank {report.rank}: {report.total_bytes / 1e9:.1f} GB "
                f"({report.num_shards} shards) > budget "
                f"{budget / 1e9:.1f} GB")
    if offenders:
        raise ValueError(
            "plan exceeds per-rank memory budget:\n  "
            + "\n  ".join(offenders))

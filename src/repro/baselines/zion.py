"""Zion hybrid CPU+GPU training cost model (paper Section 3.1).

The original Zion node offloads MLPs to its 8 GPUs while embeddings stay
in CPU DRAM. Its structural problems, each modelled here:

* pooled embeddings cross PCIe to the GPUs every iteration (the
  CPU<->GPU traffic overhead);
* embedding lookups run at CPU DRAM bandwidth, not HBM;
* NICs hang off the CPUs, so gradient synchronization is host-mediated
  TCP on the shared datacenter network — :func:`repro.comms.ZION_TOPOLOGY`
  — which is what makes Zion "not able to scale well".

The headline reproduction is :func:`zion_vs_zionex_scaling`: Zion's
multi-node scaling collapses while ZionEX keeps climbing (the motivation
for the dedicated RoCE fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..comms import ZION_TOPOLOGY
from ..comms import perf_model as cpm
from ..models.zoo import ModelSpec
from ..perf.devices import CPU_SKYLAKE, V100, DeviceSpec
from ..perf.gemm import mlp_time

__all__ = ["ZionSetup", "zion_iteration_time", "zion_qps",
           "zion_vs_zionex_scaling"]

_PCIE_BW = 12e9  # bytes/s per GPU, host to device


@dataclass(frozen=True)
class ZionSetup:
    """One Zion training configuration."""

    spec: ModelSpec
    num_nodes: int = 1
    gpus_per_node: int = 8
    global_batch: int = 65536
    gpu: DeviceSpec = V100
    cpu: DeviceSpec = CPU_SKYLAKE

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        world = self.num_nodes * self.gpus_per_node
        if self.global_batch % world:
            raise ValueError("global batch must divide evenly")

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node


def zion_iteration_time(setup: ZionSetup) -> float:
    """Per-iteration latency of hybrid CPU+GPU training on Zion."""
    spec = setup.spec
    w = setup.world_size
    b_loc = setup.global_batch // w
    sizes = (spec.dense_dim,) + spec.mlp_layer_sizes
    t_mlp = mlp_time(b_loc, sizes, setup.gpu) \
        + mlp_time(b_loc, sizes, setup.gpu, backward=True)
    # embeddings on CPU DRAM: each node handles its share of the batch
    node_batch = b_loc * setup.gpus_per_node
    total_l = sum(t.avg_pooling for t in spec.tables)
    emb_bytes = 3 * node_batch * total_l * spec.avg_embedding_dim * 4
    t_emb = emb_bytes / setup.cpu.hbm_achievable_bw
    # pooled vectors + gradients over PCIe, per GPU
    sum_d = sum(t.embedding_dim for t in spec.tables)
    pcie_bytes = 2 * b_loc * sum_d * 4
    t_pcie = pcie_bytes / _PCIE_BW
    # multi-node: both the pooled-embedding AlltoAll and the gradient
    # AllReduce go through the host TCP NICs (no GPUDirect), with CPU
    # intervention on the shared datacenter network
    t_sync = 0.0
    if setup.num_nodes > 1:
        topo = replace(ZION_TOPOLOGY(setup.num_nodes),
                       gpus_per_node=setup.gpus_per_node)
        t_sync = cpm.all_reduce_time(spec.num_mlp_parameters * 4, topo) \
            + 2 * cpm.all_to_all_time(b_loc * sum_d * 4, topo)
    # hybrid pipelining hides some CPU work under GPU compute, but the
    # PCIe hop and host-mediated sync stay serialized
    return max(t_mlp, t_emb) + t_pcie + t_sync


def zion_qps(setup: ZionSetup) -> float:
    """Training throughput of the Zion configuration, samples/second."""
    return setup.global_batch / zion_iteration_time(setup)


def zion_vs_zionex_scaling(spec: ModelSpec,
                           node_counts: List[int],
                           per_gpu_batch: int = 512) -> Dict[str, Dict[int, float]]:
    """Weak-scaling comparison (Section 3.1's motivation).

    Returns QPS per node count for both platforms with fixed per-GPU
    batch. Zion flattens once host-NIC sync dominates; ZionEX keeps
    scaling on the dedicated RoCE fabric.
    """
    from ..comms import PROTOTYPE_TOPOLOGY
    from ..perf.iteration import TrainingSetup, qps as zionex_qps

    out: Dict[str, Dict[int, float]] = {"zion": {}, "zionex": {}}
    for n in node_counts:
        world = n * 8
        batch = per_gpu_batch * world
        out["zion"][n] = zion_qps(ZionSetup(
            spec=spec, num_nodes=n, global_batch=batch))
        out["zionex"][n] = zionex_qps(TrainingSetup(
            spec=spec, topology=PROTOTYPE_TOPOLOGY(n), global_batch=batch,
            load_imbalance=1.1))
    return out

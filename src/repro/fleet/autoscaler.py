"""SLO-driven fleet autoscaling with hysteresis, cooldown and warm-up.

The control loop every serving platform runs: watch the tail latency of
a trailing window, add a replica when the window's p99 crowds the SLO
(or admission control starts shedding — the overload signal p99 over
*completed* requests hides), drop one when the fleet is so cold the
p99 sits far below it. Three standard stabilizers keep the loop from
thrashing:

* **hysteresis** — the scale-up threshold (``up_p99_frac * slo``) sits
  well above the scale-down threshold (``down_p99_frac * slo``), so a
  fleet bouncing around one operating point takes no action;
* **cooldown** — after any action the controller holds off for
  ``cooldown_s`` so the previous action's effect is *in* the window it
  judges next;
* **warm-up** — a new replica is billed from the moment it is
  requested but serves only after ``warmup_s``: the price of shipping
  the frozen artifact to a fresh node. By default that cost is derived
  from the export path itself — ``ServableModel.storage_bytes()``
  pushed over the platform's host link — so a bigger or lower-precision
  model literally changes how fast the fleet can react.

The day simulation (:func:`run_autoscaled_day`) is windowed: the
diurnal trace is partitioned into ``window_s`` slices, each served by
the currently-active replicas, and scale decisions fire on window
boundaries. Replica-hours are billed per window, which is exact because
every provision/deprovision lands on a boundary. A static
peak-provisioned fleet (:func:`smallest_static_fleet`) is the baseline
the autoscaler must beat on replica-hours while holding the same SLO.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..perf.platform import ZIONEX_PLATFORM, PlatformSpec
from ..serving.batcher import InferenceRequest
from ..serving.export import ServableModel
from ..serving.loadgen import LoadReport
from .fleet import ServingFleet
from .report import FleetDayReport, ScaleEvent, WindowRecord

__all__ = ["AutoscalerConfig", "Autoscaler", "replica_warmup_s",
           "run_autoscaled_day", "run_static_day", "smallest_static_fleet"]


def replica_warmup_s(model: ServableModel,
                     platform: PlatformSpec = ZIONEX_PLATFORM,
                     overhead_s: float = 0.05) -> float:
    """Seconds to bring a fresh replica online: fixed provision overhead
    plus the frozen artifact crossing the host link into device memory.

    This is the freeze/export path pricing the autoscaler's reaction
    time: ``storage_bytes()`` already accounts for the storage precision
    (int8 artifacts warm up ~4x faster than fp32 ones).
    """
    if overhead_s < 0:
        raise ValueError("overhead_s must be >= 0")
    return overhead_s + model.storage_bytes() / platform.dram_link_bw_per_node


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop knobs (see module docstring for the semantics)."""

    slo_s: float
    window_s: float
    min_replicas: int = 1
    max_replicas: int = 8
    up_p99_frac: float = 0.9
    down_p99_frac: float = 0.45
    up_shed_frac: float = 0.0
    cooldown_s: float = 0.0
    warmup_s: Optional[float] = None   # None -> price from the artifact
    initial_replicas: Optional[int] = None   # None -> min_replicas

    def __post_init__(self) -> None:
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not 0 < self.down_p99_frac < self.up_p99_frac:
            raise ValueError("need 0 < down_p99_frac < up_p99_frac "
                             "(the hysteresis band)")
        if self.up_shed_frac < 0:
            raise ValueError("up_shed_frac must be >= 0")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.initial_replicas is not None and \
                not self.min_replicas <= self.initial_replicas \
                <= self.max_replicas:
            raise ValueError("initial_replicas outside [min, max]")


class Autoscaler:
    """The windowed p99-vs-SLO decision rule, with hysteresis+cooldown.

    :meth:`decide` maps one window's observation to a replica delta
    (-1, 0 or +1); the caller applies it. Pure bookkeeping — no clock,
    no randomness — so the control trajectory is deterministic.
    """

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self._last_action_s = -float("inf")

    def decide(self, now_s: float, provisioned: int, p99_s: float,
               shed_fraction: float) -> int:
        cfg = self.config
        if now_s - self._last_action_s < cfg.cooldown_s:
            return 0
        overloaded = p99_s > cfg.up_p99_frac * cfg.slo_s \
            or shed_fraction > cfg.up_shed_frac
        if overloaded and provisioned < cfg.max_replicas:
            self._last_action_s = now_s
            return 1
        idle = p99_s < cfg.down_p99_frac * cfg.slo_s \
            and shed_fraction == 0.0
        if idle and provisioned > cfg.min_replicas:
            self._last_action_s = now_s
            return -1
        return 0


def _run_windowed_day(fleet: ServingFleet,
                      requests: Sequence[InferenceRequest],
                      config: AutoscalerConfig,
                      scaler: Optional[Autoscaler]) -> FleetDayReport:
    """Shared windowed loop: ``scaler=None`` keeps the initial fleet
    static, otherwise applies its decisions on window boundaries."""
    if config.max_replicas > fleet.num_replicas:
        raise ValueError(
            f"config.max_replicas={config.max_replicas} exceeds the "
            f"fleet's {fleet.num_replicas} replicas")
    pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    if not pending:
        raise ValueError("need at least one request")
    horizon = pending[-1].arrival_s
    num_windows = max(1, int(horizon // config.window_s) + 1)
    warmup = replica_warmup_s(fleet.model) if config.warmup_s is None \
        else config.warmup_s
    start = config.initial_replicas if config.initial_replicas is not None \
        else config.min_replicas
    # per-replica lifecycle: bill_from/active_from None = deprovisioned.
    # The initial set is warm at t=0 (the day starts with a running
    # fleet, as a real one would).
    bill_from: List[Optional[float]] = [
        0.0 if i < start else None for i in range(fleet.num_replicas)]
    active_from: List[Optional[float]] = list(bill_from)
    windows: List[WindowRecord] = []
    events: List[ScaleEvent] = []
    merged_inputs: List[LoadReport] = []
    replica_seconds = 0.0
    i = 0
    for w in range(num_windows):
        t0 = w * config.window_s
        t1 = t0 + config.window_s
        active = [r for r in range(fleet.num_replicas)
                  if active_from[r] is not None and active_from[r] <= t0]
        billed = sum(1 for b in bill_from if b is not None)
        replica_seconds += billed * config.window_s
        window_reqs = []
        while i < len(pending) and pending[i].arrival_s < t1:
            window_reqs.append(pending[i])
            i += 1
        if window_reqs:
            result = fleet.serve(window_reqs, config.slo_s,
                                 offered_qps=len(window_reqs)
                                 / config.window_s,
                                 active=active)
            merged_inputs.append(result.merged)
            rep = result.merged
            record = WindowRecord(
                index=w, start_s=t0, num_offered=rep.num_offered,
                num_completed=rep.num_completed, num_shed=rep.num_shed,
                p99_s=rep.p99_s, shed_fraction=rep.shed_fraction,
                active_replicas=len(active), billed_replicas=billed)
        else:
            record = WindowRecord(index=w, start_s=t0, num_offered=0,
                                  num_completed=0, num_shed=0, p99_s=0.0,
                                  shed_fraction=0.0,
                                  active_replicas=len(active),
                                  billed_replicas=billed)
        windows.append(record)
        if scaler is None:
            continue
        delta = scaler.decide(t1, billed, record.p99_s,
                              record.shed_fraction)
        if delta > 0:
            # provision the lowest-index free slot; it serves from the
            # first window boundary past its warm-up
            free = [r for r in range(fleet.num_replicas)
                    if bill_from[r] is None]
            if free:
                r = free[0]
                bill_from[r] = t1
                active_from[r] = t1 + warmup
                events.append(ScaleEvent(t_s=t1, delta=1,
                                         replicas_after=billed + 1,
                                         reason="p99" if record.p99_s
                                         > config.up_p99_frac * config.slo_s
                                         else "shed"))
        elif delta < 0:
            live = [r for r in range(fleet.num_replicas)
                    if bill_from[r] is not None]
            r = live[-1]
            bill_from[r] = None
            active_from[r] = None
            events.append(ScaleEvent(t_s=t1, delta=-1,
                                     replicas_after=billed - 1,
                                     reason="idle"))
    merged = LoadReport.merge(merged_inputs)
    # per-window offered rates sum to nonsense at day level; relabel
    # with the day-average offered rate over the actual horizon
    merged = replace(merged, offered_qps=len(pending)
                     / (num_windows * config.window_s))
    return FleetDayReport(windows=windows, events=events, merged=merged,
                          replica_seconds=replica_seconds,
                          slo_s=config.slo_s, warmup_s=warmup)


def run_autoscaled_day(fleet: ServingFleet,
                       requests: Sequence[InferenceRequest],
                       config: AutoscalerConfig) -> FleetDayReport:
    """Serve a (diurnal) trace under the autoscaler's control."""
    return _run_windowed_day(fleet, requests, config, Autoscaler(config))


def run_static_day(fleet: ServingFleet,
                   requests: Sequence[InferenceRequest],
                   config: AutoscalerConfig,
                   num_replicas: int) -> FleetDayReport:
    """Serve the same trace with a fixed ``num_replicas`` fleet (the
    provisioning baseline: what you pay without elasticity)."""
    static = replace(config, min_replicas=num_replicas,
                     max_replicas=max(num_replicas, config.max_replicas),
                     initial_replicas=num_replicas)
    return _run_windowed_day(fleet, requests, static, None)


def smallest_static_fleet(fleet: ServingFleet,
                          requests: Sequence[InferenceRequest],
                          config: AutoscalerConfig,
                          min_attainment: float = 0.99
                          ) -> FleetDayReport:
    """The cheapest *static* fleet that holds the SLO all day — i.e.
    peak-provisioned. Scans replica counts upward until day-level p99
    fits the SLO with at least ``min_attainment`` of offered requests
    inside it; returns the largest candidate's report if none qualifies
    (an honest "even N_max couldn't" answer for the comparison)."""
    report = None
    for n in range(1, fleet.num_replicas + 1):
        report = run_static_day(fleet, requests, config, n)
        if report.merged.p99_s <= config.slo_s and \
                report.merged.slo_attainment >= min_attainment:
            return report
    return report

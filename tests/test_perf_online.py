"""Tests for online-training cluster sizing with hierarchical memory."""

import numpy as np
import pytest

from repro.models import full_spec
from repro.perf import (hierarchy_bw_fraction, min_nodes_for, sizing_sweep)


class TestHierarchyBwFraction:
    def test_all_hbm_is_one(self):
        assert hierarchy_bw_fraction(1.0) == pytest.approx(1.0)

    def test_monotone_in_residency(self):
        fracs = [hierarchy_bw_fraction(f) for f in (0.1, 0.5, 0.9, 1.0)]
        assert all(a < b for a, b in zip(fracs, fracs[1:]))

    def test_cache_softens_the_cliff(self):
        """A better cache hit rate recovers bandwidth at low residency."""
        cold = hierarchy_bw_fraction(0.2, cache_hit_boost=0.0)
        warm = hierarchy_bw_fraction(0.2, cache_hit_boost=0.9)
        assert warm > 3 * cold

    def test_validation(self):
        with pytest.raises(ValueError):
            hierarchy_bw_fraction(1.5)
        with pytest.raises(ValueError):
            hierarchy_bw_fraction(0.5, cache_hit_boost=1.0)


class TestSizing:
    def test_f1_needs_many_nodes_for_capacity(self):
        """F1 (24 TB in fp16+rowwise) cannot fit on 8 nodes but fits on
        16 — the capacity wall is independent of throughput."""
        sweep = sizing_sweep(full_spec("F1"), target_qps=1e3,
                             node_counts=[8, 16])
        by_nodes = {s.nodes: s for s in sweep}
        assert not by_nodes[8].fits
        assert by_nodes[16].fits

    def test_a1_fits_one_node(self):
        """A1 in fp16 (~190 GB) fits a single node's HBM+DRAM — the
        online-training scenario of Section 1."""
        sweep = sizing_sweep(full_spec("A1"), target_qps=1e3,
                             node_counts=[1])
        assert sweep[0].fits
        assert sweep[0].achieved_qps > 0

    def test_min_nodes_monotone_in_target(self):
        """A higher throughput target never needs fewer nodes."""
        spec = full_spec("A1")
        low = min_nodes_for(spec, target_qps=50e3)
        high = min_nodes_for(spec, target_qps=800e3)
        assert low is not None and high is not None
        assert high.nodes >= low.nodes

    def test_min_nodes_result_is_minimal(self):
        spec = full_spec("A1")
        result = min_nodes_for(spec, target_qps=500e3)
        assert result is not None and result.meets_target
        if result.nodes > 1:
            below = sizing_sweep(spec, 500e3, [result.nodes - 1])[0]
            assert not below.meets_target

    def test_unreachable_target_returns_none(self):
        assert min_nodes_for(full_spec("A1"), target_qps=1e12,
                             max_nodes=2) is None

    def test_hbm_fraction_grows_with_nodes(self):
        sweep = sizing_sweep(full_spec("F1"), target_qps=1e3,
                             node_counts=[16, 32, 64])
        fracs = [s.hbm_fraction for s in sweep]
        assert all(a < b for a, b in zip(fracs, fracs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            min_nodes_for(full_spec("A1"), target_qps=0)

"""Table 4: achieved training throughput (QPS) for A1/A2/A3/F1.

Regenerates every cell of Table 4 with the end-to-end throughput model,
using load imbalance measured from a real sharding plan produced by the
planner (not a hand-tuned fudge), plus the paper's F1 recipe (row-wise
sharding, FP16 embeddings, UVM-backed memory hierarchy).
"""

import pytest

from repro.baselines import ps_throughput_qps
from repro.comms import PROTOTYPE_TOPOLOGY, QuantizedCommsConfig
from repro.models import full_spec
from repro.perf import TrainingSetup, plan_imbalance, qps
from repro.sharding import (CostModelParams, EmbeddingShardingPlanner,
                            PlannerConfig, plan_cost_per_rank)

PAPER_QPS = {
    ("A1", 16): 273e3,
    ("A1", 128): 1047e3,
    ("A2", 128): 622e3,
    ("A3", 128): 360e3,
    ("F1", 128): 970e3,
}


def measured_imbalance(spec, world, global_batch=65536):
    params = CostModelParams(global_batch=global_batch, world_size=world)
    planner = EmbeddingShardingPlanner(
        PlannerConfig(world_size=world, ranks_per_node=8,
                      partitioner="ldm"), cost_params=params)
    plan = planner.plan(list(spec.tables))
    return plan_imbalance(plan_cost_per_rank(plan, params))


def table4_rows():
    rows = []
    for (name, gpus), paper in PAPER_QPS.items():
        spec = full_spec(name)
        nodes = gpus // 8
        if name == "F1":
            setup = TrainingSetup(
                spec=spec, topology=PROTOTYPE_TOPOLOGY(nodes),
                global_batch=65536, load_imbalance=1.05,
                row_wise_dim_fraction=1.0,
                memory_hierarchy_bw_fraction=0.25,
                embedding_precision="fp16")
        else:
            imb = measured_imbalance(spec, gpus)
            setup = TrainingSetup(
                spec=spec, topology=PROTOTYPE_TOPOLOGY(nodes),
                global_batch=65536, load_imbalance=imb,
                comms=QuantizedCommsConfig.paper_recipe()
                if name in ("A2", "A3") else QuantizedCommsConfig())
        model_qps = qps(setup)
        rows.append((name, gpus, f"{paper / 1e3:.0f}K",
                     f"{model_qps / 1e3:.0f}K",
                     f"{model_qps / paper:.2f}x"))
    return rows


def test_table4_throughput(benchmark, report):
    rows = benchmark(table4_rows)
    report("Table 4: training throughput (paper vs model)",
           ["model", "gpus", "paper QPS", "model QPS", "ratio"], rows)
    by_key = {(r[0], r[1]): r for r in rows}
    # shape assertions: ordering at 128 GPUs matches the paper
    def model_qps_of(name):
        return float(by_key[(name, 128)][3].rstrip("K"))
    assert model_qps_of("A1") > model_qps_of("A2") > model_qps_of("A3")
    assert model_qps_of("F1") > model_qps_of("A2")
    # every cell within ~4x of the paper (simulator, not testbed)
    for r in rows:
        ratio = float(r[4].rstrip("x"))
        assert 0.25 < ratio < 4.0, r


def test_a1_scaling_16_to_128(benchmark, report):
    """A1 speeds up substantially but sublinearly from 16 to 128 GPUs."""
    def run():
        spec = full_spec("A1")
        out = {}
        for gpus in (16, 128):
            imb = measured_imbalance(spec, gpus)
            setup = TrainingSetup(spec=spec,
                                  topology=PROTOTYPE_TOPOLOGY(gpus // 8),
                                  global_batch=65536, load_imbalance=imb)
            out[gpus] = qps(setup)
        return out

    out = benchmark(run)
    speedup = out[128] / out[16]
    paper_speedup = 1047 / 273
    report("A1 16->128 GPU speedup",
           ["", "paper", "model"],
           [("speedup", f"{paper_speedup:.2f}x", f"{speedup:.2f}x")])
    assert 1.5 < speedup < 8.0  # sublinear (8x resources), clearly > 1


def test_gpu_vs_cpu_baseline(benchmark, report):
    """Table 4 narrative: A1 on 16 GPUs ~3x the CPU PS system, and the
    40x time-to-train claim combines scale-out (128 GPUs) over the PS."""
    def run():
        spec = full_spec("A1")
        cpu = ps_throughput_qps(spec, num_trainers=16, num_ps=16)
        imb16 = measured_imbalance(spec, 16)
        gpu16 = qps(TrainingSetup(spec=spec,
                                  topology=PROTOTYPE_TOPOLOGY(2),
                                  global_batch=65536,
                                  load_imbalance=imb16))
        imb128 = measured_imbalance(spec, 128)
        gpu128 = qps(TrainingSetup(spec=spec,
                                   topology=PROTOTYPE_TOPOLOGY(16),
                                   global_batch=65536,
                                   load_imbalance=imb128))
        return cpu, gpu16, gpu128

    cpu, gpu16, gpu128 = benchmark(run)
    report("CPU PS baseline vs ZionEX (model A1)",
           ["system", "QPS", "speedup vs CPU"],
           [("CPU PS (16+16)", f"{cpu / 1e3:.0f}K", "1.0x"),
            ("ZionEX 16 GPUs", f"{gpu16 / 1e3:.0f}K",
             f"{gpu16 / cpu:.1f}x"),
            ("ZionEX 128 GPUs", f"{gpu128 / 1e3:.0f}K",
             f"{gpu128 / cpu:.1f}x")])
    assert gpu16 > 1.5 * cpu          # paper: 3x
    assert gpu128 > 10 * cpu          # paper: ~11.5x QPS (40x wall time
    #                                   combines throughput + batch/epochs)

"""Cost model for embedding shard placement (paper Section 3.0.1).

For a table of shape ``(H, D)`` with average pooling size ``L`` under
global batch ``B`` and world size ``W``:

* distributing pooling input (indices) costs ``O(B * L)`` — each id is an
  8-byte int on the wire;
* the pooled lookup itself reads ``O(B * L * D)`` bytes of rows out of HBM
  (``H`` matters only through cache locality, modelled as a mild factor);
* communicating the pooled output costs ``O(B * D)`` per direction.

The model combines these into per-shard communication bytes, HBM traffic
bytes, and a scalar *cost* (estimated microseconds on a reference device)
that the partitioners balance across ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..embedding.table import EmbeddingTableConfig
from .schemes import Shard, ShardingScheme

__all__ = ["CostModelParams", "ShardCost", "shard_cost", "table_cost"]

_INDEX_BYTES = 8  # int64 ids on the wire


@dataclass(frozen=True)
class CostModelParams:
    """Platform constants the cost model charges against.

    Defaults correspond to one V100 of the prototype cluster (Table 2):
    850 GB/s achieved HBM bandwidth, 7 GB/s AlltoAll, 2.5 us per-message
    latency, and FP32 pooled outputs.
    """

    global_batch: int = 65536
    world_size: int = 128
    hbm_bw_bytes_per_s: float = 850e9
    network_bw_bytes_per_s: float = 7e9
    message_latency_s: float = 2.5e-6
    output_dtype_bytes: int = 4
    # mild penalty for tables too large to stay cache/TLB resident
    cache_resident_rows: int = 4_000_000

    def locality_factor(self, num_rows: int) -> float:
        """HBM traffic inflation for very large tables (poor row reuse)."""
        if num_rows <= self.cache_resident_rows:
            return 1.0
        return 1.0 + 0.25 * min(
            1.0, num_rows / (16 * self.cache_resident_rows))


@dataclass(frozen=True)
class ShardCost:
    """Cost components of one shard for one training iteration."""

    input_bytes: int     # index redistribution (forward, on the wire)
    forward_bytes: int   # pooled embeddings out (AlltoAll / ReduceScatter)
    backward_bytes: int  # gradients of pooled embeddings back in
    hbm_bytes: int       # lookup + update traffic on the owning device
    compute_seconds: float
    comms_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comms_seconds

    @property
    def total_comm_bytes(self) -> int:
        return self.input_bytes + self.forward_bytes + self.backward_bytes


def shard_cost(config: EmbeddingTableConfig, shard: Shard,
               scheme: ShardingScheme,
               params: CostModelParams) -> ShardCost:
    """Per-iteration cost of hosting ``shard`` under ``scheme``.

    Model-parallel shards process the *global* batch for their slice of the
    table (the weak-scaling property discussed in Section 5.3.1);
    data-parallel replicas process only the local sub-batch but pay an
    AllReduce over the whole table.
    """
    b_global = params.global_batch
    w = params.world_size
    l_avg = config.avg_pooling
    d_shard = shard.num_cols
    h_shard = shard.num_rows
    nnz_global = b_global * l_avg

    if scheme == ShardingScheme.DATA_PARALLEL:
        # local sub-batch lookup; gradient AllReduce over the full replica.
        b_local = b_global / w
        hbm = int(2 * b_local * l_avg * d_shard * 4)
        # ring AllReduce moves ~2x table bytes per rank
        allreduce_bytes = int(2 * h_shard * d_shard * 4)
        compute = hbm / params.hbm_bw_bytes_per_s
        comms = (allreduce_bytes / params.network_bw_bytes_per_s
                 + params.message_latency_s)
        return ShardCost(input_bytes=0, forward_bytes=0,
                         backward_bytes=allreduce_bytes, hbm_bytes=hbm,
                         compute_seconds=compute, comms_seconds=comms)

    # model-parallel schemes: shard sees the global batch
    if scheme in (ShardingScheme.ROW_WISE, ShardingScheme.TABLE_ROW_WISE):
        # only indices landing in this shard's row range arrive here
        row_fraction = h_shard / config.num_embeddings
        input_bytes = int(nnz_global * row_fraction * _INDEX_BYTES)
        # partial sums ReduceScatter: every shard emits a full-width pooled
        # tensor for the whole global batch; cost scales with W (Sec 4.2.2)
        forward_bytes = int(b_global * d_shard * params.output_dtype_bytes)
        lookup_nnz = nnz_global * row_fraction
    elif scheme == ShardingScheme.COLUMN_WISE:
        # indices are duplicated to every column shard (Sec 4.2.3)
        input_bytes = int(nnz_global * _INDEX_BYTES)
        forward_bytes = int(b_global * d_shard * params.output_dtype_bytes)
        lookup_nnz = nnz_global
    else:  # TABLE_WISE
        input_bytes = int(nnz_global * _INDEX_BYTES)
        forward_bytes = int(b_global * d_shard * params.output_dtype_bytes)
        lookup_nnz = nnz_global

    backward_bytes = forward_bytes
    locality = params.locality_factor(h_shard)
    # forward row reads + backward row updates (read-modify-write ~ 2x)
    hbm = int(3 * lookup_nnz * d_shard * 4 * locality)
    compute = hbm / params.hbm_bw_bytes_per_s
    comms = ((input_bytes + forward_bytes + backward_bytes)
             / params.network_bw_bytes_per_s
             + 3 * params.message_latency_s)
    return ShardCost(input_bytes=input_bytes, forward_bytes=forward_bytes,
                     backward_bytes=backward_bytes, hbm_bytes=hbm,
                     compute_seconds=compute, comms_seconds=comms)


def table_cost(config: EmbeddingTableConfig,
               params: CostModelParams) -> float:
    """Scalar cost of a whole table if placed table-wise — the quantity the
    partitioners balance when deciding placement."""
    shard = Shard(config.name, 0, (0, config.num_embeddings),
                  (0, config.embedding_dim))
    return shard_cost(config, shard, ShardingScheme.TABLE_WISE,
                      params).total_seconds

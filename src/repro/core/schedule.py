"""Discrete-event schedule executor for training pipelines (Section 4.3).

Eq. 1 is a closed-form special case of a more general question: given
tasks with durations, dependencies, and resource (stream) exclusivity,
what is the iteration's makespan? This module answers the general
question with a deterministic list scheduler:

* a :class:`Task` runs on one *stream* (compute / comm / h2d — CUDA
  streams in the real system); tasks on the same stream serialize, tasks
  on different streams overlap freely;
* :class:`PipelineSchedule` computes earliest start times respecting both
  dependencies and stream exclusivity, yielding the makespan, per-task
  start/finish, and the critical path;
* :func:`dlrm_iteration_tasks` builds the Fig. 9 DLRM iteration DAG from
  :class:`ComponentTimes`, and :func:`steady_state_iteration_time` chains
  several iterations with the inter-batch overlaps of Section 4.3
  (batch i+1's HtoD and input AlltoAll run under batch i's compute),
  reporting the *steady-state* per-iteration latency that inter-batch
  pipelining achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .pipeline import ComponentTimes

__all__ = ["Task", "PipelineSchedule", "dlrm_iteration_tasks",
           "steady_state_iteration_time"]


@dataclass(frozen=True)
class Task:
    """One schedulable unit: name, duration, stream, dependencies.

    ``priority`` breaks ties when two tasks could start at the same time
    on the same stream (higher runs first). This models the comms
    backend's *prioritization* (Section 3): the latency-critical AlltoAll
    preempts queue position over the overlappable AllReduce when both are
    ready on the NIC.
    """

    name: str
    duration: float
    stream: str
    deps: Tuple[str, ...] = ()
    priority: int = 0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"{self.name}: duration must be non-negative")


class PipelineSchedule:
    """Deterministic list scheduling over streams.

    Tasks become ready when all dependencies finish; each stream runs one
    task at a time, picking the ready task with the earliest possible
    start (ties broken by insertion order, so results are reproducible).
    """

    def __init__(self, tasks: Sequence[Task]) -> None:
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in {names}")
        by_name = {t.name: t for t in tasks}
        for t in tasks:
            for d in t.deps:
                if d not in by_name:
                    raise ValueError(f"{t.name}: unknown dependency {d!r}")
        self.tasks = list(tasks)
        self._by_name = by_name
        self.start: Dict[str, float] = {}
        self.finish: Dict[str, float] = {}
        self._run()

    def _run(self) -> None:
        stream_free: Dict[str, float] = {}
        remaining = {t.name for t in self.tasks}
        # Kahn-style: schedule tasks whose deps are done, earliest first
        while remaining:
            ready = [t for t in self.tasks if t.name in remaining
                     and all(d in self.finish for d in t.deps)]
            if not ready:
                raise ValueError("dependency cycle detected")
            # candidate start = max(deps finish, stream free)
            def candidate_start(t: Task) -> float:
                dep_done = max((self.finish[d] for d in t.deps),
                               default=0.0)
                return max(dep_done, stream_free.get(t.stream, 0.0))

            chosen = min(ready, key=lambda t: (candidate_start(t),
                                               -t.priority,
                                               self.tasks.index(t)))
            s = candidate_start(chosen)
            self.start[chosen.name] = s
            self.finish[chosen.name] = s + chosen.duration
            stream_free[chosen.stream] = s + chosen.duration
            remaining.remove(chosen.name)

    @property
    def makespan(self) -> float:
        return max(self.finish.values(), default=0.0)

    def critical_path(self) -> List[str]:
        """One dependency chain realizing the makespan, start to end."""
        if not self.tasks:
            return []
        end = max(self.finish, key=lambda n: self.finish[n])
        path = [end]
        while True:
            task = self._by_name[path[-1]]
            # predecessor (dep or stream) finishing exactly at our start
            preds = [d for d in task.deps
                     if self.finish[d] == self.start[task.name]]
            if not preds:
                stream_preds = [
                    t.name for t in self.tasks
                    if t.stream == task.stream
                    and self.finish[t.name] == self.start[task.name]]
                preds = stream_preds
            if not preds:
                break
            path.append(preds[0])
        return list(reversed(path))


def dlrm_iteration_tasks(t: ComponentTimes,
                         prefix: str = "") -> List[Task]:
    """The Fig. 9 DLRM iteration as a task DAG.

    Streams: ``compute`` (GEMMs, lookups), ``comm`` (collectives),
    ``h2d`` (host copies). Dependencies encode the data flow; overlap
    falls out of stream parallelism rather than being hand-coded.
    """
    p = prefix
    return [
        Task(f"{p}h2d", t.h2d, "h2d"),
        Task(f"{p}bot_fwd", t.bottom_mlp_fwd, "compute", (f"{p}h2d",)),
        Task(f"{p}emb_lookup", t.embedding_lookup, "compute", (f"{p}h2d",)),
        Task(f"{p}a2a_fwd", t.alltoall_fwd, "comm", (f"{p}emb_lookup",)),
        Task(f"{p}interaction", t.interaction_fwd, "compute",
             (f"{p}bot_fwd", f"{p}a2a_fwd")),
        Task(f"{p}top_fwd", t.top_mlp_fwd, "compute", (f"{p}interaction",)),
        Task(f"{p}top_bwd", t.top_mlp_bwd, "compute", (f"{p}top_fwd",)),
        Task(f"{p}inter_bwd", t.interaction_bwd, "compute",
             (f"{p}top_bwd",)),
        Task(f"{p}a2a_bwd", t.alltoall_bwd, "comm", (f"{p}inter_bwd",)),
        Task(f"{p}bot_bwd", t.bottom_mlp_bwd, "compute",
             (f"{p}inter_bwd",)),
        Task(f"{p}emb_update", t.embedding_update, "compute",
             (f"{p}a2a_bwd",)),
        Task(f"{p}allreduce", t.allreduce, "comm",
             (f"{p}top_bwd", f"{p}bot_bwd")),
    ]


def steady_state_iteration_time(t: ComponentTimes,
                                iterations: int = 4) -> float:
    """Chain ``iterations`` DLRM iterations with inter-batch pipelining.

    Batch i+1's HtoD (and implicitly its input redistribution, folded
    into h2d here) has no data dependency on batch i, so it starts as
    soon as the h2d stream frees — Section 4.3's double buffering. The
    optimizer step of iteration i gates iteration i+1's consumption of
    the embedding tables, encoded as emb_update(i) -> emb_lookup(i+1).

    Returns the marginal (steady-state) cost of one extra iteration.
    """
    if iterations < 2:
        raise ValueError("need at least 2 iterations for a steady state")
    tasks: List[Task] = []
    tasks_per_iteration = len(dlrm_iteration_tasks(t))
    for i in range(iterations):
        batch = dlrm_iteration_tasks(t, prefix=f"it{i}/")
        if i > 0:
            patched = []
            for task in batch:
                if task.name.endswith("emb_lookup"):
                    task = Task(task.name, task.duration, task.stream,
                                task.deps + (f"it{i - 1}/emb_update",))
                if task.name.endswith("bot_fwd"):
                    # dense params must be stepped before reuse
                    task = Task(task.name, task.duration, task.stream,
                                task.deps + (f"it{i - 1}/allreduce",))
                patched.append(task)
            batch = patched
        tasks.extend(batch)
    schedule = PipelineSchedule(tasks)
    # marginal cost of the last iteration = makespan growth
    first = PipelineSchedule(tasks[:tasks_per_iteration * (iterations - 1)])
    return schedule.makespan - first.makespan

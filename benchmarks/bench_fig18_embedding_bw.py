"""Figs. 18-19: embedding lookup bandwidth, forward and backward+optimizer,
FP32 vs FP16, V100 vs A100 (Appendix A).

Appendix A configuration: 64 tables, 1M rows, D=128, pooling 32. The model
reports achieved GB/s per configuration; the real numpy fused operator is
also timed on a scaled-down instance.
"""

import numpy as np
import pytest

from repro.embedding import (EmbeddingTableConfig, FusedEmbeddingCollection,
                             SparseSGD, lengths_to_offsets)
from repro.perf import (A100, V100, embedding_achieved_bw,
                        embedding_lookup_time, embedding_update_time)

NNZ = 64 * 4096 * 32  # 64 tables, batch 4096, pooling 32
DIM = 128


def model_table():
    rows = []
    for device in (V100, A100):
        for precision in ("fp32", "fp16"):
            fwd_t = embedding_lookup_time(NNZ, DIM, device, precision)
            bwd_t = embedding_update_time(NNZ, DIM, device, precision)
            elem = 4 if precision == "fp32" else 2
            fwd_bw = NNZ * DIM * elem / fwd_t
            bwd_bw = 2 * NNZ * DIM * elem / bwd_t
            rows.append((device.name, precision,
                         round(fwd_bw / 1e9), round(bwd_bw / 1e9)))
    return rows


def test_fig18_19_model(benchmark, report):
    rows = benchmark(model_table)
    report("Figs 18-19: embedding op achieved bandwidth (GB/s)",
           ["device", "precision", "fwd GB/s", "bwd+opt GB/s"], rows)
    by_key = {(r[0], r[1]): r for r in rows}
    # paper: up to 850 GB/s on V100 and 1300 GB/s on A100 (fp32, D=128)
    assert by_key[("V100", "fp32")][2] == pytest.approx(850 * 0.97, rel=0.1)
    assert by_key[("A100", "fp32")][2] == pytest.approx(1300 * 0.97,
                                                        rel=0.1)
    # A100 > V100 in every configuration
    for precision in ("fp32", "fp16"):
        assert by_key[("A100", precision)][2] > \
            by_key[("V100", precision)][2]
    # fp16 achieved bytes/s slightly lower (Fig 18's fp16-below-fp32 gap)
    assert by_key[("V100", "fp16")][2] < by_key[("V100", "fp32")][2]


def test_real_fused_lookup_wallclock(benchmark):
    """Wall-clock of the actual numpy fused lookup + fused update."""
    rng = np.random.default_rng(0)
    configs = [EmbeddingTableConfig(f"t{i}", 10_000, 32, avg_pooling=8.0)
               for i in range(16)]
    coll = FusedEmbeddingCollection.from_configs(configs, rng=rng)
    batch = {}
    for c in configs:
        lengths = np.full(128, 8, dtype=np.int64)
        batch[c.name] = (rng.integers(0, 10_000, size=1024).astype(np.int64),
                         lengths_to_offsets(lengths))
    dy = {c.name: np.ones((128, 32), dtype=np.float32) for c in configs}
    opt = SparseSGD(lr=0.01)

    def step():
        out = coll.forward(batch)
        coll.backward_and_update(dy, opt)
        return out

    out = benchmark(step)
    assert out["t0"].shape == (128, 32)

"""Batch-level index deduplication for pooled lookups.

Zipf-skewed DLRM inputs repeat hot ids many times within one batch; the
optimized embedding kernels read each *unique* row once and broadcast it
to every occurrence, cutting HBM row traffic by the duplication factor
(part of why achieved bandwidth in Figs. 18-19 exceeds what naive per-
occurrence reads would allow, and one of the caching effects the cost
model's ``H`` term stands in for).

:func:`dedup_forward` is numerically identical to
:meth:`repro.embedding.EmbeddingTable.forward` — same pooling, same
saved-state contract — while reading each unique row exactly once.
:func:`duplication_factor` measures how much a given input stream gains.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .kernels import segment_sum
from .table import EmbeddingTable

__all__ = ["dedup_forward", "dedup_cache_read", "duplication_factor"]


def dedup_forward(table: EmbeddingTable, indices: np.ndarray,
                  offsets: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pooled lookup reading each unique row once.

    Returns ``(pooled, unique_rows_read)``. Also primes the table's saved
    backward state exactly as :meth:`EmbeddingTable.forward` would, so
    ``table.backward`` works unchanged afterwards.
    """
    indices = np.asarray(indices, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    table._validate(indices, offsets)
    batch = len(offsets) - 1
    lengths = np.diff(offsets)
    bag_ids = np.repeat(np.arange(batch, dtype=np.int64), lengths)
    if len(indices):
        unique, inverse = np.unique(indices, return_inverse=True)
        rows = table.weight[unique]          # one read per unique row
        out = segment_sum(rows[inverse], offsets)
        unique_count = len(unique)
    else:
        out = np.zeros((batch, table.config.embedding_dim), dtype=np.float32)
        unique_count = 0
    if table.config.pooling_mode == "mean":
        out /= np.maximum(lengths, 1).astype(np.float32)[:, None]
    table._saved = (indices, bag_ids, lengths)
    return out, unique_count


def dedup_cache_read(cache, indices: np.ndarray,
                     backing) -> Tuple[np.ndarray, int]:
    """Read rows through a :class:`repro.cache.RowCache`, touching each
    unique id once.

    Returns ``(rows, unique_count)`` where ``rows`` has one row per
    *occurrence* (the broadcast of the deduplicated read, bitwise equal
    to ``cache.read(indices, backing)``). The cache sees one access per
    unique id, which is what the serving path wants: a hot Zipf id
    repeated across a concurrent dispatch pays one fast-tier read, and
    the hit/miss stats count row residency rather than input skew.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if not len(indices):
        return np.zeros((0, cache.row_dim), dtype=np.float32), 0
    unique, inverse = np.unique(indices, return_inverse=True)
    rows = cache.read(unique, backing)
    return rows[inverse], len(unique)


def duplication_factor(indices: np.ndarray) -> float:
    """nnz / unique — the row-traffic saving dedup unlocks (>= 1)."""
    indices = np.asarray(indices, dtype=np.int64)
    if len(indices) == 0:
        return 1.0
    return len(indices) / len(np.unique(indices))

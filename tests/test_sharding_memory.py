"""Tests for per-rank plan memory validation."""

import numpy as np
import pytest

from repro.embedding import EmbeddingTableConfig
from repro.sharding import (ShardingPlan, ShardingScheme,
                            plan_memory_report, shard_table,
                            validate_plan_memory)


def make_plan(h=1000, d=64, world=4, scheme=ShardingScheme.ROW_WISE):
    cfg = EmbeddingTableConfig("t", h, d)
    plan = ShardingPlan(world_size=world)
    ranks = [0] if scheme == ShardingScheme.TABLE_WISE else \
        list(range(world))
    plan.tables["t"] = shard_table(cfg, scheme, ranks)
    return plan


class TestMemoryReport:
    def test_row_wise_split_evenly(self):
        reports = plan_memory_report(make_plan(h=1000, d=64, world=4),
                                     precision="fp32", optimizer="sgd")
        assert all(r.weight_bytes == 250 * 64 * 4 for r in reports)
        assert all(r.optimizer_bytes == 0 for r in reports)

    def test_table_wise_concentrates(self):
        reports = plan_memory_report(
            make_plan(scheme=ShardingScheme.TABLE_WISE), optimizer="sgd")
        assert reports[0].weight_bytes == 1000 * 64 * 4
        assert reports[1].weight_bytes == 0

    def test_optimizer_state_counted(self):
        reports = plan_memory_report(make_plan(world=2),
                                     optimizer="rowwise_adagrad")
        # 500 rows per shard -> 500 floats of moment
        assert reports[0].optimizer_bytes == 500 * 4

    def test_adagrad_state_equals_weights(self):
        reports = plan_memory_report(make_plan(world=2), precision="fp32",
                                     optimizer="adagrad")
        for r in reports:
            assert r.optimizer_bytes == r.weight_bytes

    def test_cw_rowwise_state_multiplies(self):
        """The Sec 4.2.3 caveat quantified: CW shards each carry full
        per-row moments, so total state is shards x H floats."""
        plan = make_plan(h=100, d=64, world=4,
                         scheme=ShardingScheme.COLUMN_WISE)
        reports = plan_memory_report(plan, optimizer="rowwise_adagrad")
        total_state = sum(r.optimizer_bytes for r in reports)
        assert total_state == 4 * 100 * 4  # 4 shards x 100 rows x 4B

    def test_fp16_halves_weights(self):
        fp32 = plan_memory_report(make_plan(world=2), precision="fp32",
                                  optimizer="sgd")
        fp16 = plan_memory_report(make_plan(world=2), precision="fp16",
                                  optimizer="sgd")
        assert fp16[0].weight_bytes == fp32[0].weight_bytes // 2


class TestValidation:
    def test_fitting_plan_passes(self):
        validate_plan_memory(make_plan(), device_memory_bytes=32e9)

    def test_overflow_raises_with_rank_detail(self):
        plan = make_plan(h=10_000_000, d=64,
                         scheme=ShardingScheme.TABLE_WISE)
        with pytest.raises(ValueError, match="rank 0"):
            validate_plan_memory(plan, device_memory_bytes=5e9,
                                 optimizer="adagrad")

    def test_reserve_counted(self):
        """A plan that fits raw memory can fail after the NCCL/framework
        reserve — the Section 5.3.2 headroom effect."""
        plan = make_plan(h=100_000, d=64,
                         scheme=ShardingScheme.TABLE_WISE)
        # weights+adagrad = 2 * 100000*64*4 = 51.2 MB
        validate_plan_memory(plan, device_memory_bytes=60e6,
                             optimizer="adagrad",
                             framework_reserve_bytes=1e6)
        with pytest.raises(ValueError):
            validate_plan_memory(plan, device_memory_bytes=60e6,
                                 optimizer="adagrad",
                                 framework_reserve_bytes=20e6)

    def test_reserve_exceeding_memory_raises(self):
        with pytest.raises(ValueError, match="reserve"):
            validate_plan_memory(make_plan(), device_memory_bytes=1e9,
                                 framework_reserve_bytes=2e9)

    def test_row_wise_rescues_overflow(self):
        """The planner's escape hatch: the same table that overflows
        table-wise fits when split row-wise."""
        budget = 1.6e9  # usable: 1.5 GB after the reserve
        # 10M x 64 fp32 = 2.56 GB: overflows table-wise...
        tw = make_plan(h=10_000_000, d=64,
                       scheme=ShardingScheme.TABLE_WISE)
        with pytest.raises(ValueError):
            validate_plan_memory(tw, budget, optimizer="sgd",
                                 framework_reserve_bytes=1e8)
        # ...but 640 MB per rank when split 4-way row-wise
        rw = make_plan(h=10_000_000, d=64, scheme=ShardingScheme.ROW_WISE)
        validate_plan_memory(rw, budget, optimizer="sgd",
                             framework_reserve_bytes=1e8)

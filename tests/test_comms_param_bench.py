"""Tests for the PARAM-style comms benchmarks (bench + replay modes)."""

import numpy as np
import pytest

from repro import nn
from repro.comms import PROTOTYPE_TOPOLOGY, ZION_TOPOLOGY, ClusterTopology
from repro.comms.param_bench import (BenchRow, CommsTrace, bench_mode,
                                     replay_mode, trace_from_log)


class TestBenchMode:
    def test_sweep_shape(self):
        rows = bench_mode("all_to_all", PROTOTYPE_TOPOLOGY(16), 10, 20)
        assert len(rows) == 11
        sizes = [r.message_bytes for r in rows]
        assert sizes == [2 ** k for k in range(10, 21)]

    def test_bandwidth_monotone(self):
        rows = bench_mode("all_reduce", PROTOTYPE_TOPOLOGY(16), 12, 28)
        bws = [r.achieved_bw for r in rows]
        assert all(a <= b * 1.001 for a, b in zip(bws, bws[1:]))

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            bench_mode("all_to_none", PROTOTYPE_TOPOLOGY(1))

    def test_bad_exponents(self):
        with pytest.raises(ValueError):
            bench_mode("all_reduce", PROTOTYPE_TOPOLOGY(1), 20, 10)

    @pytest.mark.parametrize("collective", ["all_to_all", "all_reduce",
                                            "reduce_scatter", "all_gather",
                                            "broadcast"])
    def test_all_collectives_supported(self, collective):
        rows = bench_mode(collective, PROTOTYPE_TOPOLOGY(2), 16, 18)
        assert all(r.seconds > 0 for r in rows)


class TestTrace:
    def test_append_and_totals(self):
        trace = CommsTrace()
        trace.append("all_reduce", 1000)
        trace.append("all_to_all/forward_alltoall", 500)
        assert len(trace) == 2
        assert trace.total_bytes == 1500

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError):
            CommsTrace().append("gossip", 10)


class TestReplayMode:
    def test_replay_against_two_topologies(self):
        """The point of replay mode: same workload, different cluster."""
        trace = CommsTrace()
        for _ in range(10):
            trace.append("all_to_all", 10e6)
            trace.append("all_reduce", 50e6)
        fast = replay_mode(trace, PROTOTYPE_TOPOLOGY(16))
        slow = replay_mode(trace, ZION_TOPOLOGY(16))
        assert slow["total"] > fast["total"]
        assert set(fast) == {"all_to_all", "all_reduce", "total"}
        assert fast["total"] == pytest.approx(
            fast["all_to_all"] + fast["all_reduce"])

    def test_trace_from_real_training(self):
        """Capture the trainer's comms log, replay it elsewhere."""
        from repro.core import NeoTrainer
        from repro.data import SyntheticCTRDataset
        from repro.embedding import EmbeddingTableConfig, SparseSGD
        from repro.models import DLRMConfig
        from repro.sharding import ShardingPlan, ShardingScheme, shard_table

        tables = tuple(EmbeddingTableConfig(f"t{i}", 32, 8, avg_pooling=2.0)
                       for i in range(2))
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                            top_mlp=(8,))
        plan = ShardingPlan(world_size=2)
        for i, t in enumerate(tables):
            plan.tables[t.name] = shard_table(t, ShardingScheme.TABLE_WISE,
                                              [i % 2])
        trainer = NeoTrainer(
            config, plan, ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1))
        ds = SyntheticCTRDataset(tables, dense_dim=4)
        for i in range(3):
            trainer.train_step(ds.batch(8, i).split(2))

        trace = trace_from_log(trainer.pg.log, world_size=2)
        assert len(trace) == sum(trainer.pg.log.calls.values())
        local = replay_mode(trace, ClusterTopology(num_nodes=1,
                                                   gpus_per_node=2))
        cluster = replay_mode(trace, PROTOTYPE_TOPOLOGY(16))
        assert local["total"] > 0
        # same byte volumes, multi-node fabric costs more per byte
        assert cluster["total"] > local["total"]

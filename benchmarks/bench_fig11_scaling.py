"""Fig. 11: weak-scaling of training throughput for models A1/A2/A3,
1 to 16 nodes, fixed per-GPU batch, normalized to 8 GPUs (1 node).

Paper result: ~50% scaling efficiency at 128 GPUs for A2, ~40% for A1
(load imbalance: few tables) and A3 (wider dims, heavier AlltoAll).

Two entry points share one sweep harness:

* the pytest benchmark reproduces the paper figure from the analytic
  throughput model, plus a fast-tier smoke that steps the *real*
  rank-stacked simulator at R=64 (affordable now that the world
  dimension is batched — see ``bench_rank_stacked.py``);
* the CLI sweeps an arbitrary ``--ranks`` comma list (GPU counts) and
  emits per-point step time for both the analytic model curve and,
  with ``--measure``, the measured stacked-simulator curve::

      PYTHONPATH=src python benchmarks/bench_fig11_scaling.py \
          --ranks 8,16,64,128 [--measure] [--out PATH]
"""

import argparse
import json
import sys

import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.models import full_spec
from repro.perf import TrainingSetup, plan_imbalance, weak_scaling_curve
from repro.sharding import (CostModelParams, EmbeddingShardingPlanner,
                            PlannerConfig, plan_cost_per_rank)

NODE_COUNTS = [1, 2, 4, 8, 16]
PAPER_EFFICIENCY_128 = {"A1": 0.40, "A2": 0.50, "A3": 0.40}
PER_GPU_BATCH = 512
SMOKE_WORLD = 64


def imbalance_for(spec, world):
    params = CostModelParams(global_batch=PER_GPU_BATCH * world,
                             world_size=world)
    planner = EmbeddingShardingPlanner(
        PlannerConfig(world_size=world, ranks_per_node=8,
                      partitioner="ldm"), cost_params=params)
    plan = planner.plan(list(spec.tables))
    return plan_imbalance(plan_cost_per_rank(plan, params))


def scaling_table(node_counts=NODE_COUNTS):
    out = {}
    for name in ("A1", "A2", "A3"):
        spec = full_spec(name)
        setup = TrainingSetup(
            spec=spec, topology=PROTOTYPE_TOPOLOGY(1),
            global_batch=PER_GPU_BATCH * 8,
            load_imbalance=imbalance_for(spec, 128))
        out[name] = weak_scaling_curve(setup, node_counts)
    return out


def sweep(gpu_counts, measure=False, iters=3):
    """One ``--ranks`` sweep: per-point step time for the analytic
    model curve (GPU counts divisible by 8; nodes = gpus // 8) and,
    when ``measure`` is set, the wall-clock step time of the real
    rank-stacked simulator at the same world sizes."""
    points = {}
    nodes = [g // 8 for g in gpu_counts if g % 8 == 0 and g >= 8]
    model_curves = scaling_table(nodes) if nodes else {}
    for gpus in gpu_counts:
        point = {"gpus": gpus}
        if gpus % 8 == 0 and gpus >= 8:
            n = gpus // 8
            global_batch = PER_GPU_BATCH * gpus
            point["model_step_time_s"] = {
                name: global_batch / curve[n]
                for name, curve in model_curves.items()}
        if measure:
            import bench_rank_stacked as brs
            trainer = brs.build_trainer(gpus, stacked=True)
            batches = brs.make_batches(gpus, 2)
            point["measured_stacked_step_s"] = brs._best_step_time(
                trainer, batches, iters)
        points[gpus] = point
    return points


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--ranks", default="8,16,32,64,128",
                        help="comma list of GPU counts to sweep")
    parser.add_argument("--measure", action="store_true",
                        help="also time the real rank-stacked simulator "
                             "at each world size")
    parser.add_argument("--iters", type=int, default=3,
                        help="timing iterations per measured point")
    parser.add_argument("--out", default=None,
                        help="optional output JSON path")
    args = parser.parse_args(argv)
    try:
        gpu_counts = [int(x) for x in args.ranks.split(",") if x.strip()]
    except ValueError:
        parser.error(f"--ranks must be a comma list of ints, "
                     f"got {args.ranks!r}")
    if not gpu_counts or any(g <= 0 for g in gpu_counts):
        parser.error("--ranks needs at least one positive GPU count")
    points = sweep(gpu_counts, measure=args.measure, iters=args.iters)
    for gpus, point in points.items():
        parts = [f"R={gpus:>4}"]
        for name, t in point.get("model_step_time_s", {}).items():
            parts.append(f"{name} {t * 1e3:7.2f} ms")
        if "measured_stacked_step_s" in point:
            parts.append(
                f"sim {point['measured_stacked_step_s'] * 1e3:7.2f} ms")
        print("  ".join(parts))
    if args.out:
        doc = {"benchmark": "fig11_scaling_sweep",
               "per_gpu_batch": PER_GPU_BATCH,
               "points": {str(g): p for g, p in points.items()}}
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")
    return 0


def test_fig11_scaling(benchmark, report):
    curves = benchmark.pedantic(scaling_table, rounds=1, iterations=1)
    rows = []
    for name, curve in curves.items():
        base = curve[1]
        for n in NODE_COUNTS:
            eff = curve[n] / (n * base)
            rows.append((name, n * 8, f"{curve[n] / base:.2f}x",
                         f"{eff:.0%}"))
    report("Fig 11: weak-scaling relative throughput (vs 8 GPUs)",
           ["model", "gpus", "rel throughput", "efficiency"], rows)
    for name, curve in curves.items():
        values = [curve[n] for n in NODE_COUNTS]
        # throughput grows monotonically with nodes
        assert all(a < b for a, b in zip(values, values[1:])), name
        # but sublinearly: efficiency at 16 nodes in the paper's band
        eff = curve[16] / (16 * curve[1])
        assert 0.25 < eff < 0.85, (name, eff)
    # A2 scales at least as well as A3 (wider dims hurt A3)
    eff = {name: curve[16] / (16 * curve[1])
           for name, curve in curves.items()}
    assert eff["A2"] >= eff["A3"] * 0.95


def test_fig11_smoke_r64(benchmark, report):
    """Fast-tier smoke: step the real simulator at R=64.

    Before rank-stacking this world size lived in the slow tier (a
    64-iteration python loop per phase per step); the stacked trainer
    makes it a sub-second check."""
    import bench_rank_stacked as brs

    def run():
        trainer = brs.build_trainer(SMOKE_WORLD, stacked=True)
        batches = brs.make_batches(SMOKE_WORLD, 2)
        return [trainer.train_step(batches[i % 2]) for i in range(3)]

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 11 smoke: rank-stacked trainer at R=64",
           ["step", "loss"],
           [(i, f"{l:.6f}") for i, l in enumerate(losses)])
    assert len(losses) == 3
    assert all(0.0 < l < 10.0 for l in losses)


if __name__ == "__main__":
    sys.exit(main())

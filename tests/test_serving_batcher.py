"""Micro-batcher tests: deterministic unit schedules plus hypothesis fuzz.

The fuzz suite is the real contract: over arbitrary arrival traces,
policies and service-time models, every offered request is completed or
shed exactly once (conservation), batches never exceed the size cap,
no request dispatches before it arrives, shedding only happens against
a full queue, and no batch is cut later than
``max(previous completion, oldest member arrival + max_wait)`` — the
no-starvation invariant separating bounded batching delay from honest
queueing delay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import MiniBatch
from repro.serving import BatchingPolicy, InferenceRequest, MicroBatcher


def req(request_id, arrival_s, samples=1):
    """A minimal single-feature request (ids are irrelevant to planning)."""
    return InferenceRequest(
        request_id=request_id, arrival_s=arrival_s,
        batch=MiniBatch(
            dense=np.zeros((samples, 2), dtype=np.float32),
            sparse={"t0": (np.zeros(samples, dtype=np.int64),
                           np.arange(samples + 1, dtype=np.int64))},
            labels=np.zeros(samples, dtype=np.float32)))


def const_service(seconds):
    return lambda batch: seconds


class TestDispatchRules:
    def test_full_batch_dispatches_immediately(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=2,
                                              max_wait_s=1.0))
        plan = batcher.plan([req(0, 0.0), req(1, 0.1), req(2, 0.2)],
                            const_service(0.01))
        assert [b.trigger for b in plan.batches] == ["full", "drain"]
        assert plan.batches[0].dispatch_s == pytest.approx(0.1)

    def test_deadline_bounds_oldest_wait(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=100,
                                              max_wait_s=0.05))
        plan = batcher.plan([req(0, 0.0), req(1, 0.01), req(2, 1.0)],
                            const_service(0.001))
        first = plan.batches[0]
        assert first.num_requests == 2
        assert first.dispatch_s == pytest.approx(0.05)

    def test_drain_flushes_tail(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=100,
                                              max_wait_s=10.0))
        plan = batcher.plan([req(0, 0.0)], const_service(0.001))
        assert len(plan.batches) == 1
        assert plan.batches[0].trigger == "drain"

    def test_arrivals_during_service_queue_up(self):
        # first request dispatches alone after its 0.01 wait and holds
        # the server until 1.01; arrivals at 0.1..0.4 must coalesce
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=10,
                                              max_wait_s=0.01))
        requests = [req(0, 0.0)] + [req(i, i / 10) for i in range(1, 5)]
        plan = batcher.plan(requests, const_service(1.0))
        assert len(plan.batches) == 2
        assert plan.batches[1].num_requests == 4
        assert plan.batches[1].dispatch_s == pytest.approx(1.01)

    def test_sheds_when_queue_full(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=10,
                                              max_wait_s=10.0,
                                              max_queue_depth=3))
        requests = [req(i, 0.0 + i * 1e-6) for i in range(6)]
        plan = batcher.plan(requests, const_service(100.0))
        assert plan.num_shed == 3
        assert plan.num_completed == 3
        assert {r.request_id for r in plan.shed} == {3, 4, 5}

    def test_zero_wait_serves_singly_when_sparse(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=64,
                                              max_wait_s=0.0))
        plan = batcher.plan([req(i, i * 1.0) for i in range(3)],
                            const_service(0.01))
        assert all(b.num_requests == 1 for b in plan.batches)

    def test_duplicate_ids_rejected(self):
        batcher = MicroBatcher()
        with pytest.raises(ValueError):
            batcher.plan([req(1, 0.0), req(1, 0.5)], const_service(0.01))

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher().plan([req(0, 0.0)], const_service(-1.0))

    def test_empty_trace(self):
        plan = MicroBatcher().plan([], const_service(0.01))
        assert plan.num_offered == 0
        assert plan.makespan_s == 0.0

    def test_latencies_in_id_order(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=2,
                                              max_wait_s=0.5))
        plan = batcher.plan([req(1, 0.0), req(0, 0.1)], const_service(0.2))
        lats = plan.latencies_s()
        # id 0 arrived later into the same batch, so waited less
        assert len(lats) == 2 and lats[0] < lats[1]


POLICIES = st.builds(
    BatchingPolicy,
    max_batch_size=st.integers(1, 8),
    max_wait_s=st.floats(0.0, 0.05),
    max_queue_depth=st.integers(1, 12))

TRACES = st.lists(st.floats(0.0, 1.0), min_size=0, max_size=40)

SERVICE_S = st.floats(1e-5, 0.2)


@settings(max_examples=120, deadline=None)
@given(arrivals=TRACES, policy=POLICIES, service_s=SERVICE_S)
def test_fuzz_batcher_invariants(arrivals, policy, service_s):
    requests = [req(i, t) for i, t in enumerate(sorted(arrivals))]
    plan = MicroBatcher(policy).plan(requests, const_service(service_s))

    # conservation: every request completed or shed, exactly once
    completed_ids = [r.request_id for b in plan.batches for r in b.requests]
    shed_ids = [r.request_id for r in plan.shed]
    assert sorted(completed_ids + shed_ids) == sorted(
        r.request_id for r in requests)
    assert len(set(completed_ids)) == len(completed_ids)

    prev_completion = 0.0
    for b in plan.batches:
        # size cap and causality
        assert 1 <= b.num_requests <= policy.max_batch_size
        assert all(b.dispatch_s >= r.arrival_s for r in b.requests)
        # non-overlapping service on the single virtual server
        assert b.dispatch_s >= prev_completion
        assert b.completion_s == pytest.approx(b.dispatch_s + service_s)
        # no starvation: a batch is cut no later than the moment the
        # server frees up or the oldest member's wait bound expires,
        # whichever is later (full-trigger cuts happen even earlier)
        oldest = min(r.arrival_s for r in b.requests)
        bound = max(prev_completion, oldest + policy.max_wait_s)
        assert b.dispatch_s <= bound + 1e-9
        prev_completion = b.completion_s

    # batches dispatch in arrival order of their oldest members
    oldest_arrivals = [min(r.arrival_s for r in b.requests)
                      for b in plan.batches]
    assert oldest_arrivals == sorted(oldest_arrivals)


@settings(max_examples=60, deadline=None)
@given(arrivals=TRACES, policy=POLICIES, service_s=SERVICE_S)
def test_fuzz_shed_only_when_queue_full(arrivals, policy, service_s):
    """Replaying the event loop: at each shed instant the queue must hold
    exactly max_queue_depth requests that arrived earlier and had not yet
    been dispatched."""
    requests = [req(i, t) for i, t in enumerate(sorted(arrivals))]
    plan = MicroBatcher(policy).plan(requests, const_service(service_s))
    for shed in plan.shed:
        waiting = 0
        for r in requests:
            if r.request_id == shed.request_id:
                continue
            if r.arrival_s > shed.arrival_s or (
                    r.arrival_s == shed.arrival_s
                    and r.request_id > shed.request_id):
                continue
            dispatched_by_then = any(
                r in b.requests and b.dispatch_s <= shed.arrival_s
                for b in plan.batches)
            shed_before = any(s.request_id == r.request_id
                              for s in plan.shed)
            if not dispatched_by_then and not shed_before:
                waiting += 1
        assert waiting >= policy.max_queue_depth


@settings(max_examples=60, deadline=None)
@given(arrivals=TRACES, policy=POLICIES, service_s=SERVICE_S)
def test_fuzz_determinism(arrivals, policy, service_s):
    requests = [req(i, t) for i, t in enumerate(sorted(arrivals))]
    a = MicroBatcher(policy).plan(requests, const_service(service_s))
    b = MicroBatcher(policy).plan(list(reversed(requests)),
                                  const_service(service_s))
    assert [[r.request_id for r in x.requests] for x in a.batches] == \
        [[r.request_id for r in x.requests] for x in b.batches]
    assert [x.dispatch_s for x in a.batches] == \
        [x.dispatch_s for x in b.batches]
    assert [r.request_id for r in a.shed] == [r.request_id for r in b.shed]


class TestPredictedAdmission:
    """admission="predicted": shed exactly what would miss its deadline."""

    def policy(self, deadline_s=0.1, **kw):
        # max_wait > 0 so simultaneous arrivals coalesce into full-width
        # batches (at zero wait the dispatch/arrival tie-break serves
        # the first arrival alone)
        kw.setdefault("max_batch_size", 4)
        kw.setdefault("max_wait_s", 5e-3)
        return BatchingPolicy(admission="predicted", deadline_s=deadline_s,
                              **kw)

    def test_validation_requires_a_deadline(self):
        with pytest.raises(ValueError):
            BatchingPolicy(admission="predicted")
        with pytest.raises(ValueError):
            BatchingPolicy(admission="predicted", deadline_s=0.0)
        with pytest.raises(ValueError):
            BatchingPolicy(admission="banana")

    def test_default_depth_policy_is_unchanged_bitwise(self):
        # the flag defaults off: plans under the depth policy must be
        # identical to a policy that never mentions admission at all
        requests = [req(i, i * 1e-3) for i in range(40)]
        old = MicroBatcher(BatchingPolicy(max_batch_size=4,
                                          max_queue_depth=8))
        new = MicroBatcher(BatchingPolicy(max_batch_size=4,
                                          max_queue_depth=8,
                                          admission="depth"))
        a = old.plan(requests, const_service(5e-3))
        b = new.plan(requests, const_service(5e-3))
        assert [x.dispatch_s for x in a.batches] == \
            [x.dispatch_s for x in b.batches]
        assert [r.request_id for r in a.shed] == \
            [r.request_id for r in b.shed]

    def test_admits_everything_when_capacity_suffices(self):
        batcher = MicroBatcher(self.policy(deadline_s=1.0))
        plan = batcher.plan([req(i, i * 0.1) for i in range(10)],
                            const_service(1e-3))
        assert plan.num_shed == 0
        assert plan.num_completed == 10

    def test_sheds_the_request_that_would_miss(self):
        # service 0.05 s per batch, all arrive at once, deadline 0.12:
        # batch k completes at (k+1)*0.05; requests 1-8 land in the first
        # two batches (<= 0.10), 9-12's predicted 0.15 misses
        batcher = MicroBatcher(self.policy(deadline_s=0.12))
        plan = batcher.plan([req(i, 0.0) for i in range(12)],
                            const_service(0.05))
        assert plan.num_completed == 8
        assert sorted(r.request_id for r in plan.shed) == list(range(8, 12))

    def test_impossible_deadline_sheds_everything(self):
        # even an empty-queue arrival completes one service time after
        # it arrives; a deadline below that is predicted infeasible for
        # every request, so admission sheds the whole trace
        batcher = MicroBatcher(self.policy(deadline_s=0.04))
        plan = batcher.plan([req(i, i * 1e-3) for i in range(20)],
                            const_service(0.05))
        assert plan.num_completed == 0
        assert plan.num_shed == 20

    def test_depth_cap_still_applies_on_top(self):
        # queue depth is a second, independent shed reason
        batcher = MicroBatcher(self.policy(deadline_s=10.0,
                                           max_queue_depth=2))
        plan = batcher.plan([req(i, 0.0) for i in range(8)],
                            const_service(0.5))
        assert plan.num_shed > 0

    def test_goodput_plateaus_instead_of_collapsing(self):
        # 3x overload: predicted admission trades completions for
        # within-deadline completions; depth admission completes more
        # requests but blows the deadline on most of them
        requests = [req(i, i * 2e-3) for i in range(200)]
        deadline = 0.05
        depth = MicroBatcher(BatchingPolicy(max_batch_size=4,
                                            max_wait_s=0.0)) \
            .plan(requests, const_service(0.024))
        pred = MicroBatcher(self.policy(deadline_s=deadline)) \
            .plan(requests, const_service(0.024))

        def within(plan):
            return sum(1 for b in plan.batches for r in b.requests
                       if b.completion_s - r.arrival_s <= deadline)

        assert within(pred) > 2 * within(depth)
        assert pred.num_shed > 0

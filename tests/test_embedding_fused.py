"""Tests for the fused multi-table embedding collection."""

import numpy as np
import pytest

from repro.embedding import (EmbeddingTable, EmbeddingTableConfig,
                             FusedEmbeddingCollection, SparseSGD,
                             SparseAdaGrad, lengths_to_offsets)


def make_collection(num_tables=3, h=10, d=4, seed=0):
    configs = [EmbeddingTableConfig(f"t{i}", h, d) for i in range(num_tables)]
    return FusedEmbeddingCollection.from_configs(
        configs, rng=np.random.default_rng(seed))


def make_batch(collection, batch_size=2, per_bag=3, seed=0):
    rng = np.random.default_rng(seed)
    batch = {}
    for t in collection.tables:
        lengths = np.full(batch_size, per_bag, dtype=np.int64)
        indices = rng.integers(0, t.config.num_embeddings,
                               size=batch_size * per_bag).astype(np.int64)
        batch[t.name] = (indices, lengths_to_offsets(lengths))
    return batch


class TestConstruction:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FusedEmbeddingCollection([])

    def test_duplicate_names_raise(self):
        cfg = EmbeddingTableConfig("same", 4, 4)
        tables = [EmbeddingTable(cfg), EmbeddingTable(cfg)]
        with pytest.raises(ValueError):
            FusedEmbeddingCollection(tables)

    def test_num_parameters(self):
        coll = make_collection(num_tables=3, h=10, d=4)
        assert coll.num_parameters() == 3 * 10 * 4

    def test_memory_bytes(self):
        coll = make_collection(num_tables=2, h=10, d=4)
        assert coll.memory_bytes() == 2 * 10 * 4 * 4
        assert coll.memory_bytes("fp16") == 2 * 10 * 4 * 2


class TestForward:
    def test_matches_individual_tables(self):
        coll = make_collection()
        batch = make_batch(coll)
        out = coll.forward(batch)
        for t in coll.tables:
            solo = EmbeddingTable(t.config, weight=t.weight)
            indices, offsets = batch[t.name]
            np.testing.assert_array_equal(out[t.name],
                                          solo.forward(indices, offsets))

    def test_missing_table_raises(self):
        coll = make_collection()
        batch = make_batch(coll)
        del batch["t0"]
        with pytest.raises(KeyError):
            coll.forward(batch)

    def test_single_kernel_launch_per_call(self):
        """The fusion claim: T tables, one launch (vs T unfused)."""
        coll = make_collection(num_tables=5)
        batch = make_batch(coll)
        assert coll.kernel_launches == 0
        coll.forward(batch)
        assert coll.kernel_launches == 1
        coll.backward({n: np.ones((2, 4), dtype=np.float32)
                       for n in coll.names})
        assert coll.kernel_launches == 2


class TestBackwardAndUpdate:
    def test_fused_equals_unfused(self):
        """backward_and_update == backward + apply_optimizer."""
        c1 = make_collection(seed=1)
        c2 = make_collection(seed=1)
        batch = make_batch(c1, seed=2)
        dy = {n: np.random.default_rng(3).normal(size=(2, 4)).astype(np.float32)
              for n in c1.names}

        c1.forward(batch)
        c1.backward_and_update(dy, SparseAdaGrad(lr=0.1))

        c2.forward(batch)
        c2.backward(dy)
        c2.apply_optimizer(SparseAdaGrad(lr=0.1))

        for n in c1.names:
            np.testing.assert_array_equal(c1.table(n).weight,
                                          c2.table(n).weight)

    def test_apply_without_backward_raises(self):
        coll = make_collection()
        with pytest.raises(RuntimeError):
            coll.apply_optimizer(SparseSGD(lr=0.1))

    def test_update_changes_only_touched_rows(self):
        coll = make_collection(h=20)
        batch = {n: (np.array([3], dtype=np.int64),
                     np.array([0, 1], dtype=np.int64)) for n in coll.names}
        before = {n: coll.table(n).weight.copy() for n in coll.names}
        coll.forward(batch)
        coll.backward_and_update(
            {n: np.ones((1, 4), dtype=np.float32) for n in coll.names},
            SparseSGD(lr=0.1))
        for n in coll.names:
            w = coll.table(n).weight
            assert not np.allclose(w[3], before[n][3])
            mask = np.ones(20, dtype=bool)
            mask[3] = False
            np.testing.assert_array_equal(w[mask], before[n][mask])

    def test_pending_grads_cleared(self):
        coll = make_collection()
        batch = make_batch(coll)
        coll.forward(batch)
        coll.backward({n: np.ones((2, 4), dtype=np.float32)
                       for n in coll.names})
        coll.apply_optimizer(SparseSGD(lr=0.1))
        with pytest.raises(RuntimeError):
            coll.apply_optimizer(SparseSGD(lr=0.1))

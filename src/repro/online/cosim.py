"""Deterministic train-while-serving co-simulation.

The paper's stated purpose for Neo is *continuous* retraining: a
recommendation model is never done training, it is perpetually refreshed
while a serving fleet answers traffic from the last published snapshot.
This module closes that loop in simulation. One
:class:`repro.core.TrainingLoop` keeps training while one or more
:class:`repro.serving.InferenceServer` replicas answer seeded Poisson
traffic (Zipf-skewed ids, the same synthetic CTR distribution training
consumes) — all on a **shared virtual clock**:

* training step ``k`` (1-based) completes at ``k * train_step_time_s``
  virtual seconds;
* at the refresh cadence the trainer is :func:`~repro.serving.freeze`-d
  and the snapshot hot-swapped into the serving fleet through the
  double-buffered :class:`~repro.online.ModelSlot`;
* requests arrive by their own Poisson process and each dispatched batch
  is answered by the snapshot active at its *dispatch* time.

Determinism is what makes the co-simulation a measurement instrument
rather than a demo. Training is closed-loop-free (serving reads frozen
copies, never trainer state), so the training trajectory is bitwise
independent of traffic; and the batcher's schedule is priced against the
model *shape*, which hot-swap keeps invariant, so the serving schedule
is bitwise independent of the refresh cadence. The two halves interleave
on the virtual clock but cannot perturb each other — exactly the
isolation a production train/serve split buys, and the property the
golden tests pin: swap-every-step reproduces the pure-serving
:class:`~repro.serving.LoadReport` bitwise, never-swap reproduces the
pure-training losses bitwise.

What *does* change with cadence is staleness: how many steps (and
virtual seconds) the answering snapshot trails the trainer, and through
it the held-out NE of the answers served. :class:`CoSimResult` carries
the full joint record — per-request staleness, per-snapshot NE, the SLO
report — from which :mod:`repro.online.report` draws the
staleness-vs-NE-vs-goodput curve the paper only gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.loop import TrainingLoop, TrainingResult
from ..metrics import normalized_entropy
from ..obs.metrics import MetricRegistry
from ..obs.tracer import as_tracer
from ..serving.batcher import BatchingPolicy, InferenceRequest
from ..serving.export import FreezeConfig, ServableModel, freeze
from ..serving.loadgen import LoadReport, PoissonLoadGen, summarize
from ..serving.server import InferenceServer, ServeResult, ServingPerfModel
from .slot import ModelSlot, Snapshot

__all__ = ["OnlineConfig", "CoSimResult", "CoSimulation"]

# held-out batch indices for snapshot NE, far from both training's range
# and TrainingLoop.EVAL_OFFSET so online eval never sees loop-eval data
HELD_OUT_OFFSET = 2_000_000


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of one train-while-serving run.

    ``swap_every_steps`` is the refresh cadence: freeze + hot-swap after
    every N completed training steps (1 = swap-every-step, 0 = never
    swap — the fleet serves the initial snapshot forever). Use
    :func:`repro.online.report.cadence_from_sizing` to derive the
    cadence and ``train_step_time_s`` from a :mod:`repro.perf.online`
    cluster sizing instead of picking them by hand.
    """

    num_steps: int
    swap_every_steps: int
    train_step_time_s: float
    qps: float
    slo_s: float = 5e-3
    seed: int = 0
    replicas: int = 1
    eval_batch_size: int = 512
    num_requests: Optional[int] = None
    freeze_config: FreezeConfig = FreezeConfig()

    def __post_init__(self) -> None:
        if self.num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        if self.swap_every_steps < 0:
            raise ValueError("swap_every_steps must be >= 0 (0 = never)")
        if self.train_step_time_s <= 0:
            raise ValueError("train_step_time_s must be positive")
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be >= 1")
        if self.num_requests is not None and self.num_requests < 1:
            raise ValueError("num_requests must be >= 1 when set")


@dataclass
class CoSimResult:
    """The complete joint record of one co-simulation run."""

    config: OnlineConfig
    training: TrainingResult
    serve: ServeResult                   # merged across replicas
    replica_results: List[ServeResult]
    report: LoadReport
    snapshots: List[Snapshot]
    snapshot_ne: Dict[int, float]        # version -> held-out NE
    fresh_ne: float                      # NE of the final trained model
    completed_steps: int

    @property
    def num_swaps(self) -> int:
        """Completed hot-swaps (publishes after the initial install)."""
        return len(self.snapshots) - 1

    @property
    def shed_during_swap(self) -> int:
        """Requests lost to swapping — the conservation residual.

        Every offered request must be either completed or shed by
        admission control; a hot-swap implementation that dropped
        in-flight or queued requests would leak them here. Always 0 for
        the atomic double-buffered slot.
        """
        offered = self.report.num_offered
        return offered - self.serve.num_completed - self.serve.num_shed

    # ------------------------------------------------------------------
    def _steps_trained_by(self, t: float) -> int:
        dt = self.config.train_step_time_s
        return min(self.completed_steps, int(np.floor(t / dt + 1e-9)))

    def staleness_steps(self) -> np.ndarray:
        """Per completed request: training steps the answering snapshot
        trailed the trainer at dispatch time."""
        by_version = {s.version: s for s in self.snapshots}
        return np.array(
            [max(0, self._steps_trained_by(o.dispatch_s)
                 - by_version[o.model_version].step)
             for o in self.serve.outcomes], dtype=np.int64)

    def staleness_seconds(self) -> np.ndarray:
        """Per completed request: virtual seconds since the answering
        snapshot was published."""
        by_version = {s.version: s for s in self.snapshots}
        return np.array(
            [o.dispatch_s - by_version[o.model_version].publish_s
             for o in self.serve.outcomes], dtype=np.float64)

    def serving_ne(self) -> float:
        """Traffic-weighted held-out NE of the answers actually served:
        each completed request contributes its answering snapshot's NE."""
        if not self.serve.outcomes:
            return float("nan")
        total = sum(self.snapshot_ne[o.model_version]
                    for o in self.serve.outcomes)
        return total / len(self.serve.outcomes)

    def ne_gap(self) -> float:
        """How much NE the fleet gave up to staleness vs serving the
        fully fresh final model on every request."""
        return self.serving_ne() - self.fresh_ne


class CoSimulation:
    """Runs one train-while-serving co-simulation to completion.

    The loop's own dataset doubles as the traffic source (single-sample
    Zipf-skewed requests) and the held-out NE source (batch indices far
    outside both the training range and the loop's eval range).
    """

    def __init__(self, loop: TrainingLoop, config: OnlineConfig,
                 policy: Optional[BatchingPolicy] = None,
                 perf: Optional[ServingPerfModel] = None,
                 tracer=None,
                 metrics: Optional[MetricRegistry] = None) -> None:
        self.loop = loop
        self.config = config
        self.policy = policy if policy is not None else BatchingPolicy()
        self.perf = perf if perf is not None else ServingPerfModel()
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricRegistry()

    # ------------------------------------------------------------------
    def _freeze(self) -> ServableModel:
        return freeze(self.loop.trainer, self.config.freeze_config)

    def _held_out_batch(self):
        return self.loop.dataset.batch(self.config.eval_batch_size,
                                       HELD_OUT_OFFSET + self.config.seed)

    def _snapshot_ne(self, model: ServableModel, batch) -> float:
        return normalized_entropy(model.predict(batch), batch.labels)

    def run(self) -> CoSimResult:
        cfg = self.config
        dt = cfg.train_step_time_s
        start_step = self.loop.trainer.steps
        slot = ModelSlot(self._freeze(), step=start_step, publish_s=0.0,
                         tracer=self.tracer, metrics=self.metrics)

        # -- train, hot-swapping at the refresh cadence ----------------
        def on_step(_step: int) -> None:
            completed = self.loop.trainer.steps - start_step
            if cfg.swap_every_steps and \
                    completed % cfg.swap_every_steps == 0:
                slot.publish(self._freeze(), step=self.loop.trainer.steps,
                             publish_s=completed * dt)

        with self.tracer.span("online.train", cat="online",
                              num_steps=cfg.num_steps):
            training = self.loop.run(cfg.num_steps, on_step=on_step)
        completed_steps = self.loop.trainer.steps - start_step

        # -- held-out NE per snapshot + the fully fresh reference ------
        batch = self._held_out_batch()
        snapshot_ne = {s.version: self._snapshot_ne(s.model, batch)
                       for s in slot.history}
        final = slot.history[-1]
        if final.step == self.loop.trainer.steps:
            fresh_ne = snapshot_ne[final.version]
        else:
            fresh_ne = self._snapshot_ne(self._freeze(), batch)

        # -- serve the traffic against the swap timeline ---------------
        horizon = max(dt, completed_steps * dt)
        if cfg.num_requests is not None:
            gen = PoissonLoadGen(qps=cfg.qps, num_requests=cfg.num_requests,
                                 seed=cfg.seed)
        else:
            gen = PoissonLoadGen.for_duration(cfg.qps, horizon,
                                              seed=cfg.seed)
        requests = gen.requests(self.loop.dataset)
        replica_results = self._serve_replicas(requests, slot)
        serve = self._merge(replica_results)
        report = summarize(serve, offered_qps=cfg.qps,
                           num_offered=len(requests), slo_s=cfg.slo_s)

        result = CoSimResult(
            config=cfg, training=training, serve=serve,
            replica_results=replica_results, report=report,
            snapshots=list(slot.history), snapshot_ne=snapshot_ne,
            fresh_ne=fresh_ne, completed_steps=completed_steps)
        self._record_metrics(result)
        return result

    # ------------------------------------------------------------------
    def _serve_replicas(self, requests: List[InferenceRequest],
                        slot: ModelSlot) -> List[ServeResult]:
        """Round-robin the trace across the fleet; every replica shares
        the slot (and therefore sees the same swap timeline)."""
        cfg = self.config
        results = []
        for r in range(cfg.replicas):
            server = InferenceServer(slot.history[0].model, self.policy,
                                     self.perf, tracer=self.tracer,
                                     metrics=self.metrics)
            share = [req for i, req in enumerate(requests)
                     if i % cfg.replicas == r]
            with self.tracer.span("online.serve", cat="online", replica=r,
                                  requests=len(share)):
                results.append(server.serve(share, slot=slot))
        return results

    @staticmethod
    def _merge(results: List[ServeResult]) -> ServeResult:
        if len(results) == 1:
            return results[0]
        merged = ServeResult()
        for res in results:
            merged.outcomes.extend(res.outcomes)
            merged.responses.update(res.responses)
            merged.shed_ids.extend(res.shed_ids)
        merged.outcomes.sort(key=lambda o: o.request_id)
        merged.shed_ids.sort()
        return merged

    def _record_metrics(self, result: CoSimResult) -> None:
        scope = self.metrics.scope("online")
        steps = result.staleness_steps()
        seconds = result.staleness_seconds()
        steps_hist = scope.histogram("staleness_steps")
        seconds_hist = scope.histogram("staleness_seconds")
        for s, sec in zip(steps, seconds):
            steps_hist.record(int(s))
            seconds_hist.record(float(sec))
        if len(steps):
            scope.gauge("last_staleness_steps").set(float(steps[-1]))
            scope.gauge("last_staleness_seconds").set(float(seconds[-1]))
        scope.gauge("serving_ne").set(result.serving_ne())
        scope.gauge("ne_gap").set(result.ne_gap())
        scope.counter("requests").inc(result.report.num_offered)
        scope.counter("shed_during_swap").inc(result.shed_during_swap)

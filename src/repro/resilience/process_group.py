"""A fault-injecting process group over the simulated collectives.

:class:`FaultyProcessGroup` subclasses
:class:`repro.comms.SimProcessGroup` and intercepts its single
``_execute`` funnel, so every collective — AllReduce, the three
AlltoAll flavours, ReduceScatter, AllGather, Broadcast — passes through
the fault machinery with no per-collective code. For each call it asks
the :class:`repro.resilience.FaultSchedule` which faults fire, then:

* **DELAY** adds the straggler's extra seconds to that rank's modeled
  latency (the synchronous collective finishes at the *max* over ranks,
  so one slow rank stalls everyone — the pathology the paper's ZionEX
  design works around);
* **DROP** and **CORRUPT** burn whole retry windows under the
  :class:`repro.resilience.RetryPolicy` — timeout plus exponential
  backoff per failed attempt — and charge timeout strikes to the
  offending rank when a window is exhausted;
* **CRASH**, or a rank crossing the :class:`HealthTracker` strike
  threshold, raises :class:`repro.resilience.RankFailure` so the
  training loop can run checkpoint recovery.

Numerics are never touched: corruption is detected on a scratch copy
(a real bit is flipped and caught, modeling the link CRC) and the
payload that reaches the reduction is pristine. With an empty schedule
the group is bit-identical to ``SimProcessGroup`` and adds only a
cheap health observation per collective.

Everything is published to the ``resilience`` metric scope:
``faults_injected`` (labelled by kind), ``retries``,
``corruptions_detected``, ``timeout_strikes``, ``ranks_dead`` and
``fault_seconds`` (modeled seconds added by faults).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..comms.process_group import CollectiveResult, SimProcessGroup
from ..comms.quantization import QuantizedCommsConfig
from ..comms.topology import ClusterTopology
from ..obs.metrics import MetricRegistry
from .faults import FaultKind, FaultSchedule, FaultSpec, RankFailure
from .retry import HealthTracker, RetryPolicy

__all__ = ["FaultyProcessGroup", "faulty_process_group_factory"]


def _first_array(inputs: Sequence) -> Optional[np.ndarray]:
    """The first ndarray payload in a (possibly nested) input list."""
    for item in inputs:
        if isinstance(item, np.ndarray):
            return item
        if isinstance(item, (list, tuple)):
            found = _first_array(item)
            if found is not None:
                return found
    return None


class FaultyProcessGroup(SimProcessGroup):
    """``SimProcessGroup`` plus deterministic fault injection.

    Drop-in replacement: same constructor signature plus ``schedule``,
    ``policy`` and ``health`` keywords, so it can be handed to
    ``NeoTrainer(process_group_factory=...)`` (or built via
    :func:`faulty_process_group_factory`). With an empty schedule the
    collectives' outputs, byte accounting and modeled seconds are
    bit-identical to the base class.
    """

    def __init__(self, topology: ClusterTopology,
                 comms_config: Optional[QuantizedCommsConfig] = None,
                 registry: Optional[MetricRegistry] = None,
                 tracer=None, *,
                 schedule: Optional[FaultSchedule] = None,
                 policy: Optional[RetryPolicy] = None,
                 health: Optional[HealthTracker] = None) -> None:
        super().__init__(topology, comms_config, registry, tracer)
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.policy = policy if policy is not None else RetryPolicy()
        self.health = health if health is not None \
            else HealthTracker(topology.world_size)
        if self.health.world_size != topology.world_size:
            raise ValueError(
                f"health tracker sized for {self.health.world_size} ranks, "
                f"topology has {topology.world_size}")
        self._iteration = 0
        self._bind_scope()

    def _bind_scope(self) -> None:
        self._res = self.registry.scope("resilience")

    def instrument(self, tracer=None,
                   registry: Optional[MetricRegistry] = None) -> None:
        super().instrument(tracer, registry)
        if registry is not None:
            self._bind_scope()

    def on_iteration_start(self, step: int) -> None:
        self._iteration = step

    @property
    def iteration(self) -> int:
        """The logical step faults are currently keyed on."""
        return self._iteration

    # ------------------------------------------------------------------
    def _detect_corruption(self, inputs: Sequence) -> bool:
        """Flip a real bit in a scratch copy and check the CRC catches it.

        Models an on-the-wire corruption + link-level checksum: the
        corrupted copy must differ from the original payload. The
        payload actually handed to the reduction is never touched.
        """
        arr = _first_array(inputs)
        if arr is None or arr.size == 0:
            return False
        scratch = np.array(arr, copy=True)
        scratch.view(np.uint8).reshape(-1)[0] ^= 0x01
        return not np.array_equal(scratch, arr)

    def _apply_fault(self, spec: FaultSpec, name: str,
                     per_rank: List[float], inputs: Sequence) -> None:
        """Fold one firing fault into the per-rank latency vector."""
        self._res.counter("faults_injected", kind=spec.kind.value).inc(1)
        if spec.kind is FaultKind.CRASH:
            self.health.mark_dead(spec.rank)
            self._res.counter("ranks_dead").inc(1)
            raise RankFailure(spec.rank, self._iteration, name)
        if spec.kind is FaultKind.DELAY:
            per_rank[spec.rank] += spec.delay_seconds
            return
        # DROP / CORRUPT: spec.failures attempts fail, then one succeeds
        if spec.kind is FaultKind.CORRUPT:
            if self._detect_corruption(inputs):
                self._res.counter("corruptions_detected").inc(spec.failures)
        self._res.counter("retries").inc(spec.failures)
        per_rank[spec.rank] += self.policy.penalty(spec.failures)
        strikes = self.policy.strikes(spec.failures)
        if strikes:
            self._res.counter("timeout_strikes").inc(strikes)
            if self.health.record_timeout(spec.rank, strikes):
                self._res.counter("ranks_dead").inc(1)
                raise RankFailure(spec.rank, self._iteration, name)

    def _execute(self, name: str, inputs: Sequence, total_wire: float,
                 seconds: float, fn: Callable[[], list]) -> CollectiveResult:
        if not self.schedule.pending:
            # zero-fault fast path: bit-identical to SimProcessGroup,
            # only a health observation on top
            self.health.observe_uniform(seconds)
            return super()._execute(name, inputs, total_wire, seconds, fn)

        faults = self.schedule.take(self._iteration, name)
        if not faults:
            self.health.observe_uniform(seconds)
            return super()._execute(name, inputs, total_wire, seconds, fn)

        per_rank = [seconds] * self.world_size
        for spec in faults:
            self._apply_fault(spec, name, per_rank, inputs)
        # a synchronous collective completes when its slowest rank does
        effective = max(per_rank)
        self._res.counter("fault_seconds").inc(effective - seconds)
        self.health.observe(per_rank)
        result = super()._execute(name, inputs, total_wire, effective, fn)
        result.per_rank_seconds = list(per_rank)
        return result


def faulty_process_group_factory(
        schedule: Optional[FaultSchedule] = None,
        policy: Optional[RetryPolicy] = None,
        dead_after: int = 2,
        straggler_factor: float = 2.0,
) -> Callable[..., FaultyProcessGroup]:
    """A ``process_group_factory`` for ``NeoTrainer`` with faults baked in.

    The returned callable matches the trainer's factory signature
    ``(topology, comms_config, registry=..., tracer=...)``. The
    *schedule* object is shared across every group the factory builds,
    so faults consumed before a recovery do not re-fire in the replayed
    iterations of the post-recovery trainer; the health tracker is
    fresh per group (a replacement host starts with a clean record).
    """
    shared = schedule if schedule is not None else FaultSchedule()

    def factory(topology: ClusterTopology,
                comms_config: Optional[QuantizedCommsConfig] = None,
                registry: Optional[MetricRegistry] = None,
                tracer=None) -> FaultyProcessGroup:
        return FaultyProcessGroup(
            topology, comms_config, registry=registry, tracer=tracer,
            schedule=shared, policy=policy,
            health=HealthTracker(topology.world_size,
                                 straggler_factor=straggler_factor,
                                 dead_after=dead_after))

    return factory

"""Tests for serving export: freeze parity, quantization, immutability.

The headline guarantee is bitwise: an fp32 ``ServableModel.forward`` must
equal the source model's eval forward exactly — against the reference
DLRM and against the distributed trainer's ``eval_forward`` (with
summation-order-preserving sharding schemes). Quantized paths get
measured error bounds, and everything frozen must refuse writes.
"""

import numpy as np
import pytest

from repro import nn
from repro.embedding import SparseSGD
from repro.models import DLRM, ZOO_SIZES, zoo_config
from repro.serving import FreezeConfig, ServableModel, freeze

from .helpers import tiny_config, tiny_dataset, tiny_trainer


def make_config(num_tables=3, rows=150, dim=8, dense_dim=6):
    """This suite's tiny DLRM (fewer rows than the shared default)."""
    return tiny_config(num_tables, rows, dim, dense_dim)


class TestFp32Parity:
    def test_bitwise_vs_reference_dlrm(self):
        config = make_config()
        model = DLRM(config, seed=3)
        servable = freeze(model)
        batch = tiny_dataset(config).batch(32, 7)
        np.testing.assert_array_equal(servable.forward(batch),
                                      model.forward(batch))

    def test_bitwise_vs_trainer_eval_forward(self):
        config = make_config(num_tables=4)
        trainer = tiny_trainer(config, world=2, seed=5)
        ds = tiny_dataset(config, seed=9)
        for i in range(3):
            trainer.train_step(ds.batch(8, i).split(2))
        batch = ds.batch(8, 50)
        per_rank = trainer.eval_forward(batch.split(2))
        servable = freeze(trainer)
        np.testing.assert_array_equal(servable.forward(batch),
                                      np.concatenate(per_rank))

    def test_eval_forward_does_not_mutate(self):
        config = make_config()
        trainer = tiny_trainer(config)
        ds = tiny_dataset(config)
        trainer.train_step(ds.batch(8, 0).split(2))
        shards = {t.name: trainer.plan.tables[t.name].shards[0]
                  for t in config.tables}
        before = {n: trainer._shard_tables[s].weight.copy()
                  for n, s in shards.items()}
        dense_before = [p.data.copy()
                        for p in trainer.ranks[0].bottom.parameters()]
        trainer.eval_forward(ds.batch(8, 1).split(2))
        for n, s in shards.items():
            np.testing.assert_array_equal(
                trainer._shard_tables[s].weight, before[n])
        for p, w in zip(trainer.ranks[0].bottom.parameters(), dense_before):
            np.testing.assert_array_equal(p.data, w)

    def test_eval_forward_validates_batches(self):
        config = make_config()
        trainer = tiny_trainer(config)
        b = tiny_dataset(config).batch(8, 0)
        with pytest.raises(ValueError):
            trainer.eval_forward([b])  # wrong count for world=2

    def test_predict_is_sigmoid_of_forward(self):
        config = make_config()
        model = DLRM(config, seed=1)
        servable = freeze(model)
        batch = tiny_dataset(config).batch(16, 0)
        logits = servable.forward(batch)
        np.testing.assert_allclose(servable.predict(batch),
                                   1.0 / (1.0 + np.exp(-logits)), rtol=1e-6)


class TestZooRoundTrip:
    """Every serving-zoo tier must freeze and serve bitwise-identically
    to its source model — the invariant the multi-tenant fleet builds
    on (one frozen artifact per tenant, no tier-specific drift)."""

    @pytest.mark.parametrize("size", ZOO_SIZES)
    def test_zoo_config_freeze_forward_bitwise(self, size):
        config = zoo_config(size)
        model = DLRM(config, seed=11)
        servable = freeze(model)
        batch = tiny_dataset(config, seed=3).batch(16, 2)
        np.testing.assert_array_equal(servable.forward(batch),
                                      model.forward(batch))
        # round-trip bookkeeping: fp32 artifact, every table hot
        assert servable.precision == "fp32"
        assert not servable.cold_table_names

    @pytest.mark.parametrize("size", ZOO_SIZES)
    def test_zoo_config_is_trainable_shape(self, size):
        config = zoo_config(size)
        assert len(config.tables) >= 2
        assert all(t.num_embeddings <= 2048 for t in config.tables)

    def test_zoo_sizes_are_ordered_by_cost(self):
        params = [sum(t.num_parameters for t in zoo_config(s).tables)
                  for s in ZOO_SIZES]
        assert params == sorted(params)
        assert params[0] < params[-1]

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            zoo_config("huge")


class TestQuantizedFreeze:
    @pytest.mark.parametrize("precision,bound", [
        ("fp16", 1e-3), ("bf16", 8e-3), ("int8", 1e-2)])
    def test_bounded_logit_error(self, precision, bound):
        config = make_config()
        model = DLRM(config, seed=3)
        batch = tiny_dataset(config).batch(64, 2)
        reference = model.forward(batch)
        servable = freeze(model, FreezeConfig(precision=precision))
        err = np.max(np.abs(servable.forward(batch) - reference))
        assert 0 < err < bound

    @pytest.mark.parametrize("precision", ["fp16", "bf16", "int8"])
    def test_quantization_error_recorded(self, precision):
        config = make_config()
        servable = freeze(DLRM(config, seed=3),
                          FreezeConfig(precision=precision))
        assert set(servable.quantization_error) == \
            {t.name for t in config.tables}
        assert servable.max_quantization_error() > 0

    def test_fp32_has_zero_recorded_error(self):
        config = make_config()
        servable = freeze(DLRM(config, seed=3))
        assert servable.max_quantization_error() == 0.0

    def test_storage_bytes_shrink_with_precision(self):
        # dim wide enough that int8's per-row scale/offset overhead
        # (8 bytes) stays below the payload saving vs fp16
        config = make_config(dim=32)
        model = DLRM(config, seed=0)
        by_prec = {p: freeze(model, FreezeConfig(precision=p))
                   .embedding_storage_bytes()
                   for p in ("fp32", "fp16", "int8")}
        assert by_prec["fp16"] == by_prec["fp32"] // 2
        assert by_prec["int8"] < by_prec["fp16"]
        emb_params = sum(t.num_parameters for t in config.tables)
        rows = sum(t.num_embeddings for t in config.tables)
        assert by_prec["int8"] == emb_params + rows * 8  # scale/offset pairs

    def test_rejects_unknown_precision(self):
        with pytest.raises(ValueError):
            FreezeConfig(precision="fp8")


class TestHotColdPlacement:
    def test_all_hot_by_default(self):
        config = make_config()
        servable = freeze(DLRM(config, seed=0))
        assert len(servable.hot_table_names) == len(config.tables)
        assert servable.cold_table_names == []

    def test_budget_splits_hot_cold(self):
        config = make_config(num_tables=3, rows=150, dim=8)
        table_bytes = 150 * 8 * 4
        servable = freeze(DLRM(config, seed=0),
                          FreezeConfig(hot_bytes=table_bytes * 1.5))
        assert len(servable.hot_table_names) == 1
        assert len(servable.cold_table_names) == 2

    def test_cold_path_is_bitwise_exact(self):
        config = make_config()
        model = DLRM(config, seed=4)
        servable = freeze(model, FreezeConfig(hot_bytes=0.0))
        assert servable.hot_tables is None
        assert len(servable.cold_table_names) == len(config.tables)
        batch = tiny_dataset(config).batch(32, 3)
        np.testing.assert_array_equal(servable.forward(batch),
                                      model.forward(batch))

    def test_cold_tables_count_cache_traffic(self):
        # cache_fraction=1.0 so every row fits: with serve-path dedup the
        # cache only sees each unique id once per dispatch, so hits come
        # from Zipf ids recurring *across* dispatches
        config = make_config()
        servable = freeze(DLRM(config, seed=4),
                          FreezeConfig(hot_bytes=0.0, cache_fraction=1.0))
        ds = tiny_dataset(config)
        for i in range(3):
            servable.forward(ds.batch(32, i))
        for name in servable.cold_table_names:
            table = servable.cold_tables[name]
            stats = table.cache.stats
            assert stats.accesses > 0
            assert stats.hits > 0  # Zipf ids revisit hot rows
            # within-dispatch repeats were absorbed by dedup
            assert table.rows_read < table.rows_requested

    def test_cold_dedup_matches_undeduped_path(self):
        config = make_config()
        model = DLRM(config, seed=4)
        deduped = freeze(model, FreezeConfig(hot_bytes=0.0, dedup=True))
        plain = freeze(model, FreezeConfig(hot_bytes=0.0, dedup=False))
        batch = tiny_dataset(config).batch(32, 3)
        np.testing.assert_array_equal(deduped.forward(batch),
                                      plain.forward(batch))
        for name in deduped.cold_table_names:
            assert deduped.cold_tables[name].rows_read < \
                plain.cold_tables[name].rows_read


class TestImmutability:
    def test_dense_weights_frozen(self):
        servable = freeze(DLRM(make_config(), seed=0))
        with pytest.raises(ValueError):
            servable.bottom.parameters()[0].data[0, 0] = 1.0
        with pytest.raises(ValueError):
            servable.top.parameters()[-1].data[...] = 0.0

    def test_arena_storage_and_views_frozen(self):
        servable = freeze(DLRM(make_config(), seed=0))
        arena = servable.hot_tables.arena
        for group in arena.groups:
            with pytest.raises(ValueError):
                group.storage[0, 0] = 1.0
            for view in group.views:
                with pytest.raises(ValueError):
                    view[0, 0] = 1.0

    def test_cold_backing_frozen(self):
        servable = freeze(DLRM(make_config(), seed=0),
                          FreezeConfig(hot_bytes=0.0))
        for name in servable.cold_table_names:
            backing = servable.cold_tables[name].backing
            with pytest.raises(ValueError):
                backing.rows[0, 0] = 1.0

    def test_source_model_stays_trainable(self):
        config = make_config()
        model = DLRM(config, seed=0)
        freeze(model)
        ds = tiny_dataset(config)
        opt = nn.SGD(model.dense_parameters(), lr=0.1)
        model.train_step(ds.batch(8, 0), opt, SparseSGD(lr=0.1))  # no raise


class TestFreezeValidation:
    def test_rejects_non_model(self):
        with pytest.raises(TypeError):
            freeze(object())

    def test_servable_is_dataclass_with_footprint(self):
        config = make_config()
        servable = freeze(DLRM(config, seed=0))
        assert isinstance(servable, ServableModel)
        assert servable.storage_bytes() == \
            servable.embedding_storage_bytes() + \
            servable.dense_storage_bytes()
        assert servable.dense_storage_bytes() == \
            config.num_dense_parameters() * 4

    def test_nnz_counts_all_features(self):
        config = make_config()
        servable = freeze(DLRM(config, seed=0))
        batch = tiny_dataset(config).batch(16, 0)
        expected = sum(len(ids) for ids, _ in batch.sparse.values())
        assert servable.nnz(batch) == expected

"""Fault-tolerance benchmark: zero-fault overhead and time-to-recover.

Two acceptance properties of the resilience layer are measured on a
real (simulated-cluster) training workload:

* **zero-fault overhead** — training under ``FaultyProcessGroup`` with
  an empty schedule must be bitwise identical to ``SimProcessGroup``
  and cost almost nothing extra on the wall clock (the health-tracking
  observation is the only added work). CI enforces <= 5%.
* **recovery drill** — a rank is crashed mid-run; the loop restores the
  newest checkpoint onto a replacement world and replays. Reported:
  wall-clock time-to-recover, lost steps, and a bitwise comparison of
  the recovered final state against an uninterrupted reference run at
  the same sample budget (must be exact).

Run standalone to write ``BENCH_recovery.json``::

    PYTHONPATH=src python benchmarks/bench_recovery.py \
        [--quick] [--out PATH] [--max-overhead PCT]

``--quick`` shrinks the workload for CI smoke runs; ``--max-overhead``
exits nonzero if the zero-fault wall-clock overhead exceeds the given
percentage. Recovery parity is always asserted.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import nn
from repro.comms import ClusterTopology
from repro.core import CheckpointManager, NeoTrainer, TrainingLoop
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRMConfig
from repro.resilience import (FaultKind, FaultSchedule, FaultSpec,
                              RecoveryManager,
                              faulty_process_group_factory)
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

FULL_CONFIG = dict(world=4, steps=24, global_batch=32, rows=512, dim=16,
                   num_tables=4, reps=4, checkpoint_every=6, crash_at=15)
QUICK_CONFIG = dict(world=2, steps=10, global_batch=16, rows=128, dim=8,
                    num_tables=2, reps=3, checkpoint_every=3, crash_at=7)


def build_parts(world, rows, dim, num_tables, pg_factory=None, seed=0):
    tables = tuple(EmbeddingTableConfig(f"t{i}", rows, dim, avg_pooling=2.0)
                   for i in range(num_tables))
    config = DLRMConfig(dense_dim=8, bottom_mlp=(16, dim), tables=tables,
                        top_mlp=(16,))
    plan = ShardingPlan(world_size=world)
    for i, t in enumerate(tables):
        plan.tables[t.name] = shard_table(t, ShardingScheme.TABLE_WISE,
                                          [i % world])
    plan.validate()
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1, momentum=0.9),
        sparse_optimizer=SparseSGD(lr=0.1), seed=seed,
        process_group_factory=pg_factory)
    dataset = SyntheticCTRDataset(tables, dense_dim=8, noise=0.2, seed=1)
    return trainer, dataset


def _run_once(make_trainer, batches):
    """One timed pass over ``batches``; returns (seconds, losses)."""
    trainer = make_trainer()
    shards = [b.split(trainer.world_size) for b in batches]
    t0 = time.perf_counter()
    losses = [trainer.train_step(s) for s in shards]
    return time.perf_counter() - t0, losses


def measure_overhead(config):
    """Plain vs empty-schedule FaultyProcessGroup on the same workload.

    The two variants are timed in interleaved best-of-``reps`` pairs so
    clock/thermal drift lands on both sides equally instead of biasing
    whichever block ran second.
    """
    kw = dict(world=config["world"], rows=config["rows"], dim=config["dim"],
              num_tables=config["num_tables"])
    _, dataset = build_parts(**kw)
    batches = dataset.batches(config["global_batch"], config["steps"])
    make_plain = lambda: build_parts(**kw)[0]
    make_faulty = lambda: build_parts(
        pg_factory=faulty_process_group_factory(), **kw)[0]
    plain_s = faulty_s = float("inf")
    plain_losses = faulty_losses = []
    for _ in range(config["reps"]):
        s, plain_losses = _run_once(make_plain, batches)
        plain_s = min(plain_s, s)
        s, faulty_losses = _run_once(make_faulty, batches)
        faulty_s = min(faulty_s, s)
    return {
        "plain_seconds": plain_s,
        "faulty_seconds": faulty_s,
        "overhead_pct": 100.0 * (faulty_s / plain_s - 1.0),
        "bitwise_parity": plain_losses == faulty_losses,
    }


def recovery_drill(config, tmpdir):
    """Crash a rank mid-run, recover, compare against an uninterrupted
    run bitwise. Returns timings + parity verdicts."""
    import tempfile
    tmpdir = tempfile.mkdtemp(dir=tmpdir)  # fresh per call: no stale ckpts
    kw = dict(world=config["world"], rows=config["rows"], dim=config["dim"],
              num_tables=config["num_tables"])
    schedule = FaultSchedule([FaultSpec(FaultKind.CRASH, rank=1,
                                        iteration=config["crash_at"])])
    pg_factory = faulty_process_group_factory(schedule=schedule)

    def trainer_factory(world):
        trainer, _ = build_parts(pg_factory=pg_factory,
                                 **{**kw, "world": world})
        return trainer

    mgr = CheckpointManager(tmpdir)
    recovery = RecoveryManager(trainer_factory=trainer_factory,
                               checkpoint_manager=mgr)
    trainer, dataset = build_parts(pg_factory=pg_factory, **kw)
    loop = TrainingLoop(trainer, dataset,
                        global_batch_size=config["global_batch"],
                        eval_every=10 ** 6, checkpoint_manager=mgr,
                        checkpoint_every=config["checkpoint_every"],
                        recovery=recovery)
    t0 = time.perf_counter()
    result = loop.run(config["steps"])
    total_s = time.perf_counter() - t0

    ref_trainer, ref_dataset = build_parts(**kw)
    ref = TrainingLoop(ref_trainer, ref_dataset,
                       global_batch_size=config["global_batch"],
                       eval_every=10 ** 6)
    ref_result = ref.run(config["steps"])

    tables_equal = all(
        np.array_equal(loop.trainer.gather_table(t.name),
                       ref_trainer.gather_table(t.name))
        for t in ref_trainer.config.tables)
    dense_equal = all(
        np.array_equal(a.data, b.data)
        for a, b in zip(loop.trainer.ranks[0].dense_parameters(),
                        ref_trainer.ranks[0].dense_parameters()))
    event = result.recoveries[0]
    return {
        "failed_iteration": event.failed_iteration,
        "restored_step": event.restored_step,
        "lost_steps": event.lost_steps,
        "time_to_recover_seconds": event.seconds,
        "run_seconds_with_failure": total_s,
        "losses_match": result.losses == ref_result.losses,
        "final_state_bitwise": bool(tables_equal and dense_equal),
    }


def run_benchmark(quick=False, tmpdir=None):
    config = dict(QUICK_CONFIG if quick else FULL_CONFIG)
    if tmpdir is None:
        import tempfile
        tmpdir = tempfile.mkdtemp(prefix="bench_recovery_")
    overhead = measure_overhead(config)
    drill = recovery_drill(config, tmpdir)
    return {
        "benchmark": "recovery",
        "mode": "quick" if quick else "full",
        "config": config,
        "zero_fault_overhead": overhead,
        "recovery_drill": drill,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_recovery.json",
                        help="output JSON path")
    parser.add_argument("--max-overhead", type=float, default=None,
                        metavar="PCT",
                        help="fail if zero-fault overhead exceeds PCT%%")
    args = parser.parse_args(argv)
    result = run_benchmark(quick=args.quick)
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    ov = result["zero_fault_overhead"]
    drill = result["recovery_drill"]
    print(f"mode={result['mode']}  zero-fault overhead "
          f"{ov['overhead_pct']:+.2f}% (parity={ov['bitwise_parity']})")
    print(f"recovery: restored step {drill['restored_step']} after crash "
          f"at {drill['failed_iteration']}, lost {drill['lost_steps']} "
          f"step(s), rebuilt in {drill['time_to_recover_seconds']:.3f}s, "
          f"final state bitwise={drill['final_state_bitwise']}")
    print(f"wrote {args.out}")
    if not ov["bitwise_parity"]:
        print("FAIL: zero-fault run not bitwise-identical to plain run",
              file=sys.stderr)
        return 1
    if not (drill["final_state_bitwise"] and drill["losses_match"]):
        print("FAIL: recovered run diverged from uninterrupted reference",
              file=sys.stderr)
        return 1
    if args.max_overhead is not None and \
            ov["overhead_pct"] > args.max_overhead:
        print(f"FAIL: zero-fault overhead {ov['overhead_pct']:.2f}% > "
              f"floor {args.max_overhead:.2f}%", file=sys.stderr)
        return 1
    return 0


def test_zero_fault_overhead(benchmark, report):
    """Empty-schedule FaultyProcessGroup: bitwise parity, tiny overhead."""
    result = benchmark(measure_overhead, dict(QUICK_CONFIG))
    report("zero-fault FaultyProcessGroup overhead",
           ["plain s", "faulty s", "overhead %", "bitwise"],
           [(f"{result['plain_seconds']:.3f}",
             f"{result['faulty_seconds']:.3f}",
             f"{result['overhead_pct']:+.2f}",
             result["bitwise_parity"])])
    assert result["bitwise_parity"]
    # generous wall-clock bound for shared CI machines; the standalone
    # run enforces the 5% acceptance floor via --max-overhead
    assert result["overhead_pct"] < 25.0


def test_recovery_drill(benchmark, report, tmp_path):
    """Crash -> restore -> replay must be bitwise-exact end to end."""
    result = benchmark(recovery_drill, dict(QUICK_CONFIG), str(tmp_path))
    report("recovery drill (crash at iteration "
           f"{QUICK_CONFIG['crash_at']})",
           ["restored", "lost", "recover s", "bitwise"],
           [(result["restored_step"], result["lost_steps"],
             f"{result['time_to_recover_seconds']:.3f}",
             result["final_state_bitwise"])])
    assert result["losses_match"]
    assert result["final_state_bitwise"]
    assert result["lost_steps"] == \
        QUICK_CONFIG["crash_at"] - result["restored_step"]


if __name__ == "__main__":
    sys.exit(main())

"""ROC-AUC, the second standard CTR-model quality metric.

The paper reports normalized entropy; production evaluation dashboards
pair it with AUC. Included for a complete evaluation toolkit (and because
NE and AUC can disagree — NE is calibration-sensitive, AUC is not, a
distinction the calibration metric makes measurable).
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_auc"]


def roc_auc(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-statistic formulation.

    ``AUC = (sum of positive ranks - n_pos(n_pos+1)/2) / (n_pos * n_neg)``
    with average ranks for ties — equivalent to the Mann-Whitney U
    statistic, O(n log n).
    """
    p = np.asarray(predictions, dtype=np.float64).ravel()
    y = np.asarray(labels, dtype=np.float64).ravel()
    if p.shape != y.shape:
        raise ValueError(f"shape mismatch {p.shape} vs {y.shape}")
    if p.size == 0:
        raise ValueError("empty batch")
    n_pos = float(np.sum(y == 1))
    n_neg = float(np.sum(y == 0))
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both classes present")
    order = np.argsort(p, kind="mergesort")
    sorted_p = p[order]
    ranks = np.empty(len(p), dtype=np.float64)
    # average ranks over tie groups
    i = 0
    while i < len(p):
        j = i
        while j + 1 < len(p) and sorted_p[j + 1] == sorted_p[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    pos_rank_sum = float(np.sum(ranks[y == 1]))
    return (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)

"""Tests for the greedy and Karmarkar-Karp (LDM) partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding import (greedy_partition, ldm_partition,
                            partition_quality)


def check_valid(assignment, costs, num_bins):
    assert len(assignment.bins) == num_bins
    all_items = sorted(i for b in assignment.bins for i in b)
    assert all_items == list(range(len(costs)))
    for b, load in zip(assignment.bins, assignment.loads):
        assert load == pytest.approx(sum(costs[i] for i in b))


class TestGreedy:
    def test_simple_case(self):
        a = greedy_partition([4, 3, 2, 1], 2)
        check_valid(a, [4, 3, 2, 1], 2)
        assert sorted(a.loads) == [5, 5]

    def test_single_bin(self):
        a = greedy_partition([1, 2, 3], 1)
        assert a.loads == [6]

    def test_more_bins_than_items(self):
        a = greedy_partition([5, 3], 4)
        check_valid(a, [5, 3], 4)
        assert sorted(a.loads) == [0, 0, 3, 5]

    def test_empty(self):
        a = greedy_partition([], 3)
        assert a.loads == [0.0, 0.0, 0.0]

    def test_negative_cost_raises(self):
        with pytest.raises(ValueError):
            greedy_partition([1, -1], 2)

    def test_zero_bins_raises(self):
        with pytest.raises(ValueError):
            greedy_partition([1], 0)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=0,
                    max_size=40),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_valid_assignment_property(self, costs, k):
        check_valid(greedy_partition(costs, k), costs, k)


class TestLDM:
    def test_classic_kk_example(self):
        """{8,7,6,5,4} 2-way: the textbook KK trace gives 16/14 (spread 2):
        8,7->1; 6,5->1; 4,1->3; 3,1->2."""
        a = ldm_partition([8, 7, 6, 5, 4], 2)
        check_valid(a, [8, 7, 6, 5, 4], 2)
        assert a.spread == 2

    def test_beats_greedy_on_known_instance(self):
        """{8,7,6,5,4} 2-way: greedy LPT yields 17/13 (spread 4), KK 2."""
        costs = [8, 7, 6, 5, 4]
        g = greedy_partition(costs, 2)
        l = ldm_partition(costs, 2)
        assert g.spread == 4
        assert l.spread == 2

    def test_three_way(self):
        a = ldm_partition([9, 8, 7, 6, 5, 4, 3, 2, 1], 3)
        check_valid(a, [9, 8, 7, 6, 5, 4, 3, 2, 1], 3)
        assert a.spread <= 2  # optimal is 0 (15/15/15); LDM gets close

    def test_empty(self):
        a = ldm_partition([], 2)
        assert a.loads == [0.0, 0.0]

    def test_single_item(self):
        a = ldm_partition([7], 3)
        assert sorted(a.loads) == [0, 0, 7]

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                    max_size=30),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=50)
    def test_valid_assignment_property(self, costs, k):
        check_valid(ldm_partition(costs, k), costs, k)

    def test_usually_no_worse_than_greedy(self):
        """Paper: LDM 'usually works better than the greedy heuristic'.
        Statistically verify over random instances."""
        rng = np.random.default_rng(0)
        wins = 0
        trials = 100
        for _ in range(trials):
            costs = rng.lognormal(mean=2.0, sigma=1.0, size=40).tolist()
            q = partition_quality(costs, 8)
            if q["ldm_spread"] <= q["greedy_spread"] + 1e-9:
                wins += 1
        assert wins >= trials * 0.7

    def test_imbalance_metric(self):
        a = ldm_partition([10, 10], 2)
        assert a.imbalance == pytest.approx(1.0)

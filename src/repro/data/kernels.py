"""Input-redistribution kernels: permute, bucketize, replicate
(paper Section 4.4).

After the input AlltoAll, a worker holds the global batch's ids for its
local tables in ``(W, T, B)`` segment order (grouped by source worker);
the embedding kernel wants ``(T, W, B)`` (grouped by table). Row-wise
sharding additionally needs ids *bucketized* by destination row range, and
column-wise sharding needs ids *replicated* per column shard. The paper
implements these as custom GPU kernels; here they are exact vectorized
numpy transforms with the same contracts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["permute_jagged", "bucketize_sparse", "replicate_sparse"]


def permute_jagged(lengths: np.ndarray, values: np.ndarray,
                   shape: Tuple[int, ...],
                   perm: Tuple[int, ...]) -> Tuple[np.ndarray, np.ndarray]:
    """Reorder the segments of a jagged tensor.

    ``lengths`` holds one entry per segment, laid out row-major according
    to ``shape`` (e.g. ``(W, T, B)``); ``values`` concatenates the segments
    in that order. Returns ``(new_lengths, new_values)`` with segments
    reordered row-major according to ``shape`` permuted by ``perm`` (e.g.
    ``perm=(1, 0, 2)`` for (W,T,B) -> (T,W,B)).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    values = np.asarray(values)
    total_segments = int(np.prod(shape))
    if len(lengths) != total_segments:
        raise ValueError(
            f"lengths has {len(lengths)} segments, shape {shape} implies "
            f"{total_segments}")
    if int(lengths.sum()) != len(values):
        raise ValueError(
            f"values has {len(values)} items but lengths sum to "
            f"{int(lengths.sum())}")
    if sorted(perm) != list(range(len(shape))):
        raise ValueError(f"perm {perm} is not a permutation of axes")
    segment_order = np.arange(total_segments).reshape(shape)
    new_order = segment_order.transpose(perm).reshape(-1)
    offsets = np.zeros(total_segments + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    new_lengths = lengths[new_order]
    if len(values) == 0:
        return new_lengths, values.copy()
    gather = np.concatenate(
        [np.arange(offsets[s], offsets[s + 1]) for s in new_order])
    return new_lengths, values[gather]


def bucketize_sparse(indices: np.ndarray, lengths: np.ndarray,
                     boundaries: Sequence[int]
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split jagged ids into row-range buckets for row-wise sharding.

    ``boundaries`` are the bucket cut points ``[0, b1, ..., H]``: bucket
    ``k`` owns rows ``[boundaries[k], boundaries[k+1])``. Each input bag
    splits into one sub-bag per bucket; returned ids are *rebased* to the
    bucket's local row numbering (id - bucket start), which is what the
    shard's local embedding table expects.

    Returns one ``(local_indices, lengths)`` pair per bucket; relative
    order of ids within a bag is preserved, and the union of all buckets'
    ids is exactly the input multiset.
    """
    indices = np.asarray(indices, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    boundaries = np.asarray(list(boundaries), dtype=np.int64)
    if len(boundaries) < 2 or boundaries[0] != 0:
        raise ValueError("boundaries must start at 0 and have >= 2 entries")
    if np.any(np.diff(boundaries) <= 0):
        raise ValueError("boundaries must be strictly increasing")
    if int(lengths.sum()) != len(indices):
        raise ValueError("lengths must sum to len(indices)")
    if len(indices) and (indices.min() < 0
                         or indices.max() >= boundaries[-1]):
        raise IndexError("indices outside [0, boundaries[-1])")
    num_buckets = len(boundaries) - 1
    bag_ids = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    bucket_of = np.searchsorted(boundaries, indices, side="right") - 1
    out = []
    for k in range(num_buckets):
        mask = bucket_of == k
        local = indices[mask] - boundaries[k]
        bucket_lengths = np.bincount(bag_ids[mask],
                                     minlength=len(lengths)).astype(np.int64)
        out.append((local, bucket_lengths))
    return out


def replicate_sparse(indices: np.ndarray, lengths: np.ndarray,
                     copies: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Duplicate the id stream for column-wise shards (Section 4.2.3).

    Every column shard needs the full index stream (it owns all rows but a
    slice of columns); this is the input-payload inflation CW trades for
    finer balance.
    """
    if copies <= 0:
        raise ValueError("copies must be positive")
    indices = np.asarray(indices, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    return [(indices.copy(), lengths.copy()) for _ in range(copies)]

"""Section 5.3.2: large-batch training quality parity.

"Lastly, we further increase the global batch size, from 64K to 256K...
With appropriately tuned optimizer/hyper-parameters we are able to
achieve on-par training quality."

Functional reproduction at mini scale: the same model and sample stream
trained with a 4x larger global batch and the linear-scaled learning
rate reaches on-par held-out normalized entropy at equal samples
consumed. A warmup arm is reported too (the conservative production
recipe; at this short horizon its cost is visible, which is why the
paper calls large-batch DLRM tuning "not as well studied" and future
work).
"""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad
from repro.metrics import normalized_entropy
from repro.models import DLRMConfig
from repro.nn import WarmupLinearDecay, linear_scaled_lr
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

WORLD = 4
BASE_BATCH = 64
LARGE_BATCH = 256   # 4x, mirroring 64K -> 256K
TOTAL_SAMPLES = 61_440
BASE_LR = 0.005


def run_arm(batch_size, lr, warmup_fraction=0.0):
    tables = tuple(EmbeddingTableConfig(f"t{i}", 256, 8, avg_pooling=3.0)
                   for i in range(4))
    config = DLRMConfig(dense_dim=8, bottom_mlp=(16, 8), tables=tables,
                        top_mlp=(16,))
    ds = SyntheticCTRDataset(tables, dense_dim=8, noise=0.25, seed=11)
    plan = ShardingPlan(world_size=WORLD)
    for i, t in enumerate(config.tables):
        plan.tables[t.name] = shard_table(t, ShardingScheme.TABLE_WISE,
                                          [i % WORLD])
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=WORLD),
        dense_optimizer=lambda p: nn.Adam(p, lr=lr),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0)
    steps = TOTAL_SAMPLES // batch_size
    scheduler = None
    if warmup_fraction > 0:
        scheduler = WarmupLinearDecay(
            trainer.ranks[0].dense_opt, base_lr=lr,
            warmup_steps=max(1, int(steps * warmup_fraction)),
            total_steps=steps, final_lr=lr)
    for i in range(steps):
        trainer.train_step(ds.batch(batch_size, i).split(WORLD))
        if scheduler:
            scheduler.step()
    model = trainer.to_local_model()
    test = ds.batch(8192, 900_000)
    return normalized_entropy(model.predict_proba(test), test.labels)


def test_large_batch_quality_parity(benchmark, report):
    def run():
        small = run_arm(BASE_BATCH, BASE_LR)
        scaled = linear_scaled_lr(BASE_LR, LARGE_BATCH, BASE_BATCH)
        large_scaled = run_arm(LARGE_BATCH, scaled)
        large_warmup = run_arm(LARGE_BATCH, scaled, warmup_fraction=0.1)
        return small, large_scaled, large_warmup

    small, large_scaled, large_warmup = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report("Section 5.3.2: quality at 4x batch, equal samples consumed",
           ["arm", "held-out NE"],
           [(f"batch {BASE_BATCH} (baseline)", f"{small:.4f}"),
            (f"batch {LARGE_BATCH} + linear-scaled LR",
             f"{large_scaled:.4f}"),
            (f"batch {LARGE_BATCH} + scaled LR + warmup",
             f"{large_warmup:.4f}")])
    assert small < 1.0
    # the paper's claim: tuned large-batch is on-par (<= 3% NE gap here)
    assert large_scaled <= small * 1.03
    # the warmup arm also learns (and stays in the same neighbourhood)
    assert large_warmup <= small * 1.08

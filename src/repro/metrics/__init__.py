"""Model-quality and throughput metrics."""

from .auc import roc_auc
from .normalized_entropy import (calibration, log_loss, normalized_entropy,
                                 relative_ne)

__all__ = ["log_loss", "normalized_entropy", "relative_ne", "calibration",
           "roc_auc"]

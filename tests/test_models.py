"""Tests for the DLRM reference model and the Table 3 model zoo."""

import numpy as np
import pytest

from repro import nn
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.metrics import normalized_entropy
from repro.models import (DLRM, MODEL_NAMES, TABLE3_REFERENCE, DLRMConfig,
                          full_spec, mini_config)


def small_config(num_tables=2, h=32, d=8):
    tables = tuple(EmbeddingTableConfig(f"t{i}", h, d, avg_pooling=3.0)
                   for i in range(num_tables))
    return DLRMConfig(dense_dim=4, bottom_mlp=(8, d), tables=tables,
                      top_mlp=(8,))


class TestDLRMConfig:
    def test_dim_mismatch_rejected(self):
        tables = (EmbeddingTableConfig("t", 16, 4),)
        with pytest.raises(ValueError, match="dot interaction"):
            DLRMConfig(dense_dim=4, bottom_mlp=(8,), tables=tables,
                       top_mlp=(8,))

    def test_interaction_dim(self):
        cfg = small_config(num_tables=3, d=8)
        # 4 features (dense + 3 tables): 8 + C(4,2) = 8 + 6
        assert cfg.interaction_dim == 14

    def test_parameter_counts(self):
        cfg = small_config(num_tables=2, h=32, d=8)
        assert cfg.num_embedding_parameters() == 2 * 32 * 8
        dense = (4 * 8 + 8) + (8 * 8 + 8) \
            + (cfg.interaction_dim * 8 + 8) + (8 * 1 + 1)
        assert cfg.num_dense_parameters() == dense

    def test_no_tables_rejected(self):
        with pytest.raises(ValueError):
            DLRMConfig(dense_dim=4, bottom_mlp=(8,), tables=(),
                       top_mlp=(8,))


class TestDLRM:
    def test_forward_shape(self):
        cfg = small_config()
        model = DLRM(cfg)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4)
        logits = model.forward(ds.batch(16))
        assert logits.shape == (16,)

    def test_deterministic_init(self):
        cfg = small_config()
        m1, m2 = DLRM(cfg, seed=3), DLRM(cfg, seed=3)
        b = SyntheticCTRDataset(cfg.tables, dense_dim=4).batch(8)
        np.testing.assert_array_equal(m1.forward(b), m2.forward(b))

    def test_seeds_differ(self):
        cfg = small_config()
        m1, m2 = DLRM(cfg, seed=1), DLRM(cfg, seed=2)
        b = SyntheticCTRDataset(cfg.tables, dense_dim=4).batch(8)
        assert not np.array_equal(m1.forward(b), m2.forward(b))

    def test_training_learns_synthetic_task(self):
        """End-to-end: a DLRM beats the base-rate predictor (NE < 1)."""
        cfg = small_config(num_tables=2, h=64)
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, noise=0.2, seed=1)
        dense_opt = nn.Adam(model.dense_parameters(), lr=0.01)
        sparse_opt = SparseSGD(lr=0.1)
        for i in range(150):
            model.train_step(ds.batch(64, i), dense_opt, sparse_opt)
        test = ds.batch(1024, 10_000)
        ne = normalized_entropy(model.predict_proba(test), test.labels)
        assert ne < 0.97

    def test_train_step_reduces_loss(self):
        cfg = small_config()
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=4, seed=2)
        dense_opt = nn.SGD(model.dense_parameters(), lr=0.1)
        sparse_opt = SparseSGD(lr=0.1)
        losses = [model.train_step(ds.batch(64, i), dense_opt, sparse_opt)
                  for i in range(40)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_predict_proba_in_range(self):
        cfg = small_config()
        model = DLRM(cfg)
        b = SyntheticCTRDataset(cfg.tables, dense_dim=4).batch(32)
        p = model.predict_proba(b)
        assert np.all((p >= 0) & (p <= 1))


class TestZooFullSpecs:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_parameter_count_matches_table3(self, name):
        spec = full_spec(name)
        ref = TABLE3_REFERENCE[name]
        assert spec.num_parameters == pytest.approx(ref["num_parameters"],
                                                    rel=0.15)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_table_count(self, name):
        spec = full_spec(name)
        assert len(spec.tables) == TABLE3_REFERENCE[name]["num_tables"]

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_dims_in_declared_range(self, name):
        spec = full_spec(name)
        lo, hi = TABLE3_REFERENCE[name]["dim_range"]
        for t in spec.tables:
            assert lo <= t.embedding_dim <= hi

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_pooling_near_declared(self, name):
        spec = full_spec(name)
        assert spec.avg_pooling == pytest.approx(
            TABLE3_REFERENCE[name]["avg_pooling"], rel=0.25)

    def test_f1_has_massive_tables(self):
        """Section 5.3.3: F1's tables have ~10B rows each."""
        spec = full_spec("F1")
        for t in spec.tables:
            assert t.num_embeddings > 1e9
            assert t.embedding_dim == 256

    def test_a2_stresses_compute(self):
        """A2 declared MFLOPS is ~7x A1's (Table 3)."""
        a1 = full_spec("A1")
        a2 = full_spec("A2")
        assert a2.declared_mflops_per_sample > \
            5 * a1.declared_mflops_per_sample
        assert a2.mlp_flops_per_sample() > 5 * a1.mlp_flops_per_sample()

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            full_spec("B9")

    def test_deterministic(self):
        s1, s2 = full_spec("A1", seed=0), full_spec("A1", seed=0)
        assert [t.num_embeddings for t in s1.tables] == \
            [t.num_embeddings for t in s2.tables]


class TestZooMiniConfigs:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_mini_is_trainable_config(self, name):
        cfg = mini_config(name)
        model = DLRM(cfg, seed=0)
        ds = SyntheticCTRDataset(cfg.tables, dense_dim=cfg.dense_dim)
        logits = model.forward(ds.batch(8))
        assert logits.shape == (8,)

    def test_mini_scale_parameter(self):
        cfg = mini_config("A1", scale=128)
        for t in cfg.tables:
            assert t.num_embeddings == 128

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            mini_config("Z1")

"""Retry policy and rank-health tracking for collectives.

Production collective libraries wrap every operation in a timeout:
a lost message is retried with exponential backoff, and a rank that
keeps timing out is declared dead so the job can fail fast instead of
hanging (the ZionEX deployment leans on exactly this detect-and-restart
discipline). This module reproduces both pieces over the *modeled*
clock: :class:`RetryPolicy` is pure arithmetic (deterministic penalty
seconds per failed attempt), :class:`HealthTracker` folds per-rank
modeled latencies into an EWMA to flag stragglers and counts timeout
strikes until a rank crosses its death threshold.

Nothing here sleeps or spawns threads — the simulation stays
single-process and bitwise deterministic; only the latency accounting
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

__all__ = ["RetryPolicy", "HealthTracker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + exponential-backoff schedule for one collective call.

    Attempt ``i`` (0-based) that fails costs ``timeout_seconds`` (the
    watchdog window that had to elapse) plus ``backoff(i)`` before the
    next attempt starts. After ``max_attempts`` consecutive failures the
    caller records a timeout *strike* against the offending rank and —
    in the simulation, where the fault schedule says when the link heals
    — starts a fresh attempt window.
    """

    timeout_seconds: float = 0.5
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Backoff wait after failed attempt ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return self.backoff_seconds * self.backoff_multiplier ** attempt

    def penalty(self, failed_attempts: int) -> float:
        """Total modeled seconds lost to ``failed_attempts`` failures.

        Each failure burns one timeout window plus its backoff wait;
        the backoff exponent resets every ``max_attempts`` failures
        (a fresh retry window after a strike).
        """
        if failed_attempts < 0:
            raise ValueError("failed_attempts must be non-negative")
        total = 0.0
        for i in range(failed_attempts):
            total += self.timeout_seconds + self.backoff(i % self.max_attempts)
        return total

    def strikes(self, failed_attempts: int) -> int:
        """How many exhausted retry windows ``failed_attempts`` implies."""
        return failed_attempts // self.max_attempts


class HealthTracker:
    """Per-rank health from modeled collective latencies.

    Keeps an exponential moving average of each rank's per-collective
    latency. A rank is a *straggler* when its EWMA exceeds
    ``straggler_factor`` times the median EWMA; a rank is *dead* after
    ``dead_after`` timeout strikes. Both judgments are deterministic
    functions of the observation stream.
    """

    def __init__(self, world_size: int, alpha: float = 0.2,
                 straggler_factor: float = 2.0, dead_after: int = 2) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if straggler_factor <= 1.0:
            raise ValueError("straggler_factor must be > 1")
        if dead_after < 1:
            raise ValueError("dead_after must be >= 1")
        self.world_size = world_size
        self.alpha = alpha
        self.straggler_factor = straggler_factor
        self.dead_after = dead_after
        self.ewma: List[float] = [0.0] * world_size
        self._seen = [False] * world_size
        self.timeout_strikes: Dict[int, int] = {}
        self._dead: Set[int] = set()

    def observe(self, per_rank_seconds: Sequence[float]) -> None:
        """Fold one collective's per-rank modeled latencies into the EWMA."""
        if len(per_rank_seconds) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} latencies, "
                f"got {len(per_rank_seconds)}")
        for rank, sec in enumerate(per_rank_seconds):
            if self._seen[rank]:
                self.ewma[rank] = (self.alpha * sec
                                   + (1.0 - self.alpha) * self.ewma[rank])
            else:
                self.ewma[rank] = float(sec)
                self._seen[rank] = True

    def observe_uniform(self, seconds: float) -> None:
        """Shortcut for the common all-ranks-equal case.

        This is the zero-fault hot path (once per collective), so it
        skips the length check and list allocation of :meth:`observe`.
        """
        sec = float(seconds)
        one_minus = 1.0 - self.alpha
        ewma, seen = self.ewma, self._seen
        for rank in range(self.world_size):
            if seen[rank]:
                ewma[rank] = self.alpha * sec + one_minus * ewma[rank]
            else:
                ewma[rank] = sec
                seen[rank] = True

    def stragglers(self) -> List[int]:
        """Ranks whose EWMA latency exceeds factor x median (live ranks)."""
        live = [r for r in range(self.world_size)
                if self._seen[r] and r not in self._dead]
        if len(live) < 2:
            return []
        vals = sorted(self.ewma[r] for r in live)
        mid = len(vals) // 2
        median = vals[mid] if len(vals) % 2 \
            else 0.5 * (vals[mid - 1] + vals[mid])
        if median <= 0.0:
            return []
        return [r for r in live
                if self.ewma[r] > self.straggler_factor * median]

    def record_timeout(self, rank: int, count: int = 1) -> bool:
        """Register timeout strike(s); returns True if the rank is now dead."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.timeout_strikes[rank] = self.timeout_strikes.get(rank, 0) + count
        if self.timeout_strikes[rank] >= self.dead_after:
            self._dead.add(rank)
        return rank in self._dead

    def mark_dead(self, rank: int) -> None:
        """Declare a rank dead outright (e.g. a crash fault)."""
        self._dead.add(rank)

    def is_dead(self, rank: int) -> bool:
        return rank in self._dead

    @property
    def dead_ranks(self) -> List[int]:
        return sorted(self._dead)

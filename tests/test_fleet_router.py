"""Fleet router tests: conservation, determinism, balance.

The hypothesis suite is the routing contract: over arbitrary arrival
traces, policies and replica counts, every request lands on exactly one
replica (conservation), the assignment is a pure function of
(trace, policy, seed) (bitwise determinism), and power-of-two-choices
keeps the max/mean load imbalance bounded — the balls-into-bins
property that justifies paying only two backlog probes per request.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (ROUTING_POLICIES, FleetRouter, RouterPolicy,
                         RoutingPlan)

from .helpers import single_sample_request as req


def const_estimators(num_replicas, seconds=1e-3):
    return [(lambda r, s=seconds: s) for _ in range(num_replicas)]


def uniform_trace(n, gap_s=1e-3):
    return [req(i, i * gap_s) for i in range(n)]


class TestValidation:
    def test_policy_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            RouterPolicy(kind="random")
        for kind in ROUTING_POLICIES:
            RouterPolicy(kind=kind)

    def test_route_rejects_bad_replica_sets(self):
        router = FleetRouter()
        with pytest.raises(ValueError):
            router.route(uniform_trace(2), [])
        est = const_estimators(3)
        with pytest.raises(ValueError):
            router.route(uniform_trace(2), est, active=[])
        with pytest.raises(ValueError):
            router.route(uniform_trace(2), est, active=[0, 3])
        with pytest.raises(ValueError):
            router.route(uniform_trace(2), est, active=[1, 1])


class TestRoundRobin:
    def test_cyclic_assignment_in_arrival_order(self):
        router = FleetRouter(RouterPolicy(kind="round_robin"))
        plan = router.route(uniform_trace(10), const_estimators(3))
        assert plan.counts == [4, 3, 3]
        assert [r.request_id for r in plan.assignments[0]] == [0, 3, 6, 9]
        assert plan.replica_of[4] == 1
        assert plan.imbalance() == pytest.approx(4 / (10 / 3))

    def test_arrival_order_not_input_order(self):
        router = FleetRouter(RouterPolicy(kind="round_robin"))
        trace = list(reversed(uniform_trace(6)))
        plan = router.route(trace, const_estimators(2))
        # sorted by arrival first: evens to replica 0, odds to replica 1
        assert [r.request_id for r in plan.assignments[0]] == [0, 2, 4]

    def test_active_subset_only(self):
        router = FleetRouter(RouterPolicy(kind="round_robin"))
        plan = router.route(uniform_trace(9), const_estimators(4),
                            active=[1, 3])
        assert plan.counts[0] == 0 and plan.counts[2] == 0
        assert plan.counts[1] + plan.counts[3] == 9

    def test_single_active_replica_gets_everything(self):
        for kind in ROUTING_POLICIES:
            router = FleetRouter(RouterPolicy(kind=kind))
            plan = router.route(uniform_trace(7), const_estimators(4),
                                active=[2])
            assert plan.counts == [0, 0, 7, 0]


class TestLeastLoaded:
    def test_slow_replica_receives_less_under_load(self):
        router = FleetRouter(RouterPolicy(kind="least_loaded"))
        # overloaded fleet: per-request work far exceeds the arrival gap,
        # so backlogs grow and the 4x-slower replica 1 looks 4x costlier
        est = [lambda r: 1e-3, lambda r: 4e-3]
        plan = router.route(uniform_trace(400, gap_s=1e-4), est)
        assert plan.counts[0] > 2 * plan.counts[1]
        assert sum(plan.counts) == 400

    def test_final_backlogs_roughly_level_under_overload(self):
        router = FleetRouter(RouterPolicy(kind="least_loaded"))
        plan = router.route(uniform_trace(300, gap_s=1e-4),
                            const_estimators(3, 2e-3))
        lo, hi = min(plan.final_backlog_s), max(plan.final_backlog_s)
        assert hi - lo <= 2 * 2e-3  # within one service quantum per replica


class TestPowerOfTwo:
    def test_light_load_spreads_instead_of_piling_low(self):
        # with zero backlog everywhere every probe ties; the tie-break
        # must fall to the uniform first sample, not the lowest index
        router = FleetRouter(RouterPolicy(kind="power_of_two", seed=0))
        plan = router.route(uniform_trace(400, gap_s=1.0),
                            const_estimators(4, 1e-6))
        assert min(plan.counts) > 0
        assert plan.imbalance() < 1.35

    def test_seed_changes_assignment(self):
        est = const_estimators(4)
        trace = uniform_trace(200)
        a = FleetRouter(RouterPolicy(kind="power_of_two", seed=0)) \
            .route(trace, est)
        b = FleetRouter(RouterPolicy(kind="power_of_two", seed=1)) \
            .route(trace, est)
        assert a.replica_of != b.replica_of


class TestRoutingPlan:
    def test_imbalance_degenerate_cases(self):
        plan = RoutingPlan(assignments=[[], []], replica_of={},
                           final_backlog_s=[0.0, 0.0])
        assert plan.imbalance() == 1.0
        plan = FleetRouter(RouterPolicy(kind="round_robin")).route(
            uniform_trace(8), const_estimators(2))
        assert plan.imbalance() == 1.0
        assert plan.imbalance(active=[0]) == 1.0


class TestRoutingProperties:
    """The hypothesis contract over all policies."""

    @given(kind=st.sampled_from(ROUTING_POLICIES),
           num_replicas=st.integers(min_value=1, max_value=5),
           arrivals=st.lists(st.floats(min_value=0.0, max_value=1.0,
                                       allow_nan=False),
                             min_size=1, max_size=60),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_every_request_routed_exactly_once(self, kind, num_replicas,
                                               arrivals, seed):
        trace = [req(i, t) for i, t in enumerate(arrivals)]
        router = FleetRouter(RouterPolicy(kind=kind, seed=seed))
        plan = router.route(trace, const_estimators(num_replicas))
        routed = sorted(r.request_id for a in plan.assignments for r in a)
        assert routed == list(range(len(trace)))
        assert sorted(plan.replica_of) == routed
        for rep, assigned in enumerate(plan.assignments):
            for r in assigned:
                assert plan.replica_of[r.request_id] == rep
        assert sum(plan.counts) == len(trace)

    @given(kind=st.sampled_from(ROUTING_POLICIES),
           num_replicas=st.integers(min_value=2, max_value=4),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_bitwise_determinism(self, kind, num_replicas, seed):
        trace = uniform_trace(50)
        est = const_estimators(num_replicas)
        a = FleetRouter(RouterPolicy(kind=kind, seed=seed)).route(trace, est)
        b = FleetRouter(RouterPolicy(kind=kind, seed=seed)).route(trace, est)
        assert a.replica_of == b.replica_of
        assert a.counts == b.counts
        assert a.final_backlog_s == b.final_backlog_s

    @given(num_replicas=st.integers(min_value=2, max_value=8),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_power_of_two_imbalance_bounded(self, num_replicas, seed):
        # saturated fleet (service >> arrival gap x replicas): the two
        # backlog probes differentiate and the assignment stays within a
        # modest factor of perfectly balanced — far from the
        # Θ(log n / log log n) max of random single choice
        n = 60 * num_replicas
        router = FleetRouter(RouterPolicy(kind="power_of_two", seed=seed))
        plan = router.route(uniform_trace(n, gap_s=1e-5),
                            const_estimators(num_replicas, 1e-3))
        assert plan.imbalance() <= 1.30
        assert min(plan.counts) > 0

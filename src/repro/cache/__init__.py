"""Software-managed memory hierarchy: set-associative row cache, UVM page
cache baseline, and HBM/DDR/SSD tier modelling (paper Section 4.1.3)."""

from .backing import ArrayBackingStore
from .hierarchy import (ZIONEX_NODE_HIERARCHY, CachedEmbeddingTable,
                        MemoryHierarchy, MemoryTier)
from .mixed_precision import (LowPrecisionBackingStore,
                              MixedPrecisionEmbeddingTable)
from .set_associative import CacheStats, SetAssociativeCache
from .uvm import UVMPageCache

__all__ = [
    "ArrayBackingStore",
    "SetAssociativeCache",
    "CacheStats",
    "UVMPageCache",
    "MemoryTier",
    "MemoryHierarchy",
    "CachedEmbeddingTable",
    "ZIONEX_NODE_HIERARCHY",
    "LowPrecisionBackingStore",
    "MixedPrecisionEmbeddingTable",
]

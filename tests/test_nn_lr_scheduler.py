"""Tests for learning-rate schedules (large-batch training support)."""

import numpy as np
import pytest

from repro import nn
from repro.embedding import SparseSGD
from repro.nn import (LRScheduler, PolynomialDecay, StepDecay,
                      WarmupLinearDecay, linear_scaled_lr)


def make_opt(lr=0.1):
    return nn.SGD([nn.Parameter(np.zeros(2))], lr=lr)


class TestLinearScaling:
    def test_rule(self):
        """64K -> 256K batch quadruples the LR (Section 5.3.2 regime)."""
        assert linear_scaled_lr(0.01, 262144, 65536) == pytest.approx(0.04)

    def test_identity(self):
        assert linear_scaled_lr(0.01, 100, 100) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_scaled_lr(0.0, 1, 1)
        with pytest.raises(ValueError):
            linear_scaled_lr(0.1, 0, 1)


class TestWarmupLinearDecay:
    def test_starts_at_warmup_init(self):
        opt = make_opt()
        WarmupLinearDecay(opt, base_lr=1.0, warmup_steps=10,
                          total_steps=100, warmup_init=0.1)
        assert opt.lr == pytest.approx(0.1)

    def test_reaches_base_at_warmup_end(self):
        opt = make_opt()
        sched = WarmupLinearDecay(opt, base_lr=1.0, warmup_steps=10,
                                  total_steps=100)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(1.0)

    def test_decays_to_final(self):
        opt = make_opt()
        sched = WarmupLinearDecay(opt, base_lr=1.0, warmup_steps=5,
                                  total_steps=20, final_lr=0.2)
        for _ in range(25):
            sched.step()
        assert opt.lr == pytest.approx(0.2)

    def test_monotone_phases(self):
        opt = make_opt()
        sched = WarmupLinearDecay(opt, base_lr=1.0, warmup_steps=10,
                                  total_steps=50)
        lrs = [sched.step() for _ in range(50)]
        warm, decay = lrs[:10], lrs[10:]
        assert all(a <= b + 1e-9 for a, b in zip(warm, warm[1:]))
        assert all(a >= b - 1e-9 for a, b in zip(decay, decay[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupLinearDecay(make_opt(), base_lr=1.0, warmup_steps=10,
                              total_steps=10)
        with pytest.raises(ValueError):
            WarmupLinearDecay(make_opt(), base_lr=0.0, warmup_steps=1,
                              total_steps=10)


class TestStepDecay:
    def test_milestones(self):
        opt = make_opt()
        sched = StepDecay(opt, base_lr=1.0, milestones=[3, 6], gamma=0.1)
        lrs = [sched.step() for _ in range(8)]
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[3] == pytest.approx(0.1)
        assert lrs[6] == pytest.approx(0.01)

    def test_unsorted_milestones_raise(self):
        with pytest.raises(ValueError):
            StepDecay(make_opt(), base_lr=1.0, milestones=[6, 3])

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            StepDecay(make_opt(), base_lr=1.0, milestones=[1], gamma=0.0)


class TestPolynomialDecay:
    def test_endpoints(self):
        opt = make_opt()
        sched = PolynomialDecay(opt, base_lr=1.0, total_steps=10, power=2.0)
        assert opt.lr == pytest.approx(1.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)

    def test_floor(self):
        opt = make_opt()
        sched = PolynomialDecay(opt, base_lr=1.0, total_steps=10,
                                final_lr=0.5)
        for _ in range(20):
            sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialDecay(make_opt(), base_lr=1.0, total_steps=0)


class TestSchedulerWithSparseOptimizer:
    def test_drives_sparse_optimizer_lr(self):
        """Schedulers work on sparse optimizers too (shared lr attr)."""
        sparse = SparseSGD(lr=0.1)
        sched = WarmupLinearDecay(sparse, base_lr=0.5, warmup_steps=5,
                                  total_steps=10)
        for _ in range(5):
            sched.step()
        assert sparse.lr == pytest.approx(0.5)

    def test_warmup_damps_early_parameter_movement(self):
        """The mechanism warmup provides for large-batch stability: early
        steps move parameters much less than jumping straight to the
        scaled LR."""
        from repro.data import SyntheticCTRDataset
        from repro.embedding import EmbeddingTableConfig
        from repro.models import DLRM, DLRMConfig

        tables = (EmbeddingTableConfig("t0", 64, 8, avg_pooling=3.0),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                            top_mlp=(8,))
        ds = SyntheticCTRDataset(tables, dense_dim=4, seed=2)
        big_lr = 2.0

        def movement(use_warmup):
            model = DLRM(config, seed=0)
            initial = [p.data.copy() for p in model.dense_parameters()]
            opt = nn.SGD(model.dense_parameters(), lr=big_lr)
            sched = WarmupLinearDecay(opt, base_lr=big_lr, warmup_steps=20,
                                      total_steps=40) if use_warmup else None
            sparse = SparseSGD(lr=0.1)
            for i in range(4):
                model.train_step(ds.batch(64, i), opt, sparse)
                if sched:
                    sched.step()
            return sum(float(np.linalg.norm(p.data - q))
                       for p, q in zip(model.dense_parameters(), initial))

        assert movement(True) < 0.5 * movement(False)

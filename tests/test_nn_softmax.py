"""Tests for the Softmax layer and cross-entropy loss."""

import numpy as np
import pytest

from repro import nn
from repro.nn import CrossEntropyLoss, Softmax

from .helpers import numerical_gradient


class TestSoftmaxLayer:
    def test_rows_sum_to_one(self):
        layer = Softmax()
        rng = np.random.default_rng(0)
        out = layer.forward(rng.normal(size=(5, 7)).astype(np.float32))
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Softmax()
        x = rng.normal(size=(3, 4)).astype(np.float32)

        def f(v):
            out = nn.functional.softmax(v, axis=-1)
            return float(np.sum(out.astype(np.float64) ** 2) / 2)

        y = layer.forward(x)
        dx = layer.backward(y.astype(np.float32))
        np.testing.assert_allclose(dx, numerical_gradient(f, x), rtol=3e-2,
                                   atol=1e-4)

    def test_backward_of_constant_upstream_is_zero(self):
        """Softmax output sums to 1, so a constant upstream gradient has
        zero effect (shift invariance in the backward direction)."""
        layer = Softmax()
        rng = np.random.default_rng(2)
        layer.forward(rng.normal(size=(2, 5)).astype(np.float32))
        dx = layer.backward(np.ones((2, 5), dtype=np.float32))
        np.testing.assert_allclose(dx, np.zeros((2, 5)), atol=1e-6)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Softmax().backward(np.zeros((1, 2), dtype=np.float32))


class TestCrossEntropyLoss:
    def test_uniform_logits_log_k(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 8), dtype=np.float32)
        labels = np.array([0, 3, 5, 7])
        assert loss.forward(logits, labels) == pytest.approx(np.log(8))

    def test_confident_correct_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        assert loss.forward(logits, np.array([1, 2])) == \
            pytest.approx(0.0, abs=1e-6)

    def test_gradient_matches_softmax_minus_onehot(self):
        loss = CrossEntropyLoss()
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(4, 5)).astype(np.float32)
        labels = np.array([0, 2, 4, 1])
        loss.forward(logits, labels)
        grad = loss.backward()
        probs = nn.functional.softmax(logits, axis=1)
        expected = probs.copy()
        expected[np.arange(4), labels] -= 1.0
        np.testing.assert_allclose(grad, expected / 4, rtol=1e-5)

    def test_gradient_numerical_check(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(3, 4)).astype(np.float32)
        labels = np.array([1, 0, 3])
        loss = CrossEntropyLoss()
        loss.forward(logits, labels)
        analytic = loss.backward()
        numeric = numerical_gradient(
            lambda v: CrossEntropyLoss().forward(v, labels), logits)
        np.testing.assert_allclose(analytic, numeric, rtol=2e-2, atol=1e-4)

    def test_stable_at_extreme_logits(self):
        loss = CrossEntropyLoss()
        logits = np.array([[1e4, -1e4]], dtype=np.float32)
        assert np.isfinite(loss.forward(logits, np.array([0])))

    def test_validation(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3, dtype=np.float32), np.array([0]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3), dtype=np.float32),
                         np.array([0]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((1, 3), dtype=np.float32),
                         np.array([3]))
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_mlp_with_softmax_head_trains(self):
        """The Appendix A benchmark shape: MLP + softmax + CE learns a
        3-class toy problem."""
        rng = np.random.default_rng(5)
        mlp = nn.MLP([4, 16, 3], rng=rng)
        loss_fn = CrossEntropyLoss()
        opt = nn.Adam(mlp.parameters(), lr=0.05)
        x = rng.normal(size=(96, 4)).astype(np.float32)
        labels = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)
        losses = []
        for _ in range(150):
            logits = mlp.forward(x)
            losses.append(loss_fn.forward(logits, labels))
            mlp.zero_grad()
            mlp.backward(loss_fn.backward())
            opt.step()
        assert losses[-1] < 0.3 * losses[0]

"""GEMM and MLP operator performance models (Appendix A, Figs. 14-17).

Times one GEMM (or a whole MLP stack) with a roofline: the larger of the
compute time at size-dependent achievable FLOP/s and the memory time at
achievable HBM bandwidth, plus kernel launch overhead. This reproduces the
Fig. 14-17 curve shapes: TF/s grows with problem size, saturates at the
measured efficiency ceiling, and reduced precisions lift the ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from .devices import DeviceSpec

__all__ = ["gemm_time", "gemm_tflops", "MLPBenchResult", "mlp_time",
           "mlp_benchmark"]

_DTYPE_BYTES = {"fp32": 4, "tf32": 4, "fp16": 2, "bf16": 2}


def gemm_time(m: int, n: int, k: int, device: DeviceSpec,
              precision: str = "fp32") -> float:
    """Seconds for one (m x k) @ (k x n) GEMM."""
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dims must be positive")
    flops = 2.0 * m * n * k
    compute = flops / device.achievable_flops(precision, flops)
    bytes_moved = (m * k + k * n + m * n) * _DTYPE_BYTES[precision]
    memory = bytes_moved / device.hbm_achievable_bw
    return max(compute, memory) + device.kernel_launch_overhead


def gemm_tflops(m: int, n: int, k: int, device: DeviceSpec,
                precision: str = "fp32") -> float:
    """Achieved TF/s, the y-axis of Figs. 14-15."""
    return 2.0 * m * n * k / gemm_time(m, n, k, device, precision) / 1e12


@dataclass(frozen=True)
class MLPBenchResult:
    """One row of the Fig. 16-17 MLP benchmark."""

    batch_size: int
    layer_width: int
    num_layers: int
    precision: str
    forward_seconds: float
    backward_seconds: float
    achieved_tflops: float

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


def mlp_time(batch_size: int, layer_sizes, device: DeviceSpec,
             precision: str = "fp32", backward: bool = False) -> float:
    """Seconds for one forward (or backward) pass through an MLP stack.

    Backward runs two GEMMs per layer (dX and dW) — 2x the forward work,
    matching the Appendix A benchmark's SGD-included backward.
    """
    total = 0.0
    sizes = list(layer_sizes)
    for k, n in zip(sizes, sizes[1:]):
        t = gemm_time(batch_size, n, k, device, precision)
        total += 2 * t if backward else t
    return total


def mlp_benchmark(batch_size: int, layer_width: int, num_layers: int,
                  device: DeviceSpec,
                  precision: str = "fp32") -> MLPBenchResult:
    """The Appendix A MLP benchmark: ``num_layers`` square layers."""
    sizes = [layer_width] * (num_layers + 1)
    fwd = mlp_time(batch_size, sizes, device, precision)
    bwd = mlp_time(batch_size, sizes, device, precision, backward=True)
    flops = 3 * sum(2.0 * batch_size * a * b
                    for a, b in zip(sizes, sizes[1:]))
    return MLPBenchResult(
        batch_size=batch_size, layer_width=layer_width,
        num_layers=num_layers, precision=precision,
        forward_seconds=fwd, backward_seconds=bwd,
        achieved_tflops=flops / (fwd + bwd) / 1e12)

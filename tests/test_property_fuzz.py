"""Cross-module property fuzzing: random DLRMs through random sharding
plans must always match the single-process reference.

This is the repository's strongest invariant, checked over a randomized
space of architectures, scheme assignments and batch shapes rather than
the handful of fixed cases in test_core_trainer.py.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseSGD
from repro.models import DLRM, DLRMConfig
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

SCHEMES = [ShardingScheme.TABLE_WISE, ShardingScheme.ROW_WISE,
           ShardingScheme.COLUMN_WISE, ShardingScheme.DATA_PARALLEL]


@st.composite
def dlrm_scenario(draw):
    num_tables = draw(st.integers(min_value=1, max_value=4))
    emb_dim = draw(st.sampled_from([4, 8]))
    world = draw(st.sampled_from([2, 4]))
    batch_per_rank = draw(st.integers(min_value=1, max_value=4))
    tables = tuple(
        EmbeddingTableConfig(
            f"t{i}",
            num_embeddings=draw(st.integers(min_value=world * 2,
                                            max_value=64)),
            embedding_dim=emb_dim,
            avg_pooling=float(draw(st.integers(min_value=1, max_value=5))))
        for i in range(num_tables))
    schemes = {t.name: draw(st.sampled_from(SCHEMES)) for t in tables}
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return tables, emb_dim, world, batch_per_rank, schemes, seed


@given(dlrm_scenario())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_random_plan_matches_reference(scenario):
    tables, emb_dim, world, batch_per_rank, schemes, seed = scenario
    config = DLRMConfig(dense_dim=3, bottom_mlp=(6, emb_dim),
                        tables=tables, top_mlp=(6,))
    plan = ShardingPlan(world_size=world)
    for i, t in enumerate(tables):
        scheme = schemes[t.name]
        ranks = [i % world] if scheme == ShardingScheme.TABLE_WISE \
            else list(range(world))
        plan.tables[t.name] = shard_table(t, scheme, ranks)
    plan.validate()

    ds = SyntheticCTRDataset(tables, dense_dim=3, seed=seed)
    batch = ds.batch(batch_per_rank * world, 0)

    reference = DLRM(config, seed=seed)
    ref_opt = nn.SGD(reference.dense_parameters(), lr=0.1)
    ref_loss = reference.train_step(batch, ref_opt, SparseSGD(lr=0.1))

    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
        sparse_optimizer=SparseSGD(lr=0.1), seed=seed)
    dist_loss = trainer.train_step(batch.split(world))

    assert dist_loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6)
    for t in tables:
        np.testing.assert_allclose(
            trainer.gather_table(t.name),
            reference.embeddings.table(t.name).weight,
            rtol=1e-4, atol=1e-6)
    assert trainer.replicas_in_sync()


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_random_sharding_plan_memory_conservation(num_tables, world, seed):
    """Any plan's total placed memory equals the model's table memory
    (DP replicas aside) — no parameters lost or duplicated."""
    rng = np.random.default_rng(seed)
    tables = [EmbeddingTableConfig(
        f"t{i}", int(rng.integers(world, 500)),
        int(rng.choice([4, 8, 16]))) for i in range(num_tables)]
    plan = ShardingPlan(world_size=world)
    total_expected = 0
    for t in tables:
        scheme = SCHEMES[int(rng.integers(0, len(SCHEMES)))]
        ranks = [int(rng.integers(0, world))] \
            if scheme == ShardingScheme.TABLE_WISE else list(range(world))
        plan.tables[t.name] = shard_table(t, scheme, ranks)
        replicas = world if scheme == ShardingScheme.DATA_PARALLEL else 1
        total_expected += t.num_parameters * replicas
    plan.validate()
    assert sum(plan.memory_per_rank(bytes_per_element=1)) == total_expected


@st.composite
def arena_scenario(draw):
    num_tables = draw(st.integers(min_value=1, max_value=6))
    dims = draw(st.lists(st.sampled_from([4, 8, 16]), min_size=1,
                         max_size=2, unique=True))
    batch = draw(st.integers(min_value=1, max_value=12))
    max_len = draw(st.integers(min_value=0, max_value=7))
    pooling = draw(st.lists(st.sampled_from(["sum", "mean"]),
                            min_size=num_tables, max_size=num_tables))
    heights = draw(st.lists(st.integers(min_value=1, max_value=50),
                            min_size=num_tables, max_size=num_tables))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return dims, heights, pooling, batch, max_len, seed


@given(arena_scenario())
@settings(max_examples=40, deadline=None)
def test_arena_fusion_bitwise_matches_per_table_loop(scenario):
    """The fused arena path (one gather + one reduceat per dim group,
    group-global gradient merge) is bitwise identical to the per-table
    loop for forward, and for a full fused backward+RowWiseAdaGrad step,
    over random table shapes, pooling modes and jagged batches —
    including empty bags and single-row tables."""
    from repro.embedding import (FusedEmbeddingCollection, RowWiseAdaGrad,
                                 lengths_to_offsets)
    dims, heights, pooling, batch_size, max_len, seed = scenario
    rng = np.random.default_rng(seed)
    configs = [EmbeddingTableConfig(f"t{i}", h, dims[i % len(dims)],
                                    pooling_mode=p)
               for i, (h, p) in enumerate(zip(heights, pooling))]
    arena = FusedEmbeddingCollection.from_configs(
        configs, rng=np.random.default_rng(seed), fusion="arena")
    loop = FusedEmbeddingCollection(
        [type(t)(t.config, weight=t.weight.copy()) for t in arena.tables],
        fusion="loop")
    batch, dy = {}, {}
    for c in configs:
        lengths = rng.integers(0, max_len + 1, size=batch_size)
        offsets = lengths_to_offsets(lengths)
        batch[c.name] = (rng.integers(0, c.num_embeddings,
                                      size=int(offsets[-1])), offsets)
        dy[c.name] = rng.normal(
            size=(batch_size, c.embedding_dim)).astype(np.float32)
    out_a, out_l = arena.forward(batch), loop.forward(batch)
    for name in arena.names:
        np.testing.assert_array_equal(out_a[name], out_l[name])
    arena.backward_and_update(dy, RowWiseAdaGrad(lr=0.05))
    loop.backward_and_update(dy, RowWiseAdaGrad(lr=0.05))
    for name in arena.names:
        np.testing.assert_array_equal(arena.table(name).weight,
                                      loop.table(name).weight)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_quantized_wire_preserves_learning_direction(seed):
    """FP16-wire and FP32-wire single steps move parameters in nearly the
    same direction (cosine similarity ~1) for random models."""
    from repro.comms import QuantizedCommsConfig
    tables = (EmbeddingTableConfig("t0", 32, 8, avg_pooling=3.0),)
    config = DLRMConfig(dense_dim=3, bottom_mlp=(6, 8), tables=tables,
                        top_mlp=(6,))
    plan = ShardingPlan(world_size=2)
    plan.tables["t0"] = shard_table(tables[0], ShardingScheme.TABLE_WISE,
                                    [0])
    ds = SyntheticCTRDataset(tables, dense_dim=3, seed=seed)
    batch = ds.batch(8, 0)
    deltas = {}
    for label, comms in (("fp32", None),
                         ("quant", QuantizedCommsConfig.paper_recipe())):
        trainer = NeoTrainer(
            config, plan, ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1), comms_config=comms,
            seed=seed)
        before = trainer.gather_table("t0").copy()
        trainer.train_step(batch.split(2))
        deltas[label] = (trainer.gather_table("t0") - before).ravel()
    a, b = deltas["fp32"], deltas["quant"]
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na > 1e-12 and nb > 1e-12:
        cosine = float(a @ b / (na * nb))
        assert cosine > 0.99

"""Tests for tensor-train compressed embedding tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import TTEmbeddingTable, factorize_dims


class TestFactorize:
    def test_exact_product(self):
        for value in [8, 12, 100, 1000, 7, 36]:
            for k in [2, 3]:
                factors = factorize_dims(value, k)
                assert len(factors) == k
                assert np.prod(factors) == value

    def test_prime_pads_with_ones(self):
        factors = factorize_dims(7, 3)
        assert sorted(factors) == [1, 1, 7]

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            factorize_dims(0, 2)
        with pytest.raises(ValueError):
            factorize_dims(8, 0)

    @given(st.integers(min_value=1, max_value=10000),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=100)
    def test_product_property(self, value, k):
        assert int(np.prod(factorize_dims(value, k))) == value


def make_tt(h=24, d=8, ranks=(4, 4), seed=0):
    return TTEmbeddingTable("tt", h, d, ranks=ranks,
                            rng=np.random.default_rng(seed))


class TestLookup:
    def test_row_shape(self):
        tt = make_tt()
        rows = tt.rows(np.array([0, 5, 23], dtype=np.int64))
        assert rows.shape == (3, 8)

    def test_deterministic(self):
        tt = make_tt()
        r1 = tt.rows(np.array([3], dtype=np.int64))
        r2 = tt.rows(np.array([3], dtype=np.int64))
        np.testing.assert_array_equal(r1, r2)

    def test_out_of_range_raises(self):
        tt = make_tt(h=24)
        with pytest.raises(IndexError):
            tt.rows(np.array([24], dtype=np.int64))

    def test_materialize_matches_rows(self):
        tt = make_tt(h=12, d=4)
        full = tt.materialize()
        assert full.shape == (12, 4)
        sample = tt.rows(np.array([7], dtype=np.int64))
        np.testing.assert_allclose(full[7], sample[0], rtol=1e-5)

    def test_distinct_rows_differ(self):
        tt = make_tt()
        full = tt.materialize()
        # with random cores, rows should not all collapse to one value
        assert np.std(full) > 0

    def test_pooled_forward_sums_rows(self):
        tt = make_tt()
        indices = np.array([1, 2, 3], dtype=np.int64)
        rows = tt.rows(indices)
        pooled = tt.forward(indices, np.array([0, 3], dtype=np.int64))
        np.testing.assert_allclose(pooled[0], rows.sum(axis=0), rtol=1e-4,
                                   atol=1e-6)


class TestGradients:
    def test_core_gradient_check(self):
        """Analytic core gradients match central differences."""
        tt = make_tt(h=6, d=4, ranks=(2, 2), seed=1)
        indices = np.array([0, 3, 5], dtype=np.int64)
        rows = tt.rows(indices)
        loss_grad = rows.copy()  # d(sum(rows^2)/2) = rows
        tt.backward_rows(loss_grad)

        def loss():
            r = tt.rows(indices)
            return float(np.sum(r.astype(np.float64) ** 2) / 2)

        eps = 1e-3
        for k in range(len(tt.cores)):
            grad = tt.core_grads[k]
            core = tt.cores[k]
            flat = core.reshape(-1)
            # probe a handful of coordinates
            rng = np.random.default_rng(k)
            for pos in rng.choice(flat.size, size=min(6, flat.size),
                                  replace=False):
                orig = flat[pos]
                flat[pos] = orig + eps
                up = loss()
                flat[pos] = orig - eps
                down = loss()
                flat[pos] = orig
                numeric = (up - down) / (2 * eps)
                analytic = grad.reshape(-1)[pos]
                assert analytic == pytest.approx(numeric, rel=5e-2, abs=1e-4)

    def test_apply_gradients_clears(self):
        tt = make_tt()
        indices = np.array([0], dtype=np.int64)
        rows = tt.rows(indices)
        tt.backward_rows(rows)
        tt.apply_gradients(lr=0.1)
        assert all(g is None for g in tt.core_grads)

    def test_backward_before_forward_raises(self):
        tt = make_tt()
        with pytest.raises(RuntimeError):
            tt.backward_rows(np.zeros((1, 8), dtype=np.float32))

    def test_training_reduces_reconstruction_loss(self):
        """TT cores can be trained to approximate a small target table."""
        rng = np.random.default_rng(2)
        target = rng.normal(size=(12, 4)).astype(np.float32) * 0.1
        tt = TTEmbeddingTable("tt", 12, 4, ranks=(4, 4),
                              rng=np.random.default_rng(3))
        all_rows = np.arange(12, dtype=np.int64)
        losses = []
        for _ in range(200):
            rows = tt.rows(all_rows)
            diff = rows - target
            losses.append(float(np.mean(diff ** 2)))
            tt.backward_rows(diff / 12)
            tt.apply_gradients(lr=0.5)
        assert losses[-1] < losses[0] * 0.1


class TestCompression:
    def test_ratio_formula(self):
        tt = make_tt(h=24, d=8, ranks=(4, 4))
        assert tt.compression_ratio() == pytest.approx(
            24 * 8 / tt.num_parameters())

    def test_large_table_compresses_well(self):
        """A 1M x 64 table in TT format shrinks by >100x."""
        tt = TTEmbeddingTable("big", 10 ** 6, 64, ranks=(16, 16))
        assert tt.compression_ratio() > 100

    def test_invalid_factors_raise(self):
        with pytest.raises(ValueError):
            TTEmbeddingTable("tt", 24, 8, ranks=(4, 4),
                             row_factors=(5, 5, 1))  # 25 != 24

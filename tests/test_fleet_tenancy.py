"""Tests for multi-tenant serving (`repro.fleet.tenancy` + the
multi-tenant batcher).

Core guarantees: per-tenant batches never mix models, admission is
evaluated against a tenant's own queue only, the shared timeline is the
one head-of-line channel between tenants, replica partitioning is exact
largest-remainder apportionment, and every request in a fleet serve is
either completed or shed — never lost.
"""

import numpy as np
import pytest

from repro.fleet import (FleetTenancyReport, MultiTenantFleet,
                         MultiTenantServer, TenantSpec, partition_replicas,
                         plan_tenancy)
from repro.models import DLRM, zoo_config
from repro.planner import PlannerCostModel
from repro.serving import (BatchingPolicy, InferenceRequest,
                           MultiTenantBatcher, freeze)

from .helpers import tiny_config, tiny_dataset


def make_request(i, t, tenant, batch):
    return InferenceRequest(request_id=i, arrival_s=t, batch=batch,
                            tenant=tenant)


def make_tenants(slo_small=0.01, slo_large=0.05):
    cfg_a = zoo_config("small")
    cfg_b = zoo_config("medium")
    model_a = freeze(DLRM(cfg_a, seed=0))
    model_b = freeze(DLRM(cfg_b, seed=1))
    a = TenantSpec(name="a", model=model_a, slo_s=slo_small,
                   traffic_share=0.7,
                   policy=BatchingPolicy(max_batch_size=8,
                                         max_wait_s=0.002))
    b = TenantSpec(name="b", model=model_b, slo_s=slo_large,
                   traffic_share=0.3,
                   policy=BatchingPolicy(max_batch_size=8,
                                         max_wait_s=0.004))
    return [a, b], cfg_a, cfg_b


def make_trace(cfg_a, cfg_b, n_a=60, n_b=30, gap=0.001):
    ds_a = tiny_dataset(cfg_a, seed=0)
    ds_b = tiny_dataset(cfg_b, seed=1)
    bulk_a = ds_a.batch(n_a, 0)
    bulk_b = ds_b.batch(n_b, 0)
    reqs = [make_request(i, i * gap, "a", bulk_a.slice(i, i + 1))
            for i in range(n_a)]
    reqs += [make_request(1000 + i, i * gap * 2, "b",
                          bulk_b.slice(i, i + 1)) for i in range(n_b)]
    return reqs


class TestPartitionReplicas:
    def test_exact_apportionment(self):
        out = partition_replicas({"a": 1.0, "b": 1.0, "c": 2.0}, 8)
        assert out == {"a": 2, "b": 2, "c": 4}
        assert sum(out.values()) == 8

    def test_floor_of_one_replica(self):
        out = partition_replicas({"a": 100.0, "b": 0.001}, 4)
        assert out["b"] >= 1
        assert sum(out.values()) == 4

    def test_deterministic_tie_break(self):
        a = partition_replicas({"x": 1.0, "y": 1.0, "z": 1.0}, 5)
        b = partition_replicas({"x": 1.0, "y": 1.0, "z": 1.0}, 5)
        assert a == b
        assert sum(a.values()) == 5

    def test_too_few_replicas_raises(self):
        with pytest.raises(ValueError):
            partition_replicas({"a": 1.0, "b": 1.0}, 1)

    def test_nonpositive_weight_raises(self):
        with pytest.raises(ValueError):
            partition_replicas({"a": 0.0}, 2)


class TestTenantSpec:
    def test_validation(self):
        model = freeze(DLRM(zoo_config("small"), seed=0))
        with pytest.raises(ValueError):
            TenantSpec(name="", model=model, slo_s=0.01)
        with pytest.raises(ValueError):
            TenantSpec(name="t", model=model, slo_s=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", model=model, slo_s=0.01,
                       traffic_share=0.0)


class TestMultiTenantBatcher:
    def _reqs(self, cfg, spec):
        ds = tiny_dataset(cfg, seed=0)
        bulk = ds.batch(12, 0)
        return [make_request(i, i * 0.001, spec,
                             bulk.slice(i % 12, i % 12 + 1))
                for i in range(12)]

    def test_batches_never_mix_tenants(self):
        cfg = tiny_config(2, 32, 8)
        pols = {"a": BatchingPolicy(max_batch_size=4, max_wait_s=0.002),
                "b": BatchingPolicy(max_batch_size=2, max_wait_s=0.001)}
        reqs = [r for i, r in enumerate(self._reqs(cfg, "a"))]
        reqs = [InferenceRequest(request_id=r.request_id,
                                 arrival_s=r.arrival_s, batch=r.batch,
                                 tenant="a" if r.request_id % 2 else "b")
                for r in reqs]
        plans = MultiTenantBatcher(pols).plan(
            reqs, lambda tenant, batch: 0.0005)
        for tenant, plan in plans.items():
            for b in plan.batches:
                assert all(r.tenant == tenant for r in b.requests)

    def test_conservation_and_determinism(self):
        cfg = tiny_config(2, 32, 8)
        pols = {"a": BatchingPolicy(max_batch_size=4, max_wait_s=0.002)}
        reqs = self._reqs(cfg, "a")
        svc = lambda tenant, batch: 0.0005 * len(batch)
        p1 = MultiTenantBatcher(pols).plan(reqs, svc)
        p2 = MultiTenantBatcher(pols).plan(reqs, svc)
        done = sum(len(b.requests) for b in p1["a"].batches)
        assert done + len(p1["a"].shed) == len(reqs)
        assert [b.dispatch_s for b in p1["a"].batches] == \
            [b.dispatch_s for b in p2["a"].batches]

    def test_shared_timeline_blocks_other_tenant(self):
        """A heavy tenant's dispatch delays the light tenant's batch
        past its own trigger — the head-of-line signature."""
        cfg = tiny_config(2, 32, 8)
        pols = {"heavy": BatchingPolicy(max_batch_size=4,
                                        max_wait_s=0.0001),
                "light": BatchingPolicy(max_batch_size=4,
                                        max_wait_s=0.0001)}
        ds = tiny_dataset(cfg, seed=0)
        bulk = ds.batch(8, 0)
        reqs = [make_request(0, 0.0, "heavy", bulk.slice(0, 1)),
                make_request(1, 0.00005, "light", bulk.slice(1, 2))]
        svc = lambda tenant, batch: 0.1 if tenant == "heavy" else 0.001
        plans = MultiTenantBatcher(pols).plan(reqs, svc)
        light = plans["light"].batches[0]
        # trigger was arrival+max_wait = 0.00015; dispatch waited for
        # the heavy batch to clear the shared server
        assert light.dispatch_s >= plans["heavy"].batches[0].completion_s

    def test_admission_sees_own_queue_only(self):
        """Tenant b's depth-based shedding is untouched by a's backlog."""
        cfg = tiny_config(2, 32, 8)
        pols = {"a": BatchingPolicy(max_batch_size=64, max_wait_s=1.0,
                                    max_queue_depth=1000),
                "b": BatchingPolicy(max_batch_size=64, max_wait_s=1.0,
                                    max_queue_depth=2)}
        ds = tiny_dataset(cfg, seed=0)
        bulk = ds.batch(16, 0)
        reqs = [make_request(i, 0.0001 * i, "a", bulk.slice(0, 1))
                for i in range(10)]
        reqs += [make_request(100 + i, 0.0001 * i, "b", bulk.slice(1, 2))
                 for i in range(5)]
        plans = MultiTenantBatcher(pols).plan(
            reqs, lambda tenant, batch: 0.001)
        # b sheds beyond its own depth of 2 even though a's queue is 10
        assert len(plans["b"].shed) == 3
        assert len(plans["a"].shed) == 0

    def test_unknown_and_missing_tenant_raise(self):
        cfg = tiny_config(2, 32, 8)
        pols = {"a": BatchingPolicy()}
        ds = tiny_dataset(cfg, seed=0)
        bulk = ds.batch(2, 0)
        with pytest.raises(ValueError, match="unknown tenant"):
            MultiTenantBatcher(pols).plan(
                [make_request(0, 0.0, "zzz", bulk.slice(0, 1))],
                lambda t, b: 0.001)
        with pytest.raises(ValueError, match="unknown tenant"):
            MultiTenantBatcher(pols).plan(
                [InferenceRequest(request_id=0, arrival_s=0.0,
                                  batch=bulk.slice(0, 1))],
                lambda t, b: 0.001)

    def test_empty_policies_raise(self):
        with pytest.raises(ValueError):
            MultiTenantBatcher({})


class TestMultiTenantServer:
    def test_responses_match_single_model_forward(self):
        tenants, cfg_a, cfg_b = make_tenants()
        server = MultiTenantServer(tenants)
        reqs = make_trace(cfg_a, cfg_b, n_a=10, n_b=6)
        results = server.serve(reqs)
        model_a = tenants[0].model
        for rid, probs in results["a"].responses.items():
            r = next(r for r in reqs if r.request_id == rid)
            np.testing.assert_array_equal(probs,
                                          model_a.predict(r.batch))

    def test_all_requests_accounted(self):
        tenants, cfg_a, cfg_b = make_tenants()
        server = MultiTenantServer(tenants)
        reqs = make_trace(cfg_a, cfg_b)
        results = server.serve(reqs)
        n = sum(r.num_completed + r.num_shed for r in results.values())
        assert n == len(reqs)

    def test_congestion_at_least_one(self):
        tenants, _, _ = make_tenants()
        server = MultiTenantServer(tenants)
        for t in ("a", "b"):
            assert server.congestion(t) >= 1.0

    def test_duplicate_tenant_names_raise(self):
        tenants, _, _ = make_tenants()
        with pytest.raises(ValueError):
            MultiTenantServer([tenants[0], tenants[0]])


class TestMultiTenantFleet:
    def test_partitioned_covers_all_replicas(self):
        tenants, cfg_a, cfg_b = make_tenants()
        fleet = MultiTenantFleet(tenants, num_replicas=4,
                                 mode="partitioned")
        assert sum(fleet.partition.values()) == 4
        assert all(v >= 1 for v in fleet.partition.values())

    @pytest.mark.parametrize("mode", ["partitioned", "shared"])
    def test_serve_reports_every_tenant(self, mode):
        tenants, cfg_a, cfg_b = make_tenants()
        fleet = MultiTenantFleet(tenants, num_replicas=4, mode=mode)
        reqs = make_trace(cfg_a, cfg_b)
        report = fleet.serve(reqs, offered_qps={"a": 1000.0, "b": 500.0})
        assert isinstance(report, FleetTenancyReport)
        assert set(report.per_tenant) == {"a", "b"}
        total = sum(s.report.num_completed + s.report.num_shed
                    for s in report.per_tenant.values())
        assert total == len(reqs)
        assert report.render()  # table renders

    def test_unknown_tenant_request_raises(self):
        tenants, cfg_a, cfg_b = make_tenants()
        fleet = MultiTenantFleet(tenants, num_replicas=2)
        reqs = make_trace(cfg_a, cfg_b, n_a=2, n_b=1)
        bad = InferenceRequest(request_id=9, arrival_s=0.0,
                               batch=reqs[0].batch, tenant="zzz")
        with pytest.raises(ValueError, match="unknown"):
            fleet.serve(reqs + [bad], offered_qps={"a": 1.0, "b": 1.0})

    def test_missing_offered_qps_raises(self):
        tenants, cfg_a, cfg_b = make_tenants()
        fleet = MultiTenantFleet(tenants, num_replicas=2)
        with pytest.raises(ValueError, match="offered_qps"):
            fleet.serve(make_trace(cfg_a, cfg_b, n_a=2, n_b=1),
                        offered_qps={"a": 1.0})

    def test_invalid_mode_raises(self):
        tenants, _, _ = make_tenants()
        with pytest.raises(ValueError):
            MultiTenantFleet(tenants, num_replicas=2, mode="hybrid")

    def test_violations_listed_when_slo_missed(self):
        # an absurdly tight SLO must be reported as a violation
        tenants, cfg_a, cfg_b = make_tenants(slo_small=1e-9,
                                             slo_large=0.05)
        fleet = MultiTenantFleet(tenants, num_replicas=2,
                                 mode="partitioned")
        report = fleet.serve(make_trace(cfg_a, cfg_b, n_a=20, n_b=10),
                             offered_qps={"a": 1000.0, "b": 500.0})
        assert not report.all_slos_held
        assert "a" in report.violations()


class TestPlanTenancy:
    def test_budget_split_and_per_tenant_plans(self):
        models = {"a": DLRM(zoo_config("small"), seed=0),
                  "b": DLRM(zoo_config("medium"), seed=1)}
        full = {n: sum(t.num_parameters * 4 for t in m.config.tables)
                for n, m in models.items()}
        total_budget = sum(full.values()) * 0.4
        plans = plan_tenancy(models, total_budget,
                             cost=PlannerCostModel(allow_tt=False))
        assert set(plans) == {"a", "b"}
        for n, plan in plans.items():
            assert plan.hot_bytes() <= total_budget * full[n] / \
                sum(full.values()) + 1e-9
            plan.validate()

    def test_invalid_budget_raises(self):
        models = {"a": DLRM(zoo_config("small"), seed=0)}
        with pytest.raises(ValueError):
            plan_tenancy(models, 0)

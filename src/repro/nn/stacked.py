"""Rank-stacked module construction: R replicas -> one leading-axis model.

The simulator's data-parallel ranks hold bitwise-identical copies of every
dense module. Rather than looping ``for r in range(R)`` over R small
``nn`` calls per layer, the rank-stacked training mode packs all
replicas' parameters into single ``(R, ...)`` arrays so one batched
``np.matmul`` (or einsum) per layer advances every rank at once — the
same batched-kernel discipline the fused embedding arena applies to the
table dimension.

The helpers here build that stacked model *structurally* from a list of
per-rank modules:

* :func:`stack_parameters` — stack R same-shape parameters into one
  ``(R, ...)`` :class:`Parameter` marked ``stacked=True``;
* :func:`stack_modules` — recursively clone a module tree (``Linear``,
  activations, ``Sequential``/``MLP``) with every parameter stacked.

The one rule for adding a stacked kernel (see docs/performance.md):
**the leading axis is inert** — a stacked op must compute slice ``r``
exactly as the unstacked op computes rank ``r``'s data, bitwise. Batched
``np.matmul`` / leading-axis einsum / elementwise ops satisfy this;
anything that reduces *across* the leading axis (``np.sum(axis=0)``,
pairwise-summing helpers) does not and needs an explicit sequential
per-rank formulation (see ``repro.comms.collectives.all_reduce_stacked``).

Per-rank views into the stacked storage (``stacked.data[r]`` is a
contiguous view) let existing per-rank consumers — checkpointing,
``freeze()`` export, replica-sync checks — keep reading rank state
without copies.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .layers import Identity, Linear, Module, ReLU, Sequential, Sigmoid
from .parameter import Parameter

__all__ = ["stack_parameters", "stack_modules"]


def stack_parameters(params: Sequence[Parameter]) -> Parameter:
    """Stack R same-shape parameters into one ``(R, ...)`` parameter.

    The result is C-contiguous, so ``out.data[r]`` is a contiguous view
    bitwise equal to ``params[r].data``.
    """
    if not params:
        raise ValueError("need at least one parameter to stack")
    shapes = {p.data.shape for p in params}
    if len(shapes) != 1:
        raise ValueError(f"stacked parameters must share a shape, "
                         f"got {shapes}")
    out = Parameter(np.stack([p.data for p in params], axis=0),
                    name=params[0].name)
    out.stacked = True
    return out


def _stack_linear(layers: Sequence[Linear]) -> Linear:
    first = layers[0]
    stacked = Linear(first.in_features, first.out_features,
                     bias=first.bias is not None,
                     name=first.weight.name.rsplit(".weight", 1)[0])
    stacked.weight = stack_parameters([l.weight for l in layers])
    if first.bias is not None:
        stacked.bias = stack_parameters([l.bias for l in layers])
    return stacked


def stack_modules(modules: Sequence[Module]) -> Module:
    """Structurally clone R identical-architecture modules with every
    parameter stacked along a new leading axis.

    Supports the dense module vocabulary the trainer replicates per
    rank: ``Linear``, ``ReLU``/``Sigmoid``/``Identity`` and
    ``Sequential`` (including ``MLP``, which flattens to a plain
    ``Sequential`` of stacked layers — ``parameters()`` order is
    preserved, which checkpointing and bucketing rely on).
    """
    if not modules:
        raise ValueError("need at least one module to stack")
    first = modules[0]
    if any(type(m) is not type(first) for m in modules[1:]):
        raise TypeError("all modules must share a type, got "
                        f"{sorted({type(m).__name__ for m in modules})}")
    if isinstance(first, Linear):
        return _stack_linear(modules)
    if isinstance(first, (ReLU, Sigmoid, Identity)):
        return type(first)()
    if isinstance(first, Sequential):
        counts = {len(m.layers) for m in modules}
        if len(counts) != 1:
            raise ValueError(f"Sequential depth mismatch: {counts}")
        stacked_layers: List[Module] = [
            stack_modules([m.layers[i] for m in modules])
            for i in range(len(first.layers))]
        return Sequential(stacked_layers)
    raise TypeError(f"cannot stack module type {type(first).__name__}")

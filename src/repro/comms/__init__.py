"""Communication layer: exact simulated collectives, wire quantization,
cluster topology and the alpha-beta latency model (paper Sections 4.5, 5.1)."""

from . import collectives, param_bench, perf_model
from .bucketing import Bucket, GradientBucketer
from .process_group import CommsLog, SimProcessGroup
from .quantization import CODECS, QuantizedCommsConfig, get_codec, wire_bytes
from .topology import PROTOTYPE_TOPOLOGY, ZION_TOPOLOGY, ClusterTopology

__all__ = [
    "collectives",
    "perf_model",
    "param_bench",
    "SimProcessGroup",
    "CommsLog",
    "GradientBucketer",
    "Bucket",
    "QuantizedCommsConfig",
    "CODECS",
    "get_codec",
    "wire_bytes",
    "ClusterTopology",
    "PROTOTYPE_TOPOLOGY",
    "ZION_TOPOLOGY",
]

"""Tests for the DP-vs-TW crossover analysis."""

import numpy as np
import pytest

from repro.perf import (crossover_sweep, dp_vs_tw_cost, find_dp_crossover)
from repro.sharding import CostModelParams


def params(**kw):
    defaults = dict(global_batch=65536, world_size=128)
    defaults.update(kw)
    return CostModelParams(**defaults)


class TestDpVsTwCost:
    def test_dp_cost_grows_with_rows(self):
        p = params()
        dp_small, _ = dp_vs_tw_cost(1000, 64, 10.0, p)
        dp_big, _ = dp_vs_tw_cost(1_000_000, 64, 10.0, p)
        assert dp_big > dp_small

    def test_tw_cost_row_insensitive(self):
        """TW cost is batch-driven, nearly flat in H (locality aside)."""
        p = params()
        _, tw_small = dp_vs_tw_cost(1000, 64, 10.0, p)
        _, tw_big = dp_vs_tw_cost(1_000_000, 64, 10.0, p)
        assert tw_big == pytest.approx(tw_small, rel=0.05)


class TestCrossover:
    def test_crossover_exists_and_is_exact(self):
        """At the crossover DP wins; one row beyond, it loses."""
        p = params()
        point = find_dp_crossover(64, 10.0, p)
        assert point.crossover_rows > 0
        dp, tw = dp_vs_tw_cost(point.crossover_rows, 64, 10.0, p)
        assert dp < tw
        dp2, tw2 = dp_vs_tw_cost(point.crossover_rows + 1, 64, 10.0, p)
        assert dp2 >= tw2

    def test_heavier_pooling_raises_crossover(self):
        """More lookups per sample make TW's AlltoAll dearer, so DP stays
        profitable for bigger tables."""
        p = params()
        light = find_dp_crossover(64, 2.0, p)
        heavy = find_dp_crossover(64, 50.0, p)
        assert heavy.crossover_rows > light.crossover_rows

    def test_crossover_order_of_magnitude(self):
        """Sanity: the break-even for typical shapes sits in the small-
        table regime (10^3-10^6 rows) — consistent with Sec 4.2.4 calling
        'small tables with fewer rows' the DP candidates."""
        p = params()
        point = find_dp_crossover(64, 20.0, p)
        assert 10 ** 3 < point.crossover_rows < 10 ** 7

    def test_sweep_grid(self):
        p = params()
        points = crossover_sweep([16, 64], [5.0, 20.0], p)
        assert len(points) == 4
        assert all(pt.crossover_rows >= 0 for pt in points)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_dp_crossover(0, 10.0, params())
        with pytest.raises(ValueError):
            find_dp_crossover(16, 0.0, params())

    def test_informs_planner_threshold(self):
        """The crossover justifies a planner dp_threshold_rows setting:
        tables below the crossover should prefer DP by cost."""
        from repro.embedding import EmbeddingTableConfig
        from repro.sharding import (EmbeddingShardingPlanner, PlannerConfig,
                                    ShardingScheme)
        p = params(world_size=8)
        point = find_dp_crossover(16, 5.0, p)
        threshold = max(1, point.crossover_rows)
        planner = EmbeddingShardingPlanner(
            PlannerConfig(world_size=8, ranks_per_node=8,
                          dp_threshold_rows=threshold), cost_params=p)
        below = EmbeddingTableConfig("small", max(threshold // 2, 1), 16,
                                     avg_pooling=5.0)
        assert planner.choose_scheme(below) == \
            ShardingScheme.DATA_PARALLEL

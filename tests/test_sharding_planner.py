"""Tests for the sharding cost model and planner."""

import numpy as np
import pytest

from repro.embedding import EmbeddingTableConfig
from repro.sharding import (CostModelParams, EmbeddingShardingPlanner,
                            PlannerConfig, Shard, ShardingScheme, shard_cost,
                            plan_cost_per_rank, shard_table, table_cost)


def cfg(name="t", h=100_000, d=64, pooling=20.0):
    return EmbeddingTableConfig(name, h, d, avg_pooling=pooling)


class TestCostModel:
    def params(self, **kw):
        defaults = dict(global_batch=1024, world_size=8)
        defaults.update(kw)
        return CostModelParams(**defaults)

    def full_shard(self, c):
        return Shard(c.name, 0, (0, c.num_embeddings), (0, c.embedding_dim))

    def test_forward_bytes_proportional_to_dim(self):
        """Pooled output comms cost ~ D (Section 3.0.1)."""
        p = self.params()
        c1, c2 = cfg(d=32), cfg(d=64)
        cost1 = shard_cost(c1, self.full_shard(c1),
                           ShardingScheme.TABLE_WISE, p)
        cost2 = shard_cost(c2, self.full_shard(c2),
                           ShardingScheme.TABLE_WISE, p)
        assert cost2.forward_bytes == 2 * cost1.forward_bytes

    def test_input_bytes_proportional_to_pooling(self):
        """Index distribution cost ~ L (Section 3.0.1)."""
        p = self.params()
        c1, c2 = cfg(pooling=10.0), cfg(pooling=20.0)
        cost1 = shard_cost(c1, self.full_shard(c1),
                           ShardingScheme.TABLE_WISE, p)
        cost2 = shard_cost(c2, self.full_shard(c2),
                           ShardingScheme.TABLE_WISE, p)
        assert cost2.input_bytes == 2 * cost1.input_bytes

    def test_hbm_traffic_proportional_to_l_times_d(self):
        p = self.params()
        base = shard_cost(cfg(pooling=10.0, d=32),
                          self.full_shard(cfg(pooling=10.0, d=32)),
                          ShardingScheme.TABLE_WISE, p)
        quad = shard_cost(cfg(pooling=20.0, d=64),
                          self.full_shard(cfg(pooling=20.0, d=64)),
                          ShardingScheme.TABLE_WISE, p)
        assert quad.hbm_bytes == 4 * base.hbm_bytes

    def test_column_wise_duplicates_indices(self):
        """CW shards each receive the full index stream (Section 4.2.3)."""
        p = self.params()
        c = cfg(d=64)
        tw = shard_cost(c, self.full_shard(c), ShardingScheme.TABLE_WISE, p)
        cw_shard = Shard(c.name, 0, (0, c.num_embeddings), (0, 32))
        cw = shard_cost(c, cw_shard, ShardingScheme.COLUMN_WISE, p)
        # half the columns but the full index payload
        assert cw.input_bytes == tw.input_bytes
        assert cw.forward_bytes == tw.forward_bytes // 2

    def test_row_wise_input_scales_with_row_fraction(self):
        p = self.params()
        c = cfg(h=100_000)
        half = Shard(c.name, 0, (0, 50_000), (0, c.embedding_dim))
        rw = shard_cost(c, half, ShardingScheme.ROW_WISE, p)
        tw = shard_cost(c, self.full_shard(c), ShardingScheme.TABLE_WISE, p)
        assert rw.input_bytes == tw.input_bytes // 2
        # but the output (partial sums for the global batch) is full width
        assert rw.forward_bytes == tw.forward_bytes

    def test_data_parallel_no_forward_comms(self):
        """DP trades forward AlltoAll for gradient AllReduce (Sec 4.2.4)."""
        p = self.params()
        c = cfg(h=1000, d=16)
        dp = shard_cost(c, self.full_shard(c),
                        ShardingScheme.DATA_PARALLEL, p)
        assert dp.input_bytes == 0 and dp.forward_bytes == 0
        assert dp.backward_bytes == 2 * 1000 * 16 * 4

    def test_dp_favored_for_small_tables_only(self):
        """The DP-vs-TW crossover: small tables cheaper DP, big cheaper TW."""
        p = self.params()
        small = cfg(h=500, d=16, pooling=5.0)
        big = cfg(h=10_000_000, d=16, pooling=5.0)
        for c, dp_better in ((small, True), (big, False)):
            s = self.full_shard(c)
            dp = shard_cost(c, s, ShardingScheme.DATA_PARALLEL, p)
            tw = shard_cost(c, s, ShardingScheme.TABLE_WISE, p)
            assert (dp.total_seconds < tw.total_seconds) == dp_better

    def test_locality_factor_monotone(self):
        p = self.params()
        assert p.locality_factor(1000) == 1.0
        big = p.locality_factor(100_000_000)
        bigger = p.locality_factor(1_000_000_000)
        assert 1.0 < big <= bigger <= 1.25

    def test_table_cost_positive(self):
        assert table_cost(cfg(), self.params()) > 0


class TestPlannerSchemeChoice:
    def planner(self, **kw):
        defaults = dict(world_size=8, ranks_per_node=8,
                        device_memory_bytes=32e9)
        defaults.update(kw)
        return EmbeddingShardingPlanner(PlannerConfig(**defaults))

    def test_small_table_goes_dp(self):
        p = self.planner()
        assert p.choose_scheme(cfg(h=100)) == ShardingScheme.DATA_PARALLEL

    def test_dp_disabled(self):
        p = self.planner(allow_data_parallel=False)
        assert p.choose_scheme(cfg(h=100)) != ShardingScheme.DATA_PARALLEL

    def test_huge_table_goes_row_wise(self):
        p = self.planner(device_memory_bytes=1e6)
        scheme = p.choose_scheme(cfg(h=10_000_000, d=64))
        assert scheme == ShardingScheme.ROW_WISE

    def test_node_sized_table_goes_twrw(self):
        p = self.planner(world_size=16, ranks_per_node=8,
                         device_memory_bytes=100e6)
        # table of ~256MB: exceeds device (100MB) but fits a node (800MB)
        scheme = p.choose_scheme(cfg(h=1_000_000, d=64))
        assert scheme == ShardingScheme.TABLE_ROW_WISE

    def test_wide_table_goes_column_wise(self):
        p = self.planner()
        assert p.choose_scheme(cfg(d=512)) == ShardingScheme.COLUMN_WISE

    def test_default_is_table_wise(self):
        p = self.planner()
        assert p.choose_scheme(cfg(h=50_000, d=64)) == \
            ShardingScheme.TABLE_WISE


class TestPlannerPlans:
    def test_plan_validates_and_covers(self):
        planner = EmbeddingShardingPlanner(PlannerConfig(world_size=4,
                                                         ranks_per_node=4))
        tables = [cfg(f"t{i}", h=50_000 + i * 1000, d=64) for i in range(10)]
        plan = planner.plan(tables)
        plan.validate()
        assert set(plan.tables) == {t.name for t in tables}

    def test_scheme_override(self):
        planner = EmbeddingShardingPlanner(PlannerConfig(world_size=4,
                                                         ranks_per_node=4))
        tables = [cfg("a", h=50_000)]
        plan = planner.plan(tables, schemes={"a": ShardingScheme.ROW_WISE})
        assert plan.scheme_of("a") == ShardingScheme.ROW_WISE
        assert len(plan.tables["a"].shards) == 4

    def test_duplicate_names_raise(self):
        planner = EmbeddingShardingPlanner(PlannerConfig(world_size=2,
                                                         ranks_per_node=2))
        with pytest.raises(ValueError):
            planner.plan([cfg("a"), cfg("a")])

    def test_ldm_balances_better_than_greedy(self):
        """Placement quality: LDM spread <= greedy on a skewed model."""
        rng = np.random.default_rng(0)
        tables = [cfg(f"t{i}", h=int(rng.lognormal(11, 1)),
                      d=int(rng.choice([16, 32, 64, 128])),
                      pooling=float(rng.integers(1, 50)))
                  for i in range(64)]
        params = CostModelParams(global_batch=8192, world_size=8)
        plans = {}
        for method in ("greedy", "ldm"):
            planner = EmbeddingShardingPlanner(
                PlannerConfig(world_size=8, ranks_per_node=8,
                              partitioner=method,
                              allow_data_parallel=False,
                              allow_column_wise=False),
                cost_params=params)
            plans[method] = planner.plan(tables)
        loads = {m: plan_cost_per_rank(p, params) for m, p in plans.items()}
        spread = {m: max(l) - min(l) for m, l in loads.items()}
        assert spread["ldm"] <= spread["greedy"] * 1.05

    def test_twrw_stays_within_node(self):
        planner = EmbeddingShardingPlanner(
            PlannerConfig(world_size=16, ranks_per_node=8,
                          device_memory_bytes=100e6))
        big = cfg("big", h=1_000_000, d=64)  # 256MB > device, < node
        plan = planner.plan([big])
        ranks = {s.rank for s in plan.tables["big"].shards}
        nodes = {r // 8 for r in ranks}
        assert len(nodes) == 1
        assert len(ranks) == 8

    def test_hierarchical_plus_flat_mix(self):
        planner = EmbeddingShardingPlanner(
            PlannerConfig(world_size=16, ranks_per_node=8,
                          device_memory_bytes=100e6))
        tables = [cfg("big", h=1_000_000, d=64),
                  cfg("small", h=100, d=16),
                  cfg("mid", h=50_000, d=64)]
        plan = planner.plan(tables)
        plan.validate()
        assert plan.scheme_of("big") == ShardingScheme.TABLE_ROW_WISE
        assert plan.scheme_of("small") == ShardingScheme.DATA_PARALLEL
        assert plan.scheme_of("mid") == ShardingScheme.TABLE_WISE

    def test_cw_shards_spread_over_ranks(self):
        planner = EmbeddingShardingPlanner(
            PlannerConfig(world_size=8, ranks_per_node=8, cw_shards=4))
        wide = cfg("wide", h=50_000, d=512)
        plan = planner.plan([wide])
        shards = plan.tables["wide"].shards
        assert len(shards) == 4
        assert all(s.num_cols == 128 for s in shards)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PlannerConfig(world_size=0)
        with pytest.raises(ValueError):
            PlannerConfig(world_size=12, ranks_per_node=8)
        with pytest.raises(ValueError):
            PlannerConfig(partitioner="random")

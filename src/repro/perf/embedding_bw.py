"""Embedding operator bandwidth model (Appendix A, Figs. 18-19; Sec 4.1.1).

Pooled embedding lookups are pure memory traffic: the forward pass reads
``nnz * D`` elements of rows; the fused backward+optimizer does a
read-modify-write (~2x). Achieved bandwidth approaches the device's
measured HBM ceiling for large dims and degrades for narrow rows (poor
coalescing), matching the Fig. 18-19 curve shapes.

The fused-vs-unfused comparison (the up-to-7x claim of Section 4.1.1)
falls out of kernel-launch amortization: one launch for T tables vs T
launches, which dominates when per-table work is small.
"""

from __future__ import annotations


from .devices import DeviceSpec

__all__ = ["embedding_achieved_bw", "embedding_lookup_time",
           "embedding_update_time", "fused_lookup_time",
           "unfused_lookup_time", "fused_speedup"]

_DTYPE_BYTES = {"fp32": 4, "fp16": 2}
# row width (bytes) at which coalescing reaches half its ceiling
_COALESCE_HALF_BYTES = 64.0


def embedding_achieved_bw(device: DeviceSpec, embedding_dim: int,
                          precision: str = "fp32") -> float:
    """Achieved HBM bandwidth for pooled lookups of width ``embedding_dim``.

    Narrow rows waste bus transactions; wide rows stream at the measured
    ceiling. FP16 halves row bytes, which *reduces* achieved bytes/s for
    narrow rows (same transaction waste, fewer useful bytes) but roughly
    doubles rows/s — exactly the Fig. 18 FP32-vs-FP16 relationship.
    """
    if embedding_dim <= 0:
        raise ValueError("embedding_dim must be positive")
    row_bytes = embedding_dim * _DTYPE_BYTES[precision]
    coalescing = row_bytes / (row_bytes + _COALESCE_HALF_BYTES)
    return device.hbm_achievable_bw * coalescing


def embedding_lookup_time(nnz: int, embedding_dim: int, device: DeviceSpec,
                          precision: str = "fp32") -> float:
    """Forward pooled lookup: read nnz rows (one kernel)."""
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    bytes_read = nnz * embedding_dim * _DTYPE_BYTES[precision]
    bw = embedding_achieved_bw(device, embedding_dim, precision)
    return bytes_read / bw + device.kernel_launch_overhead


def embedding_update_time(nnz: int, embedding_dim: int, device: DeviceSpec,
                          precision: str = "fp32") -> float:
    """Fused backward + exact optimizer: read + write touched rows."""
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    bytes_moved = 2 * nnz * embedding_dim * _DTYPE_BYTES[precision]
    bw = embedding_achieved_bw(device, embedding_dim, precision)
    return bytes_moved / bw + device.kernel_launch_overhead


def fused_lookup_time(per_table_nnz, embedding_dim: int,
                      device: DeviceSpec,
                      precision: str = "fp32") -> float:
    """All tables batched into one kernel (Section 4.1.1)."""
    total_nnz = int(sum(per_table_nnz))
    return embedding_lookup_time(total_nnz, embedding_dim, device,
                                 precision)


def unfused_lookup_time(per_table_nnz, embedding_dim: int,
                        device: DeviceSpec,
                        precision: str = "fp32") -> float:
    """One ``nn.EmbeddingBag``-style kernel per table."""
    return sum(embedding_lookup_time(int(nnz), embedding_dim, device,
                                     precision)
               for nnz in per_table_nnz)


def fused_speedup(per_table_nnz, embedding_dim: int, device: DeviceSpec,
                  precision: str = "fp32") -> float:
    """Unfused / fused time ratio — the paper reports up to 7x."""
    fused = fused_lookup_time(per_table_nnz, embedding_dim, device,
                              precision)
    unfused = unfused_lookup_time(per_table_nnz, embedding_dim, device,
                                  precision)
    return unfused / fused

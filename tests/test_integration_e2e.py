"""Whole-system integration: every subsystem in one production-shaped
workflow, plus trainer coverage for TWRW and mean pooling.

The workflow test chains: model zoo (shrunk) -> feature hashing ->
autotuned sharding plan -> memory validation -> Neo trainer with
quantized comms and gradient bucketing -> training loop with LR warmup,
NE/AUC eval, differential checkpoints -> comms trace replay on a bigger
cluster. If any two subsystems disagree about an interface or a
convention, this test is where it surfaces.
"""

import numpy as np
import pytest

from repro import nn
from repro.comms import (PROTOTYPE_TOPOLOGY, ClusterTopology,
                         QuantizedCommsConfig)
from repro.comms.param_bench import replay_mode, trace_from_log
from repro.core import (CheckpointManager, NeoTrainer, TrainingLoop)
from repro.data import (SyntheticCTRDataset, shrink_batch,
                        shrink_table_configs)
from repro.embedding import EmbeddingTableConfig, RowWiseAdaGrad, \
    SparseAdaGrad, SparseSGD
from repro.metrics import normalized_entropy, roc_auc
from repro.models import DLRM, DLRMConfig, mini_config
from repro.nn import WarmupLinearDecay
from repro.sharding import (CostModelParams, PlannerConfig, ShardingPlan,
                            ShardingScheme, autotune_schemes, shard_table,
                            validate_plan_memory)


class TestTrainerSchemeCoverage:
    """Scheme/pooling combinations not covered by the core matrix."""

    def test_twrw_matches_reference(self):
        """Hierarchical table-row-wise: shards confined to one node's
        ranks, still equivalent to the single-process model."""
        tables = (EmbeddingTableConfig("big", 64, 8, avg_pooling=3.0),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                            top_mlp=(8,))
        world = 4  # 2 nodes x 2 GPUs
        plan = ShardingPlan(world_size=world)
        # TWRW places the table on node 1's local ranks [2, 3]
        plan.tables["big"] = shard_table(
            tables[0], ShardingScheme.TABLE_ROW_WISE, [2, 3])
        plan.validate()
        ds = SyntheticCTRDataset(tables, dense_dim=4, seed=0)
        batches = ds.batches(8, 3)

        reference = DLRM(config, seed=0)
        ref_opt = nn.SGD(reference.dense_parameters(), lr=0.1)
        ref_sparse = SparseAdaGrad(lr=0.1)
        for b in batches:
            reference.train_step(b, ref_opt, ref_sparse)

        trainer = NeoTrainer(
            config, plan, ClusterTopology(num_nodes=2, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0)
        for b in batches:
            trainer.train_step(b.split(world))
        np.testing.assert_allclose(
            trainer.gather_table("big"),
            reference.embeddings.table("big").weight, rtol=1e-4,
            atol=1e-6)

    @pytest.mark.parametrize("scheme", [ShardingScheme.TABLE_WISE,
                                        ShardingScheme.COLUMN_WISE,
                                        ShardingScheme.DATA_PARALLEL])
    def test_mean_pooling_matches_reference(self, scheme):
        """Mean pooling works for every scheme except row-wise (which the
        trainer rejects — partial means don't compose)."""
        tables = (EmbeddingTableConfig("t0", 32, 8, avg_pooling=3.0,
                                       pooling_mode="mean"),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                            top_mlp=(8,))
        world = 2
        plan = ShardingPlan(world_size=world)
        ranks = [0] if scheme == ShardingScheme.TABLE_WISE else [0, 1]
        plan.tables["t0"] = shard_table(tables[0], scheme, ranks)
        ds = SyntheticCTRDataset(tables, dense_dim=4, seed=0)
        batches = ds.batches(8, 2)

        reference = DLRM(config, seed=0)
        ref_opt = nn.SGD(reference.dense_parameters(), lr=0.1)
        sparse = SparseSGD(lr=0.1)
        ref_losses = [reference.train_step(b, ref_opt, sparse)
                      for b in batches]

        trainer = NeoTrainer(
            config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseSGD(lr=0.1), seed=0)
        losses = [trainer.train_step(b.split(world)) for b in batches]
        np.testing.assert_allclose(losses, ref_losses, rtol=1e-4,
                                   atol=1e-6)


class TestFullWorkflow:
    def test_production_shaped_pipeline(self, tmp_path):
        # 1. model: shrunk A1 via the zoo + feature hashing
        config = mini_config("A1", scale=256, num_tables=4,
                             embedding_dim=8)
        full_tables = [EmbeddingTableConfig(t.name, 100_000,
                                            t.embedding_dim,
                                            avg_pooling=t.avg_pooling)
                       for t in config.tables]
        shrunk = shrink_table_configs(full_tables, max_rows=256)

        # 2. sharding: autotune, then validate memory
        world = 4
        result = autotune_schemes(
            list(config.tables),
            PlannerConfig(world_size=world, ranks_per_node=world,
                          dp_threshold_rows=32),
            CostModelParams(global_batch=64, world_size=world))
        validate_plan_memory(result.plan, device_memory_bytes=32e9)

        # 3. trainer with quantized comms
        trainer = NeoTrainer(
            config, result.plan,
            ClusterTopology(num_nodes=1, gpus_per_node=world),
            dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
            sparse_optimizer=RowWiseAdaGrad(lr=0.1),
            comms_config=QuantizedCommsConfig.paper_recipe(), seed=0)

        # 4. loop with warmup, eval, differential checkpoints — fed by a
        #    full-cardinality stream hashed into the shrunk tables
        full_ds = SyntheticCTRDataset(full_tables, dense_dim=8, noise=0.2,
                                      seed=1)

        class HashedDataset:
            tables = config.tables

            def batch(self, batch_size, batch_index=0):
                return shrink_batch(full_ds.batch(batch_size, batch_index),
                                    shrunk)

        manager = CheckpointManager(str(tmp_path), differential=True)
        scheduler = WarmupLinearDecay(trainer.ranks[0].dense_opt,
                                      base_lr=0.02, warmup_steps=5,
                                      total_steps=40)
        loop = TrainingLoop(trainer, HashedDataset(),
                            global_batch_size=64, eval_every=10,
                            eval_batch_size=512,
                            checkpoint_manager=manager,
                            checkpoint_every=10,
                            lr_schedulers=[scheduler])
        run = loop.run(30)
        assert len(run.losses) == 30
        assert len(run.checkpoints) == 3
        assert run.losses[-1] < run.losses[0]

        # 5. metrics on held out data
        model = trainer.to_local_model()
        test = HashedDataset().batch(2048, 777_777)
        ne = normalized_entropy(model.predict_proba(test), test.labels)
        auc = roc_auc(model.predict_proba(test), test.labels)
        assert ne < 1.0
        assert auc > 0.55

        # 6. resume from the differential chain, bit-exact embeddings
        fresh = NeoTrainer(
            config, result.plan,
            ClusterTopology(num_nodes=1, gpus_per_node=world),
            dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
            sparse_optimizer=RowWiseAdaGrad(lr=0.1),
            comms_config=QuantizedCommsConfig.paper_recipe(), seed=42)
        manager.load(fresh)
        for t in config.tables:
            np.testing.assert_array_equal(fresh.gather_table(t.name),
                                          trainer.gather_table(t.name))

        # 7. replay the captured comms trace on the 128-GPU cluster model
        trace = trace_from_log(trainer.pg.log, world_size=world)
        replay = replay_mode(trace, PROTOTYPE_TOPOLOGY(16))
        assert replay["total"] > 0
        assert "all_reduce" in replay

"""The paper's closing future-work direction, §7: "model architectures
that reduce global AlltoAll communication for better scaling efficiency".

This bench runs that exploration with the co-design toolkit: three model
families with the SAME parameter count and the SAME per-sample FLOPs but
different table geometry, evaluated at 128 GPUs —

1. many narrow tables (A2-like),
2. fewer, wider tables (same sum of dims — identical AlltoAll payload,
   different balance granularity),
3. fewer, *taller* tables (smaller sum of dims — the AlltoAll-reducing
   architecture the conclusion hints at).

The third family trades embedding-dim width for rows, shrinking the
pooled AlltoAll payload and buying back scaling efficiency — quantifying
the paper's suggestion.
"""

import numpy as np
import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.embedding import EmbeddingTableConfig
from repro.models.zoo import ModelSpec
from repro.perf import (TrainingSetup, latency_breakdown, qps,
                        weak_scaling_curve)

TOTAL_PARAMS = 100e9
TOTAL_POOLING = 2000.0  # sum of L across tables (fixed lookup traffic)
MLP = tuple([2048] * 16)


def family(name, num_tables, dim):
    rows = int(TOTAL_PARAMS / (num_tables * dim))
    pooling = TOTAL_POOLING / num_tables
    tables = tuple(
        EmbeddingTableConfig(f"{name}_t{i}", rows, dim,
                             avg_pooling=pooling)
        for i in range(num_tables))
    return ModelSpec(name=name, tables=tables, dense_dim=MLP[0],
                     mlp_layer_sizes=MLP, declared_mflops_per_sample=0)


def evaluate():
    topo = PROTOTYPE_TOPOLOGY(16)
    specs = [
        ("many narrow (800 x D64)", family("narrow", 800, 64)),
        ("few wide (200 x D256)", family("wide", 200, 256)),
        ("few tall (200 x D64, 4x rows)", family("tall", 200, 64)),
    ]
    rows = []
    for label, spec in specs:
        setup = TrainingSetup(spec=spec, topology=topo,
                              global_batch=65536, load_imbalance=1.15)
        b = latency_breakdown(setup)
        exposed_a2a = b.exposed["alltoall_fwd"] + b.exposed["alltoall_bwd"]
        base = TrainingSetup(spec=spec, topology=PROTOTYPE_TOPOLOGY(1),
                             global_batch=512 * 8, load_imbalance=1.15)
        curve = weak_scaling_curve(base, [1, 16])
        eff = curve[16] / (16 * curve[1])
        sum_d = sum(t.embedding_dim for t in spec.tables)
        rows.append((label, sum_d, f"{exposed_a2a * 1e3:.1f} ms",
                     f"{qps(setup) / 1e3:.0f}K", f"{eff:.0%}"))
    return rows


def test_comms_aware_model_design(benchmark, report):
    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    report("Section 7 future work: AlltoAll-reducing architectures "
           "(equal params, equal lookup traffic, 128 GPUs)",
           ["family", "sum of dims", "exposed AlltoAll", "QPS",
            "scaling eff"], rows)
    by_label = {r[0]: r for r in rows}
    narrow = by_label["many narrow (800 x D64)"]
    wide = by_label["few wide (200 x D256)"]
    tall = by_label["few tall (200 x D64, 4x rows)"]
    # same sum of dims -> same AlltoAll exposure (geometry alone no help)
    assert wide[1] == narrow[1]
    # smaller sum of dims -> less exposed AlltoAll, more QPS, better eff
    assert tall[1] < narrow[1]
    assert float(tall[2].rstrip(" ms")) < float(narrow[2].rstrip(" ms"))
    assert float(tall[3].rstrip("K")) > float(narrow[3].rstrip("K"))
    assert float(tall[4].rstrip("%")) >= float(narrow[4].rstrip("%"))

"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
experiment in the repository is reproducible bit-for-bit — the same property
the paper relies on for debugging at scale (Section 4.1.2).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "normal",
    "uniform",
    "zeros",
]


def _fan_in_out(shape: tuple) -> tuple:
    if len(shape) != 2:
        raise ValueError(f"expected a 2-D weight shape, got {shape}")
    fan_out, fan_in = shape
    return fan_in, fan_out


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — the DLRM reference init for MLP weights."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def xavier_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He initialization, appropriate for ReLU MLP stacks."""
    fan_in, _ = _fan_in_out(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def normal(shape: tuple, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def uniform(shape: tuple, rng: np.random.Generator, low: float = -0.05,
            high: float = 0.05) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)

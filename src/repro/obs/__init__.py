"""Observability: span tracing, metrics and post-run reporting.

The measurement substrate for the executable stack — the reproduction's
analogue of torch.profiler + PARAM-bench in the real Neo system. Three
pieces:

* :mod:`repro.obs.tracer` — nestable spans on a wall or deterministic
  logical clock, exported as Chrome ``trace_event`` JSON and as
  per-component aggregates;
* :mod:`repro.obs.metrics` — counters/gauges/histograms behind a
  :class:`MetricRegistry` with named scopes (wire bytes per collective,
  cache hits, lookup rows, gradient norms);
* :mod:`repro.obs.report` — markdown run summaries and
  :func:`compare_to_model`, which diffs measured component shares
  against the analytical :func:`repro.core.pipeline.breakdown`.

Instrumentation is off by default (:data:`NULL_TRACER`) and, under the
logical clock, fully deterministic.
"""

from .metrics import (Counter, Gauge, Histogram, MetricRegistry,
                      MetricScope, default_registry)
from .report import (DEFAULT_PHASE_MAP, ComponentComparison,
                     compare_to_model, render_summary)
from .tracer import (NULL_TRACER, NullTracer, SpanAggregate, SpanEvent,
                     Trace, Tracer, as_tracer)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "Trace",
    "SpanEvent",
    "SpanAggregate",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricScope",
    "default_registry",
    "ComponentComparison",
    "compare_to_model",
    "render_summary",
    "DEFAULT_PHASE_MAP",
]

"""Multi-tenant serving: a model zoo sharing one fleet's capacity.

Production recommendation fleets host a *zoo* — many models of very
different sizes and SLOs (Section 2 of the paper; the A/F model families
differ by orders of magnitude) — and the capacity question is how to
split shared replicas between them. This module adds the tenancy plane:

* :class:`TenantSpec` — one zoo entry: a frozen model, its latency SLO
  and its share of the traffic;
* :class:`MultiTenantServer` — one replica hosting several tenants'
  models over a *single* device timeline, batched per tenant by
  :class:`~repro.serving.batcher.MultiTenantBatcher`. This is the naive
  "shared" deployment: a heavy tenant's dispatch head-of-line blocks
  everyone else, and co-resident model storage can overflow HBM and
  degrade lookup bandwidth for all tenants at once
  (:meth:`~repro.perf.PlatformSpec.hierarchy_bw_fraction`);
* :class:`MultiTenantFleet` — the fleet, in two deployment modes:
  ``"shared"`` (every replica hosts every model, tenant-blind
  round-robin routing) and ``"partitioned"`` (each tenant gets a
  dedicated replica subset sized by :func:`partition_replicas` from its
  demand share — per-tenant isolation at the cost of pooling);
* :func:`plan_tenancy` — splits one fleet-wide hot-memory budget across
  tenants and runs the :class:`~repro.planner.RepresentationPlanner`
  per tenant model, so zoo-wide placement and per-table representation
  are decided by the same search.

``benchmarks/bench_planner.py`` gates the punchline: a 3-tenant zoo
whose SLOs all hold under planner-partitioned replicas while the naive
shared fleet misses at least one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.datagen import MiniBatch
from ..obs.metrics import MetricRegistry
from ..obs.tracer import as_tracer
from ..serving.batcher import (BatchingPolicy, InferenceRequest,
                               MultiTenantBatcher, ScheduledBatch)
from ..serving.export import ServableModel
from ..serving.loadgen import LoadReport, summarize
from ..serving.server import (RequestOutcome, ServeResult,
                              ServingPerfModel)
from .fleet import ServingFleet

__all__ = ["TENANCY_MODES", "TenantSpec", "MultiTenantServer",
           "TenantLoadSummary", "FleetTenancyReport", "MultiTenantFleet",
           "partition_replicas", "plan_tenancy"]

TENANCY_MODES = ("partitioned", "shared")


@dataclass(frozen=True)
class TenantSpec:
    """One zoo entry: a frozen model plus its serving contract.

    ``traffic_share`` is the tenant's fraction of fleet-offered load
    (need not sum to 1 across tenants — shares are normalized where
    used); ``policy`` is the tenant's own batching/admission knobs
    (defaults to the stock :class:`BatchingPolicy`).
    """

    name: str
    model: ServableModel
    slo_s: float
    traffic_share: float = 1.0
    policy: BatchingPolicy = field(default_factory=BatchingPolicy)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.traffic_share <= 0:
            raise ValueError("traffic_share must be positive")


def partition_replicas(weights: Dict[str, float], num_replicas: int
                       ) -> Dict[str, int]:
    """Split ``num_replicas`` across tenants by demand weight.

    Largest-remainder apportionment with a floor of one replica per
    tenant: every tenant first gets 1, the rest go by the normalized
    weights' integer parts, and leftover replicas land on the largest
    fractional remainders (ties broken by tenant name, so the split is
    deterministic). Raises when there are fewer replicas than tenants.
    """
    if not weights:
        raise ValueError("need at least one tenant weight")
    if any(w <= 0 for w in weights.values()):
        raise ValueError("weights must be positive")
    names = sorted(weights)
    if num_replicas < len(names):
        raise ValueError(f"{num_replicas} replicas cannot cover "
                         f"{len(names)} tenants at one replica each")
    spare = num_replicas - len(names)
    total = sum(weights.values())
    quotas = {n: spare * weights[n] / total for n in names}
    out = {n: 1 + int(quotas[n]) for n in names}
    remaining = num_replicas - sum(out.values())
    by_remainder = sorted(names, key=lambda n: (-(quotas[n] - int(quotas[n])),
                                                n))
    for n in by_remainder[:remaining]:
        out[n] += 1
    return out


class MultiTenantServer:
    """One replica hosting several tenants' models on a shared timeline.

    The naive shared deployment: all tenant models are co-resident, and
    one :class:`MultiTenantBatcher` interleaves their dispatches over a
    single device. Consequences the perf model captures:

    * **head-of-line blocking** — a long batch from a heavy tenant
      pushes ``server_free`` out for every tenant;
    * **hierarchy congestion** — ``bw_fraction`` is computed from the
      *combined* storage of all hosted models, so overflowing HBM slows
      every tenant's lookups. The congestion ratio (solo fraction over
      shared fraction) is applied to the whole dispatch — a conservative
      bound, since only the lookup term is bandwidth-bound.
    """

    def __init__(self, tenants: Sequence[TenantSpec],
                 perf: Optional[ServingPerfModel] = None,
                 tracer=None,
                 metrics: Optional[MetricRegistry] = None,
                 name: str = "") -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.tenants = {t.name: t for t in tenants}
        self.perf = perf if perf is not None else ServingPerfModel()
        self.batcher = MultiTenantBatcher(
            {t.name: t.policy for t in tenants})
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.name = name
        self._span_attrs = {"replica": name} if name else {}
        combined = sum(t.model.embedding_storage_bytes() for t in tenants)
        shared_fraction = self.perf.platform.hierarchy_bw_fraction(
            self.perf.platform.hbm_fraction(combined, self.perf.nodes),
            self.perf.cache_hit_boost)
        self._congestion = {
            t.name: self.perf.bw_fraction(t.model) / shared_fraction
            for t in tenants}

    def congestion(self, tenant: str) -> float:
        """>= 1 slowdown factor from co-resident model storage."""
        return self._congestion[tenant]

    def _service_time(self, tenant: str,
                      requests: List[InferenceRequest]) -> float:
        model = self.tenants[tenant].model
        batch_size = sum(r.num_samples for r in requests)
        nnz = sum(model.nnz(r.batch) for r in requests)
        return self.perf.service_time(model, batch_size, nnz) \
            * self._congestion[tenant]

    def _execute(self, tenant: str, scheduled: ScheduledBatch
                 ) -> Dict[int, np.ndarray]:
        model = self.tenants[tenant].model
        with self.tracer.span("serving.forward", cat="serving",
                              tenant=tenant,
                              requests=scheduled.num_requests,
                              samples=scheduled.num_samples,
                              **self._span_attrs):
            merged = MiniBatch.concat([r.batch for r in scheduled.requests])
            probs = model.predict(merged)
        out: Dict[int, np.ndarray] = {}
        row = 0
        for r in scheduled.requests:
            out[r.request_id] = probs[row:row + r.num_samples]
            row += r.num_samples
        return out

    def serve(self, requests: Sequence[InferenceRequest]
              ) -> Dict[str, ServeResult]:
        """Serve a mixed-tenant trace; one :class:`ServeResult` per
        tenant (every tenant reports, even with no traffic)."""
        plans = self.batcher.plan(list(requests), self._service_time)
        out: Dict[str, ServeResult] = {}
        for tenant, plan in plans.items():
            scope = self.metrics.scope(
                f"{self.name}.{tenant}.serving" if self.name
                else f"{tenant}.serving")
            result = ServeResult(plan=plan)
            for scheduled in plan.batches:
                with self.tracer.span("serving.batch", cat="serving",
                                      tenant=tenant,
                                      requests=scheduled.num_requests,
                                      trigger=scheduled.trigger,
                                      dispatch_s=scheduled.dispatch_s,
                                      **self._span_attrs):
                    result.responses.update(
                        self._execute(tenant, scheduled))
                scope.counter("batches").inc(1)
                for r in scheduled.requests:
                    result.outcomes.append(RequestOutcome(
                        request_id=r.request_id, arrival_s=r.arrival_s,
                        dispatch_s=scheduled.dispatch_s,
                        completion_s=scheduled.completion_s,
                        batch_samples=scheduled.num_samples))
            result.shed_ids = sorted(r.request_id for r in plan.shed)
            scope.counter("completed").inc(result.num_completed)
            scope.counter("shed").inc(result.num_shed)
            result.outcomes.sort(key=lambda o: o.request_id)
            out[tenant] = result
        return out


@dataclass(frozen=True)
class TenantLoadSummary:
    """One tenant's fleet-level outcome: merged report vs its SLO."""

    tenant: str
    slo_s: float
    replicas: int
    report: LoadReport

    @property
    def slo_held(self) -> bool:
        return self.report.p99_s <= self.slo_s

    def row(self) -> List[str]:
        return [self.tenant, str(self.replicas),
                f"{self.slo_s * 1e3:.1f}",
                f"{self.report.p99_s * 1e3:.2f}",
                f"{self.report.shed_fraction * 100:.1f}%",
                "yes" if self.slo_held else "NO"]

    ROW_HEADER = ["tenant", "replicas", "SLO ms", "p99 ms", "shed", "held"]


@dataclass
class FleetTenancyReport:
    """Per-tenant merged reports of one multi-tenant fleet run."""

    mode: str
    num_replicas: int
    per_tenant: Dict[str, TenantLoadSummary]

    @property
    def all_slos_held(self) -> bool:
        return all(s.slo_held for s in self.per_tenant.values())

    def violations(self) -> List[str]:
        return sorted(t for t, s in self.per_tenant.items()
                      if not s.slo_held)

    def render(self) -> str:
        from ..online.report import render_table
        rows = [self.per_tenant[t].row()
                for t in sorted(self.per_tenant)]
        return render_table(TenantLoadSummary.ROW_HEADER, rows)


class MultiTenantFleet:
    """N replicas serving a tenant zoo, partitioned or naively shared.

    ``mode="partitioned"``: each tenant runs on a dedicated replica
    subset sized by :func:`partition_replicas` from
    ``traffic_share x single-request service time`` (its demand in
    device-seconds), each subset an ordinary single-model
    :class:`~repro.fleet.fleet.ServingFleet` — full isolation, no
    cross-tenant blocking, per-tenant storage only.

    ``mode="shared"``: every replica is a :class:`MultiTenantServer`
    hosting *all* models, and requests are routed tenant-blind
    round-robin in arrival order — the deployment that pools perfectly
    but lets heavy tenants blocking light ones and co-resident storage
    degrade everyone.
    """

    def __init__(self, tenants: Sequence[TenantSpec], num_replicas: int,
                 mode: str = "partitioned",
                 perf: Optional[ServingPerfModel] = None,
                 tracer=None,
                 metrics: Optional[MetricRegistry] = None) -> None:
        if mode not in TENANCY_MODES:
            raise ValueError(f"mode must be one of {TENANCY_MODES}, "
                             f"got {mode!r}")
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.tenants = {t.name: t for t in tenants}
        self.mode = mode
        self.num_replicas = num_replicas
        self.perf = perf if perf is not None else ServingPerfModel()
        self.tracer = as_tracer(tracer)
        self.metrics = metrics if metrics is not None else MetricRegistry()
        if mode == "partitioned":
            self.partition = partition_replicas(
                {t.name: self._demand_weight(t) for t in tenants},
                num_replicas)
            self.fleets = {
                t.name: ServingFleet(
                    t.model, num_replicas=self.partition[t.name],
                    policy=t.policy,
                    perfs=[self.perf] * self.partition[t.name],
                    tracer=self.tracer, metrics=self.metrics)
                for t in tenants}
            self.replicas = []
        else:
            self.partition = {t.name: num_replicas for t in tenants}
            self.fleets = {}
            self.replicas = [
                MultiTenantServer(tenants, perf=self.perf,
                                  tracer=self.tracer, metrics=self.metrics,
                                  name=f"replica{i}")
                for i in range(num_replicas)]

    def _demand_weight(self, t: TenantSpec) -> float:
        """Demand in device-seconds per fleet-second: traffic share x
        the model's single-sample service time (its per-request cost),
        so a heavy model earns proportionally more replicas."""
        svc = self.perf.service_time(
            t.model, 1, max(1, int(round(sum(
                tc.avg_pooling for tc in t.model.config.tables)))))
        return t.traffic_share * svc

    def serve(self, requests: Sequence[InferenceRequest],
              offered_qps: Dict[str, float]) -> FleetTenancyReport:
        """Serve one mixed-tenant arrival trace; per-tenant merged
        reports (exact pooled percentiles) against each tenant's SLO.

        ``offered_qps`` labels each tenant's report with its offered
        rate; every request must carry a known ``tenant`` tag.
        """
        by_tenant: Dict[str, List[InferenceRequest]] = {
            name: [] for name in self.tenants}
        for r in sorted(requests, key=lambda r: (r.arrival_s, r.request_id)):
            if r.tenant not in self.tenants:
                raise ValueError(f"request {r.request_id} targets unknown "
                                 f"tenant {r.tenant!r}")
            by_tenant[r.tenant].append(r)
        missing = sorted(set(self.tenants) - set(offered_qps))
        if missing:
            raise ValueError(f"offered_qps missing tenants {missing}")
        if self.mode == "partitioned":
            per_tenant = {
                name: TenantLoadSummary(
                    tenant=name, slo_s=self.tenants[name].slo_s,
                    replicas=self.partition[name],
                    report=self.fleets[name].serve(
                        by_tenant[name], slo_s=self.tenants[name].slo_s,
                        offered_qps=offered_qps[name]).merged)
                for name in self.tenants}
            return FleetTenancyReport(mode=self.mode,
                                      num_replicas=self.num_replicas,
                                      per_tenant=per_tenant)
        # shared: tenant-blind round-robin in global arrival order
        sub: List[List[InferenceRequest]] = \
            [[] for _ in range(self.num_replicas)]
        ordered = sorted(requests,
                         key=lambda r: (r.arrival_s, r.request_id))
        for i, r in enumerate(ordered):
            sub[i % self.num_replicas].append(r)
        results = [replica.serve(trace)
                   for replica, trace in zip(self.replicas, sub)]
        per_tenant: Dict[str, TenantLoadSummary] = {}
        for name, spec in self.tenants.items():
            offered = len(by_tenant[name])
            reports = []
            for i, result in enumerate(results):
                n = sum(1 for r in sub[i] if r.tenant == name)
                share = n / offered if offered else 0.0
                reports.append(summarize(
                    result[name], offered_qps=offered_qps[name] * share,
                    num_offered=n, slo_s=spec.slo_s, keep_samples=True))
            per_tenant[name] = TenantLoadSummary(
                tenant=name, slo_s=spec.slo_s, replicas=self.num_replicas,
                report=LoadReport.merge(reports))
        return FleetTenancyReport(mode=self.mode,
                                  num_replicas=self.num_replicas,
                                  per_tenant=per_tenant)


def plan_tenancy(models: Dict[str, object], total_hot_bytes: float,
                 cost=None, weights: Optional[Dict[str, float]] = None,
                 eval_batches: Optional[Dict[str, object]] = None,
                 ne_floor: Optional[float] = None):
    """Split one fleet-wide hot-memory budget across tenant models and
    plan each tenant's per-table representations.

    ``models`` maps tenant name -> trained model (anything
    :class:`~repro.planner.RepresentationPlanner` accepts). The budget
    splits proportionally to ``weights`` (default: each model's full
    fp32 embedding bytes, so relative compression pressure is uniform).
    Returns ``{tenant: RepresentationPlan}``; freeze each tenant's model
    with its plan to build the zoo's :class:`TenantSpec`\\ s.
    """
    from ..planner import PlanBudget, RepresentationPlanner
    if total_hot_bytes <= 0:
        raise ValueError("total_hot_bytes must be positive")
    planner = RepresentationPlanner(cost=cost)
    if weights is None:
        weights = {}
        for name, model in models.items():
            local = model.to_local_model() if hasattr(
                model, "to_local_model") else model
            weights[name] = float(sum(t.num_parameters * 4
                                      for t in local.config.tables))
    if sorted(weights) != sorted(models):
        raise ValueError("weights must cover exactly the tenant models")
    total_w = sum(weights.values())
    plans = {}
    for name in sorted(models):
        share = total_hot_bytes * weights[name] / total_w
        budget = PlanBudget(hot_bytes=share, ne_floor=ne_floor)
        eval_batch = (eval_batches or {}).get(name)
        plans[name] = planner.plan(models[name], budget=budget,
                                   eval_batch=eval_batch)
    return plans

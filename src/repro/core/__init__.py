"""Neo core: the synchronous hybrid-parallel trainer, the iteration
pipeline model (paper Sections 3, 4.3), checkpointing and the end-to-end
training loop."""

from .checkpoint import CheckpointManager, CheckpointStats
from .loop import TrainingLoop, TrainingResult
from .pipeline import (ComponentTimes, LatencyBreakdown, breakdown,
                       iteration_latency)
from .schedule import (PipelineSchedule, Task, dlrm_iteration_tasks,
                       steady_state_iteration_time)
from .trainer import NeoTrainer

__all__ = [
    "NeoTrainer",
    "ComponentTimes",
    "LatencyBreakdown",
    "iteration_latency",
    "breakdown",
    "CheckpointManager",
    "CheckpointStats",
    "TrainingLoop",
    "TrainingResult",
    "Task",
    "PipelineSchedule",
    "dlrm_iteration_tasks",
    "steady_state_iteration_time",
]

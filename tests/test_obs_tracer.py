"""Unit tests for the span tracer: nesting, exception safety, export
formats, the deterministic logical clock, and the no-op fast path."""

import json
import tracemalloc

import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad
from repro.models import DLRMConfig
from repro.obs import (NULL_TRACER, NullTracer, Trace, Tracer, as_tracer)
from repro.sharding import PlannerConfig


class TestSpanNesting:

    def test_parent_depth_and_tree(self):
        tr = Tracer(clock="logical")
        with tr.span("outer"):
            with tr.span("inner_a"):
                pass
            with tr.span("inner_b"):
                with tr.span("leaf"):
                    pass
        assert tr.depth == 0
        trace = tr.trace
        assert trace.tree() == (
            ("outer", (("inner_a", ()),
                       ("inner_b", (("leaf", ()),)))),)
        outer, = trace.find("outer")
        leaf, = trace.find("leaf")
        assert outer.parent == -1 and outer.depth == 0
        assert leaf.depth == 2
        assert trace.events[leaf.parent].name == "inner_b"

    def test_span_args_and_set(self):
        tr = Tracer()
        with tr.span("s", table="t0", rows=7) as span:
            span.set(extra=1)
        event, = tr.trace.find("s")
        assert event.args == {"table": "t0", "rows": 7, "extra": 1}

    def test_exception_marks_span_and_unwinds_stack(self):
        tr = Tracer(clock="logical")
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("failing"):
                    raise RuntimeError("boom")
        assert tr.depth == 0
        failing, = tr.trace.find("failing")
        assert failing.closed
        assert failing.args["error"] == "RuntimeError"
        outer, = tr.trace.find("outer")
        assert outer.closed

    def test_sequential_spans_are_siblings(self):
        tr = Tracer(clock="logical")
        for name in ("a", "b", "c"):
            with tr.span(name):
                pass
        assert tr.trace.tree() == (("a", ()), ("b", ()), ("c", ()))


class TestLogicalClock:

    def test_ticks_are_deterministic(self):
        def run():
            tr = Tracer(clock="logical")
            with tr.span("outer"):
                with tr.span("inner"):
                    pass
            return [(e.name, e.start, e.end) for e in tr.trace.events]

        first, second = run(), run()
        assert first == second
        assert first == [("outer", 1.0, 4.0), ("inner", 2.0, 3.0)]

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError):
            Tracer(clock="vibes")


class TestChromeExport:

    def test_schema_fields(self):
        tr = Tracer(clock="logical")
        with tr.span("outer", cat="trainer", step=0):
            with tr.span("inner", cat="comms"):
                pass
        doc = json.loads(tr.trace.to_json())
        events = doc["traceEvents"]
        assert len(events) == 3  # metadata + 2 spans
        for e in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
        meta = events[0]
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for e in spans:
            assert e["dur"] >= 0 and e["ts"] >= 0
        assert doc["otherData"]["clock"] == "logical"

    def test_wall_clock_timestamps_relative_and_nonnegative(self):
        tr = Tracer(clock="wall")
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        spans = [e for e in tr.trace.to_chrome_trace()["traceEvents"]
                 if e["ph"] == "X"]
        assert min(e["ts"] for e in spans) == 0.0
        assert all(e["ts"] >= 0 for e in spans)

    def test_save_roundtrip(self, tmp_path):
        tr = Tracer(clock="logical")
        with tr.span("s"):
            pass
        path = tr.trace.save(str(tmp_path / "trace.json"))
        with open(path) as f:
            doc = json.load(f)
        assert doc["otherData"]["spans"] == 1

    def test_open_spans_are_excluded(self):
        tr = Tracer(clock="logical")
        span = tr.span("never_closed")
        tr._enter(span._event)  # enter without exiting
        assert tr.trace.closed_events() == []
        doc = tr.trace.to_chrome_trace()
        assert len(doc["traceEvents"]) == 1  # metadata only


class TestAggregation:

    def test_self_time_subtracts_direct_children(self):
        tr = Tracer(clock="logical")
        with tr.span("outer"):      # ticks 1..6: total 5
            with tr.span("inner"):  # ticks 2..5: total 3
                with tr.span("leaf"):  # ticks 3..4: total 1
                    pass
        agg = tr.trace.aggregate()
        assert agg["outer"].total == 5.0
        assert agg["outer"].self_time == 2.0  # 5 - inner's 3
        assert agg["inner"].self_time == 2.0  # 3 - leaf's 1
        assert agg["leaf"].self_time == 1.0
        assert agg["outer"].count == 1

    def test_component_seconds_sums_by_name(self):
        tr = Tracer(clock="logical")
        for _ in range(3):
            with tr.span("repeated"):
                pass
        assert tr.trace.component_seconds("repeated") == 3.0
        assert tr.trace.aggregate()["repeated"].count == 3

    def test_total_duration_is_root_sum(self):
        tr = Tracer(clock="logical")
        with tr.span("a"):  # 1..2
            pass
        with tr.span("b"):  # 3..6
            with tr.span("kid"):
                pass
        assert tr.trace.total_duration == 1.0 + 3.0


class TestNullTracer:

    def test_span_is_shared_singleton(self):
        spans = {id(NULL_TRACER.span(f"s{i}", x=i)) for i in range(4)}
        assert len(spans) == 1
        with NULL_TRACER.span("anything") as s:
            assert s.set(a=1) is s
        assert NULL_TRACER.enabled is False
        assert len(NULL_TRACER.trace) == 0

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("s"):
                raise ValueError("through")

    def test_no_measurable_allocations(self):
        """The disabled hot path must not accumulate memory."""
        tracer = NullTracer()

        def burst(n):
            for i in range(n):
                with tracer.span("hot", cat="comms"):
                    pass

        burst(100)  # warm up code paths
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        burst(5000)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # nothing retained: net growth stays under a single small page
        assert after - before < 4096


class TestAsTracer:

    def test_coercions(self):
        assert as_tracer(None) is NULL_TRACER
        assert as_tracer(False) is NULL_TRACER
        assert isinstance(as_tracer(True), Tracer)
        assert as_tracer("logical").trace.clock == "logical"
        tr = Tracer()
        assert as_tracer(tr) is tr
        nt = NullTracer()
        assert as_tracer(nt) is nt

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_tracer(42)


class TestTrainerSpanTree:
    """A 2-rank, 1-iteration run has an exactly reproducible span tree
    under the logical clock."""

    def test_table_wise_iteration_tree(self):
        tables = (EmbeddingTableConfig("t0", 64, 8, avg_pooling=2.0),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8,), tables=tables,
                            top_mlp=(8,))
        tracer = Tracer(clock="logical")
        trainer = NeoTrainer.from_planner(
            config, ClusterTopology(num_nodes=1, gpus_per_node=2),
            dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
            sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0,
            planner_config=PlannerConfig(world_size=2, ranks_per_node=2,
                                         dp_threshold_rows=16),
            trace=tracer)
        ds = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
        trainer.train_step(ds.batch(8, 0).split(2))

        assert tracer.trace.tree() == (
            ("trainer.iteration", (
                ("trainer.bottom_mlp_fwd", ()),
                ("trainer.embedding_fwd", (
                    ("trainer.table_fwd", (
                        ("comms.all_to_all/index", ()),
                        ("comms.all_to_all/index", ()),
                        ("trainer.embedding_lookup", ()),
                        ("comms.all_to_all/forward_alltoall", ()))),)),
                ("trainer.interaction_fwd", ()),
                ("trainer.top_mlp_fwd", ()),
                ("trainer.dense_bwd", ()),
                ("trainer.embedding_bwd", (
                    ("trainer.table_bwd", (
                        ("comms.all_to_all/backward_alltoall", ()),
                        ("trainer.embedding_update", ()))),)),
                ("trainer.allreduce", (
                    ("comms.all_reduce", ()),)),
                ("trainer.optimizer", ()))),)

    def test_two_runs_produce_identical_event_streams(self):
        def run():
            tables = (EmbeddingTableConfig("t0", 32, 4, avg_pooling=2.0),)
            config = DLRMConfig(dense_dim=4, bottom_mlp=(4,), tables=tables,
                                top_mlp=(4,))
            tracer = Tracer(clock="logical")
            trainer = NeoTrainer.from_planner(
                config, ClusterTopology(num_nodes=1, gpus_per_node=2),
                dense_optimizer=lambda p: nn.SGD(p, lr=0.1),
                sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0,
                planner_config=PlannerConfig(world_size=2, ranks_per_node=2,
                                             dp_threshold_rows=8),
                trace=tracer)
            ds = SyntheticCTRDataset(tables, dense_dim=4, seed=1)
            trainer.train_step(ds.batch(8, 0).split(2))
            return [(e.name, e.start, e.end, e.parent, e.depth)
                    for e in tracer.trace.events]

        assert run() == run()

"""Capacity planning: can a 12-trillion-parameter model train on your
cluster? (the paper's Section 5.3.3 study as a reusable workflow)

Walks the F1 model through the memory-recipe ladder (element-wise vs
row-wise AdaGrad state, FP32 vs FP16 tables), checks fit against the
cluster's HBM+DRAM hierarchy, and produces the sharding plan the paper
uses (row-wise sharding of the massive tables).

Run:  python examples/capacity_planning.py
"""

from repro.models import full_spec
from repro.perf import (PROTOTYPE_CLUSTER_MEMORY, capacity_ladder,
                        model_footprint)
from repro.sharding import (CostModelParams, EmbeddingShardingPlanner,
                            PlannerConfig, ShardingScheme, plan_cost_per_rank)


def main():
    spec = full_spec("F1")
    print(f"model F1: {spec.num_parameters / 1e12:.1f}T parameters, "
          f"{len(spec.tables)} tables, "
          f"largest table {max(t.num_embeddings for t in spec.tables) / 1e9:.1f}B rows")
    mem = PROTOTYPE_CLUSTER_MEMORY
    print(f"cluster: {mem.hbm_bytes / 1e12:.0f} TB HBM "
          f"+ {mem.dram_bytes / 1e12:.0f} TB DRAM\n")

    print("memory recipe ladder (Section 5.3.3):")
    for fp in capacity_ladder(spec):
        verdict = "fits" if mem.fits(fp) else "DOES NOT FIT"
        print(f"  {fp.label:<25} weights {fp.weights_bytes / 1e12:5.1f} TB"
              f" + state {fp.optimizer_bytes / 1e12:5.1f} TB"
              f" = {fp.total_bytes / 1e12:5.1f} TB   -> {verdict}")

    # shard the (fp16 + row-wise AdaGrad) model across 128 GPUs
    world = 128
    params = CostModelParams(global_batch=65536, world_size=world)
    planner = EmbeddingShardingPlanner(
        PlannerConfig(world_size=world, ranks_per_node=8,
                      # per-GPU HBM budget after framework reservations
                      device_memory_bytes=28e9, bytes_per_element=2),
        cost_params=params)
    plan = planner.plan(list(spec.tables))
    schemes = {plan.scheme_of(t.name).value for t in spec.tables}
    print(f"\nsharding plan over {world} GPUs: schemes used = {schemes}")
    loads = plan_cost_per_rank(plan, params)
    print(f"per-rank cost: max/mean imbalance = "
          f"{max(loads) / (sum(loads) / len(loads)):.3f}")
    rw = sum(1 for t in spec.tables
             if plan.scheme_of(t.name) in (ShardingScheme.ROW_WISE,
                                           ShardingScheme.TABLE_ROW_WISE))
    print(f"{rw}/{len(spec.tables)} tables are row-wise sharded "
          f"(each exceeds a single GPU's memory)")

    # how much memory lands on each rank (fp16 elements)
    per_rank = plan.memory_per_rank(bytes_per_element=2)
    print(f"per-rank model bytes: min {min(per_rank) / 1e9:.0f} GB, "
          f"max {max(per_rank) / 1e9:.0f} GB "
          f"(HBM is the cache; overflow lives in DRAM via UVM)")

    # contrast: a model that does NOT need any of this
    a1 = full_spec("A1")
    fp = model_footprint(a1, "fp32", "rowwise_adagrad")
    print(f"\nfor contrast, model A1 needs only "
          f"{fp.total_bytes / 1e12:.2f} TB -> "
          f"{'fits' if mem.fits(fp) else 'does not fit'} without tricks")


if __name__ == "__main__":
    main()

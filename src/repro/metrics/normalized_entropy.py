"""Normalized entropy (NE), the paper's model-quality metric [16].

NE is the average log loss per sample divided by the log loss of a
constant predictor emitting the dataset's base CTR. NE < 1 means the model
beats the trivial baseline; lower is better. Fig. 10 reports *relative*
NE, i.e. curves normalized to a reference run's final value.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["log_loss", "normalized_entropy", "relative_ne", "calibration"]

_EPS = 1e-12


def log_loss(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy of probabilities (not logits)."""
    p = np.clip(np.asarray(predictions, dtype=np.float64), _EPS, 1 - _EPS)
    y = np.asarray(labels, dtype=np.float64)
    if p.shape != y.shape:
        raise ValueError(f"shape mismatch {p.shape} vs {y.shape}")
    if p.size == 0:
        raise ValueError("cannot compute log loss of an empty batch")
    return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))


def normalized_entropy(predictions: np.ndarray, labels: np.ndarray,
                       base_rate: float = None) -> float:
    """NE = log_loss(model) / log_loss(constant base-rate predictor)."""
    y = np.asarray(labels, dtype=np.float64)
    rate = float(np.mean(y)) if base_rate is None else float(base_rate)
    rate = min(max(rate, _EPS), 1 - _EPS)
    denom = -(rate * math.log(rate) + (1 - rate) * math.log(1 - rate))
    return log_loss(predictions, labels) / denom


def relative_ne(ne_values: Sequence[float],
                reference: float = None) -> np.ndarray:
    """Normalize an NE curve by a reference (default: its final value),
    matching Fig. 10's 'relative normalized entropy' axis."""
    values = np.asarray(list(ne_values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty NE curve")
    ref = values[-1] if reference is None else float(reference)
    if ref <= 0:
        raise ValueError("reference NE must be positive")
    return values / ref


def calibration(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Mean predicted CTR over empirical CTR; 1.0 is perfectly calibrated."""
    y = np.asarray(labels, dtype=np.float64)
    if y.size == 0:
        raise ValueError("empty batch")
    empirical = float(np.mean(y))
    if empirical == 0:
        raise ValueError("calibration undefined with no positive labels")
    return float(np.mean(predictions)) / empirical

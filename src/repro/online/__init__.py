"""Online training: the train-while-serving loop, closed.

This package connects the two halves of the repo into the system the
paper actually describes — a trainer that never stops and a serving
fleet that never goes stale by more than its refresh cadence:

* :mod:`repro.online.slot` — :class:`ModelSlot`, the double-buffered
  atomic hot-swap point; versioned snapshots, monotone publishes,
  dispatch-time version binding so in-flight requests are never dropped
  or re-priced;
* :mod:`repro.online.cosim` — :class:`CoSimulation`, the deterministic
  co-simulation of a :class:`~repro.core.TrainingLoop` and a fleet of
  :class:`~repro.serving.InferenceServer` replicas on one virtual
  clock, with per-request staleness accounting;
* :mod:`repro.online.report` — the staleness-vs-NE-vs-goodput cadence
  sweep (:func:`run_cadence_sweep` / :class:`OnlineReport`) and the
  :mod:`repro.perf.online`-driven cadence derivation
  (:func:`cadence_from_sizing`).
"""

from .cosim import CoSimResult, CoSimulation, OnlineConfig
from .report import (CadencePoint, OnlineReport, cadence_from_sizing,
                     point_from_result, run_cadence_sweep)
from .slot import ModelSlot, Snapshot

__all__ = [
    "ModelSlot",
    "Snapshot",
    "OnlineConfig",
    "CoSimulation",
    "CoSimResult",
    "CadencePoint",
    "OnlineReport",
    "point_from_result",
    "run_cadence_sweep",
    "cadence_from_sizing",
]

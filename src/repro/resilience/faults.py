"""Deterministic fault specification and scheduling.

Synchronous training at 128 GPUs means a single slow or failed rank
stalls the whole job (Acun et al.; Naumov et al. motivate designing the
scale-out system around failure domains). This module is the *what and
when* of the resilience layer: a :class:`FaultSpec` names one fault —
straggle, drop, bit-corrupt or crash a rank on a chosen iteration and
collective — and a :class:`FaultSchedule` is a seedable, replayable
collection of them. The *how* (injection into collectives, retries,
recovery) lives in :mod:`repro.resilience.process_group` and
:mod:`repro.resilience.recovery`.

Determinism contract: a schedule is a pure function of its constructor
arguments (including the seed for :meth:`FaultSchedule.random`), and
consuming faults is ordered — so a faulty run is exactly replayable,
which is what lets the recovery tests assert *bitwise* equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultSpec", "FaultSchedule", "RankFailure"]


class FaultKind(Enum):
    """The four modeled failure modes of a rank."""

    #: the rank is slow: its contribution to one collective takes
    #: ``delay_seconds`` longer (a straggler)
    DELAY = "delay"
    #: the rank's message is lost: the collective attempt times out and
    #: is retried under the :class:`repro.resilience.RetryPolicy`
    DROP = "drop"
    #: the rank's payload is bit-flipped on the wire: detected by the
    #: link checksum, the attempt is discarded and retried
    CORRUPT = "corrupt"
    #: the rank dies: the collective raises :class:`RankFailure` and the
    #: training loop must recover
    CRASH = "crash"


class RankFailure(RuntimeError):
    """A rank was declared dead during a collective.

    Raised out of :class:`repro.resilience.FaultyProcessGroup` — either
    immediately (a :attr:`FaultKind.CRASH` fault) or after the
    :class:`repro.resilience.HealthTracker` saw too many timeouts.
    ``TrainingLoop`` catches it and runs checkpoint recovery when a
    :class:`repro.resilience.RecoveryManager` is configured.
    """

    def __init__(self, rank: int, iteration: int,
                 collective: str = "") -> None:
        super().__init__(
            f"rank {rank} declared dead at iteration {iteration}"
            + (f" during {collective}" if collective else ""))
        self.rank = rank
        self.iteration = iteration
        self.collective = collective


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        What happens (:class:`FaultKind`).
    rank:
        The affected rank.
    iteration:
        The training iteration the fault fires on. ``None`` means *every*
        iteration (a persistent straggler); persistent faults are never
        consumed, one-shot faults fire exactly once.
    collective:
        Restrict the fault to one collective — either a base name
        (``"all_reduce"``, ``"all_to_all"``) or a full metric name
        (``"all_to_all/forward_alltoall"``). ``None`` matches the first
        collective issued in the matching iteration.
    delay_seconds:
        For :attr:`FaultKind.DELAY`: added modeled latency of the rank.
    failures:
        For :attr:`FaultKind.DROP` / :attr:`FaultKind.CORRUPT`: how many
        consecutive attempts fail before one succeeds. If this exceeds
        the retry policy's ``max_attempts``, each exhausted policy window
        counts one timeout strike against the rank.
    """

    kind: FaultKind
    rank: int
    iteration: Optional[int] = None
    collective: Optional[str] = None
    delay_seconds: float = 0.0
    failures: int = 1

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.kind is FaultKind.DELAY and self.delay_seconds <= 0:
            raise ValueError("DELAY faults need delay_seconds > 0")
        if self.failures < 1:
            raise ValueError("failures must be >= 1")

    def matches(self, iteration: int, collective: str) -> bool:
        """Does this fault fire for (iteration, collective name)?"""
        if self.iteration is not None and self.iteration != iteration:
            return False
        if self.collective is None:
            return True
        base = collective.split("/")[0]
        return self.collective in (collective, base)


class FaultSchedule:
    """An ordered, consumable set of :class:`FaultSpec`.

    One-shot faults (``iteration`` set) are consumed the first time they
    fire; persistent faults (``iteration=None``) fire every matching
    collective. The schedule object is shared between the pre-failure
    and post-recovery process groups, so a crash consumed before
    recovery does not re-fire when the replayed iteration comes around
    again — modeling "the broken host was replaced".
    """

    def __init__(self, faults: Iterable[FaultSpec] = (),
                 seed: int = 0) -> None:
        self.faults: List[FaultSpec] = list(faults)
        self.seed = seed
        self._pending = [True] * len(self.faults)

    @classmethod
    def random(cls, seed: int, num_iterations: int, world_size: int,
               num_faults: int = 4,
               kinds: Sequence[FaultKind] = (FaultKind.DELAY,
                                             FaultKind.DROP,
                                             FaultKind.CORRUPT),
               max_delay_seconds: float = 1.0) -> "FaultSchedule":
        """A seed-deterministic random schedule (chaos testing).

        Crashes are excluded by default because they need a recovery
        manager to be survivable; pass ``kinds`` explicitly to include
        :attr:`FaultKind.CRASH`.
        """
        if num_iterations <= 0 or world_size <= 0:
            raise ValueError("num_iterations and world_size must be positive")
        rng = np.random.default_rng(seed)
        faults = []
        for _ in range(num_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            faults.append(FaultSpec(
                kind=kind,
                rank=int(rng.integers(world_size)),
                iteration=int(rng.integers(num_iterations)),
                delay_seconds=float(rng.uniform(0.05, max_delay_seconds))
                if kind is FaultKind.DELAY else 0.0,
                failures=int(rng.integers(1, 3))
                if kind in (FaultKind.DROP, FaultKind.CORRUPT) else 1))
        # deterministic firing order: by iteration, then rank
        faults.sort(key=lambda f: (f.iteration, f.rank, f.kind.value))
        return cls(faults, seed=seed)

    @property
    def pending(self) -> int:
        """Number of faults that can still fire (persistent count as 1)."""
        return sum(self._pending)

    def take(self, iteration: int,
             collective: str) -> Tuple[FaultSpec, ...]:
        """Faults firing for this collective call; one-shots are consumed."""
        if not any(self._pending):
            return ()
        out = []
        for i, spec in enumerate(self.faults):
            if self._pending[i] and spec.matches(iteration, collective):
                out.append(spec)
                if spec.iteration is not None:
                    self._pending[i] = False
        return tuple(out)

    def reset(self) -> None:
        """Re-arm every consumed fault (for replaying a schedule)."""
        self._pending = [True] * len(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

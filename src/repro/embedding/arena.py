"""The embedding "megatable" arena: one weight array per dimension group.

The paper's headline operator win (Section 4.1.1, up to 7x) comes from
fusing the ~1000s of per-table ``EmbeddingBag`` kernels of a DLRM into a
single batched FBGEMM kernel. The numpy analogue of a kernel launch is a
ufunc dispatch, and the analogue of the fusion is this arena: all tables
that share an embedding dimension ``D`` are packed into one contiguous
``(sum(H_t), D)`` array with per-table base-row offsets, so a multi-table
pooled forward is

* **one** fancy-index gather over the base-rebased indices of every
  table, and
* **one** ``np.add.reduceat`` segment-sum over the concatenated jagged
  offsets,

instead of a Python loop issuing two dispatches per table. The fused
backward builds a single arena-global COO gradient (one gather), and the
fused backward+optimizer merges it with a single lexsort/reduceat across
all tables of the group before applying the exact sparse update
table-by-table (optimizer state stays per-table).

Tables keep their identity: each :class:`EmbeddingTable`'s ``.weight``
is re-pointed to a *view* of the arena storage, so per-table reads,
per-table optimizers and checkpointing all keep working — and any update
made through a table is immediately visible to the arena (and vice
versa). If external code rebinds a table's ``weight`` attribute (e.g. a
checkpoint restore), the arena detects the identity change on the next
call and re-packs that table's rows.

Bit parity with the per-table path is exact, not approximate: reduceat's
within-segment reduction order depends only on the segment contents, so
pooling table ``t``'s bags inside the concatenated arena batch produces
the same bits as pooling them alone, and the group-global gradient merge
produces the same per-table merged gradients as per-table merges (global
row ids are disjoint across tables). ``tests/test_embedding_arena.py``
asserts both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .kernels import merge_sorted_coo, rebase_jagged, segment_sum_gather
from .optim import SparseOptimizer
from .table import EmbeddingTable, SparseGradient

__all__ = ["EmbeddingArena", "DimGroup"]


@dataclass
class DimGroup:
    """All tables of one embedding dimension, packed contiguously."""

    dim: int
    tables: List[EmbeddingTable]
    storage: np.ndarray                    # (sum(H_t), dim) float32
    bases: np.ndarray                      # (T,) first arena row per table
    views: List[np.ndarray] = field(default_factory=list)
    # forward context for the fused backward: (global_indices,
    # per-table local indices/offsets/lengths, per-table batch sizes)
    ctx: Optional[tuple] = None

    @property
    def num_rows(self) -> int:
        return self.storage.shape[0]


class EmbeddingArena:
    """Packs same-``D`` embedding tables into single-dispatch megatables.

    One :class:`DimGroup` per distinct embedding dimension; a collection
    with uniform ``D`` (the common DLRM configuration) runs its entire
    multi-table forward in one gather + one segment-reduce.
    """

    def __init__(self, tables: Sequence[EmbeddingTable]) -> None:
        if not tables:
            raise ValueError("need at least one table")
        by_dim: Dict[int, List[EmbeddingTable]] = {}
        for t in tables:
            by_dim.setdefault(t.config.embedding_dim, []).append(t)
        self.groups: List[DimGroup] = []
        self._group_of: Dict[str, DimGroup] = {}
        for dim, group_tables in by_dim.items():
            heights = [t.config.num_embeddings for t in group_tables]
            bases = np.zeros(len(heights), dtype=np.int64)
            np.cumsum(heights[:-1], out=bases[1:])
            storage = np.empty((int(sum(heights)), dim), dtype=np.float32)
            group = DimGroup(dim=dim, tables=group_tables, storage=storage,
                             bases=bases)
            for t, base in zip(group_tables, bases):
                view = storage[base:base + t.config.num_embeddings]
                view[:] = t.weight
                t.weight = view
                group.views.append(view)
            self.groups.append(group)
            for t in group_tables:
                self._group_of[t.name] = group

    @property
    def num_groups(self) -> int:
        """True dispatch count of one fused forward (1 if uniform D)."""
        return len(self.groups)

    def memory_bytes(self) -> int:
        return sum(g.storage.nbytes for g in self.groups)

    def _sync(self, group: DimGroup) -> None:
        """Re-pack any table whose ``weight`` was rebound externally."""
        for i, t in enumerate(group.tables):
            if t.weight is not group.views[i]:
                group.views[i][:] = t.weight
                t.weight = group.views[i]

    # ------------------------------------------------------------------
    # fused forward
    # ------------------------------------------------------------------
    def forward(self, batch: Dict[str, Tuple[np.ndarray, np.ndarray]]
                ) -> Dict[str, np.ndarray]:
        """Pooled lookup for every table: one gather + one segment-reduce
        per dimension group.

        Also primes each table's saved backward state, so per-table
        ``table.backward`` remains valid after an arena forward.
        """
        out: Dict[str, np.ndarray] = {}
        for group in self.groups:
            self._sync(group)
            inputs = []
            for t in group.tables:
                indices, offsets = batch[t.name]
                indices = np.asarray(indices, dtype=np.int64)
                offsets = np.asarray(offsets, dtype=np.int64)
                t._validate(indices, offsets)
                inputs.append((indices, offsets))
            gidx, goff, _ = rebase_jagged(inputs, group.bases)
            pooled = segment_sum_gather(group.storage, gidx, goff)
            lengths_list = []
            bag_start = 0
            for t, (indices, offsets) in zip(group.tables, inputs):
                num_bags = len(offsets) - 1
                lengths = np.diff(offsets)
                lengths_list.append(lengths)
                table_out = pooled[bag_start:bag_start + num_bags]
                if t.config.pooling_mode == "mean":
                    table_out /= np.maximum(lengths, 1).astype(
                        np.float32)[:, None]
                out[t.name] = table_out
                t._saved = (indices, None, lengths)
                bag_start += num_bags
            group.ctx = (gidx, inputs, lengths_list,
                         [len(o) - 1 for _, o in inputs])
        return out

    # ------------------------------------------------------------------
    # fused backward
    # ------------------------------------------------------------------
    def _group_grad(self, group: DimGroup,
                    d_pooled: Dict[str, np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One arena-global COO gradient for a whole dimension group.

        Returns ``(global_rows, values, nnz_per_table)``. The values
        array is the concatenated gradient of every table in the group;
        it is written one table-segment at a time so each gather reads a
        cache-resident ``(B, D)`` upstream gradient (building it through
        one group-global fancy index instead measures ~3x slower — the
        source never fits in cache), but the result is a single COO the
        segmented merge consumes in one call.
        """
        if group.ctx is None:
            raise RuntimeError("backward called before forward")
        gidx, inputs, lengths_list, _ = group.ctx
        counts = np.array([len(idx) for idx, _ in inputs], dtype=np.int64)
        values = np.empty((int(counts.sum()), group.dim), dtype=np.float32)
        nnz_start = 0
        for t, (indices, _), lengths in zip(group.tables, inputs,
                                            lengths_list):
            nnz = len(indices)
            if nnz:
                dy = np.ascontiguousarray(d_pooled[t.name],
                                          dtype=np.float32)
                bag_ids = np.repeat(
                    np.arange(len(lengths), dtype=np.int64), lengths)
                segment = values[nnz_start:nnz_start + nnz]
                np.take(dy, bag_ids, axis=0, out=segment)
                if t.config.pooling_mode == "mean":
                    denom = np.maximum(lengths, 1).astype(np.float32)
                    segment /= denom[bag_ids][:, None]
            nnz_start += nnz
        return gidx, values, counts

    def backward(self, d_pooled: Dict[str, np.ndarray]
                 ) -> Dict[str, SparseGradient]:
        """Per-table sparse gradients from one fused gather per group."""
        grads: Dict[str, SparseGradient] = {}
        for group in self.groups:
            _, values, counts = self._group_grad(group, d_pooled)
            nnz_start = 0
            gidx, inputs = group.ctx[0], group.ctx[1]
            for t, (indices, _), nnz in zip(group.tables, inputs, counts):
                grads[t.name] = SparseGradient(
                    rows=indices,
                    values=values[nnz_start:nnz_start + int(nnz)],
                    num_embeddings=t.config.num_embeddings)
                nnz_start += int(nnz)
        return grads

    def backward_and_update(self, d_pooled: Dict[str, np.ndarray],
                            optimizer: SparseOptimizer) -> Dict[str, int]:
        """Fused backward + exact sparse optimizer: one COO build and one
        lexsort/reduceat merge per dimension group (Section 4.1.1/4.1.2).

        The merged group gradient is split at table base boundaries
        (unique rows are sorted, bases are sorted, so each table's rows
        are one contiguous slice) and the optimizer applies each table's
        pre-merged slice — bitwise the per-table ``step`` result, without
        ever materializing more than one group's gradient. Returns the
        number of unique updated rows per table.
        """
        updated: Dict[str, int] = {}
        for group in self.groups:
            rows, values, counts = self._group_grad(group, d_pooled)
            nnz_offsets = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(counts, out=nnz_offsets[1:])
            merged_rows, merged_vals = merge_sorted_coo(
                rows, values, segment_offsets=nnz_offsets)
            splits = np.searchsorted(merged_rows, np.append(group.bases,
                                                            group.num_rows))
            for i, t in enumerate(group.tables):
                lo, hi = int(splits[i]), int(splits[i + 1])
                optimizer.apply_merged(
                    t, merged_rows[lo:hi] - group.bases[i],
                    merged_vals[lo:hi])
                updated[t.name] = hi - lo
        return updated

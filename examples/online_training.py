"""Online training at reduced scale with a memory hierarchy.

The paper (Sections 1, 4.1.3) motivates hierarchical memory with online
training: once deployed, a DLRM keeps training on live traffic at lower
throughput, so it should run on *fewer* nodes — which only works if the
embedding tables can spill out of HBM into DRAM behind a software cache.

This example trains a model through a 32-way set-associative cache whose
capacity is a small fraction of the table, on a drifting click stream,
and shows (a) training stays numerically exact (checkpoint == dense
reference) and (b) the Zipf-hot working set keeps the hit rate high, so
the DRAM tier is touched rarely.

Run:  python examples/online_training.py
"""

import numpy as np

from repro.cache import CachedEmbeddingTable, SetAssociativeCache
from repro.data import SyntheticCTRDataset, zipf_indices
from repro.embedding import EmbeddingTable, EmbeddingTableConfig

ROWS = 50_000
DIM = 16
CACHE_ROWS = 4096  # ~8% of the table fits in "HBM"
STEPS = 150
BATCH = 256
POOL = 4


def main():
    cfg = EmbeddingTableConfig("clicks", ROWS, DIM, avg_pooling=POOL)
    cache = SetAssociativeCache(capacity_rows=CACHE_ROWS, row_dim=DIM,
                                ways=32, policy="lfu")
    cached = CachedEmbeddingTable(cfg, cache, rng=np.random.default_rng(0))
    reference = EmbeddingTable(cfg, weight=cached.backing.rows.copy())
    print(f"table: {ROWS:,} rows x {DIM} "
          f"({ROWS * DIM * 4 / 1e6:.1f} MB); cache holds "
          f"{CACHE_ROWS:,} rows ({CACHE_ROWS / ROWS:.0%})")

    # hashed Zipf ids: hot set scattered across the table, drifting over
    # time (online traffic shifts as new items trend)
    rng = np.random.default_rng(1)
    permutation = rng.permutation(ROWS)
    lengths = np.full(BATCH, POOL, dtype=np.int64)
    offsets = np.zeros(BATCH + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])

    for step in range(STEPS):
        if step == STEPS // 2:
            # traffic drift: re-hash popularity mid-stream
            permutation = rng.permutation(ROWS)
            drift_stats = cache.stats.hit_rate
        ids = permutation[zipf_indices(ROWS, BATCH * POOL, rng, alpha=1.15)]
        # pooled lookup + SGD update through the cache
        out = cached.forward(ids, offsets)
        grad = cached.backward(np.ones((BATCH, DIM), dtype=np.float32)
                               * 0.01)
        cached.sgd_step(grad, lr=0.05)
        # dense reference does the same math without the cache
        reference.forward(ids, offsets)
        ref_grad = reference.backward(np.ones((BATCH, DIM),
                                              dtype=np.float32) * 0.01)
        from repro.embedding import SparseSGD
        SparseSGD(lr=0.05).step(reference, ref_grad)

    stats = cache.stats
    print(f"\nafter {STEPS} online steps:")
    print(f"  cache hit rate: {stats.hit_rate:.1%} "
          f"({stats.hits:,} hits / {stats.misses:,} misses)")
    print(f"  evictions: {stats.evictions:,}, "
          f"write-backs: {stats.writebacks:,}")
    print(f"  DRAM-tier traffic: "
          f"{cached.backing.bytes_read / 1e6:.1f} MB read, "
          f"{cached.backing.bytes_written / 1e6:.1f} MB written")
    naive = STEPS * BATCH * POOL * DIM * 4 * 3
    print(f"  (uncached training would have moved {naive / 1e6:.1f} MB)")

    final = cached.checkpoint()
    np.testing.assert_allclose(final, reference.weight, rtol=1e-5,
                               atol=1e-6)
    print("\ncheckpoint after flush matches the uncached reference exactly")


if __name__ == "__main__":
    main()

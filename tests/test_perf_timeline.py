"""Tests for the ASCII timeline renderer and the DAG latency engine."""

import pytest

from repro.comms import PROTOTYPE_TOPOLOGY
from repro.core import ComponentTimes, PipelineSchedule, Task, \
    dlrm_iteration_tasks
from repro.models import full_spec
from repro.perf import TrainingSetup, iteration_time, render_timeline


class TestRenderTimeline:
    def make_schedule(self):
        return PipelineSchedule([
            Task("alpha", 2.0, "compute"),
            Task("beta", 1.0, "comm", ("alpha",)),
        ])

    def test_one_line_per_stream(self):
        out = render_timeline(self.make_schedule())
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 streams
        assert lines[1].startswith("compute")
        assert lines[2].startswith("comm")

    def test_task_names_appear(self):
        out = render_timeline(self.make_schedule(), width=60)
        assert "alph" in out or "alpha" in out

    def test_ordering_respected(self):
        """beta's span starts after alpha's ends on the rendered rows."""
        out = render_timeline(self.make_schedule(), width=60)
        compute_row = out.splitlines()[1]
        comm_row = out.splitlines()[2]
        # comm row must be blank in the first third (beta starts at 2/3)
        bar = comm_row.split("|")[1]
        assert bar[: len(bar) // 3].strip() == ""
        assert compute_row.split("|")[1][:5].strip() != ""

    def test_dlrm_dag_renders(self):
        t = ComponentTimes(1.0, 1.0, 1.0, 0.5, 2.0, 1.0, 1.0, 2.0, h2d=0.5)
        out = render_timeline(PipelineSchedule(dlrm_iteration_tasks(t)))
        assert "h2d" in out and "compute" in out and "comm" in out

    def test_empty_schedule(self):
        assert "empty" in render_timeline(PipelineSchedule([]))

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            render_timeline(self.make_schedule(), width=5)


class TestDagEngine:
    def test_engines_agree_closely(self):
        setup = TrainingSetup(spec=full_spec("A2"),
                              topology=PROTOTYPE_TOPOLOGY(16),
                              global_batch=65536, load_imbalance=1.15)
        eq1 = iteration_time(setup, engine="eq1")
        dag = iteration_time(setup, engine="dag")
        assert dag == pytest.approx(eq1, rel=0.35)

    def test_unknown_engine(self):
        setup = TrainingSetup(spec=full_spec("A1"),
                              topology=PROTOTYPE_TOPOLOGY(1),
                              global_batch=4096)
        with pytest.raises(ValueError):
            iteration_time(setup, engine="magic")

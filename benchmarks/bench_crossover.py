"""Section 4.2.4: the data-parallel vs table-wise crossover.

"Small embedding tables with fewer rows are good candidates for
data-parallel sharding" — this bench computes *where* small ends: the
break-even row count per (embedding dim, pooling size) family, and checks
the crossover moves the way the cost trade-off says it must (heavier
pooling or wider pooled outputs make TW's AlltoAll dearer, extending DP's
winning range; bigger tables make DP's AllReduce dearer, shrinking it).
"""

import pytest

from repro.perf import crossover_sweep, dp_vs_tw_cost, find_dp_crossover
from repro.sharding import CostModelParams

PARAMS = CostModelParams(global_batch=65536, world_size=128)
DIMS = [16, 64, 256]
POOLINGS = [2.0, 20.0, 50.0]


def sweep():
    return crossover_sweep(DIMS, POOLINGS, PARAMS)


def test_dp_crossover_table(benchmark, report):
    points = benchmark(sweep)
    rows = [(p.embedding_dim, f"{p.avg_pooling:.0f}",
             f"{p.crossover_rows:,}",
             f"{p.dp_cost_at_crossover * 1e6:.1f} us",
             f"{p.tw_cost_at_crossover * 1e6:.1f} us")
            for p in points]
    report("Section 4.2.4: DP-vs-TW crossover (largest H where DP wins)",
           ["dim", "pooling L", "crossover rows", "DP cost", "TW cost"],
           rows)
    by_key = {(p.embedding_dim, p.avg_pooling): p for p in points}
    # heavier pooling extends DP's range at fixed dim
    for d in DIMS:
        assert by_key[(d, 50.0)].crossover_rows >= \
            by_key[(d, 2.0)].crossover_rows
    # every crossover is exact: one row past it, DP loses
    sample = by_key[(64, 20.0)]
    dp, tw = dp_vs_tw_cost(sample.crossover_rows + 1, 64, 20.0, PARAMS)
    assert dp >= tw
    # and the paper's qualitative statement holds: the DP regime is the
    # small-table regime (well under the multi-billion-row monsters)
    assert all(p.crossover_rows < 10 ** 8 for p in points)

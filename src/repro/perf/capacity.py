"""Model-capacity arithmetic: fitting trillion-parameter models in the
cluster memory hierarchy (paper Section 5.3.3).

The F1 study in one module: a 12T-parameter model naively needs 96 TB
(FP32 weights + element-wise optimizer state); row-wise sparse AdaGrad
cuts the state to one scalar per row, FP16 halves the weights, landing at
~24 TB — just under the prototype cluster's 4 TB HBM + 24 TB DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .. import lowp
from ..embedding.optim import optimizer_state_bytes
from ..models.zoo import ModelSpec

__all__ = ["MemoryFootprint", "model_footprint", "ClusterMemory",
           "PROTOTYPE_CLUSTER_MEMORY", "capacity_ladder"]


@dataclass(frozen=True)
class MemoryFootprint:
    """Bytes needed to train a model under one precision/optimizer recipe."""

    weights_bytes: float
    optimizer_bytes: float
    label: str

    @property
    def total_bytes(self) -> float:
        return self.weights_bytes + self.optimizer_bytes


def model_footprint(spec: ModelSpec, precision: str = "fp32",
                    optimizer: str = "adagrad") -> MemoryFootprint:
    """Embedding memory footprint of a model spec under a recipe.

    The MLP parameters are negligible at this scale (megabytes vs
    terabytes) but are included for completeness at FP32.
    """
    weight_bytes = spec.num_embedding_parameters * \
        lowp.bytes_per_element(precision) + spec.num_mlp_parameters * 4
    opt_bytes = sum(
        optimizer_state_bytes(optimizer, t.num_embeddings, t.embedding_dim)
        for t in spec.tables)
    return MemoryFootprint(
        weights_bytes=float(weight_bytes), optimizer_bytes=float(opt_bytes),
        label=f"{precision}+{optimizer}")


@dataclass(frozen=True)
class ClusterMemory:
    """Aggregate memory pools of a training cluster."""

    hbm_bytes: float
    dram_bytes: float
    ssd_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.hbm_bytes + self.dram_bytes + self.ssd_bytes

    def fits(self, footprint: MemoryFootprint,
             use_ssd: bool = False) -> bool:
        budget = self.hbm_bytes + self.dram_bytes \
            + (self.ssd_bytes if use_ssd else 0.0)
        return footprint.total_bytes <= budget

    def fits_hbm(self, footprint: MemoryFootprint) -> bool:
        return footprint.total_bytes <= self.hbm_bytes


# the 16-node prototype of Section 5.2: 4 TB HBM + 24 TB DRAM
PROTOTYPE_CLUSTER_MEMORY = ClusterMemory(hbm_bytes=4e12, dram_bytes=24e12)


def capacity_ladder(spec: ModelSpec) -> List[MemoryFootprint]:
    """The Section 5.3.3 optimization ladder for a model spec.

    Returns footprints for: naive FP32 + element-wise AdaGrad, FP32 +
    row-wise AdaGrad, FP16 + row-wise AdaGrad (the shipping recipe).
    """
    return [
        model_footprint(spec, "fp32", "adagrad"),
        model_footprint(spec, "fp32", "rowwise_adagrad"),
        model_footprint(spec, "fp16", "rowwise_adagrad"),
    ]

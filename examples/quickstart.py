"""Quickstart: train a DLRM two ways and confirm they agree.

Builds a small click-through-rate model, trains it (1) single-process and
(2) distributed across 4 simulated GPUs with the Neo trainer (hybrid
model/data parallelism, exact sparse optimizers), and shows the two
produce the same losses and the same final parameters — the paper's core
correctness property.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad
from repro.metrics import normalized_entropy
from repro.models import DLRM, DLRMConfig
from repro.sharding import EmbeddingShardingPlanner, PlannerConfig

WORLD_SIZE = 4
BATCH = 64
STEPS = 60


def main():
    # 1. describe the model: 4 categorical features + 4 dense features
    tables = tuple(
        EmbeddingTableConfig(f"cat_{i}", num_embeddings=1000,
                             embedding_dim=16, avg_pooling=4.0)
        for i in range(4))
    config = DLRMConfig(dense_dim=4, bottom_mlp=(32, 16), tables=tables,
                        top_mlp=(32, 16))
    print(f"model: {config.num_parameters():,} parameters "
          f"({config.num_embedding_parameters():,} in embeddings)")

    # 2. synthetic CTR data with planted structure
    dataset = SyntheticCTRDataset(tables, dense_dim=4, noise=0.2, seed=1)
    batches = dataset.batches(BATCH, STEPS)

    # 3. single-process reference training
    reference = DLRM(config, seed=0)
    dense_opt = nn.Adam(reference.dense_parameters(), lr=0.01)
    sparse_opt = SparseAdaGrad(lr=0.1)
    ref_losses = [reference.train_step(b, dense_opt, sparse_opt)
                  for b in batches]

    # 4. distributed training: the planner places tables, the Neo trainer
    #    runs 4 lock-step ranks with real (simulated) collectives
    planner = EmbeddingShardingPlanner(PlannerConfig(
        world_size=WORLD_SIZE, ranks_per_node=WORLD_SIZE,
        dp_threshold_rows=100))
    plan = planner.plan(list(tables))
    for t in tables:
        print(f"  {t.name}: sharded {plan.scheme_of(t.name).value}")
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=WORLD_SIZE),
        dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0)
    dist_losses = [trainer.train_step(b.split(WORLD_SIZE)) for b in batches]

    # 5. the two training runs are numerically the same
    drift = max(abs(a - b) for a, b in zip(ref_losses, dist_losses))
    print(f"\nloss curves agree to {drift:.2e} "
          f"(first={ref_losses[0]:.4f}, last={ref_losses[-1]:.4f})")
    exported = trainer.to_local_model()
    for t in tables:
        # float32 summation-order differences accumulate over 60 Adam
        # steps; the two runs stay within a few ULP-compounded parts in 1e3
        np.testing.assert_allclose(
            exported.embeddings.table(t.name).weight,
            reference.embeddings.table(t.name).weight, rtol=5e-3, atol=1e-4)
    print("final embedding tables match the single-process reference")

    # 6. quality on held-out data (NE < 1 beats the base-rate predictor)
    test = dataset.batch(4096, 10_000)
    ne = normalized_entropy(exported.predict_proba(test), test.labels)
    print(f"normalized entropy on held-out data: {ne:.4f} (<1 is learning)")

    # 7. what the comms layer did
    log = trainer.pg.log
    print(f"\ncollectives issued: { {k: v for k, v in log.calls.items()} }")
    print(f"total wire traffic: {log.total_bytes / 1e6:.1f} MB, "
          f"modeled comms time: {log.total_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    main()

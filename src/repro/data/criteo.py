"""Criteo-shaped CTR workload (the public stand-in for production data).

Production click logs cannot ship; the community-standard proxy — used by
the DLRM reference implementation and MLPerf [35] — is the Criteo dataset
shape: 13 continuous features and 26 categorical features with wildly
skewed cardinalities (from tens to tens of millions). This module
synthesizes a workload with exactly that shape, plus the preprocessing
the DLRM pipeline applies (log-transform of dense counters, hashing of
categorical ids), so examples and tests can run a recognizable public
workload end to end.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..embedding.table import EmbeddingTableConfig
from .datagen import SyntheticCTRDataset

__all__ = ["CRITEO_NUM_DENSE", "CRITEO_NUM_SPARSE",
           "criteo_table_configs", "criteo_dlrm_config",
           "CriteoLikeDataset", "log_transform"]

CRITEO_NUM_DENSE = 13
CRITEO_NUM_SPARSE = 26

# cardinalities of the 26 Criteo-Kaggle categorical features (the widely
# published counts from the DLRM reference preprocessing)
_CRITEO_CARDINALITIES = (
    1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145,
    5683, 8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4,
    7046547, 18, 15, 286181, 105, 142572,
)


def log_transform(dense: np.ndarray) -> np.ndarray:
    """The standard Criteo dense transform: log(1 + max(x, 0))."""
    return np.log1p(np.maximum(dense, 0.0)).astype(np.float32)


def criteo_table_configs(max_rows: Optional[int] = None,
                         embedding_dim: int = 16) -> Tuple[EmbeddingTableConfig, ...]:
    """The 26 Criteo tables; ``max_rows`` caps cardinality (hash-shrink,
    exactly the paper's Section 5.3.1 methodology for small-scale runs)."""
    if embedding_dim <= 0:
        raise ValueError("embedding_dim must be positive")
    tables = []
    for i, cardinality in enumerate(_CRITEO_CARDINALITIES):
        rows = cardinality if max_rows is None else min(cardinality,
                                                        max_rows)
        tables.append(EmbeddingTableConfig(
            name=f"C{i + 1}", num_embeddings=rows,
            embedding_dim=embedding_dim, avg_pooling=1.0))
    return tuple(tables)


def criteo_dlrm_config(max_rows: Optional[int] = 10_000,
                       embedding_dim: int = 16):
    """The reference DLRM architecture for Criteo: bottom 512-256-64-D,
    top 512-256 (scaled by embedding_dim to stay laptop-friendly).

    Returns a :class:`repro.models.DLRMConfig` (imported lazily — models
    depends on data for batch types, so the reverse import must not
    happen at module load).
    """
    from ..models.dlrm import DLRMConfig
    tables = criteo_table_configs(max_rows=max_rows,
                                  embedding_dim=embedding_dim)
    return DLRMConfig(
        dense_dim=CRITEO_NUM_DENSE,
        bottom_mlp=(64, 32, embedding_dim),
        tables=tables,
        top_mlp=(64, 32))


class CriteoLikeDataset(SyntheticCTRDataset):
    """Synthetic stream with Criteo's shape.

    Single-valued categorical features (Criteo is one id per feature per
    sample, i.e. pooling size exactly 1), non-negative heavy-tailed dense
    counters passed through :func:`log_transform`, Zipf-skewed ids.
    """

    def __init__(self, max_rows: Optional[int] = 10_000,
                 embedding_dim: int = 16, noise: float = 0.3,
                 seed: int = 0) -> None:
        tables = criteo_table_configs(max_rows=max_rows,
                                      embedding_dim=embedding_dim)
        super().__init__(tables, dense_dim=CRITEO_NUM_DENSE, noise=noise,
                         zipf_alpha=1.2, seed=seed)

    def batch(self, batch_size: int, batch_index: int = 0):
        b = super().batch(batch_size, batch_index)
        # Criteo dense features are counters: exponentiate the generator's
        # gaussians into a heavy tail, then apply the standard transform
        rng = np.random.default_rng((self.seed, batch_index, 1))
        counters = np.expm1(np.abs(b.dense)) \
            * rng.lognormal(0.0, 0.5, size=b.dense.shape)
        b.dense = log_transform(counters)
        # exactly one id per categorical feature (Criteo semantics):
        # keep each sample's first id, or id 0 for empty bags
        for name, (indices, offsets) in list(b.sparse.items()):
            lengths = np.diff(offsets)
            first_ids = np.where(
                lengths > 0,
                indices[np.minimum(offsets[:-1], max(len(indices) - 1, 0))],
                0).astype(np.int64)
            new_offsets = np.arange(batch_size + 1, dtype=np.int64)
            b.sparse[name] = (first_ids, new_offsets)
        return b

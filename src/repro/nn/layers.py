"""Dense layers with explicit forward/backward passes.

Each layer caches exactly the activations its backward pass needs, mirroring
how a training framework holds activations between the forward and backward
halves of an iteration (the quantity the pipeline model in
:mod:`repro.core.pipeline` charges against HBM capacity).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init as initializers
from .parameter import Parameter

__all__ = ["Module", "Linear", "ReLU", "Sigmoid", "Identity", "Sequential", "MLP"]


class Module:
    """Minimal layer interface: ``forward``/``backward``/``parameters``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Module):
    """Fully-connected layer: ``y = x @ W.T + b``.

    Weight shape is ``(out_features, in_features)`` to match the PyTorch
    convention, which keeps checkpoints interchangeable with the reference
    DLRM implementation.

    Rank-stacked mode (:mod:`repro.nn.stacked`): when the weight has been
    replaced by a ``(R, out_features, in_features)`` stacked parameter,
    ``forward``/``backward`` take ``(R, B, in)`` / ``(R, B, out)`` arrays
    and run one batched ``np.matmul`` over the leading axis. Every slice
    ``r`` of the result is bitwise identical to the 2-D path on that
    rank's data — ``np.matmul`` computes each leading-axis slice with the
    same GEMM the 2-D ``@`` uses.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 init: Callable = initializers.xavier_uniform,
                 bias: bool = True, name: str = "linear") -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init((out_features, in_features), rng),
                                name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32),
                              name=f"{name}.bias") if bias else None
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        w = self.weight.data
        if w.ndim == 3:  # stacked: (R, B, in) @ (R, in, out)
            y = np.matmul(x, w.transpose(0, 2, 1))
            if self.bias is not None:
                y = y + self.bias.data[:, None, :]
        else:
            y = x @ w.T
            if self.bias is not None:
                y = y + self.bias.data
        return y.astype(np.float32)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        w = self.weight.data
        if w.ndim == 3:  # stacked: per-rank dy.T @ x, dy.sum, dy @ W
            self.weight.accumulate_grad(
                np.matmul(dy.transpose(0, 2, 1), x).astype(np.float32))
            if self.bias is not None:
                self.bias.accumulate_grad(dy.sum(axis=1).astype(np.float32))
            return np.matmul(dy, w).astype(np.float32)
        self.weight.accumulate_grad((dy.T @ x).astype(np.float32))
        if self.bias is not None:
            self.bias.accumulate_grad(dy.sum(axis=0).astype(np.float32))
        return (dy @ self.weight.data).astype(np.float32)

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def flops_per_sample(self) -> int:
        """Multiply-accumulate FLOPs for one sample, fwd pass (2*m*n)."""
        return 2 * self.in_features * self.out_features


class ReLU(Module):
    """Rectified linear activation with cached-input backward."""

    def __init__(self) -> None:
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return F.relu(x)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        return F.relu_grad(self._input, dy)


class Sigmoid(Module):
    """Logistic activation; backward uses the cached output."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = F.sigmoid(x)
        return self._output

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        return (dy * s * (1.0 - s)).astype(np.float32)


class Identity(Module):
    """Pass-through layer (placeholder in configurable stacks)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy


class Sequential(Module):
    """Runs layers in order; backward replays them in reverse."""

    def __init__(self, layers: Iterable[Module]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params


class MLP(Sequential):
    """Stack of Linear+ReLU blocks, as used for DLRM bottom/top MLPs.

    Parameters
    ----------
    layer_sizes:
        ``[in, h1, ..., out]``. A DLRM bottom MLP maps dense features to the
        embedding dimension; the top MLP maps interaction output to 1 logit.
    final_activation:
        ``"relu"``, ``"sigmoid"`` or ``None`` (raw logits, the usual choice
        when paired with :func:`repro.nn.functional.bce_with_logits`).
    """

    def __init__(self, layer_sizes: Sequence[int],
                 rng: Optional[np.random.Generator] = None,
                 final_activation: Optional[str] = None,
                 name: str = "mlp") -> None:
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least [in, out]")
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: List[Module] = []
        n_pairs = len(layer_sizes) - 1
        for i in range(n_pairs):
            layers.append(Linear(layer_sizes[i], layer_sizes[i + 1], rng=rng,
                                 name=f"{name}.{i}"))
            is_last = i == n_pairs - 1
            if not is_last:
                layers.append(ReLU())
            elif final_activation == "relu":
                layers.append(ReLU())
            elif final_activation == "sigmoid":
                layers.append(Sigmoid())
            elif final_activation is not None:
                raise ValueError(f"unknown final_activation {final_activation!r}")
        super().__init__(layers)
        self.layer_sizes = list(layer_sizes)

    def flops_per_sample(self) -> int:
        return sum(l.flops_per_sample() for l in self.layers
                   if isinstance(l, Linear))

"""Tests for batch-level index deduplication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import zipf_indices
from repro.embedding import (EmbeddingTable, EmbeddingTableConfig,
                             SparseSGD, dedup_forward, duplication_factor,
                             lengths_to_offsets)


def make_table(h=50, d=4, pooling="sum", seed=0):
    cfg = EmbeddingTableConfig("t", h, d, pooling_mode=pooling)
    return EmbeddingTable(cfg, rng=np.random.default_rng(seed))


class TestDedupForward:
    def test_matches_plain_forward(self):
        table = make_table()
        rng = np.random.default_rng(1)
        lengths = rng.integers(0, 6, size=8).astype(np.int64)
        indices = rng.integers(0, 50, size=int(lengths.sum())).astype(
            np.int64)
        offsets = lengths_to_offsets(lengths)
        plain = table.forward(indices, offsets)
        deduped, unique = dedup_forward(table, indices, offsets)
        np.testing.assert_array_equal(deduped, plain)
        assert unique == len(np.unique(indices))

    def test_mean_pooling(self):
        table = make_table(pooling="mean")
        indices = np.array([3, 3, 7], dtype=np.int64)
        offsets = np.array([0, 3], dtype=np.int64)
        plain = table.forward(indices, offsets)
        deduped, unique = dedup_forward(table, indices, offsets)
        np.testing.assert_array_equal(deduped, plain)
        assert unique == 2

    def test_backward_state_primed(self):
        """table.backward works after dedup_forward, identically."""
        t1, t2 = make_table(seed=2), make_table(seed=2)
        indices = np.array([1, 1, 4, 4, 4], dtype=np.int64)
        offsets = np.array([0, 2, 5], dtype=np.int64)
        dy = np.random.default_rng(3).normal(size=(2, 4)).astype(np.float32)
        t1.forward(indices, offsets)
        dedup_forward(t2, indices, offsets)
        g1, g2 = t1.backward(dy), t2.backward(dy)
        np.testing.assert_array_equal(g1.rows, g2.rows)
        np.testing.assert_array_equal(g1.values, g2.values)
        SparseSGD(lr=0.1).step(t1, g1)
        SparseSGD(lr=0.1).step(t2, g2)
        np.testing.assert_array_equal(t1.weight, t2.weight)

    def test_empty_batch(self):
        table = make_table()
        out, unique = dedup_forward(table, np.zeros(0, dtype=np.int64),
                                    np.array([0], dtype=np.int64))
        assert out.shape == (0, 4)
        assert unique == 0

    def test_out_of_range_raises(self):
        table = make_table(h=5)
        with pytest.raises(IndexError):
            dedup_forward(table, np.array([5], dtype=np.int64),
                          np.array([0, 1], dtype=np.int64))

    @given(st.lists(st.integers(min_value=0, max_value=19), min_size=0,
                    max_size=60))
    @settings(max_examples=40)
    def test_equivalence_property(self, ids_list):
        table = make_table(h=20, d=3, seed=4)
        indices = np.array(ids_list, dtype=np.int64)
        offsets = np.array([0, len(ids_list)], dtype=np.int64)
        plain = table.forward(indices, offsets)
        deduped, _ = dedup_forward(table, indices, offsets)
        np.testing.assert_array_equal(deduped, plain)


class TestDuplicationFactor:
    def test_no_duplicates(self):
        assert duplication_factor(np.array([1, 2, 3])) == 1.0

    def test_all_same(self):
        assert duplication_factor(np.array([7] * 10)) == 10.0

    def test_empty(self):
        assert duplication_factor(np.zeros(0, dtype=np.int64)) == 1.0

    def test_zipf_traffic_highly_duplicated(self):
        """The production motivation: skewed DLRM inputs repeat hot ids,
        so dedup saves several-fold row traffic at realistic batch sizes."""
        rng = np.random.default_rng(0)
        ids = zipf_indices(100_000, 65536, rng, alpha=1.1)
        assert duplication_factor(ids) > 3.0

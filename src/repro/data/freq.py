"""Per-table id-frequency statistics for frequency-aware caching.

The ingestion tier sees every sparse id before the trainer does, so the
access skew that :class:`repro.cache.FreqAwareCache` exploits can be
measured for free while batches stream through the reader service
(hpcaitech's CacheEmbedding warms its chunked cache the same way). A
:class:`FrequencyStats` accumulates per-table histograms from
:class:`~repro.data.datagen.MiniBatch` sparse features (or raw id
arrays), merges across readers, and hands out dense histograms / top-id
rankings for cache warm-up.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List

import numpy as np

from .datagen import MiniBatch

__all__ = ["FrequencyStats"]


class FrequencyStats:
    """Streaming per-table id histograms.

    Counts are kept in plain dicts (id -> count) so tables with hundreds
    of millions of rows don't allocate dense arrays until a consumer
    asks for :meth:`histogram` over a known row count.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int))
        self.batches_observed = 0

    @property
    def tables(self) -> List[str]:
        return sorted(self._counts)

    def update(self, batch: MiniBatch) -> None:
        """Fold one batch's sparse ids into the histograms."""
        for name, (indices, _offsets) in batch.sparse.items():
            self.update_ids(name, indices)
        self.batches_observed += 1

    def update_ids(self, table: str, ids: np.ndarray) -> None:
        """Fold a raw id array for ``table`` into its histogram."""
        uniq, counts = np.unique(np.asarray(ids, dtype=np.int64),
                                 return_counts=True)
        table_counts = self._counts[table]
        for row_id, count in zip(uniq, counts):
            table_counts[int(row_id)] += int(count)

    def merge(self, other: "FrequencyStats") -> None:
        """Fold another reader's statistics into this one."""
        for table, counts in other._counts.items():
            mine = self._counts[table]
            for row_id, count in counts.items():
                mine[row_id] += count
        self.batches_observed += other.batches_observed

    def total(self, table: str) -> int:
        """Total id occurrences observed for ``table``."""
        return sum(self._counts.get(table, {}).values())

    def histogram(self, table: str, num_rows: int) -> np.ndarray:
        """Dense ``(num_rows,)`` count array for ``table`` (the shape
        :meth:`repro.cache.FreqAwareCache.warm` expects)."""
        out = np.zeros(num_rows, dtype=np.int64)
        for row_id, count in self._counts.get(table, {}).items():
            if row_id >= num_rows:
                raise ValueError(
                    f"observed id {row_id} >= num_rows {num_rows} "
                    f"for table {table!r}")
            out[row_id] = count
        return out

    def top_ids(self, table: str, k: int) -> np.ndarray:
        """The ``k`` hottest ids for ``table``, hottest first (ties
        broken by id for determinism)."""
        counts = self._counts.get(table, {})
        ids = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        vals = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
        order = np.lexsort((ids, -vals))
        return ids[order[:k]]

    def coverage(self, table: str, ids: Iterable[int]) -> float:
        """Fraction of observed accesses the given id set covers — the
        best-case hit rate of a cache holding exactly those ids."""
        counts = self._counts.get(table, {})
        total = sum(counts.values())
        if not total:
            return 0.0
        hot = sum(counts.get(int(i), 0) for i in ids)
        return hot / total

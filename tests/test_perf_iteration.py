"""Tests for the end-to-end throughput model, capacity arithmetic, and
platform-demand derivation."""

import numpy as np
import pytest

from repro.comms import PROTOTYPE_TOPOLOGY, QuantizedCommsConfig
from repro.models import full_spec
from repro.perf import (PROTOTYPE_CLUSTER_MEMORY, TABLE1_REFERENCE,
                        TrainingSetup, capacity_ladder, component_times,
                        derive_demand, iteration_time, latency_breakdown,
                        model_footprint, plan_imbalance, qps,
                        weak_scaling_curve)


def setup_for(name, nodes=16, **kw):
    defaults = dict(global_batch=65536, load_imbalance=1.1)
    defaults.update(kw)
    return TrainingSetup(spec=full_spec(name),
                         topology=PROTOTYPE_TOPOLOGY(nodes), **defaults)


class TestThroughputModel:
    def test_table4_ordering(self):
        """Table 4 @128 GPUs: A1 > F1 > A2 > A3 in QPS."""
        a1 = qps(setup_for("A1", load_imbalance=2.5))
        a2 = qps(setup_for("A2"))
        a3 = qps(setup_for("A3"))
        f1 = qps(TrainingSetup(
            spec=full_spec("F1"), topology=PROTOTYPE_TOPOLOGY(16),
            global_batch=65536, row_wise_dim_fraction=1.0,
            memory_hierarchy_bw_fraction=0.25,
            embedding_precision="fp16"))
        assert a1 > f1 > a2 > a3

    def test_a2_within_factor_of_paper(self):
        """A2 @128 GPUs: paper 622K QPS; model must land within 2x."""
        model = qps(setup_for("A2", load_imbalance=1.2))
        assert 622e3 / 2 < model < 622e3 * 2

    def test_a3_slower_than_a2(self):
        """A3's wider dims raise AlltoAll cost (Section 5.3.1)."""
        assert qps(setup_for("A3")) < qps(setup_for("A2"))

    def test_imbalance_hurts(self):
        balanced = qps(setup_for("A2", load_imbalance=1.0))
        skewed = qps(setup_for("A2", load_imbalance=2.0))
        assert skewed < balanced

    def test_quantized_comms_help(self):
        fp32 = qps(setup_for("A2"))
        quant = qps(setup_for("A2",
                              comms=QuantizedCommsConfig.paper_recipe()))
        assert quant > fp32

    def test_fp16_embeddings_cut_lookup_time(self):
        t32 = component_times(setup_for("A2")).embedding_lookup
        t16 = component_times(
            setup_for("A2", embedding_precision="fp16")).embedding_lookup
        assert t16 < t32

    def test_larger_batch_raises_qps(self):
        """Fig 13's last step: 64K -> 256K global batch helps."""
        small = qps(setup_for("A2", global_batch=65536))
        large = qps(setup_for("A2", global_batch=262144))
        assert large > small

    def test_row_wise_fraction_adds_cost(self):
        base = qps(setup_for("F1"))
        rw = qps(setup_for("F1", row_wise_dim_fraction=1.0))
        assert rw < base

    def test_validation(self):
        with pytest.raises(ValueError):
            setup_for("A1", global_batch=65537)
        with pytest.raises(ValueError):
            setup_for("A1", load_imbalance=0.5)
        with pytest.raises(ValueError):
            setup_for("A1", row_wise_dim_fraction=1.5)
        with pytest.raises(ValueError):
            setup_for("A1", memory_hierarchy_bw_fraction=0.0)


class TestScaling:
    def test_weak_scaling_efficiency_band(self):
        """Fig 11: ~40-60% scaling efficiency at 16 nodes."""
        setup = TrainingSetup(spec=full_spec("A2"),
                              topology=PROTOTYPE_TOPOLOGY(1),
                              global_batch=4096, load_imbalance=1.1)
        curve = weak_scaling_curve(setup, [1, 16])
        eff = curve[16] / (16 * curve[1])
        assert 0.3 < eff < 0.7

    def test_monotone_total_throughput(self):
        setup = TrainingSetup(spec=full_spec("A2"),
                              topology=PROTOTYPE_TOPOLOGY(1),
                              global_batch=4096, load_imbalance=1.1)
        curve = weak_scaling_curve(setup, [1, 2, 4, 8, 16])
        values = [curve[n] for n in (1, 2, 4, 8, 16)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_alltoall_limits_scaling(self):
        """Section 5.3.1: the exposed AlltoAll is what limits scaling."""
        b = latency_breakdown(setup_for("A2"))
        exposed_a2a = b.exposed["alltoall_fwd"] + b.exposed["alltoall_bwd"]
        assert exposed_a2a > b.exposed["allreduce"]

    def test_allreduce_mostly_hidden_at_16_nodes(self):
        """Fig 12: AllReduce is hidden up to 16 nodes for A2."""
        b = latency_breakdown(setup_for("A2"))
        assert b.exposed["allreduce"] < 0.25 * b.serialized["allreduce"]

    def test_h2d_completely_hidden(self):
        """Fig 12: HtoD is completely hidden by pipelining."""
        b = latency_breakdown(setup_for("A2"))
        assert b.exposed["h2d"] == 0.0

    def test_plan_imbalance_helper(self):
        assert plan_imbalance([1.0, 1.0]) == 1.0
        assert plan_imbalance([2.0, 1.0, 1.0]) == pytest.approx(1.5)
        assert plan_imbalance([]) == 1.0


class TestCapacity:
    def test_f1_ladder_values(self):
        """Section 5.3.3: 96 TB -> ~48 TB -> ~24 TB."""
        ladder = capacity_ladder(full_spec("F1"))
        assert ladder[0].total_bytes == pytest.approx(96e12, rel=0.02)
        assert ladder[1].total_bytes == pytest.approx(48e12, rel=0.05)
        assert ladder[2].total_bytes == pytest.approx(24e12, rel=0.05)

    def test_only_final_recipe_fits_prototype(self):
        ladder = capacity_ladder(full_spec("F1"))
        mem = PROTOTYPE_CLUSTER_MEMORY
        assert not mem.fits(ladder[0])
        assert not mem.fits(ladder[1])
        assert mem.fits(ladder[2])

    def test_nothing_fits_hbm_alone(self):
        """F1 needs the hierarchy: even 24 TB exceeds 4 TB HBM."""
        ladder = capacity_ladder(full_spec("F1"))
        assert not PROTOTYPE_CLUSTER_MEMORY.fits_hbm(ladder[2])

    def test_a2_fp32_tight_in_hbm(self):
        """Section 5.3.2: A2 at FP32 is ~3 TB vs 4 TB HBM — tight."""
        fp = model_footprint(full_spec("A2"), "fp32", "sgd")
        ratio = fp.weights_bytes / PROTOTYPE_CLUSTER_MEMORY.hbm_bytes
        assert 0.6 < ratio < 1.0
        fp16 = model_footprint(full_spec("A2"), "fp16", "sgd")
        assert fp16.weights_bytes < 0.55 * fp.weights_bytes


class TestRequirements:
    def test_table1_magnitudes(self):
        """Derived demand reaches the Table 1 order of magnitude."""
        demand = derive_demand(full_spec("A3"), target_qps=1e6)
        assert demand.total_compute_flops > TABLE1_REFERENCE[
            "total_compute_flops"]
        assert demand.total_memory_bytes > TABLE1_REFERENCE[
            "total_memory_bytes"]
        # Table 1's "100+ TB/s" is the provisioned aggregate (16 nodes x
        # 7.2 TB/s = 115 TB/s); derived pure-embedding demand lands within
        # the same order of magnitude.
        assert demand.total_memory_bw > TABLE1_REFERENCE[
            "total_memory_bw"] / 3
        assert demand.bisection_bw > TABLE1_REFERENCE["bisection_bw"]

    def test_demand_scales_with_qps(self):
        lo = derive_demand(full_spec("A2"), target_qps=1e5)
        hi = derive_demand(full_spec("A2"), target_qps=1e6)
        assert hi.total_compute_flops == pytest.approx(
            10 * lo.total_compute_flops)

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_demand(full_spec("A1"), target_qps=0)

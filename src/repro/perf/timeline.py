"""ASCII timeline (Gantt) rendering for pipeline schedules.

Turns a :class:`repro.core.PipelineSchedule` into the kind of per-stream
timeline the paper's Fig. 12 distills — useful in examples and for
eyeballing what overlaps with what.
"""

from __future__ import annotations

from typing import List

from ..core.schedule import PipelineSchedule

__all__ = ["render_timeline"]


def render_timeline(schedule: PipelineSchedule, width: int = 72) -> str:
    """Render one line per stream; task spans are drawn with their name.

    Each column represents ``makespan / width`` seconds; a task shorter
    than one column still gets one character so nothing disappears.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    if not schedule.tasks:
        return "(empty schedule)"
    makespan = schedule.makespan
    if makespan <= 0:
        return "(zero-length schedule)"
    streams: List[str] = []
    for t in schedule.tasks:
        if t.stream not in streams:
            streams.append(t.stream)
    label_w = max(len(s) for s in streams) + 1
    scale = width / makespan
    lines = []
    for stream in streams:
        row = [" "] * width
        for t in schedule.tasks:
            if t.stream != stream:
                continue
            c0 = int(schedule.start[t.name] * scale)
            c1 = max(c0 + 1, int(schedule.finish[t.name] * scale))
            c1 = min(c1, width)
            span = c1 - c0
            name = t.name.split("/")[-1]
            text = (name[: span - 2] + "|") if span > 2 else "#" * span
            block = text.ljust(span, "=")[:span]
            for i, ch in enumerate(block):
                row[c0 + i] = ch
        lines.append(f"{stream.ljust(label_w)}|{''.join(row)}|")
    header = f"{'':{label_w}} 0{' ' * (width - 12)}{makespan * 1e3:8.2f} ms"
    return "\n".join([header] + lines)

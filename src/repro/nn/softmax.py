"""Softmax layer and cross-entropy loss.

The Appendix A MLP benchmark terminates in a SoftMax; production DLRMs
also ship multi-class heads (e.g. multi-task CTR variants). Both pieces
use the numerically stable fused log-softmax formulation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Module

__all__ = ["Softmax", "CrossEntropyLoss"]


class Softmax(Module):
    """Row-wise softmax with exact Jacobian-vector backward."""

    def __init__(self, axis: int = -1) -> None:
        self.axis = axis
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = F.softmax(x, axis=self.axis).astype(np.float32)
        return self._output

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        # dx = s * (dy - sum(dy * s)) along the softmax axis
        inner = np.sum(dy * s, axis=self.axis, keepdims=True)
        return (s * (dy - inner)).astype(np.float32)


class CrossEntropyLoss:
    """Mean cross-entropy from raw logits with integer class labels.

    Matches ``torch.nn.CrossEntropyLoss`` (log-softmax + NLL fused);
    ``backward`` returns d(mean loss)/d(logits).
    """

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError("logits must be (batch, classes)")
        labels = np.asarray(labels)
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} != ({logits.shape[0]},)")
        if labels.size and (labels.min() < 0
                            or labels.max() >= logits.shape[1]):
            raise ValueError("labels out of class range")
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.sum(np.exp(shifted), axis=1))
        picked = shifted[np.arange(len(labels)), labels]
        self._probs = F.softmax(logits, axis=1)
        self._labels = labels
        return float(np.mean(log_z - picked))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return (grad / len(self._labels)).astype(np.float32)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)

"""Rank-stacked simulation: batch the world dimension out of the hot loop.

The lock-step simulator used to advance its ``R`` data-parallel dense
replicas with ``R`` sequential python-loop calls per phase (forward,
loss, backward, AllReduce flatten, optimizer). The rank-stacked mode
(``NeoTrainer(..., stacked=True)``, the default) packs every replica's
parameters into leading-axis ``(R, ...)`` arrays so each phase is one
batched ``np.matmul``/einsum — turning per-step cost from
"R × (python + tiny-GEMM overhead)" into one R-times-larger kernel.

Two measurements:

* ``looped`` vs ``stacked`` wall clock per training step at growing
  world sizes, same model/batches/seed — with a bitwise parity check
  (losses and rank-0 dense parameters after the measured steps must be
  identical; the stacked path is not allowed to buy speed with drift);
* a stacked-only scaling curve out to R=128, showing per-step time
  staying near-linear in the (growing) global batch while the looped
  path's python overhead would grow with R on top of that.

Run standalone to write ``BENCH_rank_stacked.json``::

    PYTHONPATH=src python benchmarks/bench_rank_stacked.py \
        [--quick] [--out PATH] [--assert-speedup X]

``--quick`` shrinks world sizes and iterations for CI smoke runs (the
CI gate asserts >= 2x at R=16); the full run is the acceptance
measurement: stacked must be >= 4x looped at R=32.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad
from repro.models import DLRMConfig
from repro.obs.metrics import MetricRegistry
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

# dense-dominated configuration: the dense replica work (MLPs) is what
# rank-stacking vectorizes, so the model is deep and narrow — per-rank
# looped cost is python/dispatch overhead per layer, exactly what one
# batched matmul amortizes. The embedding side is one small
# data-parallel table (local lookup + sparse update per rank, O(R) with
# no AlltoAll; table-wise/row-wise schemes build O(R^2) payload lists
# that would dominate the step at R=128 in BOTH modes and drown the
# dense contrast). Narrow layers also keep the AllReduce/optimizer
# memory traffic — paid equally by both modes — small.
MODEL = dict(dense_dim=16, bottom_mlp=(16,) * 14, top_mlp=(16,) * 14,
             num_tables=1, rows=64, emb_dim=16, per_rank_batch=4)

FULL_WORLDS = [4, 16, 32]
FULL_STACKED_ONLY = [64, 128]
QUICK_WORLDS = [4, 16]
QUICK_STACKED_ONLY = []


def build_trainer(world: int, stacked: bool, seed: int = 0) -> NeoTrainer:
    tables = tuple(
        EmbeddingTableConfig(f"t{i}", MODEL["rows"], MODEL["emb_dim"],
                             avg_pooling=2.0)
        for i in range(MODEL["num_tables"]))
    config = DLRMConfig(dense_dim=MODEL["dense_dim"],
                        bottom_mlp=MODEL["bottom_mlp"], tables=tables,
                        top_mlp=MODEL["top_mlp"])
    plan = ShardingPlan(world_size=world)
    for t in tables:
        plan.tables[t.name] = shard_table(
            t, ShardingScheme.DATA_PARALLEL, list(range(world)))
    return NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=world),
        dense_optimizer=lambda p: nn.SGD(p, lr=0.1, momentum=0.9),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=seed,
        metrics=MetricRegistry(), stacked=stacked)


def make_batches(world: int, num: int):
    tables = tuple(
        EmbeddingTableConfig(f"t{i}", MODEL["rows"], MODEL["emb_dim"],
                             avg_pooling=2.0)
        for i in range(MODEL["num_tables"]))
    ds = SyntheticCTRDataset(tables, dense_dim=MODEL["dense_dim"],
                             noise=0.2, seed=1)
    global_batch = MODEL["per_rank_batch"] * world
    return [ds.batch(global_batch, i).split(world) for i in range(num)]


def _best_step_time(trainer: NeoTrainer, batches, iters: int) -> float:
    """Best-of wall clock for one full train_step (state mutates across
    calls; timing is unaffected — same shapes every step)."""
    trainer.train_step(batches[0])  # warmup: lazy allocations, caches
    best = float("inf")
    for i in range(iters):
        batch = batches[i % len(batches)]
        t0 = time.perf_counter()
        trainer.train_step(batch)
        best = min(best, time.perf_counter() - t0)
    return best


def check_parity(world: int, steps: int = 3) -> bool:
    """Stacked and looped must agree bitwise: per-step losses, rank-0
    dense parameters and total comms wire bytes."""
    looped = build_trainer(world, stacked=False)
    stacked = build_trainer(world, stacked=True)
    batches = make_batches(world, steps)
    for batch in batches:
        if looped.train_step(batch) != stacked.train_step(batch):
            return False
    for pa, pb in zip(looped.ranks[0].dense_parameters(),
                      stacked.ranks[0].dense_parameters()):
        if not np.array_equal(pa.data, pb.data):
            return False
    return looped.pg.log.wire_bytes == stacked.pg.log.wire_bytes


def run_benchmark(quick=False, iters=None):
    """Measure looped vs stacked step wall clock across world sizes.

    Returns a JSON-ready dict with per-world timings, speedups and the
    bitwise-parity verdict.
    """
    worlds = QUICK_WORLDS if quick else FULL_WORLDS
    extra = QUICK_STACKED_ONLY if quick else FULL_STACKED_ONLY
    iters = iters if iters is not None else (3 if quick else 5)

    parity = check_parity(worlds[0])

    points = {}
    for world in worlds:
        batches = make_batches(world, 2)
        looped_t = _best_step_time(build_trainer(world, stacked=False),
                                   batches, iters)
        stacked_t = _best_step_time(build_trainer(world, stacked=True),
                                    batches, iters)
        points[world] = {
            "looped_step_s": looped_t,
            "stacked_step_s": stacked_t,
            "speedup": looped_t / stacked_t,
        }
    curve = {}
    for world in worlds + extra:
        batches = make_batches(world, 2)
        curve[world] = _best_step_time(build_trainer(world, stacked=True),
                                       batches, iters)

    top = max(worlds)
    return {
        "benchmark": "rank_stacked_simulation",
        "mode": "quick" if quick else "full",
        "model": dict(MODEL),
        "parity": {"stacked_vs_looped_bitwise": bool(parity)},
        "points": {str(w): p for w, p in points.items()},
        "stacked_step_s_by_world": {str(w): t for w, t in curve.items()},
        "speedup_at_top_world": points[top]["speedup"],
        "top_world": top,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small world sizes for CI smoke runs")
    parser.add_argument("--out", default="BENCH_rank_stacked.json",
                        help="output JSON path")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless speedup at the largest "
                             "compared world size >= X")
    args = parser.parse_args(argv)
    result = run_benchmark(quick=args.quick)
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    for w, p in result["points"].items():
        print(f"R={w:>4}  looped {p['looped_step_s'] * 1e3:8.2f} ms  "
              f"stacked {p['stacked_step_s'] * 1e3:8.2f} ms  "
              f"{p['speedup']:.2f}x")
    for w, t in result["stacked_step_s_by_world"].items():
        print(f"R={w:>4}  stacked {t * 1e3:8.2f} ms/step")
    print(f"parity: {result['parity']}")
    print(f"wrote {args.out}")
    if not result["parity"]["stacked_vs_looped_bitwise"]:
        print("FAIL: stacked path not bitwise-identical to looped",
              file=sys.stderr)
        return 1
    speedup = result["speedup_at_top_world"]
    if args.assert_speedup is not None and speedup < args.assert_speedup:
        print(f"FAIL: speedup {speedup:.2f}x at R={result['top_world']} "
              f"< floor {args.assert_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def test_rank_stacked_speedup(benchmark, report):
    """Smoke: stacked beats looped and stays bitwise-identical."""
    result = benchmark(run_benchmark, quick=True, iters=2)
    rows = [(w, f"{p['looped_step_s'] * 1e3:.2f}",
             f"{p['stacked_step_s'] * 1e3:.2f}", f"{p['speedup']:.2f}x")
            for w, p in result["points"].items()]
    report("rank-stacked vs looped train-step wall clock",
           ["world", "looped ms", "stacked ms", "speedup"], rows)
    assert result["parity"]["stacked_vs_looped_bitwise"]
    # the hard >=2x / >=4x floors are CLI gates on dedicated hardware;
    # under pytest parallelism only require a real win at the top size
    assert result["speedup_at_top_world"] >= 1.0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for device specs, GEMM/MLP models, and embedding bandwidth."""

import numpy as np
import pytest

from repro.perf import (A100, CPU_SKYLAKE, V100, embedding_achieved_bw,
                        embedding_lookup_time, embedding_update_time,
                        fused_speedup, gemm_tflops, gemm_time, mlp_benchmark,
                        mlp_time)


class TestDeviceSpecs:
    def test_v100_achieved_hbm(self):
        """Section 5.1: 850 GB/s achieved on V100."""
        assert V100.hbm_achievable_bw == 850e9

    def test_a100_achieved_hbm(self):
        """Section 5.1: 1300 GB/s achieved on A100."""
        assert A100.hbm_achievable_bw == 1300e9

    def test_v100_fp32_efficiency_ceiling(self):
        """Section 5.1: up to 78.6% compute efficiency on V100."""
        assert V100.max_efficiency["fp32"] == pytest.approx(0.786)

    def test_a100_tf32_efficiency_ceiling(self):
        """Section 5.1: 70.5% on A100 (TF32 tensor core path)."""
        assert A100.max_efficiency["tf32"] == pytest.approx(0.705)

    def test_unsupported_precision_raises(self):
        with pytest.raises(ValueError):
            V100.achievable_flops("tf32", 1e9)  # TF32 is A100-only

    def test_efficiency_saturates(self):
        small = V100.achievable_flops("fp32", 1e6)
        large = V100.achievable_flops("fp32", 1e12)
        assert small < large
        assert large <= V100.peak_flops["fp32"] * V100.max_efficiency["fp32"]


class TestGemmModel:
    def test_tflops_grow_with_size(self):
        """Figs 14-15: achieved TF/s rises with problem size."""
        sizes = [128, 512, 2048, 8192]
        tf = [gemm_tflops(n, n, n, V100) for n in sizes]
        assert all(a < b for a, b in zip(tf, tf[1:]))

    def test_large_gemm_near_ceiling(self):
        tf = gemm_tflops(8192, 8192, 8192, V100)
        ceiling = 15.7 * 0.786
        assert tf == pytest.approx(ceiling, rel=0.05)

    def test_fp16_faster_than_fp32(self):
        """Fig 15 vs 14: tensor cores lift the ceiling."""
        assert gemm_tflops(4096, 4096, 4096, V100, "fp16") > \
            2 * gemm_tflops(4096, 4096, 4096, V100, "fp32")

    def test_a100_tf32_beats_v100_fp32(self):
        assert gemm_tflops(4096, 4096, 4096, A100, "tf32") > \
            3 * gemm_tflops(4096, 4096, 4096, V100, "fp32")

    def test_tiny_gemm_memory_or_launch_bound(self):
        tf = gemm_tflops(16, 16, 16, V100)
        assert tf < 0.1  # far below ceiling

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            gemm_time(0, 4, 4, V100)


class TestMLPModel:
    def test_benchmark_shapes_match_appendix(self):
        """Appendix A: batch 128..4096, 20 layers of 1K/2K/4K."""
        for batch in (128, 4096):
            for width in (1024, 4096):
                result = mlp_benchmark(batch, width, 20, V100)
                assert result.forward_seconds > 0
                assert result.backward_seconds > result.forward_seconds
                assert result.achieved_tflops > 0

    def test_efficiency_grows_with_batch(self):
        """Figs 16-17: larger batch -> higher achieved TF/s."""
        tf = [mlp_benchmark(b, 2048, 20, V100).achieved_tflops
              for b in (128, 512, 2048)]
        assert tf[0] < tf[1] < tf[2]

    def test_backward_is_double_forward(self):
        t_fwd = mlp_time(1024, [512] * 5, V100)
        t_bwd = mlp_time(1024, [512] * 5, V100, backward=True)
        assert t_bwd == pytest.approx(2 * t_fwd)

    def test_cpu_much_slower(self):
        """The GPU-offload premise: MLPs run far faster on V100."""
        assert mlp_time(512, [1024] * 10, CPU_SKYLAKE) > \
            3 * mlp_time(512, [1024] * 10, V100)


class TestEmbeddingBandwidth:
    def test_wide_rows_near_hbm_ceiling(self):
        """Fig 18: D=128 fp32 approaches achieved HBM bandwidth."""
        bw = embedding_achieved_bw(V100, 128, "fp32")
        assert bw > 0.85 * V100.hbm_achievable_bw

    def test_narrow_rows_degrade(self):
        assert embedding_achieved_bw(V100, 4) < \
            embedding_achieved_bw(V100, 128) / 2

    def test_fp16_lower_bytes_per_sec_same_dim(self):
        """Fig 18 shape: fp16 achieved *bytes/s* drops slightly for the
        same D (half the useful bytes per transaction)..."""
        assert embedding_achieved_bw(V100, 32, "fp16") < \
            embedding_achieved_bw(V100, 32, "fp32")

    def test_fp16_faster_lookup_wall_clock(self):
        """...but fp16 still wins on time: half the bytes to move."""
        t32 = embedding_lookup_time(10 ** 6, 128, V100, "fp32")
        t16 = embedding_lookup_time(10 ** 6, 128, V100, "fp16")
        assert t16 < t32

    def test_a100_faster_than_v100(self):
        """Figs 18-19: A100 sustains higher lookup bandwidth."""
        assert embedding_achieved_bw(A100, 128) > \
            embedding_achieved_bw(V100, 128)

    def test_update_costs_double(self):
        t_fwd = embedding_lookup_time(10 ** 6, 128, V100)
        t_bwd = embedding_update_time(10 ** 6, 128, V100)
        assert t_bwd == pytest.approx(2 * t_fwd, rel=0.01)

    def test_negative_nnz_raises(self):
        with pytest.raises(ValueError):
            embedding_lookup_time(-1, 128, V100)


class TestFusedSpeedup:
    def test_many_small_tables_big_speedup(self):
        """Section 4.1.1: fusing ~1000 small lookups gives up to ~7x."""
        per_table = [2048] * 1000  # small per-table work
        s = fused_speedup(per_table, 32, V100)
        assert 3.0 < s < 20.0

    def test_single_table_no_speedup(self):
        assert fused_speedup([10 ** 6], 128, V100) == pytest.approx(1.0)

    def test_large_tables_less_benefit(self):
        small_work = fused_speedup([1000] * 100, 64, V100)
        big_work = fused_speedup([10 ** 6] * 100, 64, V100)
        assert big_work < small_work

"""Reduced-precision embedding table storage (paper Sections 4.1.4, 5.3.2).

Storing embedding tables below FP32 halves (FP16/BF16) or quarters (INT8
row-wise) the model footprint. In the paper this is what gives the sharder
placement headroom for model A2 (+20% throughput via better balance) and is
one of the two tricks that fit the 12T-parameter model F1 in Section 5.3.3.

Training reads rows at full precision (dequantize on lookup — the
"high-precision cache backed by low-precision tables" of [57]) and writes
updated rows back through quantization.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import lowp
from .table import EmbeddingTable, EmbeddingTableConfig

__all__ = ["QuantizedEmbeddingTable"]


class QuantizedEmbeddingTable(EmbeddingTable):
    """An :class:`EmbeddingTable` whose backing store is low precision.

    The public interface is identical to the FP32 table — ``weight`` is
    exposed as an FP32 view so that optimizers work unchanged — but every
    write is rounded through the storage precision, exactly reproducing the
    numerics of training on FP16/BF16/INT8 tables.

    Implementation note: ``weight`` holds the FP32 *dequantization* of the
    low-precision store at all times, and :meth:`sync_storage` (called after
    each optimizer step by trainers) re-rounds it. ``storage_bytes`` reports
    the true low-precision footprint for capacity studies.
    """

    def __init__(self, config: EmbeddingTableConfig,
                 rng: Optional[np.random.Generator] = None,
                 weight: Optional[np.ndarray] = None) -> None:
        if config.precision not in ("fp16", "bf16", "int8"):
            raise ValueError(
                f"QuantizedEmbeddingTable needs precision fp16/bf16/int8, "
                f"got {config.precision!r}")
        super().__init__(config, rng=rng, weight=weight)
        self.sync_storage()

    def _roundtrip(self, values: np.ndarray) -> np.ndarray:
        precision = self.config.precision
        if precision == "fp16":
            return lowp.fp16_roundtrip(values)
        if precision == "bf16":
            return lowp.bf16_roundtrip(values)
        codes, scale, offset = lowp.quantize_int8_rowwise(values)
        return lowp.dequantize_int8_rowwise(codes, scale, offset)

    def sync_storage(self) -> None:
        """Round the FP32 view through the storage precision (write-back).

        Writes in place: when the table's ``weight`` is a view into an
        :class:`repro.embedding.EmbeddingArena` (trainer shard packing),
        rebinding would silently detach it from the arena storage."""
        self.weight[...] = self._roundtrip(self.weight).astype(np.float32)

    def storage_bytes(self) -> int:
        """True low-precision footprint, incl. int8 per-row scale/offset."""
        base = self.config.memory_bytes()
        if self.config.precision == "int8":
            # two float32 (scale, offset) per row
            base += self.config.num_embeddings * 8
        return base

    def quantization_error(self) -> float:
        """Max |fp32_view - roundtrip(fp32_view)| — zero when synced."""
        return float(np.max(np.abs(self.weight - self._roundtrip(self.weight)))
                     ) if self.weight.size else 0.0

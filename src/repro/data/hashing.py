"""Feature hashing and model shrinking (paper Section 5.3.1).

Two production techniques:

* **feature hashing** — categorical values are hashed into a table's row
  range; used both for raw id ingestion and for the paper's shrunk-model
  methodology ("shrink the embedding table cardinality while hashing
  inputs to be within the reduced number of rows");
* **batch shrinking** — rewrite a :class:`MiniBatch` generated for full-
  cardinality tables so it addresses reduced tables, preserving the
  jagged structure and id *distribution shape* (ids collide, exactly as
  they do in production shrinking).

Hashing is multiply-shift (deterministic, vectorized); the same function
applied twice gives the same fold, so shrunk runs are reproducible.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..embedding.table import EmbeddingTableConfig
from .datagen import MiniBatch

__all__ = ["hash_indices", "shrink_table_configs", "shrink_batch"]

_MULT = np.uint64(0x9E3779B97F4A7C15)  # 64-bit golden-ratio multiplier


def hash_indices(indices: np.ndarray, num_buckets: int,
                 salt: int = 0) -> np.ndarray:
    """Multiply-shift hash of ids into ``[0, num_buckets)``.

    Deterministic, uniform for adversarial id sets, vectorized. ``salt``
    decorrelates tables that share raw id spaces.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    x = np.asarray(indices, dtype=np.uint64)
    with np.errstate(over="ignore"):
        mixed = (x + np.uint64(salt) + np.uint64(1)) * _MULT
        mixed ^= mixed >> np.uint64(31)
        mixed *= _MULT
    return (mixed % np.uint64(num_buckets)).astype(np.int64)


def shrink_table_configs(tables: Sequence[EmbeddingTableConfig],
                         max_rows: int) -> tuple:
    """Cap every table's cardinality at ``max_rows`` (Section 5.3.1)."""
    if max_rows <= 0:
        raise ValueError("max_rows must be positive")
    out = []
    for t in tables:
        out.append(EmbeddingTableConfig(
            name=t.name, num_embeddings=min(t.num_embeddings, max_rows),
            embedding_dim=t.embedding_dim, avg_pooling=t.avg_pooling,
            pooling_mode=t.pooling_mode, precision=t.precision))
    return tuple(out)


def shrink_batch(batch: MiniBatch,
                 shrunk_tables: Sequence[EmbeddingTableConfig]
                 ) -> MiniBatch:
    """Rehash a batch's sparse ids into the shrunk tables' row ranges.

    Offsets (the jagged structure) are preserved exactly; only id values
    fold. Dense features and labels pass through untouched.
    """
    by_name: Dict[str, EmbeddingTableConfig] = {
        t.name: t for t in shrunk_tables}
    missing = set(batch.sparse) - set(by_name)
    if missing:
        raise KeyError(f"shrunk_tables missing {sorted(missing)}")
    sparse = {}
    for salt, (name, (indices, offsets)) in enumerate(
            sorted(batch.sparse.items())):
        table = by_name[name]
        sparse[name] = (hash_indices(indices, table.num_embeddings,
                                     salt=salt), offsets.copy())
    return MiniBatch(dense=batch.dense.copy(), sparse=sparse,
                     labels=batch.labels.copy())

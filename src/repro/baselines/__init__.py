"""Baselines the paper compares against: the async parameter-server CPU
system (Section 2) and the previous-generation Zion hybrid nodes
(Section 3.1)."""

from .parameter_server import AsyncPSTrainer, ps_throughput_qps
from .zion import (ZionSetup, zion_iteration_time, zion_qps,
                   zion_vs_zionex_scaling)

__all__ = [
    "AsyncPSTrainer",
    "ps_throughput_qps",
    "ZionSetup",
    "zion_iteration_time",
    "zion_qps",
    "zion_vs_zionex_scaling",
]

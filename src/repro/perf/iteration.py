"""End-to-end training throughput model (Table 4, Figs. 11-13).

Combines the operator models (GEMM/MLP, embedding bandwidth), the comms
latency model and the Eq. 1 pipeline into per-iteration latency and QPS
for a full-scale :class:`repro.models.ModelSpec` on a modelled cluster.

The model is built from first principles with Table 2 platform constants;
it is *not* fitted to Table 4. Benchmarks compare its output against the
paper's reported numbers to validate shape (who wins, scaling efficiency,
which optimization helps how much).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

import numpy as np

from ..comms import ClusterTopology, QuantizedCommsConfig
from ..comms import perf_model as cpm
from ..core.pipeline import ComponentTimes, LatencyBreakdown, breakdown, \
    iteration_latency
from ..data.formats import host_transfer_time
from ..models.zoo import ModelSpec
from .devices import DeviceSpec, V100
from .embedding_bw import embedding_lookup_time, embedding_update_time

__all__ = ["TrainingSetup", "component_times", "iteration_time", "qps",
           "latency_breakdown", "weak_scaling_curve", "plan_imbalance"]


@dataclass(frozen=True)
class TrainingSetup:
    """Everything the throughput model needs for one configuration."""

    spec: ModelSpec
    topology: ClusterTopology
    global_batch: int = 65536
    device: DeviceSpec = V100
    embedding_precision: str = "fp32"
    comms: QuantizedCommsConfig = field(
        default_factory=QuantizedCommsConfig)
    # max/mean per-GPU embedding load; 1.0 is perfect balance. Feed the
    # measured value from a ShardingPlan via plan_imbalance().
    load_imbalance: float = 1.0
    mlp_precision: str = "fp32"
    # fraction of the model's total embedding width (sum of dims) that is
    # row-wise sharded: those tables communicate via ReduceScatter whose
    # per-GPU payload is the *global* batch times their width (Sec 4.2.2),
    # instead of the table-wise AlltoAll's local-batch payload.
    row_wise_dim_fraction: float = 0.0
    # effective embedding bandwidth relative to HBM; < 1 when tables live
    # behind UVM / the software cache in DRAM (Sections 4.1.3, 5.3.3)
    memory_hierarchy_bw_fraction: float = 1.0
    # fixed per-iteration host/framework overhead (op dispatch, python,
    # optimizer bookkeeping) — exposed, not overlappable
    framework_overhead: float = 2e-3

    def __post_init__(self) -> None:
        if self.global_batch % self.topology.world_size:
            raise ValueError(
                f"global batch {self.global_batch} not divisible by world "
                f"size {self.topology.world_size}")
        if self.load_imbalance < 1.0:
            raise ValueError("load_imbalance is max/mean, must be >= 1")
        if not 0.0 <= self.row_wise_dim_fraction <= 1.0:
            raise ValueError("row_wise_dim_fraction must be in [0, 1]")
        if not 0.0 < self.memory_hierarchy_bw_fraction <= 1.0:
            raise ValueError(
                "memory_hierarchy_bw_fraction must be in (0, 1]")

    @property
    def local_batch(self) -> int:
        return self.global_batch // self.topology.world_size


def plan_imbalance(loads) -> float:
    """max/mean of per-rank loads (from sharding.plan_cost_per_rank)."""
    loads = np.asarray(list(loads), dtype=np.float64)
    if loads.size == 0 or loads.mean() == 0:
        return 1.0
    return float(loads.max() / loads.mean())


def component_times(setup: TrainingSetup) -> ComponentTimes:
    """Per-iteration serialized component latencies for Eq. 1."""
    from .gemm import mlp_time

    spec = setup.spec
    topo = setup.topology
    w = topo.world_size
    b_loc = setup.local_batch
    b_glob = setup.global_batch

    # --- MLPs: bottom ~40% of the stack, top ~60% (interaction sits
    # between them; DLRM top MLPs are deeper/wider in practice)
    sizes = (spec.dense_dim,) + spec.mlp_layer_sizes
    cut = max(1, len(sizes) * 2 // 5)
    bottom_sizes, top_sizes = sizes[:cut + 1], sizes[cut:]
    bot_fwd = mlp_time(b_loc, bottom_sizes, setup.device,
                       setup.mlp_precision)
    top_fwd = mlp_time(b_loc, top_sizes, setup.device, setup.mlp_precision)
    bot_bwd = mlp_time(b_loc, bottom_sizes, setup.device,
                       setup.mlp_precision, backward=True)
    top_bwd = mlp_time(b_loc, top_sizes, setup.device, setup.mlp_precision,
                       backward=True)

    # --- embeddings: each GPU holds ~1/W of tables but sees the *global*
    # batch for them (model parallelism); imbalance scales the slowest GPU
    total_l = sum(t.avg_pooling for t in spec.tables)
    nnz_per_gpu = int(b_glob * total_l / w * setup.load_imbalance)
    avg_dim = max(int(spec.avg_embedding_dim), 1)
    hierarchy = setup.memory_hierarchy_bw_fraction
    lookup = embedding_lookup_time(nnz_per_gpu, avg_dim, setup.device,
                                   setup.embedding_precision) / hierarchy
    update = embedding_update_time(nnz_per_gpu, avg_dim, setup.device,
                                   setup.embedding_precision) / hierarchy
    # per-table kernel bookkeeping that fusion cannot remove entirely
    tables_per_gpu = max(1.0, len(spec.tables) / w)
    table_overhead = tables_per_gpu * setup.device.kernel_launch_overhead
    lookup += table_overhead
    update += table_overhead

    # --- pooled-embedding exchange. Table/column-wise tables use an
    # AlltoAll whose per-GPU payload scales with the *local* batch;
    # row-wise tables use a ReduceScatter (fwd) / AllGather (bwd) whose
    # per-GPU payload is their width times the *global* batch (Sec 4.2.2).
    sum_d = sum(t.embedding_dim for t in spec.tables)
    rw_d = sum_d * setup.row_wise_dim_fraction
    tw_d = sum_d - rw_d
    fwd_factor = setup.comms.volume_factor("forward_alltoall")
    bwd_factor = setup.comms.volume_factor("backward_alltoall")
    a2a_fwd = cpm.all_to_all_time(
        b_loc * tw_d * 4 * fwd_factor * setup.load_imbalance, topo)
    a2a_bwd = cpm.all_to_all_time(
        b_loc * tw_d * 4 * bwd_factor * setup.load_imbalance, topo)
    if rw_d > 0:
        a2a_fwd += cpm.reduce_scatter_time(b_glob * rw_d * 4 * fwd_factor,
                                           topo)
        a2a_bwd += cpm.all_gather_time(b_glob * rw_d * 4 * bwd_factor, topo)

    # --- index AlltoAll for batch i+1 (8-byte ids, never quantized)
    input_bytes = b_glob * total_l * 8 / w
    input_a2a = cpm.all_to_all_time(input_bytes, topo)

    # --- gradient AllReduce over the replicated MLPs
    mlp_bytes = spec.num_mlp_parameters * 4 * setup.comms.volume_factor(
        "allreduce")
    allreduce = cpm.all_reduce_time(mlp_bytes, topo)

    # --- interaction: memory-bound pairwise dots
    f = len(spec.tables) + 1
    inter_bytes = b_loc * (f * avg_dim * 4 * 2 + f * f * 4)
    inter_fwd = inter_bytes / setup.device.hbm_achievable_bw \
        + setup.device.kernel_launch_overhead

    # --- host-to-device copy of the local batch (pinned, combined format)
    h2d_bytes = b_loc * (total_l * 8 + spec.dense_dim * 4)
    h2d = host_transfer_time(4, h2d_bytes, pinned=True)

    return ComponentTimes(
        bottom_mlp_fwd=bot_fwd, embedding_lookup=lookup,
        alltoall_fwd=a2a_fwd, interaction_fwd=inter_fwd,
        top_mlp_fwd=top_fwd, alltoall_bwd=a2a_bwd,
        embedding_update=update, allreduce=allreduce,
        input_alltoall=input_a2a, h2d=h2d,
        bottom_mlp_bwd=bot_bwd, interaction_bwd=2 * inter_fwd,
        top_mlp_bwd=top_bwd)


def iteration_time(setup: TrainingSetup, engine: str = "eq1") -> float:
    """Per-iteration latency.

    ``engine="eq1"`` uses the paper's closed-form Eq. 1;
    ``engine="dag"`` runs the discrete-event schedule of
    :mod:`repro.core.schedule` in steady state (inter-batch pipelining
    included). The two agree closely; the DAG engine additionally models
    stream contention and cross-iteration overlap explicitly.
    """
    t = component_times(setup)
    if engine == "eq1":
        core = iteration_latency(t)
    elif engine == "dag":
        from ..core.schedule import steady_state_iteration_time
        core = steady_state_iteration_time(t)
    else:
        raise ValueError(f"unknown engine {engine!r}; expected eq1/dag")
    return core + setup.framework_overhead


def latency_breakdown(setup: TrainingSetup) -> LatencyBreakdown:
    return breakdown(component_times(setup))


def qps(setup: TrainingSetup) -> float:
    """Training throughput in queries (samples) per second."""
    return setup.global_batch / iteration_time(setup)


def weak_scaling_curve(setup: TrainingSetup,
                       node_counts: List[int]) -> Dict[int, float]:
    """Fig. 11: fixed per-GPU batch, growing cluster; returns QPS per
    node count. Relative efficiency = qps[n] / (n * qps[1])."""
    per_gpu_batch = setup.local_batch
    out = {}
    for n in node_counts:
        topo = replace(setup.topology, num_nodes=n)
        scaled = replace(setup, topology=topo,
                         global_batch=per_gpu_batch * topo.world_size)
        out[n] = qps(scaled)
    return out

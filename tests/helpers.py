"""Shared test utilities: numerical gradient checking and tolerances."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(f: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar function ``f`` at ``x``.

    Uses float64 internally; callers should compare with rtol around 1e-2
    because the layers themselves compute in float32.
    """
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x.astype(np.float32))
        x[idx] = orig - eps
        f_minus = f(x.astype(np.float32))
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def assert_close(actual: np.ndarray, expected: np.ndarray,
                 rtol: float = 1e-2, atol: float = 1e-4) -> None:
    np.testing.assert_allclose(actual, expected, rtol=rtol, atol=atol)

"""Scheme-assignment auto-tuning for the sharding planner.

Section 4.2.5: "practitioners can mix-and-match the above primitives to
determine the best strategy to shard a group of embedding tables". The
heuristic planner picks a scheme per table from local rules; this module
closes the loop by *searching* scheme assignments against the modeled
per-iteration cost (the maximum rank load, i.e. the straggler), which is
what actually bounds synchronous training.

The search is greedy coordinate descent: start from the heuristic plan,
then repeatedly try flipping one table's scheme to each legal alternative
and keep the flip that most reduces the straggler cost, until no flip
helps. Polynomial, deterministic, and in practice a handful of sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..embedding.table import EmbeddingTableConfig
from .cost_model import CostModelParams
from .planner import EmbeddingShardingPlanner, PlannerConfig, \
    plan_cost_per_rank
from .schemes import ShardingPlan, ShardingScheme

__all__ = ["AutotuneResult", "legal_schemes", "autotune_schemes"]


@dataclass
class AutotuneResult:
    """Outcome of a scheme-assignment search."""

    plan: ShardingPlan
    schemes: Dict[str, ShardingScheme]
    initial_cost: float
    final_cost: float
    flips: List[Tuple[str, ShardingScheme, ShardingScheme]] = field(
        default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative straggler-cost reduction achieved by the search."""
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def legal_schemes(table: EmbeddingTableConfig,
                  config: PlannerConfig) -> List[ShardingScheme]:
    """Schemes a table may use under the planner's memory constraints."""
    table_bytes = table.num_parameters * config.bytes_per_element
    fits_device = table_bytes <= config.device_memory_bytes
    options: List[ShardingScheme] = []
    if fits_device:
        options.append(ShardingScheme.TABLE_WISE)
        if config.allow_column_wise and table.embedding_dim >= 8:
            options.append(ShardingScheme.COLUMN_WISE)
        if config.allow_data_parallel and \
                table.num_embeddings <= config.dp_threshold_rows * 10:
            options.append(ShardingScheme.DATA_PARALLEL)
    options.append(ShardingScheme.ROW_WISE)
    return options


def _straggler_cost(plan: ShardingPlan, params: CostModelParams) -> float:
    return max(plan_cost_per_rank(plan, params))


def autotune_schemes(tables: Sequence[EmbeddingTableConfig],
                     planner_config: PlannerConfig,
                     cost_params: Optional[CostModelParams] = None,
                     max_sweeps: int = 3) -> AutotuneResult:
    """Greedy coordinate-descent over per-table scheme assignments.

    Each sweep visits every table (heaviest first), evaluates each legal
    alternative scheme by replanning and measuring the straggler cost,
    and keeps the best. Stops when a full sweep produces no improvement
    or after ``max_sweeps``.
    """
    if max_sweeps <= 0:
        raise ValueError("max_sweeps must be positive")
    planner = EmbeddingShardingPlanner(planner_config,
                                       cost_params=cost_params)
    params = planner.cost_params
    schemes: Dict[str, ShardingScheme] = {
        t.name: planner.choose_scheme(t) for t in tables}
    plan = planner.plan(tables, schemes=dict(schemes))
    initial = _straggler_cost(plan, params)
    best_cost = initial
    flips: List[Tuple[str, ShardingScheme, ShardingScheme]] = []

    order = sorted(tables, key=lambda t: t.num_parameters, reverse=True)
    for _ in range(max_sweeps):
        improved = False
        for table in order:
            current = schemes[table.name]
            for candidate in legal_schemes(table, planner_config):
                if candidate == current:
                    continue
                trial = dict(schemes)
                trial[table.name] = candidate
                try:
                    trial_plan = planner.plan(tables, schemes=trial)
                except ValueError:
                    continue
                cost = _straggler_cost(trial_plan, params)
                if cost < best_cost * (1 - 1e-9):
                    best_cost = cost
                    schemes = trial
                    plan = trial_plan
                    flips.append((table.name, current, candidate))
                    current = candidate
                    improved = True
        if not improved:
            break
    return AutotuneResult(plan=plan, schemes=schemes, initial_cost=initial,
                          final_cost=best_cost, flips=flips)

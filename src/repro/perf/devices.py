"""Device specifications and achievable-efficiency curves (Appendix A).

Peak numbers come from vendor datasheets; the *achievable* numbers are the
paper's measured calibration points:

* HBM: 850 GB/s achieved on V100 (900 peak), 1300 GB/s on A100 (1555 peak);
* GEMM: up to 78.6% of peak on V100 FP32 and 70.5% on A100 for the MLP
  sizes of interest (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DeviceSpec", "V100", "A100", "CPU_SKYLAKE", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator (or CPU socket) as the perf model sees it.

    ``peak_flops`` maps precision name to peak FLOP/s; ``max_efficiency``
    is the measured ceiling of achievable/peak for large GEMMs;
    ``gemm_half_flops`` is the per-GEMM FLOP count at which efficiency
    reaches half its ceiling (captures small-problem launch/tiling
    overheads that Figs. 14-17 show at small batch sizes).
    """

    name: str
    peak_flops: Dict[str, float]
    max_efficiency: Dict[str, float]
    hbm_peak_bw: float
    hbm_achievable_bw: float
    hbm_capacity: float
    gemm_half_flops: float = 5e8
    kernel_launch_overhead: float = 5e-6

    def achievable_flops(self, precision: str, flops_per_gemm: float) -> float:
        """Effective FLOP/s for a GEMM of the given size."""
        if precision not in self.peak_flops:
            raise ValueError(
                f"{self.name} does not support precision {precision!r}; "
                f"supported: {sorted(self.peak_flops)}")
        peak = self.peak_flops[precision]
        ceiling = self.max_efficiency[precision]
        saturation = flops_per_gemm / (flops_per_gemm + self.gemm_half_flops)
        return peak * ceiling * saturation

    @property
    def memory_efficiency(self) -> float:
        return self.hbm_achievable_bw / self.hbm_peak_bw


V100 = DeviceSpec(
    name="V100",
    peak_flops={"fp32": 15.7e12, "fp16": 125e12},
    max_efficiency={"fp32": 0.786, "fp16": 0.50},
    hbm_peak_bw=900e9,
    hbm_achievable_bw=850e9,
    hbm_capacity=32e9,
)

A100 = DeviceSpec(
    name="A100",
    peak_flops={"fp32": 19.5e12, "tf32": 156e12, "fp16": 312e12,
                "bf16": 312e12},
    max_efficiency={"fp32": 0.90, "tf32": 0.705, "fp16": 0.55, "bf16": 0.55},
    hbm_peak_bw=1555e9,
    hbm_achievable_bw=1300e9,
    hbm_capacity=40e9,
)

# one dual-socket trainer host of the previous-generation CPU fleet
CPU_SKYLAKE = DeviceSpec(
    name="CPU-Skylake",
    peak_flops={"fp32": 3.2e12},
    max_efficiency={"fp32": 0.55},
    hbm_peak_bw=256e9,        # DDR4 6-channel x2 sockets
    hbm_achievable_bw=180e9,
    hbm_capacity=256e9,
    gemm_half_flops=5e7,
    kernel_launch_overhead=1e-6,
)

DEVICES: Dict[str, DeviceSpec] = {d.name: d for d in (V100, A100,
                                                      CPU_SKYLAKE)}

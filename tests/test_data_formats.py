"""Tests for sparse input formats and redistribution kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (CombinedFormat, SeparateFormat, bucketize_sparse,
                        host_transfer_time, permute_jagged, replicate_sparse)
from repro.embedding import lengths_to_offsets


def make_separate(num_tables=3, batch=4, seed=0):
    rng = np.random.default_rng(seed)
    tables = {}
    for i in range(num_tables):
        lengths = rng.integers(0, 5, size=batch).astype(np.int64)
        indices = rng.integers(0, 100, size=int(lengths.sum())).astype(
            np.int64)
        tables[f"t{i}"] = (indices, lengths_to_offsets(lengths))
    return SeparateFormat(tables=tables)


class TestFormats:
    def test_tensor_counts(self):
        """The Section 4.4 headline: 2T tensors vs 2, regardless of T."""
        sep = make_separate(num_tables=500)
        assert sep.num_tensors == 1000
        comb = sep.to_combined([f"t{i}" for i in range(500)])
        assert comb.num_tensors == 2

    def test_round_trip(self):
        sep = make_separate()
        comb = sep.to_combined(["t0", "t1", "t2"])
        back = comb.to_separate()
        for name in sep.tables:
            np.testing.assert_array_equal(back.tables[name][0],
                                          sep.tables[name][0])
            np.testing.assert_array_equal(back.tables[name][1],
                                          sep.tables[name][1])

    def test_combined_layout_table_major(self):
        sep = SeparateFormat(tables={
            "a": (np.array([1, 2], dtype=np.int64),
                  np.array([0, 1, 2], dtype=np.int64)),
            "b": (np.array([7], dtype=np.int64),
                  np.array([0, 0, 1], dtype=np.int64)),
        })
        comb = sep.to_combined(["a", "b"])
        np.testing.assert_array_equal(comb.lengths, [1, 1, 0, 1])
        np.testing.assert_array_equal(comb.indices, [1, 2, 7])
        np.testing.assert_array_equal(comb.table_lengths("b"), [0, 1])

    def test_mismatched_batch_raises(self):
        sep = SeparateFormat(tables={
            "a": (np.zeros(0, dtype=np.int64),
                  np.array([0, 0], dtype=np.int64)),       # B=1
            "b": (np.zeros(0, dtype=np.int64),
                  np.array([0, 0, 0], dtype=np.int64)),    # B=2
        })
        with pytest.raises(ValueError):
            sep.to_combined(["a", "b"])

    def test_wrong_table_order_raises(self):
        sep = make_separate()
        with pytest.raises(ValueError):
            sep.to_combined(["t0", "t1"])  # missing t2

    def test_combined_validation(self):
        with pytest.raises(ValueError):
            CombinedFormat(table_names=["a"], batch_size=2,
                           lengths=np.array([1], dtype=np.int64),
                           indices=np.array([0], dtype=np.int64))
        with pytest.raises(ValueError):
            CombinedFormat(table_names=["a"], batch_size=1,
                           lengths=np.array([2], dtype=np.int64),
                           indices=np.array([0], dtype=np.int64))

    def test_transfer_time_model(self):
        """Fewer tensors and pinned memory both cut H2D time."""
        many = host_transfer_time(1000, 1e6, pinned=True)
        few = host_transfer_time(2, 1e6, pinned=True)
        assert few < many
        pageable = host_transfer_time(2, 1e6, pinned=False)
        assert few < pageable

    def test_transfer_time_validation(self):
        with pytest.raises(ValueError):
            host_transfer_time(-1, 100)


class TestPermuteJagged:
    def test_wtb_to_twb(self):
        """The Section 4.4 permute: (W,T,B) -> (T,W,B)."""
        w, t, b = 2, 2, 1
        # segments in (W, T, B) order with distinct contents
        lengths = np.array([1, 2, 3, 4], dtype=np.int64)
        values = np.array([0, 10, 11, 20, 21, 22, 30, 31, 32, 33],
                          dtype=np.int64)
        new_lengths, new_values = permute_jagged(lengths, values, (w, t, b),
                                                 (1, 0, 2))
        # new order: (t0,w0), (t0,w1), (t1,w0), (t1,w1)
        np.testing.assert_array_equal(new_lengths, [1, 3, 2, 4])
        np.testing.assert_array_equal(
            new_values, [0, 20, 21, 22, 10, 11, 30, 31, 32, 33])

    def test_identity_perm(self):
        lengths = np.array([2, 1], dtype=np.int64)
        values = np.array([5, 6, 7])
        nl, nv = permute_jagged(lengths, values, (2,), (0,))
        np.testing.assert_array_equal(nl, lengths)
        np.testing.assert_array_equal(nv, values)

    def test_double_permute_is_identity(self):
        rng = np.random.default_rng(0)
        shape = (3, 4, 2)
        lengths = rng.integers(0, 4, size=24).astype(np.int64)
        values = rng.integers(0, 100, size=int(lengths.sum()))
        l1, v1 = permute_jagged(lengths, values, shape, (1, 0, 2))
        l2, v2 = permute_jagged(l1, v1, (4, 3, 2), (1, 0, 2))
        np.testing.assert_array_equal(l2, lengths)
        np.testing.assert_array_equal(v2, values)

    def test_preserves_multiset(self):
        rng = np.random.default_rng(1)
        lengths = rng.integers(0, 5, size=12).astype(np.int64)
        values = rng.integers(0, 50, size=int(lengths.sum()))
        _, nv = permute_jagged(lengths, values, (3, 2, 2), (2, 0, 1))
        np.testing.assert_array_equal(np.sort(nv), np.sort(values))

    def test_validation(self):
        with pytest.raises(ValueError):
            permute_jagged(np.array([1]), np.array([0]), (2,), (0,))
        with pytest.raises(ValueError):
            permute_jagged(np.array([2]), np.array([0]), (1,), (0,))
        with pytest.raises(ValueError):
            permute_jagged(np.array([1]), np.array([0]), (1,), (1,))

    def test_empty_values(self):
        nl, nv = permute_jagged(np.zeros(4, dtype=np.int64),
                                np.zeros(0, dtype=np.int64), (2, 2), (1, 0))
        assert len(nv) == 0


class TestBucketize:
    def test_basic_split(self):
        indices = np.array([0, 5, 9, 2, 7], dtype=np.int64)
        lengths = np.array([3, 2], dtype=np.int64)
        out = bucketize_sparse(indices, lengths, [0, 5, 10])
        lo_ids, lo_lengths = out[0]
        hi_ids, hi_lengths = out[1]
        np.testing.assert_array_equal(lo_ids, [0, 2])
        np.testing.assert_array_equal(lo_lengths, [1, 1])
        np.testing.assert_array_equal(hi_ids, [0, 4, 2])  # rebased by -5
        np.testing.assert_array_equal(hi_lengths, [2, 1])

    def test_multiset_preserved(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(0, 6, size=10).astype(np.int64)
        indices = rng.integers(0, 100, size=int(lengths.sum())).astype(
            np.int64)
        boundaries = [0, 30, 60, 100]
        out = bucketize_sparse(indices, lengths, boundaries)
        rebuilt = np.concatenate(
            [ids + boundaries[k] for k, (ids, _) in enumerate(out)])
        np.testing.assert_array_equal(np.sort(rebuilt), np.sort(indices))
        total_lengths = sum(l for _, l in out)
        np.testing.assert_array_equal(total_lengths, lengths)

    def test_boundary_ownership(self):
        """Row exactly at a boundary belongs to the upper bucket."""
        out = bucketize_sparse(np.array([5], dtype=np.int64),
                               np.array([1], dtype=np.int64), [0, 5, 10])
        assert len(out[0][0]) == 0
        np.testing.assert_array_equal(out[1][0], [0])

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            bucketize_sparse(np.array([10], dtype=np.int64),
                             np.array([1], dtype=np.int64), [0, 5, 10])

    def test_validation(self):
        with pytest.raises(ValueError):
            bucketize_sparse(np.array([0]), np.array([1]), [1, 5])
        with pytest.raises(ValueError):
            bucketize_sparse(np.array([0]), np.array([1]), [0, 5, 5])
        with pytest.raises(ValueError):
            bucketize_sparse(np.array([0, 1]), np.array([1]), [0, 5])

    @given(st.lists(st.integers(min_value=0, max_value=99), min_size=0,
                    max_size=50))
    @settings(max_examples=40)
    def test_multiset_property(self, ids_list):
        indices = np.array(ids_list, dtype=np.int64)
        lengths = np.array([len(ids_list)], dtype=np.int64)
        boundaries = [0, 25, 50, 75, 100]
        out = bucketize_sparse(indices, lengths, boundaries)
        rebuilt = np.concatenate(
            [ids + boundaries[k] for k, (ids, _) in enumerate(out)]) \
            if ids_list else np.zeros(0, dtype=np.int64)
        np.testing.assert_array_equal(np.sort(rebuilt), np.sort(indices))


class TestReplicate:
    def test_copies(self):
        indices = np.array([1, 2, 3], dtype=np.int64)
        lengths = np.array([3], dtype=np.int64)
        out = replicate_sparse(indices, lengths, 3)
        assert len(out) == 3
        for ids, lens in out:
            np.testing.assert_array_equal(ids, indices)
            np.testing.assert_array_equal(lens, lengths)

    def test_copies_independent(self):
        out = replicate_sparse(np.array([1], dtype=np.int64),
                               np.array([1], dtype=np.int64), 2)
        out[0][0][0] = 99
        assert out[1][0][0] == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            replicate_sparse(np.array([1]), np.array([1]), 0)

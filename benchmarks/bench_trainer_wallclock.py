"""Wall-clock throughput of the *functional* simulated trainer itself.

Not a paper figure — this benchmarks the reproduction as software: how
many samples/second the lock-step simulator trains, per sharding scheme,
so regressions in the trainer's hot paths (fused lookup, exact merge,
collectives) show up in `pytest-benchmark` history.
"""

import numpy as np
import pytest

from repro import nn
from repro.comms import ClusterTopology
from repro.core import NeoTrainer
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig, SparseAdaGrad
from repro.models import DLRMConfig
from repro.sharding import ShardingPlan, ShardingScheme, shard_table

WORLD = 4
BATCH = 128


def build(scheme):
    tables = tuple(EmbeddingTableConfig(f"t{i}", 2048, 16, avg_pooling=5.0)
                   for i in range(8))
    config = DLRMConfig(dense_dim=8, bottom_mlp=(32, 16), tables=tables,
                        top_mlp=(32,))
    plan = ShardingPlan(world_size=WORLD)
    for i, t in enumerate(tables):
        ranks = [i % WORLD] if scheme == ShardingScheme.TABLE_WISE \
            else list(range(WORLD))
        plan.tables[t.name] = shard_table(t, scheme, ranks)
    trainer = NeoTrainer(
        config, plan, ClusterTopology(num_nodes=1, gpus_per_node=WORLD),
        dense_optimizer=lambda p: nn.Adam(p, lr=0.01),
        sparse_optimizer=SparseAdaGrad(lr=0.1), seed=0)
    ds = SyntheticCTRDataset(tables, dense_dim=8, seed=0)
    shards = [ds.batch(BATCH, i).split(WORLD) for i in range(4)]
    return trainer, shards


@pytest.mark.parametrize("scheme", [ShardingScheme.TABLE_WISE,
                                    ShardingScheme.ROW_WISE,
                                    ShardingScheme.COLUMN_WISE,
                                    ShardingScheme.DATA_PARALLEL])
def test_trainer_step_wallclock(benchmark, scheme):
    trainer, shards = build(scheme)
    state = {"i": 0}

    def step():
        loss = trainer.train_step(shards[state["i"] % len(shards)])
        state["i"] += 1
        return loss

    loss = benchmark(step)
    assert np.isfinite(loss)
    benchmark.extra_info["samples_per_second"] = \
        BATCH / benchmark.stats["mean"] if benchmark.stats else 0

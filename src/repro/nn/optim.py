"""Dense optimizers for the data-parallel (MLP) half of DLRM training.

These are the "dense" counterparts of the exact sparse optimizers in
:mod:`repro.embedding.optim`. The sparse/dense pairs share update math so
that the "exact sparse optimizer == dense reference" invariant (DESIGN.md
section 4, item 4) can be asserted in tests.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .parameter import Parameter

__all__ = ["Optimizer", "SGD", "AdaGrad", "Adam", "LAMB"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = lr
        self._state: Dict[int, Dict[str, np.ndarray]] = {}

    def state_for(self, param: Parameter) -> Dict[str, np.ndarray]:
        return self._state.setdefault(id(param), {})

    def step(self) -> None:
        for p in self.params:
            if p.grad is not None:
                self._update(p)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _update(self, p: Parameter) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.1,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(self, p: Parameter) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        if self.momentum:
            state = self.state_for(p)
            buf = state.get("momentum")
            if buf is None:
                buf = grad.astype(np.float32).copy()
            else:
                buf = self.momentum * buf + grad
            state["momentum"] = buf
            grad = buf
        p.data -= (self.lr * grad).astype(np.float32)


class AdaGrad(Optimizer):
    """AdaGrad with per-element accumulated squared gradients [Duchi 2011]."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01,
                 eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.eps = eps

    def _update(self, p: Parameter) -> None:
        state = self.state_for(p)
        acc = state.get("sum_sq")
        if acc is None:
            acc = np.zeros_like(p.data)
        acc = acc + p.grad * p.grad
        state["sum_sq"] = acc
        p.data -= (self.lr * p.grad / (np.sqrt(acc) + self.eps)).astype(np.float32)


class Adam(Optimizer):
    """Adam [Kingma & Ba 2014] with bias correction."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps

    def _update(self, p: Parameter) -> None:
        state = self.state_for(p)
        m = state.get("m", np.zeros_like(p.data))
        v = state.get("v", np.zeros_like(p.data))
        t = int(state.get("t", np.zeros(1))[0]) + 1
        m = self.beta1 * m + (1 - self.beta1) * p.grad
        v = self.beta2 * v + (1 - self.beta2) * (p.grad * p.grad)
        state["m"], state["v"] = m, v
        state["t"] = np.array([t])
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        p.data -= (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(np.float32)


class LAMB(Optimizer):
    """Layer-wise adaptive moments (LAMB) [You et al. 2019].

    The paper cites LAMB as one of the advanced optimizers whose
    non-linearity makes naive duplicated sparse updates incorrect — which is
    why the exact (sorted/merged) sparse update path exists.

    Rank-stacked parameters (``Parameter.stacked``, leading axis =
    replicas) need per-rank trust ratios: the layer-wise norm is a norm
    over one replica's weight, not over the whole ``(R, ...)`` stack.
    The moments stay fully vectorized; only the two norms per rank are
    computed slice-wise so each replica's update is bitwise identical to
    the unstacked path.
    """

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-6,
                 weight_decay: float = 0.01) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, p: Parameter) -> None:
        state = self.state_for(p)
        m = state.get("m", np.zeros_like(p.data))
        v = state.get("v", np.zeros_like(p.data))
        t = int(state.get("t", np.zeros(1))[0]) + 1
        m = self.beta1 * m + (1 - self.beta1) * p.grad
        v = self.beta2 * v + (1 - self.beta2) * (p.grad * p.grad)
        state["m"], state["v"] = m, v
        state["t"] = np.array([t])
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay:
            update = update + self.weight_decay * p.data
        if getattr(p, "stacked", False):
            replicas = p.data.shape[0]
            # float32 scale, computed scalar-side in double exactly like
            # the unstacked `self.lr * trust * update` (scalar * float32
            # array multiplies in float32 after a single double product)
            scale = np.empty((replicas,) + (1,) * (p.data.ndim - 1),
                             dtype=np.float32)
            for r in range(replicas):
                w_norm = float(np.linalg.norm(p.data[r]))
                u_norm = float(np.linalg.norm(update[r]))
                trust = w_norm / u_norm \
                    if w_norm > 0 and u_norm > 0 else 1.0
                scale[r] = self.lr * trust
            p.data -= (scale * update).astype(np.float32)
            return
        w_norm = float(np.linalg.norm(p.data))
        u_norm = float(np.linalg.norm(update))
        trust = w_norm / u_norm if w_norm > 0 and u_norm > 0 else 1.0
        p.data -= (self.lr * trust * update).astype(np.float32)

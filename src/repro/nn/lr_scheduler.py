"""Learning-rate schedules for large-batch DLRM training.

Section 5.3.2 scales the global batch from 64K to 256K "with
appropriately tuned optimizer/hyper-parameters". The standard toolkit:

* **linear scaling rule** — LR proportional to batch size;
* **warmup** — ramp from a small LR to the target over the first steps
  (large-batch training diverges without it);
* **polynomial / step decay** — the usual CTR production schedules.

Schedulers wrap any :class:`repro.nn.Optimizer` (or sparse optimizer —
anything with an ``lr`` attribute) and mutate its ``lr`` per step.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["linear_scaled_lr", "LRScheduler", "WarmupLinearDecay",
           "StepDecay", "PolynomialDecay"]


def linear_scaled_lr(base_lr: float, batch_size: int,
                     base_batch_size: int) -> float:
    """The linear scaling rule: lr = base_lr * batch / base_batch."""
    if base_lr <= 0 or batch_size <= 0 or base_batch_size <= 0:
        raise ValueError("all arguments must be positive")
    return base_lr * batch_size / base_batch_size


class LRScheduler:
    """Base: owns the target LR and the step counter."""

    def __init__(self, optimizer, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.step_count = 0
        self.optimizer.lr = self.lr_at(0)

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; returns the LR now set on the optimizer."""
        self.step_count += 1
        lr = self.lr_at(self.step_count)
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class WarmupLinearDecay(LRScheduler):
    """Linear warmup from ``warmup_init`` to ``base_lr``, then linear
    decay to ``final_lr`` by ``total_steps``."""

    def __init__(self, optimizer, base_lr: float, warmup_steps: int,
                 total_steps: int, warmup_init: float = 0.0,
                 final_lr: float = 0.0) -> None:
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.warmup_init = warmup_init
        self.final_lr = final_lr
        super().__init__(optimizer, base_lr)

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            frac = step / max(self.warmup_steps, 1)
            return self.warmup_init + frac * (self.base_lr
                                              - self.warmup_init)
        frac = min(1.0, (step - self.warmup_steps)
                   / (self.total_steps - self.warmup_steps))
        return self.base_lr + frac * (self.final_lr - self.base_lr)


class StepDecay(LRScheduler):
    """Multiply LR by ``gamma`` at each milestone step."""

    def __init__(self, optimizer, base_lr: float,
                 milestones: Sequence[int], gamma: float = 0.1) -> None:
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        if sorted(milestones) != list(milestones):
            raise ValueError("milestones must be sorted ascending")
        self.milestones = list(milestones)
        self.gamma = gamma
        super().__init__(optimizer, base_lr)

    def lr_at(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * (self.gamma ** passed)


class PolynomialDecay(LRScheduler):
    """lr = base_lr * (1 - step/total)^power, floored at final_lr."""

    def __init__(self, optimizer, base_lr: float, total_steps: int,
                 power: float = 2.0, final_lr: float = 0.0) -> None:
        if total_steps <= 0 or power <= 0:
            raise ValueError("total_steps and power must be positive")
        self.total_steps = total_steps
        self.power = power
        self.final_lr = final_lr
        super().__init__(optimizer, base_lr)

    def lr_at(self, step: int) -> float:
        frac = min(1.0, step / self.total_steps)
        return max(self.final_lr,
                   self.base_lr * (1.0 - frac) ** self.power)

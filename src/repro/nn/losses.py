"""Loss heads with explicit gradients."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F

__all__ = ["BCEWithLogitsLoss"]


class BCEWithLogitsLoss:
    """Mean binary cross-entropy computed from raw logits.

    ``forward`` returns a scalar loss; ``backward`` returns the gradient of
    that scalar w.r.t. the logits (already divided by the batch size, so the
    rest of the backward pass needs no extra scaling).

    Rank-stacked mode: ``(R, B)`` logits/labels produce a ``(R,)`` array
    of per-rank losses (row ``r`` bitwise equal to the scalar path on
    rank ``r``'s slice) and a per-row-normalized gradient.
    """

    def __init__(self) -> None:
        self._logits: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray):
        if logits.shape != labels.shape:
            raise ValueError(
                f"logits shape {logits.shape} != labels shape {labels.shape}")
        self._logits = logits
        self._labels = labels.astype(np.float32)
        if logits.ndim == 2:
            return F.bce_with_logits_stacked(logits, labels)
        return F.bce_with_logits(logits, labels)

    def backward(self) -> np.ndarray:
        if self._logits is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        if self._logits.ndim == 2:
            return F.bce_with_logits_grad_stacked(self._logits, self._labels)
        return F.bce_with_logits_grad(self._logits, self._labels)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)

"""Tests for the Criteo-shaped workload adapter."""

import numpy as np
import pytest

from repro.data import (CRITEO_NUM_DENSE, CRITEO_NUM_SPARSE,
                        CriteoLikeDataset, criteo_dlrm_config,
                        criteo_table_configs, log_transform)


class TestLogTransform:
    def test_values(self):
        x = np.array([0.0, np.e - 1.0], dtype=np.float32)
        np.testing.assert_allclose(log_transform(x), [0.0, 1.0], rtol=1e-6)

    def test_negative_clamped(self):
        assert log_transform(np.array([-5.0]))[0] == 0.0


class TestTableConfigs:
    def test_26_tables(self):
        tables = criteo_table_configs()
        assert len(tables) == CRITEO_NUM_SPARSE == 26

    def test_full_cardinalities_skewed(self):
        tables = criteo_table_configs(max_rows=None)
        rows = [t.num_embeddings for t in tables]
        assert max(rows) > 10 ** 7
        assert min(rows) <= 10

    def test_max_rows_caps(self):
        tables = criteo_table_configs(max_rows=5000)
        assert all(t.num_embeddings <= 5000 for t in tables)
        # small tables keep their true cardinality
        assert any(t.num_embeddings < 5000 for t in tables)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            criteo_table_configs(embedding_dim=0)


class TestDLRMConfig:
    def test_shape(self):
        cfg = criteo_dlrm_config(max_rows=1000, embedding_dim=8)
        assert cfg.dense_dim == CRITEO_NUM_DENSE
        assert len(cfg.tables) == 26
        assert cfg.embedding_dim == 8


class TestCriteoLikeDataset:
    def test_batch_shape(self):
        ds = CriteoLikeDataset(max_rows=1000, embedding_dim=8)
        b = ds.batch(32)
        assert b.dense.shape == (32, 13)
        assert len(b.sparse) == 26

    def test_single_valued_categoricals(self):
        """Criteo semantics: exactly one id per feature per sample."""
        ds = CriteoLikeDataset(max_rows=1000)
        b = ds.batch(64)
        for name, (ids, offsets) in b.sparse.items():
            assert len(ids) == 64
            np.testing.assert_array_equal(np.diff(offsets), np.ones(64))

    def test_dense_nonnegative(self):
        ds = CriteoLikeDataset(max_rows=1000)
        b = ds.batch(128)
        assert np.all(b.dense >= 0)

    def test_ids_in_range(self):
        ds = CriteoLikeDataset(max_rows=500)
        b = ds.batch(256)
        for t in ds.tables:
            ids, _ = b.sparse[t.name]
            assert ids.max() < t.num_embeddings

    def test_deterministic(self):
        a = CriteoLikeDataset(max_rows=100, seed=3).batch(16, 2)
        b = CriteoLikeDataset(max_rows=100, seed=3).batch(16, 2)
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_trains_a_dlrm(self):
        """The public-workload path end to end."""
        from repro import nn
        from repro.embedding import SparseAdaGrad
        from repro.models import DLRM

        cfg = criteo_dlrm_config(max_rows=200, embedding_dim=8)
        ds = CriteoLikeDataset(max_rows=200, embedding_dim=8, noise=0.2,
                               seed=1)
        model = DLRM(cfg, seed=0)
        opt = nn.Adam(model.dense_parameters(), lr=0.01)
        sparse = SparseAdaGrad(lr=0.1)
        losses = [model.train_step(ds.batch(64, i), opt, sparse)
                  for i in range(40)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

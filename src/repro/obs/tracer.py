"""Span tracing for instrumented training runs.

The executable stack (trainer, process group, embedding, cache) is
annotated with nestable spans::

    with tracer.span("trainer.embedding_fwd", table="t0"):
        ...

Completed spans accumulate in a per-run :class:`Trace` that exports two
views:

* **Chrome ``trace_event`` JSON** (:meth:`Trace.to_chrome_trace`) —
  loadable in ``chrome://tracing`` or Perfetto, one complete-event
  (``"ph": "X"``) per span;
* **per-component aggregates** (:meth:`Trace.aggregate`) — inclusive and
  self time per span name, the measured counterpart of the analytical
  :func:`repro.core.pipeline.breakdown` (compared by
  :func:`repro.obs.report.compare_to_model`).

Two clocks are supported. ``clock="wall"`` timestamps spans with
``time.perf_counter``. ``clock="logical"`` increments an integer tick at
every span boundary instead — fully deterministic, so tests can assert
span trees exactly (:meth:`Trace.tree`).

Tracing is **off by default**: the :data:`NULL_TRACER` singleton satisfies
the same interface with a shared, stateless no-op span, so the
instrumented hot paths allocate nothing and record nothing when tracing
is disabled.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["SpanEvent", "SpanAggregate", "Trace", "Tracer", "NullTracer",
           "NULL_TRACER", "as_tracer"]


@dataclass
class SpanEvent:
    """One completed (or still-open) span.

    ``start``/``end`` are seconds (wall clock) or integer ticks (logical
    clock); ``end < 0`` marks a span still open. ``parent`` is the index
    of the enclosing span in :attr:`Trace.events` (-1 for roots).
    """

    name: str
    cat: str = "default"
    start: float = 0.0
    end: float = -1.0
    pid: int = 0
    tid: int = 0
    depth: int = 0
    parent: int = -1
    index: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def closed(self) -> bool:
        return self.end >= self.start


@dataclass
class SpanAggregate:
    """Aggregate over all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0   # inclusive time
    self_time: float = 0.0  # exclusive time (children subtracted)

    def merge(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.self_time += duration


class Trace:
    """An ordered record of spans from one instrumented run."""

    def __init__(self, clock: str = "wall",
                 process_name: str = "repro") -> None:
        if clock not in ("wall", "logical"):
            raise ValueError(
                f"unknown clock {clock!r}; expected 'wall' or 'logical'")
        self.clock = clock
        self.process_name = process_name
        self.events: List[SpanEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def add(self, event: SpanEvent) -> SpanEvent:
        event.index = len(self.events)
        self.events.append(event)
        return event

    # -- queries --------------------------------------------------------
    def closed_events(self) -> List[SpanEvent]:
        return [e for e in self.events if e.closed]

    def find(self, name: str) -> List[SpanEvent]:
        """All closed spans with the given name, in start order."""
        return [e for e in self.events if e.name == name and e.closed]

    def roots(self) -> List[SpanEvent]:
        return [e for e in self.events if e.parent < 0]

    def tree(self) -> Tuple:
        """The span forest as nested ``(name, (children...))`` tuples.

        Deterministic under the logical clock — the canonical object for
        exact structural assertions in tests.
        """
        children: Dict[int, List[SpanEvent]] = {}
        for e in self.events:
            children.setdefault(e.parent, []).append(e)

        def build(e: SpanEvent) -> Tuple:
            kids = children.get(e.index, [])
            return (e.name, tuple(build(k) for k in kids))

        return tuple(build(e) for e in children.get(-1, []))

    def aggregate(self) -> Dict[str, SpanAggregate]:
        """Inclusive/self time per span name over closed spans."""
        out: Dict[str, SpanAggregate] = {}
        child_time: Dict[int, float] = {}
        for e in self.events:
            if e.closed and e.parent >= 0:
                child_time[e.parent] = child_time.get(e.parent, 0.0) \
                    + e.duration
        for e in self.events:
            if not e.closed:
                continue
            agg = out.setdefault(e.name, SpanAggregate(e.name))
            agg.merge(e.duration)
            agg.self_time -= child_time.get(e.index, 0.0)
        return out

    def component_seconds(self, name: str) -> float:
        """Total inclusive time of all spans with the given name."""
        return sum(e.duration for e in self.find(name))

    @property
    def total_duration(self) -> float:
        """Sum of root-span durations (the run's traced extent)."""
        return sum(e.duration for e in self.roots() if e.closed)

    # -- export ---------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` representation (Perfetto-loadable).

        Timestamps are microseconds relative to the first span. Every
        event, including the process-name metadata record, carries the
        ``ph``/``ts``/``pid``/``tid`` fields the format requires.
        """
        events: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "ts": 0, "pid": 0, "tid": 0,
            "args": {"name": self.process_name},
        }]
        closed = self.closed_events()
        if self.clock == "wall":
            t0 = min((e.start for e in closed), default=0.0)
            scale = 1e6  # seconds -> microseconds
        else:
            t0 = 0.0
            scale = 1.0  # one tick == one microsecond, already integral
        for e in closed:
            events.append({
                "name": e.name, "cat": e.cat, "ph": "X",
                "ts": (e.start - t0) * scale, "dur": e.duration * scale,
                "pid": e.pid, "tid": e.tid,
                "args": dict(e.args),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"clock": self.clock, "spans": len(closed)}}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome_trace(), indent=indent)

    def save(self, path: str, indent: Optional[int] = None) -> str:
        with open(path, "w") as f:
            f.write(self.to_json(indent=indent))
        return path


class _Span:
    """Context manager recording one span into a tracer's trace."""

    __slots__ = ("_tracer", "_event")

    def __init__(self, tracer: "Tracer", event: SpanEvent) -> None:
        self._tracer = tracer
        self._event = event

    def set(self, **args: Any) -> "_Span":
        """Attach/overwrite span attributes (e.g. byte counts)."""
        self._event.args.update(args)
        return self

    def __enter__(self) -> "_Span":
        self._tracer._enter(self._event)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # exception-safe: the span closes and the stack pops no matter
        # what; failures are marked rather than corrupting nesting
        if exc_type is not None:
            self._event.args["error"] = exc_type.__name__
        self._tracer._exit(self._event)
        return False


class Tracer:
    """Records nestable spans into a :class:`Trace`.

    Single-stack by design: the simulated cluster runs every rank
    lock-step in one thread, so span nesting mirrors call nesting.
    """

    enabled = True

    def __init__(self, clock: str = "wall",
                 process_name: str = "repro") -> None:
        self.trace = Trace(clock=clock, process_name=process_name)
        self._stack: List[SpanEvent] = []
        self._ticks = 0
        self._logical = clock == "logical"

    def _now(self) -> float:
        if self._logical:
            self._ticks += 1
            return float(self._ticks)
        return time.perf_counter()

    def span(self, name: str, cat: str = "default", tid: int = 0,
             **args: Any) -> _Span:
        """A context manager for one named span; ``args`` become the
        Chrome-trace ``args`` payload (e.g. ``table="t0"``, byte counts)."""
        return _Span(self, SpanEvent(name=name, cat=cat, tid=tid, args=args))

    def _enter(self, event: SpanEvent) -> None:
        if self._stack:
            event.parent = self._stack[-1].index
            event.depth = self._stack[-1].depth + 1
        event.start = self._now()
        self.trace.add(event)
        self._stack.append(event)

    def _exit(self, event: SpanEvent) -> None:
        event.end = self._now()
        # pop to (and including) this event even if inner spans leaked
        while self._stack:
            if self._stack.pop() is event:
                break

    @property
    def depth(self) -> int:
        return len(self._stack)


class _NullSpan:
    """Shared no-op span: no state, no allocation, exception-transparent."""

    __slots__ = ()

    def set(self, **args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` returns one shared no-op span.

    This is the default wired through the training stack; the inner loop
    pays one method call per span site and allocates nothing.
    """

    enabled = False

    def span(self, name: str, cat: str = "default", tid: int = 0,
             **args: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def trace(self) -> Trace:
        # an empty trace, so exporters work uniformly on a disabled tracer
        return Trace()

    @property
    def depth(self) -> int:
        return 0


NULL_TRACER = NullTracer()


def as_tracer(trace: Union[None, bool, str, Tracer, NullTracer]
              ) -> Union[Tracer, NullTracer]:
    """Normalize a user-facing ``trace=`` argument to a tracer.

    ``None``/``False`` -> the shared no-op tracer; ``True`` -> a fresh
    wall-clock tracer; a clock name (``"wall"``/``"logical"``) -> a fresh
    tracer on that clock; an existing tracer passes through.
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    if isinstance(trace, str):
        return Tracer(clock=trace)
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    raise TypeError(f"cannot interpret {trace!r} as a tracer")

"""Tests for weight initializers."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestXavierUniform:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((64, 32), rng)
        limit = math.sqrt(6.0 / (32 + 64))
        assert np.all(np.abs(w) <= limit)

    def test_dtype(self):
        w = init.xavier_uniform((4, 4), np.random.default_rng(0))
        assert w.dtype == np.float32

    def test_deterministic(self):
        a = init.xavier_uniform((8, 8), np.random.default_rng(7))
        b = init.xavier_uniform((8, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_variance_near_glorot(self):
        rng = np.random.default_rng(1)
        w = init.xavier_uniform((512, 512), rng)
        expected_var = 2.0 / (512 + 512)
        assert w.var() == pytest.approx(expected_var, rel=0.1)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((4,), np.random.default_rng(0))


class TestXavierNormal:
    def test_std(self):
        rng = np.random.default_rng(2)
        w = init.xavier_normal((512, 512), rng)
        expected_std = math.sqrt(2.0 / 1024)
        assert w.std() == pytest.approx(expected_std, rel=0.1)


class TestKaimingUniform:
    def test_bounds_use_fan_in(self):
        rng = np.random.default_rng(3)
        w = init.kaiming_uniform((64, 16), rng)  # fan_in = 16
        limit = math.sqrt(6.0 / 16)
        assert np.all(np.abs(w) <= limit)
        assert np.max(np.abs(w)) > 0.8 * limit  # actually fills the range


class TestSimple:
    def test_normal_std(self):
        rng = np.random.default_rng(4)
        w = init.normal((1000, 4), rng, std=0.05)
        assert w.std() == pytest.approx(0.05, rel=0.1)

    def test_uniform_range(self):
        rng = np.random.default_rng(5)
        w = init.uniform((100, 4), rng, low=-0.2, high=0.3)
        assert w.min() >= -0.2 and w.max() <= 0.3

    def test_zeros(self):
        w = init.zeros((3, 3))
        np.testing.assert_array_equal(w, np.zeros((3, 3)))
        assert w.dtype == np.float32

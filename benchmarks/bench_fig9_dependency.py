"""Fig. 9 / Eq. 1: the DLRM iteration dependency graph.

Two validations:

* Eq. 1's composition always lies at or below the fully serialized sum
  (overlap can only help), over a sweep of random component latencies;
* the data dependencies Fig. 9 draws hold in the functional model — the
  bottom-MLP path and the embedding path are independent until the
  interaction, so perturbing one leaves the other's activations bitwise
  unchanged.
"""

import numpy as np
import pytest

from repro.core import ComponentTimes, iteration_latency
from repro.data import SyntheticCTRDataset
from repro.embedding import EmbeddingTableConfig
from repro.models import DLRM, DLRMConfig


def test_eq1_brackets(benchmark, report):
    rng = np.random.default_rng(0)

    def sweep():
        violations = 0
        samples = []
        for _ in range(200):
            vals = rng.uniform(0.1, 10.0, size=8)
            t = ComponentTimes(*vals)
            total = iteration_latency(t)
            if not total <= t.serialized_total + 1e-9:
                violations += 1
            samples.append((total, t.serialized_total))
        return violations, samples

    violations, samples = benchmark(sweep)
    overlap_saved = np.mean([1 - tot / ser for tot, ser in samples])
    report("Fig 9 / Eq 1: overlap savings over 200 random configurations",
           ["metric", "value"],
           [("violations of exposed<=serialized", violations),
            ("mean fraction of latency hidden", f"{overlap_saved:.0%}")])
    assert violations == 0
    assert overlap_saved > 0.1


def test_dependency_graph_in_functional_model(benchmark, report):
    """Perturbing the dense input must not change the pooled embeddings,
    and perturbing the sparse input must not change the bottom MLP output
    — the two forward paths of Fig. 9 join only at the interaction."""
    tables = tuple(EmbeddingTableConfig(f"t{i}", 64, 8, avg_pooling=3.0)
                   for i in range(3))
    config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                        top_mlp=(8,))
    ds = SyntheticCTRDataset(tables, dense_dim=4, seed=0)

    def run():
        model = DLRM(config, seed=0)
        batch_a = ds.batch(16, 0)
        batch_b = ds.batch(16, 0)
        batch_b.dense[:] = 0.0  # perturb dense path only
        pooled_a = model.embeddings.forward(batch_a.sparse)
        pooled_b = model.embeddings.forward(batch_b.sparse)

        batch_c = ds.batch(16, 1)  # different sparse ids
        bottom_a = model.bottom.forward(batch_a.dense)
        bottom_c = model.bottom.forward(batch_a.dense)
        # logits DO depend on both (they join at the interaction)
        logits_a = model.forward(batch_a)
        logits_b = model.forward(batch_b)
        return pooled_a, pooled_b, bottom_a, bottom_c, logits_a, logits_b

    pooled_a, pooled_b, bottom_a, bottom_c, logits_a, logits_b = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    for name in pooled_a:
        np.testing.assert_array_equal(pooled_a[name], pooled_b[name])
    np.testing.assert_array_equal(bottom_a, bottom_c)
    assert not np.array_equal(logits_a, logits_b)
    report("Fig 9: dependency checks", ["check", "result"],
           [("pooled embeddings independent of dense input", "pass"),
            ("bottom MLP independent of sparse input", "pass"),
            ("paths join at the interaction (logits differ)", "pass")])

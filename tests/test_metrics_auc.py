"""Tests for the ROC-AUC metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import roc_auc


class TestRocAuc:
    def test_perfect_ranking(self):
        p = np.array([0.1, 0.2, 0.8, 0.9])
        y = np.array([0, 0, 1, 1])
        assert roc_auc(p, y) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        p = np.array([0.9, 0.8, 0.2, 0.1])
        y = np.array([0, 0, 1, 1])
        assert roc_auc(p, y) == pytest.approx(0.0)

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        p = rng.random(10_000)
        y = (rng.random(10_000) < 0.3).astype(float)
        assert roc_auc(p, y) == pytest.approx(0.5, abs=0.02)

    def test_constant_predictions_are_half(self):
        """All-tied predictions give exactly 0.5 (average ranks)."""
        p = np.full(10, 0.7)
        y = np.array([1, 0] * 5, dtype=float)
        assert roc_auc(p, y) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self):
        """AUC == P(score_pos > score_neg) + 0.5 P(tie), brute force."""
        rng = np.random.default_rng(1)
        p = np.round(rng.random(50), 1)  # coarse grid -> ties exist
        y = (rng.random(50) < 0.4).astype(float)
        pos = p[y == 1]
        neg = p[y == 0]
        wins = sum((a > b) + 0.5 * (a == b) for a in pos for b in neg)
        brute = wins / (len(pos) * len(neg))
        assert roc_auc(p, y) == pytest.approx(brute, rel=1e-9)

    def test_invariant_to_monotone_transform(self):
        """AUC only depends on ranking — calibration-free, unlike NE."""
        rng = np.random.default_rng(2)
        p = rng.random(200)
        y = (rng.random(200) < p).astype(float)
        assert roc_auc(p, y) == pytest.approx(roc_auc(p ** 3, y), rel=1e-9)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.5, 0.6]), np.array([1.0, 1.0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.zeros(0), np.zeros(0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.zeros(3), np.zeros(4))

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=30)
    def test_bounded_property(self, n):
        rng = np.random.default_rng(n)
        p = rng.random(n)
        y = np.zeros(n)
        y[: max(1, n // 3)] = 1.0
        rng.shuffle(y)
        if y.sum() in (0, n):
            return
        assert 0.0 <= roc_auc(p, y) <= 1.0

    def test_trained_model_beats_random(self):
        """A trained DLRM's AUC > 0.5 on the synthetic task."""
        from repro import nn
        from repro.data import SyntheticCTRDataset
        from repro.embedding import EmbeddingTableConfig, SparseSGD
        from repro.models import DLRM, DLRMConfig

        tables = (EmbeddingTableConfig("t0", 64, 8, avg_pooling=3.0),)
        config = DLRMConfig(dense_dim=4, bottom_mlp=(8, 8), tables=tables,
                            top_mlp=(8,))
        ds = SyntheticCTRDataset(tables, dense_dim=4, noise=0.2, seed=1)
        model = DLRM(config, seed=0)
        opt = nn.Adam(model.dense_parameters(), lr=0.02)
        sparse = SparseSGD(lr=0.1)
        for i in range(80):
            model.train_step(ds.batch(64, i), opt, sparse)
        test = ds.batch(2048, 9999)
        assert roc_auc(model.predict_proba(test), test.labels) > 0.6
